package crdtsync_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"crdtsync"
)

// openCluster boots n fully meshed replicas with fast ticks and digest
// anti-entropy, closed at test end.
func openCluster(t *testing.T, n int, opts ...crdtsync.Option) []*crdtsync.Store {
	t.Helper()
	opts = append([]crdtsync.Option{
		crdtsync.WithSyncEvery(10 * time.Millisecond),
		crdtsync.WithDigestEvery(4),
		crdtsync.WithShards(8),
	}, opts...)
	stores, err := crdtsync.Cluster(n, opts...)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	for _, st := range stores {
		st := st
		t.Cleanup(func() { st.Close() })
	}
	return stores
}

// TestTypedHandlesConverge is the public-API end-to-end test: three
// replicas mutate counters, sets and maps through typed handles and
// converge to identical values everywhere.
func TestTypedHandlesConverge(t *testing.T) {
	stores := openCluster(t, 3)

	// Counter: every replica increments the same counter.
	for i, st := range stores {
		st.Counter("hits").Inc(uint64(i + 1)) // 1+2+3 = 6
	}
	// Set: each replica contributes distinct elements.
	for i, st := range stores {
		st.Set("tags").Add(fmt.Sprintf("tag-%d", i))
	}
	// Map: disjoint fields from different replicas, plus one LWW
	// conflict on a shared field (resolved by version, then writer id).
	for i, st := range stores {
		st.Map("profile").Put(fmt.Sprintf("field-%d", i), fmt.Sprintf("val-%d", i))
		st.Map("profile").Put("shared", fmt.Sprintf("from-%d", i))
	}

	// 1 counter + 1 set + 3 disjoint fields + 1 shared field = 6 objects.
	if err := crdtsync.WaitConverged(stores, 6, 10*time.Second, nil); err != nil {
		t.Fatal(err)
	}

	for _, st := range stores {
		if v := st.Counter("hits").Value(); v != 6 {
			t.Errorf("%s: counter = %d, want 6", st.ID(), v)
		}
		want := []string{"tag-0", "tag-1", "tag-2"}
		if got := st.Set("tags").Elems(); !equalStrings(got, want) {
			t.Errorf("%s: set = %v, want %v", st.ID(), got, want)
		}
		if !st.Set("tags").Contains("tag-1") {
			t.Errorf("%s: set missing tag-1", st.ID())
		}
		m := st.Map("profile")
		for i := 0; i < 3; i++ {
			if v, ok := m.Get(fmt.Sprintf("field-%d", i)); !ok || v != fmt.Sprintf("val-%d", i) {
				t.Errorf("%s: map field-%d = %q (ok=%t)", st.ID(), i, v, ok)
			}
		}
		// All writes used version 1, so the LWW tie breaks by writer id:
		// the lexicographically greatest writer wins on every replica.
		if v, ok := m.Get("shared"); !ok || !strings.HasPrefix(v, "from-") {
			t.Errorf("%s: map shared = %q (ok=%t)", st.ID(), v, ok)
		}
	}
	// The conflicting field resolved identically everywhere.
	v0, _ := stores[0].Map("profile").Get("shared")
	for _, st := range stores[1:] {
		if v, _ := st.Map("profile").Get("shared"); v != v0 {
			t.Errorf("LWW divergence: %s has %q, %s has %q", stores[0].ID(), v0, st.ID(), v)
		}
	}
}

// TestHandleZeroValues checks reads of never-written objects.
func TestHandleZeroValues(t *testing.T) {
	st := openCluster(t, 1)[0]
	if v := st.Counter("nope").Value(); v != 0 {
		t.Errorf("unwritten counter = %d", v)
	}
	if n := st.Set("nope").Len(); n != 0 {
		t.Errorf("unwritten set len = %d", n)
	}
	if st.Set("nope").Contains("x") {
		t.Error("unwritten set contains x")
	}
	if _, ok := st.Map("nope").Get("f"); ok {
		t.Error("unwritten map field ok")
	}
	if got := st.Map("nope").Fields(); len(got) != 0 {
		t.Errorf("unwritten map fields = %v", got)
	}
}

// TestScanAndQueryOverHandles checks that the public read layer ranges
// over the typed namespaces deterministically.
func TestScanAndQueryOverHandles(t *testing.T) {
	st := openCluster(t, 1)[0]
	for i := 0; i < 20; i++ {
		st.Counter(fmt.Sprintf("cnt-%03d", i)).Inc(uint64(i) + 1)
	}
	st.Set("one").Add("a")
	st.Map("prof").Put("f", "v")

	// Scan the counter namespace: sorted, counters only.
	var keys []string
	st.Scan(crdtsync.CounterPrefix, func(key string, _ crdtsync.State) bool {
		keys = append(keys, key)
		return true
	})
	if len(keys) != 20 || !sort.StringsAreSorted(keys) {
		t.Fatalf("Scan(c/) = %d keys (sorted=%t), want 20 sorted", len(keys), sort.StringsAreSorted(keys))
	}
	for _, k := range keys {
		if !strings.HasPrefix(k, crdtsync.CounterPrefix) {
			t.Fatalf("Scan(c/) leaked key %q", k)
		}
	}
	// Query every shard: the union covers the whole keyspace exactly.
	total := 0
	for shard := 0; shard < st.NumShards(); shard++ {
		st.Query(shard, func(string, crdtsync.State) bool { total++; return true })
	}
	if want := st.NumKeys(); total != want {
		t.Fatalf("Query union visited %d objects, want %d", total, want)
	}
	// Keys is globally sorted and covers all namespaces.
	all := st.Keys()
	if len(all) != 22 || !sort.StringsAreSorted(all) {
		t.Fatalf("Keys = %d (sorted=%t), want 22 sorted", len(all), sort.StringsAreSorted(all))
	}
}

// TestWatchPublicAPI checks Watch through the public surface: local and
// remote changes to a namespace arrive as events.
func TestWatchPublicAPI(t *testing.T) {
	stores := openCluster(t, 2)
	w := stores[1].Watch(crdtsync.CounterPrefix)
	defer w.Close()

	stores[0].Counter("watched").Inc(1)
	stores[1].Counter("local").Inc(1)
	stores[0].Set("invisible").Add("x") // other namespace

	seen := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(seen) < 2 {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatal("Events closed early")
			}
			if !strings.HasPrefix(ev.Key, crdtsync.CounterPrefix) {
				t.Fatalf("watch leaked key %q", ev.Key)
			}
			seen[ev.Key] = true
		case <-deadline:
			t.Fatalf("timed out, saw %v", seen)
		}
	}
	if !seen["c/watched"] || !seen["c/local"] {
		t.Fatalf("wrong event set %v", seen)
	}
}

// TestGetSnapshotIsolation pins the public Get contract: the returned
// snapshot is private.
func TestGetSnapshotIsolation(t *testing.T) {
	st := openCluster(t, 1)[0]
	c := st.Counter("iso")
	c.Inc(5)
	snap := st.Get(c.Key())
	if snap == nil {
		t.Fatal("Get returned nil for existing key")
	}
	snap.Merge(snap.Clone()) // arbitrary mutation of the snapshot
	other := st.Get(c.Key())
	snap.Merge(other)
	if v := c.Value(); v != 5 {
		t.Fatalf("store corrupted through Get snapshot: %d, want 5", v)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkRead compares the three read strengths on a 10k-counter
// store: Get clones every object, Query visits a shard's live objects
// with zero allocation, Scan adds the global ordering pass. This is the
// backing data for the README's read-path numbers (syncbench -exp store
// -scan measures the same on a live cluster).
func BenchmarkRead(b *testing.B) {
	st, err := crdtsync.Open(crdtsync.WithShards(64))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const keys = 10000
	for i := 0; i < keys; i++ {
		st.Counter(fmt.Sprintf("bench-%05d", i)).Inc(1)
	}
	kl := st.Keys()

	b.Run("get-clone-everything", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int
			for _, k := range kl {
				sum += st.Get(k).Elements()
			}
			if sum != keys {
				b.Fatalf("sum %d", sum)
			}
		}
	})
	b.Run("query-zero-clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int
			for shard := 0; shard < st.NumShards(); shard++ {
				st.Query(shard, func(_ string, s crdtsync.State) bool {
					sum += s.Elements()
					return true
				})
			}
			if sum != keys {
				b.Fatalf("sum %d", sum)
			}
		}
	})
	b.Run("scan-sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int
			st.Scan(crdtsync.CounterPrefix, func(_ string, s crdtsync.State) bool {
				sum += s.Elements()
				return true
			})
			if sum != keys {
				b.Fatalf("sum %d", sum)
			}
		}
	})
}
