// Package crdtsync is the public surface of the sharded CRDT store: a
// replicated multi-object keyspace synchronized with the δ-CRDT
// algorithms of Enes et al., "Efficient Synchronization of State-based
// CRDTs" (ICDE 2019), over the batched, digest-repaired, backpressured
// TCP transport grown underneath it.
//
// Open one replica per process with Open, point replicas at each other
// with WithPeers, and mutate the keyspace through typed handles:
//
//	st, err := crdtsync.Open(
//		crdtsync.WithID("node-a"),
//		crdtsync.WithListenAddr("127.0.0.1:7001"),
//		crdtsync.WithPeers(map[string]string{"node-b": "127.0.0.1:7002"}),
//	)
//	...
//	hits := st.Counter("hits")
//	hits.Inc(1)
//	st.Set("tags").Add("urgent")
//	st.Map("profile/alice").Put("city", "Porto")
//
// Every replica converges to the same state without coordination;
// conflicting writes merge by the objects' join semantics (counters sum
// per-replica entries, sets union, registers keep the last write).
//
// Reads come in three strengths: Get clones one object's state (safe to
// keep and mutate), Query and Scan visit live objects under their shard
// locks without cloning (fast, but the states must not be retained), and
// Watch streams coalesced change notifications with bounded buffering —
// a slow consumer is marked lagged rather than allowed to stall
// synchronization.
//
// The typed handles partition the keyspace by prefix: counters live
// under "c/", sets under "s/", map fields under "m/<name>/". The prefix
// is the schema — every replica derives an object's datatype from its
// key alone, so no type negotiation happens on the wire — and it is the
// natural argument to Scan and Watch ("c/" watches every counter).
package crdtsync

import (
	"fmt"
	"net"
	"strings"
	"time"

	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// Key namespaces of the typed handles. The prefix of a key decides its
// datatype on every replica, so the three families can share one store
// without wire-level type negotiation; pass them to Scan or Watch to
// range over one family.
const (
	// CounterPrefix is the namespace of Counter objects.
	CounterPrefix = "c/"
	// SetPrefix is the namespace of Set objects.
	SetPrefix = "s/"
	// MapPrefix is the namespace of Map objects; each field of a map
	// named m is its own object at "m/<m>/<field>", so concurrent writes
	// to different fields of one map never contend on a lock or a
	// δ-buffer.
	MapPrefix = "m/"
)

// State is one object's CRDT state: a join-semilattice value. States
// returned by Get are private snapshots; states passed to Query, Scan
// and View callbacks are the store's live values and must not be
// mutated or retained.
type State = lattice.State

// Stats is a snapshot of one store's wire, anti-entropy, write-pipeline
// and watch accounting.
type Stats = transport.StoreStats

// PeerStats is the per-peer slice of Stats: one outbound write
// pipeline's enqueued/dropped/coalesced frame and byte counters plus its
// connection state.
type PeerStats = transport.PeerStats

// Memory aggregates a store's memory footprint: CRDT state bytes,
// δ-buffer bytes, and synchronization metadata bytes.
type Memory = metrics.Memory

// WatchEvent is one change notification from a Watcher: Key names the
// (possibly) changed object; Lagged marks the first event after the
// watcher's bounded buffer overflowed and notifications were dropped.
type WatchEvent = transport.WatchEvent

// Watcher streams coalesced change notifications for one key prefix;
// see Store.Watch.
type Watcher = transport.Watcher

// DialFunc establishes the outbound connection to one peer: id is the
// peer's replica id, addr its listen address. Test and benchmark
// harnesses override it (WithDial) to inject faults.
type DialFunc = transport.DialFunc

// Engine selects the per-object synchronization algorithm.
type Engine int

const (
	// EngineAcked is delta-based BP+RR with acknowledgements: δ-groups
	// are retransmitted until acked, so lost frames are repaired by the
	// engine itself. The default, safe on lossy links.
	EngineAcked Engine = iota
	// EngineDelta is plain delta-based BP+RR, the paper's optimal
	// engine; it assumes frames are never lost. Pair it with digest
	// anti-entropy (WithDigestEvery) anywhere loss is possible.
	EngineDelta
)

func (e Engine) factory() (protocol.Factory, error) {
	switch e {
	case EngineAcked:
		return protocol.NewDeltaAcked(true, true), nil
	case EngineDelta:
		return protocol.NewDeltaBPRR(), nil
	default:
		return nil, fmt.Errorf("crdtsync: unknown engine %d", e)
	}
}

// ParseEngine maps the command-line names of the engines ("acked",
// "delta") to Engine values.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "acked":
		return EngineAcked, nil
	case "delta":
		return EngineDelta, nil
	default:
		return 0, fmt.Errorf("crdtsync: unknown engine %q (want acked or delta)", name)
	}
}

// Option configures Open.
type Option func(*options)

type options struct {
	cfg    transport.StoreConfig
	engine Engine
}

// WithID sets this replica's identifier (default "node"). Ids must be
// unique within a cluster: peers address frames by them.
func WithID(id string) Option { return func(o *options) { o.cfg.ID = id } }

// WithListenAddr sets the TCP address to accept peer frames on (default
// "127.0.0.1:0"; Addr reports the bound address).
func WithListenAddr(addr string) Option { return func(o *options) { o.cfg.ListenAddr = addr } }

// WithListener uses an already bound listener instead of binding
// ListenAddr — the way to know every replica's address before starting
// any of them.
func WithListener(ln net.Listener) Option { return func(o *options) { o.cfg.Listener = ln } }

// WithPeers sets the neighbor replicas this store synchronizes with:
// replica id to listen address. Connections are dialed lazily and
// re-dialed with backoff, so peers may come up in any order.
func WithPeers(peers map[string]string) Option { return func(o *options) { o.cfg.Peers = peers } }

// WithNodes fixes the full cluster membership when it is larger than
// this replica's direct neighborhood (partial meshes, rings). It
// defaults to this replica plus its peers.
func WithNodes(nodes []string) Option { return func(o *options) { o.cfg.Nodes = nodes } }

// WithShards sets the shard count, rounded up to a power of two
// (default 16). Every replica in a cluster must use the same value: the
// shard index is frame routing metadata.
func WithShards(n int) Option { return func(o *options) { o.cfg.Shards = n } }

// WithEngine selects the per-object synchronization algorithm (default
// EngineAcked).
func WithEngine(e Engine) Option { return func(o *options) { o.engine = e } }

// WithSyncEvery sets the synchronization period (default 1s).
func WithSyncEvery(d time.Duration) Option { return func(o *options) { o.cfg.SyncEvery = d } }

// WithDigestEvery enables digest anti-entropy: every n-th sync tick the
// store advertises its per-shard digest vector (piggybacked on data
// frames when possible) and peers pull only the shards whose digests
// differ. This repairs divergence the engines cannot see — lost frames
// under EngineDelta, healed partitions — at a near-constant idle cost.
// 0 (the default) disables it.
func WithDigestEvery(n int) Option { return func(o *options) { o.cfg.DigestEvery = n } }

// WithQueueBudget bounds each peer's outbound write queue: frames caps
// the queue length in frames (default 128), bytes in encoded bytes
// (default 8 MiB). When a slow peer's queue crosses either bound the
// oldest frame is evicted and counted in Stats().Peers — backpressure
// never reaches healthy peers or the sync loop. Zero keeps a default.
func WithQueueBudget(frames, bytes int) Option {
	return func(o *options) {
		o.cfg.PeerQueueLen = frames
		o.cfg.PeerQueueBytes = bytes
	}
}

// WithMaxFrameBytes caps one data frame's encoded size (default 64 MiB);
// sync ticks whose batch exceeds it are packed into multiple bounded
// frames.
func WithMaxFrameBytes(n int) Option { return func(o *options) { o.cfg.MaxFrameBytes = n } }

// WithDial replaces the default TCP dialer for outbound connections;
// fault-injection harnesses wrap it to drop, duplicate or delay frames.
func WithDial(dial DialFunc) Option { return func(o *options) { o.cfg.Dial = dial } }

// WithoutDigestPiggyback ships every digest advertisement as its own
// frame instead of riding data frames — a measurement baseline, not a
// production setting.
func WithoutDigestPiggyback() Option { return func(o *options) { o.cfg.NoDigestPiggyback = true } }

// WithSnapshotDir enables crash-restart durability: each shard's objects
// are periodically serialized to an atomic-rename, checksummed file in
// dir (created if needed), and Open restores from those files before
// joining the mesh. A restored replica is as stale as its last snapshot;
// ordinary anti-entropy repairs the gap, so recovery cost scales with
// staleness, not keyspace size. Corrupt or truncated files are skipped
// whole (counted in Stats), never partially applied.
func WithSnapshotDir(dir string) Option { return func(o *options) { o.cfg.SnapshotDir = dir } }

// WithSnapshotEvery sets the snapshot period (default 10s; only
// meaningful with WithSnapshotDir). Shards whose contents have not
// changed since their last snapshot are skipped without I/O.
func WithSnapshotEvery(d time.Duration) Option { return func(o *options) { o.cfg.SnapshotEvery = d } }

// WithSyncWorkers bounds the shard-work pool: the number of workers the
// CPU-heavy per-shard stages — the sync tick (engine sync plus item
// encoding), digest vector recompute, Merkle leaf recompute, and
// snapshot encoding — fan out across. 1 pins every stage to the calling
// goroutine, the serial behavior; the default (0) uses GOMAXPROCS.
// The setting never changes what goes on the wire: workers capture
// per-shard output and each tick merges it in shard order before frames
// are packed, so frame bytes are identical at any worker count.
// Stats().SyncWorkerShards / SyncWorkerBusyNs expose per-worker load,
// where skew between shards is visible.
func WithSyncWorkers(n int) Option { return func(o *options) { o.cfg.SyncWorkers = n } }

// objType is the prefix schema shared by every replica: the datatype of
// an object is a pure function of its key, so remotely learned keys
// deserialize into the right lattice without negotiation.
func objType(key string) workload.Datatype {
	switch {
	case strings.HasPrefix(key, CounterPrefix):
		return workload.GCounterType{}
	case strings.HasPrefix(key, SetPrefix):
		return workload.GSetType{}
	default:
		return workload.LWWMapType{}
	}
}

// Store is one replica of the replicated keyspace. All methods are safe
// for concurrent use; updates on keys in different shards proceed in
// parallel.
type Store struct {
	s *transport.Store
}

// Open starts one replica and returns its store. The returned store is
// live immediately: it accepts peer frames, runs the sync loop, and
// serves reads and writes. Close it to stop.
func Open(opts ...Option) (*Store, error) {
	o := buildOptions(opts)
	factory, err := o.engine.factory()
	if err != nil {
		return nil, err
	}
	o.cfg.Factory = factory
	st, err := transport.StartStore(o.cfg)
	if err != nil {
		return nil, err
	}
	return &Store{s: st}, nil
}

// buildOptions applies opts over the defaults.
func buildOptions(opts []Option) *options {
	o := &options{cfg: transport.StoreConfig{
		ID:         "node",
		ListenAddr: "127.0.0.1:0",
		ObjType:    objType,
	}}
	for _, opt := range opts {
		opt(o)
	}
	o.cfg.ObjType = objType // the schema is not configurable
	return o
}

// Cluster starts n fully meshed replicas on loopback, every listener
// bound before any store starts so all peer addresses are known up
// front. Options apply to every replica; WithID sets the replica-id
// prefix ("store" → store-00, store-01, ...). Benchmarks, examples and
// tests share this bootstrap. On error, replicas already started are
// closed.
func Cluster(n int, opts ...Option) ([]*Store, error) {
	o := buildOptions(opts)
	factory, err := o.engine.factory()
	if err != nil {
		return nil, err
	}
	o.cfg.Factory = factory
	o.cfg.Listener = nil
	o.cfg.ListenAddr = ""
	raw, err := transport.LoopbackCluster(n, o.cfg)
	if err != nil {
		return nil, err
	}
	stores := make([]*Store, len(raw))
	for i, st := range raw {
		stores[i] = &Store{s: st}
	}
	return stores, nil
}

// WaitConverged polls until every store holds wantKeys objects and all
// content digests agree, or the timeout elapses. progress, when non-nil,
// receives the per-store key counts on every poll. On timeout the error
// names each store's key count, digest and write-pipeline health.
func WaitConverged(stores []*Store, wantKeys int, timeout time.Duration, progress func(counts []int)) error {
	raw := make([]*transport.Store, len(stores))
	for i, st := range stores {
		raw[i] = st.s
	}
	return transport.WaitConverged(raw, wantKeys, timeout, progress)
}

// ID returns the replica identifier.
func (s *Store) ID() string { return s.s.ID() }

// Addr returns the bound listen address (useful with ":0" listen
// addresses).
func (s *Store) Addr() string { return s.s.Addr() }

// NumShards returns the effective (power-of-two) shard count.
func (s *Store) NumShards() int { return s.s.NumShards() }

// NumKeys returns the number of distinct objects across all shards.
func (s *Store) NumKeys() int { return s.s.NumKeys() }

// Keys returns every object key in sorted order — deterministic across
// shard counts and hash layouts.
func (s *Store) Keys() []string { return s.s.Keys() }

// Get returns a private snapshot of one object's state, or nil if the
// key is unknown. The snapshot is cloned under the shard lock: the
// caller may keep it and mutate it freely without affecting the store.
// For bulk reads, Query and Scan avoid the clone.
func (s *Store) Get(key string) State { return s.s.Get(key) }

// Query visits every object of one shard under that shard's lock, in
// sorted key order, without cloning. fn must not mutate or retain the
// states and must not call back into the store; returning false stops
// the visit. Shard indices range over [0, NumShards()).
func (s *Store) Query(shard int, fn func(key string, st State) bool) { s.s.Query(shard, fn) }

// View runs fn on one object's live state under its shard lock and
// reports whether the key exists — the single-key, zero-clone read the
// typed handles are built on. The same contract as Query applies.
func (s *Store) View(key string, fn func(st State)) bool { return s.s.View(key, fn) }

// Scan visits every object whose key starts with prefix, across all
// shards, in globally sorted key order, holding each shard's lock only
// briefly. fn observes live states under the same contract as Query;
// returning false stops the scan. Scan is not a snapshot: concurrent
// updates may be observed.
func (s *Store) Scan(prefix string, fn func(key string, st State) bool) { s.s.Scan(prefix, fn) }

// Watch streams change notifications for every key starting with prefix
// (CounterPrefix, SetPrefix, MapPrefix + name + "/", or "" for the whole
// keyspace). Notifications are coalesced per key and buffered
// boundedly: a consumer that stops reading its Events channel never
// stalls synchronization — overflowing notifications are dropped,
// counted in Stats().WatchDropped, and surfaced as a Lagged mark on the
// next delivered event, after which the consumer should Scan the prefix
// to resynchronize. Close the watcher to release it.
func (s *Store) Watch(prefix string) *Watcher { return s.s.Watch(prefix, 0) }

// WatchBuffered is Watch with an explicit bound on the number of
// distinct keys held pending between reads (buf <= 0 uses the default
// of 256).
func (s *Store) WatchBuffered(prefix string, buf int) *Watcher { return s.s.Watch(prefix, buf) }

// SyncNow runs one synchronization step immediately, in addition to the
// periodic ones.
func (s *Store) SyncNow() { s.s.SyncNow() }

// SnapshotNow runs one snapshot pass immediately, in addition to the
// periodic ones: every shard whose contents changed since its last
// snapshot is written out. Call it before a planned shutdown to make
// the restart lossless (Close itself does not snapshot). Errors if the
// store was opened without WithSnapshotDir.
func (s *Store) SnapshotNow() error { return s.s.SnapshotNow() }

// Ticks returns how many synchronization steps this store has run.
func (s *Store) Ticks() uint64 { return s.s.Ticks() }

// Stats returns a snapshot of the store's wire, anti-entropy,
// write-pipeline and watch accounting.
func (s *Store) Stats() Stats { return s.s.Stats() }

// Digest returns a 64-bit content digest: two converged replicas (same
// shard count, same keyspace, same states) produce equal digests.
func (s *Store) Digest() uint64 { return s.s.Digest() }

// Memory aggregates the store's memory footprint across shards.
func (s *Store) Memory() Memory { return s.s.Memory() }

// Close stops the sync loop, closes every watcher and connection, and
// waits for in-flight work to finish. It is idempotent.
func (s *Store) Close() error { return s.s.Close() }
