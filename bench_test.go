// Package main holds the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Benchmarks execute the same experiment runners as cmd/syncbench at test
// scale (one full experiment per iteration) so -bench both regenerates the
// paper's rows and measures the harness cost.
package crdtsync_test

import (
	"testing"

	"crdtsync/internal/core"
	"crdtsync/internal/crdt"
	"crdtsync/internal/exp"
	"crdtsync/internal/lattice"
	"crdtsync/internal/netsim"
	"crdtsync/internal/protocol"
	"crdtsync/internal/retwis"
	"crdtsync/internal/topology"
	"crdtsync/internal/workload"
)

// benchCfg is the per-iteration experiment scale. Table/figure shapes are
// asserted at this scale by the exp package tests; benchmarks reuse it so
// one iteration stays in the tens of milliseconds.
func benchCfg() exp.Config { return exp.TestConfig() }

// --- one benchmark per table/figure ---

func BenchmarkFig1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Fig1(cfg)
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Fig7(cfg)
	}
}

func BenchmarkFig8(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Fig8(cfg)
	}
}

func BenchmarkFig9(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Fig9(cfg)
	}
}

func BenchmarkFig10(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Fig10(cfg)
	}
}

func BenchmarkFig11(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Fig11From(exp.RetwisSweep(cfg))
	}
}

func BenchmarkFig12(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.Fig12From(exp.RetwisSweep(cfg))
	}
}

func BenchmarkTableII(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.TableII(cfg)
	}
}

// --- per-protocol micro benches: one GSet mesh run each ---

func benchProtocol(b *testing.B, f protocol.Factory) {
	b.Helper()
	topo := topology.PartialMesh(15, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(topo, f, workload.GSetType{}, netsim.Options{Seed: 1})
		sim.Run(30, workload.GSetGen{})
		sim.RunQuiet(50)
	}
}

func BenchmarkProtocolStateBased(b *testing.B)    { benchProtocol(b, protocol.NewStateBased()) }
func BenchmarkProtocolDeltaClassic(b *testing.B)  { benchProtocol(b, protocol.NewDeltaClassic()) }
func BenchmarkProtocolDeltaBPRR(b *testing.B)     { benchProtocol(b, protocol.NewDeltaBPRR()) }
func BenchmarkProtocolScuttlebutt(b *testing.B)   { benchProtocol(b, protocol.NewScuttlebutt()) }
func BenchmarkProtocolScuttlebuttGC(b *testing.B) { benchProtocol(b, protocol.NewScuttlebuttGC()) }
func BenchmarkProtocolOpBased(b *testing.B)       { benchProtocol(b, protocol.NewOpBased()) }

// --- ablations (DESIGN.md §6) ---

// BenchmarkAblationBPRR compares the four delta-based variants on the same
// workload: the BP/RR matrix of Algorithm 1.
func BenchmarkAblationBPRR(b *testing.B) {
	for _, v := range []struct {
		name   string
		bp, rr bool
	}{
		{"classic", false, false},
		{"bp", true, false},
		{"rr", false, true},
		{"bp+rr", true, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			benchProtocol(b, protocol.NewDeltaBased(v.bp, v.rr))
		})
	}
}

// BenchmarkAckedVsClear compares the paper's two δ-buffer disciplines:
// clear-after-send (Algorithm 1's lossless-channel simplification) vs
// sequence numbers + acknowledgments (the lossy-channel variant).
func BenchmarkAckedVsClear(b *testing.B) {
	b.Run("clear", func(b *testing.B) { benchProtocol(b, protocol.NewDeltaBPRR()) })
	b.Run("acked", func(b *testing.B) { benchProtocol(b, protocol.NewDeltaAcked(true, true)) })
}

// BenchmarkDeltaVsInflate compares RR's Δ-extraction against the classic
// inflation check on a receive-heavy path: the cost the paper's Figure 12
// attributes to processing larger δ-groups.
func BenchmarkDeltaVsInflate(b *testing.B) {
	local := crdt.NewGSet()
	incoming := crdt.NewGSet()
	for i := 0; i < 1000; i++ {
		local.Add(workload.GSetGen{}.Ops(i, "n00", 0, 1)[0].Elem)
		if i%10 == 0 {
			incoming.Add(workload.GSetGen{}.Ops(i, "n01", 1, 2)[0].Elem)
		}
	}
	// incoming shares 90% of local via a join.
	mixed := incoming.Join(local).(*crdt.GSet)

	b.Run("inflate-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lattice.StrictlyInflates(mixed, local)
		}
	})
	b.Run("delta-extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Delta(mixed, local)
		}
	})
}

// BenchmarkDecompose measures decomposition allocation across state shapes.
func BenchmarkDecompose(b *testing.B) {
	set := crdt.NewGSet()
	for i := 0; i < 1000; i++ {
		set.Add(workload.GSetGen{}.Ops(i, "n00", 0, 1)[0].Elem)
	}
	counter := crdt.NewGCounter()
	for i := 0; i < 64; i++ {
		counter.Inc(topology.NodeIDs(64)[i], uint64(i+1))
	}
	m := crdt.NewGMap()
	for i := 0; i < 1000; i++ {
		crdt.MapPut(m, workload.GMapGen{K: 100, TotalKeys: 1000}.Ops(0, "n", 0, 1)[0].Key, lattice.NewMaxInt(uint64(i+1)))
	}
	cases := []struct {
		name string
		s    lattice.State
	}{{"gset-1000", set}, {"gcounter-64", counter}, {"gmap-1000", m}}
	for _, c := range cases {
		b.Run(c.name+"/slice", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lattice.Decompose(c.s)
			}
		})
		b.Run(c.name+"/iter", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				c.s.Irreducibles(func(lattice.State) bool { n++; return true })
			}
		})
	}
}

// BenchmarkBufferJoin compares joining the δ-buffer at send time (what
// Algorithm 1 does per neighbor) for growing buffer sizes.
func BenchmarkBufferJoin(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(itoa(n), func(b *testing.B) {
			var buf core.Buffer
			for i := 0; i < n; i++ {
				buf.Add(crdt.NewGSet(workload.GSetGen{}.Ops(i, "n00", 0, 1)[0].Elem), "o")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.GroupAll()
			}
		})
	}
}

// BenchmarkRetwisContention isolates the classic-vs-BP+RR CPU gap at high
// contention (the paper's Figure 12 at Zipf 1.5).
func BenchmarkRetwisContention(b *testing.B) {
	topo := topology.PartialMesh(10, 4, 1)
	for _, v := range []struct {
		name    string
		factory protocol.Factory
	}{
		{"classic", protocol.NewPerObject(protocol.NewDeltaClassic(), retwis.ObjectDatatype)},
		{"bp+rr", protocol.NewPerObject(protocol.NewDeltaBPRR(), retwis.ObjectDatatype)},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen := retwis.NewGen(300, 5, 1.5, 7)
				sim := netsim.New(topo, v.factory, retwis.StoreType{}, netsim.Options{Seed: 7})
				sim.Run(12, gen)
				sim.RunQuiet(60)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
