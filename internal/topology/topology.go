// Package topology builds the network graphs used in the paper's
// evaluation (Figure 6): a partial mesh where every node has a fixed number
// of neighbors, and a tree, plus auxiliary shapes (ring, line, full mesh,
// star) used by tests and ablations.
//
// Graphs are undirected, connected, and deterministic for a given seed, so
// experiments are reproducible.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected graph over string node identifiers.
type Graph struct {
	nodes []string
	adj   map[string]map[string]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[string]map[string]struct{})}
}

// AddNode inserts a node (idempotent).
func (g *Graph) AddNode(id string) {
	if _, ok := g.adj[id]; ok {
		return
	}
	g.adj[id] = make(map[string]struct{})
	g.nodes = append(g.nodes, id)
	sort.Strings(g.nodes)
}

// AddEdge inserts an undirected edge, adding endpoints as needed.
// Self-loops are rejected.
func (g *Graph) AddEdge(a, b string) {
	if a == b {
		panic("topology: self-loop " + a)
	}
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// Nodes returns all node ids in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Neighbors returns the sorted neighbor list of id.
func (g *Graph) Neighbors(id string) []string {
	out := make([]string, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Degree returns the number of neighbors of id.
func (g *Graph) Degree(id string) int { return len(g.adj[id]) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb)
	}
	return n / 2
}

// HasEdge reports whether a and b are adjacent.
func (g *Graph) HasEdge(a, b string) bool {
	_, ok := g.adj[a][b]
	return ok
}

// Connected reports whether the graph is connected (empty graphs are).
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := map[string]struct{}{g.nodes[0]: {}}
	stack := []string{g.nodes[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n := range g.adj[cur] {
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				stack = append(stack, n)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// IsAcyclic reports whether the undirected graph has no cycles
// (i.e. it is a forest). Trees satisfy this; meshes do not.
func (g *Graph) IsAcyclic() bool {
	return g.NumEdges() == g.NumNodes()-len(g.components())
}

func (g *Graph) components() [][]string {
	var comps [][]string
	seen := make(map[string]struct{})
	for _, start := range g.nodes {
		if _, ok := seen[start]; ok {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = struct{}{}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for n := range g.adj[cur] {
				if _, ok := seen[n]; !ok {
					seen[n] = struct{}{}
					stack = append(stack, n)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// nodeID formats the canonical node identifier used across the repository:
// n00, n01, ... (two digits up to 99, then wider).
func nodeID(i int) string { return fmt.Sprintf("n%02d", i) }

// NodeIDs returns the canonical identifiers for n nodes.
func NodeIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = nodeID(i)
	}
	return out
}

// Line returns a path topology n00 — n01 — ... — n(k-1).
func Line(n int) *Graph {
	g := NewGraph()
	if n <= 0 {
		return g
	}
	g.AddNode(nodeID(0))
	for i := 1; i < n; i++ {
		g.AddEdge(nodeID(i-1), nodeID(i))
	}
	return g
}

// Ring returns a cycle topology (n ≥ 3).
func Ring(n int) *Graph {
	if n < 3 {
		panic("topology: Ring requires at least 3 nodes")
	}
	g := Line(n)
	g.AddEdge(nodeID(n-1), nodeID(0))
	return g
}

// Full returns the complete graph on n nodes.
func Full(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(nodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(nodeID(i), nodeID(j))
		}
	}
	return g
}

// Star returns a star with node n00 at the center.
func Star(n int) *Graph {
	g := NewGraph()
	if n <= 0 {
		return g
	}
	g.AddNode(nodeID(0))
	for i := 1; i < n; i++ {
		g.AddEdge(nodeID(0), nodeID(i))
	}
	return g
}

// Tree returns the paper's tree topology: a rooted tree where each internal
// node has `children` children (Figure 6 right uses children = 2, giving 3
// neighbors per internal node, 2 for the root, 1 for leaves).
func Tree(n, children int) *Graph {
	if children < 1 {
		panic("topology: Tree requires children >= 1")
	}
	g := NewGraph()
	if n <= 0 {
		return g
	}
	g.AddNode(nodeID(0))
	for i := 1; i < n; i++ {
		parent := (i - 1) / children
		g.AddEdge(nodeID(parent), nodeID(i))
	}
	return g
}

// PartialMesh returns the paper's partial-mesh topology: a connected graph
// where every node has exactly degree k (Figure 6 left uses n = 15, k = 4).
// n*k must be even and k < n. The construction starts from a ring (which
// guarantees connectivity) and adds chords deterministically from seed,
// preferring low-degree nodes, then repairs any remaining deficit with a
// deterministic augmenting pass.
func PartialMesh(n, k int, seed int64) *Graph {
	if k >= n {
		panic("topology: PartialMesh requires k < n")
	}
	if n*k%2 != 0 {
		panic("topology: PartialMesh requires n*k even")
	}
	if k < 2 {
		panic("topology: PartialMesh requires k >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 100; attempt++ {
		g := Ring(n)
		if k == 2 {
			return g
		}
		if tryFillDegrees(g, n, k, rng) {
			return g
		}
	}
	panic(fmt.Sprintf("topology: PartialMesh(%d,%d) failed to converge", n, k))
}

// tryFillDegrees adds chords until every node has degree k; returns false
// if the random pairing deadlocks (caller retries with fresh randomness).
func tryFillDegrees(g *Graph, n, k int, rng *rand.Rand) bool {
	deficit := func(id string) int { return k - g.Degree(id) }
	for {
		var open []string
		for _, id := range g.Nodes() {
			if deficit(id) > 0 {
				open = append(open, id)
			}
		}
		if len(open) == 0 {
			return true
		}
		if len(open) == 1 {
			return false
		}
		// Pick two distinct non-adjacent open nodes at random.
		paired := false
		for tries := 0; tries < 4*len(open)*len(open); tries++ {
			a := open[rng.Intn(len(open))]
			b := open[rng.Intn(len(open))]
			if a != b && !g.HasEdge(a, b) {
				g.AddEdge(a, b)
				paired = true
				break
			}
		}
		if !paired {
			return false
		}
	}
}
