package topology_test

import (
	"testing"

	"crdtsync/internal/topology"
)

func TestPartialMeshPaperShape(t *testing.T) {
	// Figure 6 left: 15 nodes, every node with exactly 4 neighbors.
	g := topology.PartialMesh(15, 4, 1)
	if g.NumNodes() != 15 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	for _, id := range g.Nodes() {
		if d := g.Degree(id); d != 4 {
			t.Errorf("node %s degree = %d, want 4", id, d)
		}
	}
	if !g.Connected() {
		t.Error("mesh must be connected")
	}
	if g.IsAcyclic() {
		t.Error("mesh must contain cycles")
	}
	if got, want := g.NumEdges(), 15*4/2; got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
}

func TestPartialMeshDeterministic(t *testing.T) {
	a := topology.PartialMesh(15, 4, 7)
	b := topology.PartialMesh(15, 4, 7)
	for _, id := range a.Nodes() {
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatalf("node %s: neighbor counts differ", id)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %s: same seed produced different graphs", id)
			}
		}
	}
}

func TestPartialMeshValidation(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 5}, {5, 3}, {4, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PartialMesh(%d,%d) should panic", tc.n, tc.k)
				}
			}()
			topology.PartialMesh(tc.n, tc.k, 1)
		}()
	}
}

func TestTreePaperShape(t *testing.T) {
	// Figure 6 right: 15-node tree, internal nodes have 3 neighbors,
	// the root 2, leaves 1.
	g := topology.Tree(15, 2)
	if g.NumNodes() != 15 || g.NumEdges() != 14 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() || !g.IsAcyclic() {
		t.Error("tree must be connected and acyclic")
	}
	if d := g.Degree("n00"); d != 2 {
		t.Errorf("root degree = %d, want 2", d)
	}
	maxDeg := 0
	for _, id := range g.Nodes() {
		if d := g.Degree(id); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg != 3 {
		t.Errorf("max degree = %d, want 3", maxDeg)
	}
}

func TestLineRingFullStar(t *testing.T) {
	if g := topology.Line(5); g.NumEdges() != 4 || !g.IsAcyclic() {
		t.Error("line shape wrong")
	}
	if g := topology.Ring(5); g.NumEdges() != 5 || g.IsAcyclic() {
		t.Error("ring shape wrong")
	}
	if g := topology.Full(5); g.NumEdges() != 10 {
		t.Error("full graph shape wrong")
	}
	g := topology.Star(5)
	if g.Degree("n00") != 4 || g.NumEdges() != 4 {
		t.Error("star shape wrong")
	}
	for _, tg := range []*topology.Graph{topology.Line(5), topology.Ring(5), topology.Full(5), topology.Star(5)} {
		if !tg.Connected() {
			t.Error("auxiliary topology not connected")
		}
	}
}

func TestGraphBasics(t *testing.T) {
	g := topology.NewGraph()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("edges must be undirected")
	}
	if g.HasEdge("a", "c") {
		t.Error("phantom edge")
	}
	if nb := g.Neighbors("b"); len(nb) != 2 || nb[0] != "a" || nb[1] != "c" {
		t.Errorf("Neighbors(b) = %v", nb)
	}
	// Idempotent node add.
	g.AddNode("a")
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop should panic")
		}
	}()
	topology.NewGraph().AddEdge("a", "a")
}

func TestNodeIDs(t *testing.T) {
	ids := topology.NodeIDs(3)
	if len(ids) != 3 || ids[0] != "n00" || ids[2] != "n02" {
		t.Errorf("NodeIDs = %v", ids)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := topology.NewGraph()
	g.AddEdge("a", "b")
	g.AddEdge("c", "d")
	if g.Connected() {
		t.Error("two components should not be connected")
	}
	if !g.IsAcyclic() {
		t.Error("forest should be acyclic")
	}
}
