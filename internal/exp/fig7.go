package exp

import (
	"crdtsync/internal/topology"
	"crdtsync/internal/workload"
)

// microCase is one datatype/topology combination of Figures 7 and 8.
type microCase struct {
	label string
	topo  *topology.Graph
	dt    workload.Datatype
	gen   workload.Generator
}

// transmissionRatios runs every protocol on every case and reports the
// transmission ratio (in lattice elements, the paper's metric) with
// respect to delta-based BP+RR.
func transmissionRatios(cfg Config, id, title string, cases []microCase) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"protocol"}, labels(cases)...),
	}
	// Baseline: BP+RR per case.
	base := make([]float64, len(cases))
	bprr := Roster()[4]
	for i, c := range cases {
		res := run(c.topo, bprr.Factory, c.dt, c.gen, cfg.Rounds, cfg.QuietRounds, simOpts(cfg, false))
		base[i] = float64(res.Sent.Elements)
	}
	for _, p := range Roster() {
		row := []string{p.Name}
		for i, c := range cases {
			if p.Name == "delta-bp+rr" {
				row = append(row, "1.00")
				continue
			}
			res := run(c.topo, p.Factory, c.dt, c.gen, cfg.Rounds, cfg.QuietRounds, simOpts(cfg, false))
			row = append(row, ratio(float64(res.Sent.Elements), base[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func labels(cases []microCase) []string {
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.label
	}
	return out
}

// Fig7 reproduces Figure 7: transmission of GSet and GCounter with respect
// to delta-based BP+RR, on the tree and partial-mesh topologies. Expected
// shape: classic delta ≈ state-based; BP suffices on the tree; RR drives
// the mesh improvement; Scuttlebutt/op-based beat state-based for GSet but
// lose for GCounter (they cannot compress increments under the join).
func Fig7(cfg Config) *Table {
	tree := cfg.tree(cfg.Nodes)
	mesh := cfg.mesh(cfg.Nodes)
	cases := []microCase{
		{"gset/tree", tree, workload.GSetType{}, workload.GSetGen{}},
		{"gset/mesh", mesh, workload.GSetType{}, workload.GSetGen{}},
		{"gcounter/tree", tree, workload.GCounterType{}, workload.GCounterGen{}},
		{"gcounter/mesh", mesh, workload.GCounterType{}, workload.GCounterGen{}},
	}
	return transmissionRatios(cfg, "fig7",
		"transmission ratio vs delta-BP+RR (GSet, GCounter; tree, mesh)", cases)
}

// Fig8 reproduces Figure 8: transmission of GMap 10%, 30%, 60% and 100%
// with respect to delta-based BP+RR, on the tree and mesh topologies.
func Fig8(cfg Config) *Table {
	tree := cfg.tree(cfg.Nodes)
	mesh := cfg.mesh(cfg.Nodes)
	var cases []microCase
	for _, k := range []int{10, 30, 60, 100} {
		gen := workload.GMapGen{K: k, TotalKeys: cfg.GMapKeys}
		cases = append(cases,
			microCase{labelK("tree", k), tree, workload.GMapType{}, gen},
			microCase{labelK("mesh", k), mesh, workload.GMapType{}, gen},
		)
	}
	return transmissionRatios(cfg, "fig8",
		"transmission ratio vs delta-BP+RR (GMap 10/30/60/100%; tree, mesh)", cases)
}

func labelK(topo string, k int) string {
	return "gmap" + itoa(k) + "/" + topo
}
