package exp

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a float cell, failing on render errors.
func cell(t *testing.T, tab *Table, row int, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(tab.Rows[row][col], "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("table %s row %d col %d: %q is not numeric: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

// rowIdx locates the row whose first cell equals name.
func rowIdx(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, r := range tab.Rows {
		if r[0] == name {
			return i
		}
	}
	t.Fatalf("table %s: no row %q", tab.ID, name)
	return -1
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1(TestConfig())
	// TOTAL row: classic/state cumulative ratio should be near 1
	// (classic delta is no better than state-based on a mesh).
	total := rowIdx(t, tab, "TOTAL")
	r := cell(t, tab, total, 3)
	if r < 0.5 || r > 1.6 {
		t.Errorf("fig1: classic/state transmission ratio = %.2f, want near 1", r)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 sweep is slow")
	}
	tab := Fig7(TestConfig())
	gsetTree, gsetMesh := 1, 2 // columns
	gcMesh := 4

	state := rowIdx(t, tab, "state-based")
	classic := rowIdx(t, tab, "delta-classic")
	bp := rowIdx(t, tab, "delta-bp")
	sb := rowIdx(t, tab, "scuttlebutt")

	// Mesh, GSet: classic should be within 40% of state-based and both
	// well above BP+RR (= 1.0).
	if c, s := cell(t, tab, classic, gsetMesh), cell(t, tab, state, gsetMesh); c < 0.6*s {
		t.Errorf("fig7 mesh/gset: classic (%.2f) should be comparable to state (%.2f)", c, s)
	}
	if c := cell(t, tab, classic, gsetMesh); c < 2 {
		t.Errorf("fig7 mesh/gset: classic ratio %.2f, want well above 1", c)
	}
	// Tree, GSet: BP alone attains the best result.
	if b := cell(t, tab, bp, gsetTree); b > 1.15 {
		t.Errorf("fig7 tree/gset: BP alone ratio %.2f, want ≈1", b)
	}
	// Mesh, GCounter: Scuttlebutt behaves worse than state-based
	// (it cannot compress increments under the join).
	if sbr, st := cell(t, tab, sb, gcMesh), cell(t, tab, state, gcMesh); sbr <= st {
		t.Errorf("fig7 mesh/gcounter: scuttlebutt (%.2f) should exceed state-based (%.2f)", sbr, st)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 sweep is slow")
	}
	tab := Fig8(TestConfig())
	classic := rowIdx(t, tab, "delta-classic")
	bp := rowIdx(t, tab, "delta-bp")
	// Columns alternate tree/mesh for K = 10, 30, 60, 100.
	// Tree columns are odd-indexed starting at 1.
	for _, col := range []int{1, 3, 5, 7} {
		if b := cell(t, tab, bp, col); b > 1.2 {
			t.Errorf("fig8 col %d (tree): BP alone ratio %.2f, want ≈1", col, b)
		}
	}
	// Mesh, sparse GMap (10%): classic far above BP+RR.
	if c := cell(t, tab, classic, 2); c < 2 {
		t.Errorf("fig8 gmap10/mesh: classic ratio %.2f, want well above 1", c)
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := TestConfig()
	tab := Fig9(cfg)
	// Collect metadata-percent per protocol at the largest N.
	last := func(proto string) float64 {
		for i := len(tab.Rows) - 1; i >= 0; i-- {
			if tab.Rows[i][0] == proto {
				return cell(t, tab, i, 3)
			}
		}
		t.Fatalf("fig9: protocol %s not found", proto)
		return 0
	}
	deltaPct := last("delta-bp+rr")
	sbPct := last("scuttlebutt")
	gcPct := last("scuttlebutt-gc")
	opPct := last("op-based")
	if deltaPct > 25 {
		t.Errorf("fig9: delta metadata share %.1f%%, want small", deltaPct)
	}
	for name, pct := range map[string]float64{"scuttlebutt": sbPct, "scuttlebutt-gc": gcPct, "op-based": opPct} {
		if pct < 50 {
			t.Errorf("fig9: %s metadata share %.1f%%, want dominant (>50%%)", name, pct)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 sweep is slow")
	}
	tab := Fig10(TestConfig())
	state := rowIdx(t, tab, "state-based")
	classic := rowIdx(t, tab, "delta-classic")
	sb := rowIdx(t, tab, "scuttlebutt")
	gsetCol := 2
	// State-based needs no sync metadata: at or below BP+RR.
	if s := cell(t, tab, state, gsetCol); s > 1.05 {
		t.Errorf("fig10 gset: state-based memory ratio %.2f, want ≤ 1", s)
	}
	// Classic delta stores larger δ-groups: above BP+RR.
	if c := cell(t, tab, classic, gsetCol); c < 1.0 {
		t.Errorf("fig10 gset: classic memory ratio %.2f, want ≥ 1", c)
	}
	// Plain Scuttlebutt never prunes: clearly above BP+RR.
	if s := cell(t, tab, sb, gsetCol); s < 1.0 {
		t.Errorf("fig10 gset: scuttlebutt memory ratio %.2f, want > 1", s)
	}
}

func TestRetwisSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("retwis sweep is slow")
	}
	cfg := TestConfig()
	points := RetwisSweep(cfg)
	byKey := make(map[string]RetwisPoint)
	for _, p := range points {
		byKey[p.Protocol+"/"+strconvF(p.Zipf)] = p
		if !p.Converged {
			t.Errorf("retwis %s zipf=%.2f did not converge", p.Protocol, p.Zipf)
		}
	}
	// High contention: classic transmits much more than BP+RR in the
	// second half.
	hiClassic := byKey["delta-classic/1.50"]
	hiBPRR := byKey["delta-bp+rr/1.50"]
	if hiClassic.BytesPerNodeSecond < 1.5*hiBPRR.BytesPerNodeSecond {
		t.Errorf("retwis zipf=1.5: classic tx/node %.0f vs bp+rr %.0f, want classic ≫",
			hiClassic.BytesPerNodeSecond, hiBPRR.BytesPerNodeSecond)
	}
	// Low contention: classic is close to BP+RR (within 2×).
	loClassic := byKey["delta-classic/0.50"]
	loBPRR := byKey["delta-bp+rr/0.50"]
	if loBPRR.BytesPerNodeSecond > 0 && loClassic.BytesPerNodeSecond > 2.5*loBPRR.BytesPerNodeSecond {
		t.Errorf("retwis zipf=0.5: classic tx/node %.0f vs bp+rr %.0f, want near-equal",
			loClassic.BytesPerNodeSecond, loBPRR.BytesPerNodeSecond)
	}
	// Render both figures without error.
	Fig11From(points)
	Fig12From(points)
}

func strconvF(f float64) string { return strconv.FormatFloat(f, 'f', 2, 64) }

func TestTableII(t *testing.T) {
	cfg := TestConfig()
	cfg.RetwisRounds = 40
	tab := TableII(cfg)
	follow := cell(t, tab, 0, 2)
	post := cell(t, tab, 1, 2)
	timeline := cell(t, tab, 2, 2)
	if follow < 10 || follow > 20 {
		t.Errorf("tab2: follow share %.0f%%, want ≈15%%", follow)
	}
	if post < 30 || post > 40 {
		t.Errorf("tab2: post share %.0f%%, want ≈35%%", post)
	}
	if timeline < 45 || timeline > 55 {
		t.Errorf("tab2: timeline share %.0f%%, want ≈50%%", timeline)
	}
	// Follow performs exactly 1 update.
	if u := cell(t, tab, 0, 1); u != 1 {
		t.Errorf("tab2: follow updates %.2f, want 1", u)
	}
	// Post performs at least 1 update (1 + #followers).
	if u := cell(t, tab, 1, 1); u < 1 {
		t.Errorf("tab2: post updates %.2f, want ≥ 1", u)
	}
}
