package exp

import (
	"fmt"

	"crdtsync/internal/retwis"
)

// TableI reproduces Table I: the micro-benchmark catalog — one row per
// CRDT with its periodic update event and the measurement metric.
func TableI() *Table {
	return &Table{
		ID:     "tab1",
		Title:  "micro-benchmark description",
		Header: []string{"type", "periodic event", "measurement"},
		Rows: [][]string{
			{"GCounter", "single increment", "number of entries in the map"},
			{"GSet", "addition of unique element", "number of elements in the set"},
			{"GMap K%", "change the value of K/N% keys", "number of entries in the map"},
		},
	}
}

// TableII reproduces Table II by measurement: it generates a Retwis
// workload and reports, per operation, the mean number of CRDT updates
// performed and the share of the workload. Expected: Follow = 1 update at
// 15 %, Post Tweet = 1 + #Followers updates at 35 %, Timeline = 0 updates
// at 50 %.
func TableII(cfg Config) *Table {
	gen := retwis.NewGen(cfg.RetwisUsers, cfg.RetwisOpsPerRound, 1.0, cfg.Seed)
	// Generate the workload all nodes would produce.
	for r := 0; r < cfg.RetwisRounds; r++ {
		for n := 0; n < cfg.RetwisNodes; n++ {
			gen.Ops(r, itoa(n), n, cfg.RetwisNodes)
		}
	}
	s := gen.Stats()
	total := float64(s.TotalOps())
	pct := func(n int) string { return fmt.Sprintf("%.0f%%", 100*float64(n)/total) }
	avg := func(updates, ops int) string {
		if ops == 0 {
			return "0"
		}
		return fmt.Sprintf("%.2f", float64(updates)/float64(ops))
	}
	return &Table{
		ID:     "tab2",
		Title:  "Retwis workload characterization (measured)",
		Header: []string{"operation", "mean #updates", "workload %"},
		Rows: [][]string{
			{"Follow", avg(s.FollowUpdates, s.Follows), pct(s.Follows)},
			{"Post Tweet", avg(s.PostUpdates, s.Posts), pct(s.Posts)},
			{"Timeline", "0", pct(s.Timelines)},
		},
	}
}
