package exp

import (
	"crdtsync/internal/protocol"
	"fmt"
	"time"

	"crdtsync/internal/netsim"
	"crdtsync/internal/retwis"
)

// RetwisPoint is the outcome of one (zipf coefficient, protocol) run of the
// Retwis macro-benchmark.
type RetwisPoint struct {
	Zipf     float64
	Protocol string
	// BytesPerNodeFirst/Second are transmission bytes per node per round
	// in each half of the experiment (the paper reports GB/s per node for
	// each half).
	BytesPerNodeFirst, BytesPerNodeSecond float64
	// MemPerNodeFirst/Second are the average memory footprints per node
	// in each half.
	MemPerNodeFirst, MemPerNodeSecond float64
	// CPU is the accumulated processing time across all nodes.
	CPU time.Duration
	// Converged reports whether the run reached convergence.
	Converged bool
}

// RetwisSweep runs the Retwis workload (§V-C) for every Zipf coefficient
// with classic delta-based and delta-based BP+RR, on the 50-node partial
// mesh, measuring transmission, memory and CPU.
func RetwisSweep(cfg Config) []RetwisPoint {
	topo := cfg.mesh(cfg.RetwisNodes)
	// The paper replicates 30k objects, each an independent CRDT with its
	// own δ-buffer; NewPerObject reproduces that deployment model, which
	// is what makes classic delta-based near-optimal at low contention.
	protos := []Proto{
		{"delta-classic", protocol.NewPerObject(protocol.NewDeltaClassic(), retwis.ObjectDatatype)},
		{"delta-bp+rr", protocol.NewPerObject(protocol.NewDeltaBPRR(), retwis.ObjectDatatype)},
	}
	var out []RetwisPoint
	for _, z := range cfg.ZipfCoeffs {
		for _, p := range protos {
			gen := retwis.NewGen(cfg.RetwisUsers, cfg.RetwisOpsPerRound, z, cfg.Seed)
			opts := netsim.Options{Seed: cfg.Seed, MeasureCPU: true}
			res := run(topo, p.Factory, retwis.StoreType{}, gen, cfg.RetwisRounds, cfg.QuietRounds, opts)
			out = append(out, retwisPoint(z, p.Name, cfg, res))
		}
	}
	return out
}

func retwisPoint(z float64, name string, cfg Config, res runResult) RetwisPoint {
	pt := RetwisPoint{Zipf: z, Protocol: name, CPU: res.CPUTotal, Converged: res.Converged}
	half := cfg.RetwisRounds / 2
	if half == 0 {
		half = 1
	}
	sum := func(s []int, from, to int) float64 {
		total := 0.0
		for i := from; i < to && i < len(s); i++ {
			total += float64(s[i])
		}
		return total
	}
	n := float64(res.Nodes)
	pt.BytesPerNodeFirst = sum(res.RoundBytes, 0, half) / (n * float64(half))
	rest := cfg.RetwisRounds - half
	if rest == 0 {
		rest = 1
	}
	pt.BytesPerNodeSecond = sum(res.RoundBytes, half, cfg.RetwisRounds) / (n * float64(rest))
	// Memory halves: average the per-round totals of each node.
	memHalf := func(from, to int) float64 {
		total, count := 0.0, 0
		for _, samples := range res.MemSamples {
			for i := from; i < to && i < len(samples); i++ {
				total += float64(samples[i].Total())
				count++
			}
		}
		if count == 0 {
			return 0
		}
		return total / float64(count)
	}
	pt.MemPerNodeFirst = memHalf(0, half)
	pt.MemPerNodeSecond = memHalf(half, cfg.RetwisRounds)
	return pt
}

// Fig11From renders Figure 11 from a sweep: transmission bandwidth per
// node (top) and average memory per node (bottom) of classic delta-based
// and BP+RR for the Zipf coefficient sweep, split into experiment halves.
// Expected shape: at low contention classic ≈ BP+RR; as contention grows
// classic's bandwidth and memory blow up while BP+RR stays bounded.
func Fig11From(points []RetwisPoint) *Table {
	t := &Table{
		ID:    "fig11",
		Title: "Retwis: transmission and memory per node vs Zipf coefficient (halves)",
		Header: []string{
			"zipf", "protocol",
			"tx/node 1st half", "tx/node 2nd half",
			"mem/node 1st half", "mem/node 2nd half",
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", pt.Zipf),
			pt.Protocol,
			fmtBytes(pt.BytesPerNodeFirst),
			fmtBytes(pt.BytesPerNodeSecond),
			fmtBytes(pt.MemPerNodeFirst),
			fmtBytes(pt.MemPerNodeSecond),
		})
	}
	return t
}

// Fig12From renders Figure 12 from a sweep: the CPU overhead of classic
// delta-based with respect to delta-based BP+RR, per Zipf coefficient.
// The paper reports overheads of 0.4×, 5.5× and 7.9× for coefficients
// 1, 1.25 and 1.5.
func Fig12From(points []RetwisPoint) *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Retwis: CPU overhead of classic delta-based vs BP+RR",
		Header: []string{"zipf", "classic CPU", "bp+rr CPU", "overhead (classic/bprr - 1)"},
	}
	byZipf := make(map[float64]map[string]RetwisPoint)
	var order []float64
	for _, pt := range points {
		if _, ok := byZipf[pt.Zipf]; !ok {
			byZipf[pt.Zipf] = make(map[string]RetwisPoint)
			order = append(order, pt.Zipf)
		}
		byZipf[pt.Zipf][pt.Protocol] = pt
	}
	for _, z := range order {
		classic := byZipf[z]["delta-classic"]
		bprr := byZipf[z]["delta-bp+rr"]
		overhead := "n/a"
		if bprr.CPU > 0 {
			overhead = fmt.Sprintf("%.1fx", float64(classic.CPU)/float64(bprr.CPU)-1)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", z),
			classic.CPU.String(),
			bprr.CPU.String(),
			overhead,
		})
	}
	return t
}

// Fig11 runs the sweep and renders Figure 11.
func Fig11(cfg Config) *Table { return Fig11From(RetwisSweep(cfg)) }

// Fig12 runs the sweep and renders Figure 12.
func Fig12(cfg Config) *Table { return Fig12From(RetwisSweep(cfg)) }
