package exp

import (
	"strconv"

	"crdtsync/internal/netsim"
	"crdtsync/internal/workload"
)

// simOpts builds the simulator options for an experiment run.
func simOpts(cfg Config, measureCPU bool) netsim.Options {
	return netsim.Options{Seed: cfg.Seed, MeasureCPU: measureCPU}
}

func itoa(i int) string { return strconv.Itoa(i) }

// Fig1 reproduces Figure 1: 15 nodes in a partial mesh replicating an
// always-growing set. The left columns give the number of elements sent
// per round for state-based vs classic delta-based synchronization; the
// last rows give totals and classic delta-based's CPU processing time
// ratio with respect to state-based. The paper's observation: classic
// delta-based is no better than state-based in transmission and costs
// more CPU.
func Fig1(cfg Config) *Table {
	topo := cfg.mesh(cfg.Nodes)
	gen := workload.GSetGen{}
	dt := workload.GSetType{}

	state := run(topo, Roster()[0].Factory, dt, gen, cfg.Rounds, cfg.QuietRounds, simOpts(cfg, true))
	classic := run(topo, Roster()[1].Factory, dt, gen, cfg.Rounds, cfg.QuietRounds, simOpts(cfg, true))

	t := &Table{
		ID:     "fig1",
		Title:  "GSet on partial mesh: elements sent per round + CPU ratio vs state-based",
		Header: []string{"round", "state-based elems", "classic-delta elems", "classic/state (cum)"},
	}
	maxLen := len(state.RoundElements)
	if len(classic.RoundElements) > maxLen {
		maxLen = len(classic.RoundElements)
	}
	at := func(s []int, i int) int {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	step := maxLen / 10
	if step == 0 {
		step = 1
	}
	stateCum, classicCum := 0, 0
	for i := 0; i < maxLen; i++ {
		stateCum += at(state.RoundElements, i)
		classicCum += at(classic.RoundElements, i)
		if (i+1)%step == 0 || i == maxLen-1 {
			t.Rows = append(t.Rows, []string{
				itoa(i + 1),
				itoa(at(state.RoundElements, i)),
				itoa(at(classic.RoundElements, i)),
				ratio(float64(classicCum), float64(stateCum)),
			})
		}
	}
	t.Rows = append(t.Rows, []string{
		"TOTAL",
		itoa(state.Sent.Elements),
		itoa(classic.Sent.Elements),
		ratio(float64(classic.Sent.Elements), float64(state.Sent.Elements)),
	})
	t.Rows = append(t.Rows, []string{
		"CPU",
		state.CPUTotal.String(),
		classic.CPUTotal.String(),
		ratio(float64(classic.CPUTotal), float64(state.CPUTotal)),
	})
	return t
}
