package exp

import "crdtsync/internal/workload"

// Fig10 reproduces Figure 10: average memory ratio with respect to
// delta-based BP+RR for GCounter, GSet, GMap 10% and GMap 100% on the mesh
// topology. Expected shape (paper §V-B3): state-based is memory-optimal
// (no synchronization metadata); classic delta and delta-BP hold 1.1–3.9×
// more than BP+RR because their δ-buffers store larger groups; plain
// Scuttlebutt only grows (key-delta pairs are never pruned); the
// vector-based protocols are worst for GCounter.
func Fig10(cfg Config) *Table {
	mesh := cfg.mesh(cfg.Nodes)
	cases := []microCase{
		{"gcounter", mesh, workload.GCounterType{}, workload.GCounterGen{}},
		{"gset", mesh, workload.GSetType{}, workload.GSetGen{}},
		{"gmap10", mesh, workload.GMapType{}, workload.GMapGen{K: 10, TotalKeys: cfg.GMapKeys}},
		{"gmap100", mesh, workload.GMapType{}, workload.GMapGen{K: 100, TotalKeys: cfg.GMapKeys}},
	}
	t := &Table{
		ID:     "fig10",
		Title:  "average memory ratio vs delta-BP+RR (mesh topology)",
		Header: append([]string{"protocol"}, labels(cases)...),
	}
	base := make([]float64, len(cases))
	bprr := Roster()[4]
	for i, c := range cases {
		res := run(c.topo, bprr.Factory, c.dt, c.gen, cfg.Rounds, cfg.QuietRounds, simOpts(cfg, false))
		base[i] = res.AvgMemory
	}
	for _, p := range Roster() {
		row := []string{p.Name}
		for i, c := range cases {
			if p.Name == "delta-bp+rr" {
				row = append(row, "1.00")
				continue
			}
			res := run(c.topo, p.Factory, c.dt, c.gen, cfg.Rounds, cfg.QuietRounds, simOpts(cfg, false))
			row = append(row, ratio(res.AvgMemory, base[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
