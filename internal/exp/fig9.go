package exp

import (
	"fmt"

	"crdtsync/internal/netsim"
	"crdtsync/internal/workload"
)

// Fig9 reproduces Figure 9: synchronization metadata per node for a GSet in
// a mesh topology while varying the total number of nodes, with 20-byte
// node identifiers. Expected shape (paper §V-B2): delta-based metadata is
// constant in N (one sequence number per neighbor, P), op-based grows with
// N·P·U, Scuttlebutt with N·P, and Scuttlebutt-GC with N²·P. The last
// column reports metadata as a fraction of all bytes transmitted — over
// 75 % for the vector-based protocols at 32 nodes, versus single digits
// for delta-based.
func Fig9(cfg Config) *Table {
	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("metadata per node, GSet on mesh, %dB ids", cfg.MetadataIDBytes),
		Header: []string{"protocol", "nodes", "metadata/node", "metadata %% of total"},
	}
	protos := []Proto{Roster()[4], Roster()[5], Roster()[6], Roster()[7]} // bp+rr, sb, sb-gc, op
	for _, p := range protos {
		for _, n := range cfg.MetadataNodeCounts {
			topo := cfg.mesh(n)
			opts := netsim.Options{Seed: cfg.Seed, IDBytes: cfg.MetadataIDBytes}
			res := run(topo, p.Factory, workload.GSetType{}, workload.GSetGen{}, cfg.Rounds, cfg.QuietRounds, opts)
			perNode := float64(res.Sent.MetadataBytes) / float64(n)
			pct := 100 * float64(res.Sent.MetadataBytes) / float64(res.Sent.TotalBytes())
			t.Rows = append(t.Rows, []string{
				p.Name,
				itoa(n),
				fmtBytes(perNode),
				fmt.Sprintf("%.1f%%", pct),
			})
		}
	}
	return t
}
