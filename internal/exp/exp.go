// Package exp contains one runner per table and figure of the paper's
// evaluation (§V). Each runner executes the corresponding experiment on
// the netsim substrate and returns a Table whose rows mirror what the
// paper plots, so the repository regenerates every figure as text series.
//
// Absolute numbers differ from the paper's Emulab cluster (our substrate is
// a simulator), but the shapes — who wins, by what factor, where the
// crossovers fall — are preserved; EXPERIMENTS.md records the comparison.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"crdtsync/internal/metrics"
	"crdtsync/internal/netsim"
	"crdtsync/internal/protocol"
	"crdtsync/internal/topology"
	"crdtsync/internal/workload"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintln(w, line(t.Header))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Config scales every experiment. DefaultConfig matches the paper's setup;
// TestConfig shrinks it for fast CI runs.
type Config struct {
	// Nodes is the micro-benchmark cluster size (paper: 15).
	Nodes int
	// MeshDegree is the partial-mesh degree (paper: 4).
	MeshDegree int
	// TreeChildren is the tree fan-out (paper: 2, i.e. ≤3 neighbors).
	TreeChildren int
	// Rounds is the number of update events per replica (paper: 100).
	Rounds int
	// QuietRounds bounds post-workload convergence rounds.
	QuietRounds int
	// GMapKeys is the GMap key-space size (paper: 1000).
	GMapKeys int
	// MetadataNodeCounts is the cluster-size sweep of Figure 9.
	MetadataNodeCounts []int
	// MetadataIDBytes is the node-id accounting size of Figure 9
	// (paper: 20 bytes).
	MetadataIDBytes int
	// RetwisNodes is the macro-benchmark cluster size (paper: 50).
	RetwisNodes int
	// RetwisUsers is the user count (paper: 10 000).
	RetwisUsers int
	// RetwisRounds is the number of synchronization rounds of the macro
	// benchmark.
	RetwisRounds int
	// RetwisOpsPerRound is the number of user actions per node per round.
	RetwisOpsPerRound int
	// ZipfCoeffs is the contention sweep (paper: 0.5–1.5).
	ZipfCoeffs []float64
	// Seed fixes all randomness.
	Seed int64
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Nodes:              15,
		MeshDegree:         4,
		TreeChildren:       2,
		Rounds:             100,
		QuietRounds:        60,
		GMapKeys:           1000,
		MetadataNodeCounts: []int{8, 16, 32, 64},
		MetadataIDBytes:    20,
		// The paper's Retwis runs 50 nodes × 10k users; classic
		// delta-based at Zipf 1.5 then needs tens of GB of δ-buffers
		// (that blow-up is the paper's point). 30 × 5k keeps the sweep
		// within a 16 GB machine while preserving every trend.
		RetwisNodes:       30,
		RetwisUsers:       5000,
		RetwisRounds:      30,
		RetwisOpsPerRound: 8,
		ZipfCoeffs:        []float64{0.5, 0.75, 1.0, 1.25, 1.5},
		Seed:              42,
	}
}

// TestConfig returns a reduced configuration for fast test runs.
func TestConfig() Config {
	return Config{
		Nodes:              15,
		MeshDegree:         4,
		TreeChildren:       2,
		Rounds:             30,
		QuietRounds:        40,
		GMapKeys:           200,
		MetadataNodeCounts: []int{8, 16},
		MetadataIDBytes:    20,
		RetwisNodes:        10,
		RetwisUsers:        300,
		RetwisRounds:       12,
		RetwisOpsPerRound:  5,
		ZipfCoeffs:         []float64{0.5, 1.0, 1.5},
		Seed:               42,
	}
}

// Proto pairs a display name with a protocol factory, fixing the roster
// and ordering used across the figures.
type Proto struct {
	Name    string
	Factory protocol.Factory
}

// Roster returns every synchronization mechanism of the evaluation, in the
// paper's presentation order.
func Roster() []Proto {
	return []Proto{
		{"state-based", protocol.NewStateBased()},
		{"delta-classic", protocol.NewDeltaClassic()},
		{"delta-bp", protocol.NewDeltaBased(true, false)},
		{"delta-rr", protocol.NewDeltaBased(false, true)},
		{"delta-bp+rr", protocol.NewDeltaBPRR()},
		{"scuttlebutt", protocol.NewScuttlebutt()},
		{"scuttlebutt-gc", protocol.NewScuttlebuttGC()},
		{"op-based", protocol.NewOpBased()},
	}
}

// WorkloadByName maps the command-line workload names to a datatype and
// its paper generator: "gset", "gcounter", or "gmapK" for K in
// {10, 30, 60, 100} (keys sizes the gmap key space). Simulation front
// ends (crdtsim, the examples) use it so the workload vocabulary lives
// in one place and they need not touch internal/workload.
func WorkloadByName(name string, keys int) (workload.Datatype, workload.Generator, error) {
	switch name {
	case "gset":
		return workload.GSetType{}, workload.GSetGen{}, nil
	case "gcounter":
		return workload.GCounterType{}, workload.GCounterGen{}, nil
	case "gmap10", "gmap30", "gmap60", "gmap100":
		k := map[string]int{"gmap10": 10, "gmap30": 30, "gmap60": 60, "gmap100": 100}[name]
		return workload.GMapType{}, workload.GMapGen{K: k, TotalKeys: keys}, nil
	default:
		return nil, nil, fmt.Errorf("exp: unknown workload %q (want gset, gcounter, or gmap10/30/60/100)", name)
	}
}

// mesh builds the partial-mesh topology for n nodes.
func (c Config) mesh(n int) *topology.Graph {
	return topology.PartialMesh(n, c.MeshDegree, c.Seed)
}

// tree builds the tree topology for n nodes.
func (c Config) tree(n int) *topology.Graph {
	return topology.Tree(n, c.TreeChildren)
}

// runResult is the outcome of one simulated run.
type runResult struct {
	Sent          metrics.Transmission
	RoundElements []int
	RoundBytes    []int
	AvgMemory     float64
	AvgSyncMemory float64
	CPUPerNode    map[string]time.Duration
	CPUTotal      time.Duration
	Converged     bool
	Nodes         int
	MemSamples    map[string][]metrics.Memory
}

// run executes one micro-benchmark simulation to convergence.
func run(topo *topology.Graph, f protocol.Factory, dt workload.Datatype, gen workload.Generator, rounds, quiet int, opts netsim.Options) runResult {
	sim := netsim.New(topo, f, dt, opts)
	sim.Run(rounds, gen)
	_, converged := sim.RunQuiet(quiet)
	col := sim.Collector()
	res := runResult{
		Sent:          col.TotalSent(),
		RoundElements: append([]int(nil), col.RoundElements()...),
		RoundBytes:    append([]int(nil), col.RoundBytes()...),
		AvgMemory:     col.AvgMemoryPerNode(),
		AvgSyncMemory: col.AvgSyncMemoryPerNode(),
		CPUTotal:      col.TotalCPU(),
		Converged:     converged,
		Nodes:         topo.NumNodes(),
		CPUPerNode:    make(map[string]time.Duration),
		MemSamples:    make(map[string][]metrics.Memory),
	}
	for _, id := range col.NodeIDs() {
		res.CPUPerNode[id] = col.Node(id).CPU
		res.MemSamples[id] = col.Node(id).MemorySamples()
	}
	return res
}

// ratio formats a/b with two decimals, guarding zero denominators.
func ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", a/b)
}

// fmtBytes renders a byte count with a human unit.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
