package protocol

import (
	"sort"

	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/vclock"
	"crdtsync/internal/workload"
)

// SBDigestMsg is a Scuttlebutt reconciliation request: the sender's summary
// vector, plus (Scuttlebutt-GC only) the matrix of last-seen summary
// vectors used for safe delta deletion.
type SBDigestMsg struct {
	Vec    *vclock.VClock
	Matrix map[string]*vclock.VClock // nil for plain Scuttlebutt
	cost   metrics.Transmission
}

// Kind implements Msg.
func (m *SBDigestMsg) Kind() string { return "sb-digest" }

// Cost implements Msg.
func (m *SBDigestMsg) Cost() metrics.Transmission { return m.cost }

// SBItem is one key-delta pair of the Scuttlebutt store: the version pair
// ⟨i, s⟩ as key and the optimal delta produced by the original δ-mutator as
// value.
type SBItem struct {
	Dot   vclock.Dot
	Delta lattice.State
}

// SBDeltasMsg is a Scuttlebutt reconciliation reply: all key-delta pairs
// the replier holds that the requester's summary vector does not cover.
type SBDeltasMsg struct {
	Items []SBItem
	cost  metrics.Transmission
}

// Kind implements Msg.
func (m *SBDeltasMsg) Kind() string { return "sb-deltas" }

// Cost implements Msg.
func (m *SBDeltasMsg) Cost() metrics.Transmission { return m.cost }

// scuttlebutt implements the Scuttlebutt anti-entropy baseline of §V-B:
// values are the optimal deltas of δ-mutators, keys are version pairs, and
// reconciliation exchanges a summary vector followed by the uncovered
// key-delta pairs. The original protocol never deletes store entries; the
// GC variant tracks what every node has seen (a map of summary vectors,
// gossiped inside digests) and deletes deltas seen by all nodes.
type scuttlebutt struct {
	cfg   Config
	gc    bool
	x     lattice.State
	seq   uint64
	store map[vclock.Dot]lattice.State
	// known summarizes contiguously known dots per actor.
	known *vclock.VClock
	// seen maps node id → last known summary vector of that node
	// (GC variant only; seen[self] is the live known vector).
	seen map[string]*vclock.VClock
}

// NewScuttlebutt returns the plain Scuttlebutt engine factory.
func NewScuttlebutt() Factory { return newScuttlebutt(false) }

// NewScuttlebuttGC returns the garbage-collecting Scuttlebutt-GC factory.
func NewScuttlebuttGC() Factory { return newScuttlebutt(true) }

func newScuttlebutt(gc bool) Factory {
	return func(cfg Config) Engine {
		e := &scuttlebutt{
			cfg:   cfg,
			gc:    gc,
			x:     cfg.Datatype.New(),
			store: make(map[vclock.Dot]lattice.State),
			known: vclock.New(),
		}
		if gc {
			e.seen = make(map[string]*vclock.VClock)
			for _, n := range cfg.Nodes {
				if n == cfg.ID {
					e.seen[n] = e.known
				} else {
					e.seen[n] = vclock.New()
				}
			}
		}
		return e
	}
}

func (e *scuttlebutt) ID() string           { return e.cfg.ID }
func (e *scuttlebutt) State() lattice.State { return e.x }

func (e *scuttlebutt) LocalOp(op workload.Op) {
	d := e.cfg.Datatype.Delta(e.x, e.cfg.ID, op)
	if d.IsBottom() {
		return
	}
	e.x.Merge(d)
	e.seq++
	dot := vclock.Dot{Actor: e.cfg.ID, Seq: e.seq}
	e.store[dot] = d
	e.known.Set(e.cfg.ID, e.seq)
}

func (e *scuttlebutt) Sync(send Sender) {
	for _, j := range e.cfg.Neighbors {
		msg := &SBDigestMsg{Vec: e.known.Clone()}
		// The summary vector is itself a map of N entries; it counts
		// against the paper's "entries transmitted" metric, which is why
		// Scuttlebutt loses to state-based on GCounter (§V-B1).
		meta := e.cfg.vectorBytes()
		elems := len(e.cfg.Nodes)
		if e.gc {
			msg.Matrix = make(map[string]*vclock.VClock, len(e.seen))
			for n, v := range e.seen {
				msg.Matrix[n] = v.Clone()
			}
			// A map of N vectors: the paper's N²P metadata cost.
			meta += len(e.cfg.Nodes) * e.cfg.vectorBytes()
			elems += len(e.cfg.Nodes) * len(e.cfg.Nodes)
		}
		msg.cost = metrics.Transmission{Messages: 1, Elements: elems, MetadataBytes: meta}
		send(j, msg)
	}
}

func (e *scuttlebutt) Deliver(from string, m Msg, send Sender) {
	switch msg := m.(type) {
	case *SBDigestMsg:
		e.deliverDigest(from, msg, send)
	case *SBDeltasMsg:
		e.deliverDeltas(msg)
	}
}

func (e *scuttlebutt) deliverDigest(from string, msg *SBDigestMsg, send Sender) {
	if e.gc {
		// Track what the sender (and, transitively, everyone it heard
		// about) has seen, then drop deltas seen by all nodes.
		for n, v := range msg.Matrix {
			if n == e.cfg.ID {
				continue // our own entry is the live known vector
			}
			cur, ok := e.seen[n]
			if !ok {
				cur = vclock.New()
				e.seen[n] = cur
			}
			cur.Merge(v)
		}
		if cur, ok := e.seen[from]; ok && from != e.cfg.ID {
			cur.Merge(msg.Vec)
		}
		e.collectGarbage()
	}
	// Reply with every key-delta pair the requester does not cover,
	// in (actor, seq) order so the receiver advances contiguously.
	items := make([]SBItem, 0)
	for dot, d := range e.store {
		if !msg.Vec.Contains(dot) {
			items = append(items, SBItem{Dot: dot, Delta: d.Clone()})
		}
	}
	if len(items) == 0 {
		return
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Dot.Actor != items[j].Dot.Actor {
			return items[i].Dot.Actor < items[j].Dot.Actor
		}
		return items[i].Dot.Seq < items[j].Dot.Seq
	})
	cost := metrics.Transmission{Messages: 1}
	for _, it := range items {
		cost.Elements += it.Delta.Elements()
		cost.PayloadBytes += it.Delta.SizeBytes()
		cost.MetadataBytes += e.cfg.idBytes() + 8 // the version pair
	}
	send(from, &SBDeltasMsg{Items: items, cost: cost})
}

func (e *scuttlebutt) deliverDeltas(msg *SBDeltasMsg) {
	for _, it := range msg.Items {
		if e.known.Contains(it.Dot) {
			continue
		}
		if _, ok := e.store[it.Dot]; ok {
			continue
		}
		e.store[it.Dot] = it.Delta.Clone()
		e.x.Merge(it.Delta)
		e.advance(it.Dot.Actor)
	}
	if e.gc {
		e.collectGarbage()
	}
}

// advance extends the contiguous summary for actor as far as the store
// allows.
func (e *scuttlebutt) advance(actor string) {
	for {
		next := vclock.Dot{Actor: actor, Seq: e.known.Get(actor) + 1}
		if _, ok := e.store[next]; !ok {
			return
		}
		e.known.Set(actor, next.Seq)
	}
}

// collectGarbage deletes store entries seen by every node in the
// membership, the safe-delete rule of Scuttlebutt-GC.
func (e *scuttlebutt) collectGarbage() {
	for dot := range e.store {
		seenByAll := true
		for _, n := range e.cfg.Nodes {
			if !e.seen[n].Contains(dot) {
				seenByAll = false
				break
			}
		}
		if seenByAll {
			delete(e.store, dot)
		}
	}
}

func (e *scuttlebutt) Memory() metrics.Memory {
	buf := 0
	for _, d := range e.store {
		buf += d.SizeBytes() + e.cfg.idBytes() + 8
	}
	meta := e.cfg.vectorBytes()
	if e.gc {
		meta += len(e.cfg.Nodes) * e.cfg.vectorBytes()
	}
	return metrics.Memory{
		CRDTBytes:     e.x.SizeBytes(),
		BufferBytes:   buf,
		MetadataBytes: meta,
	}
}
