package protocol

import (
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/workload"
)

// StateMsg carries a full CRDT state (state-based synchronization).
type StateMsg struct {
	State lattice.State
	cost  metrics.Transmission
}

// Kind implements Msg.
func (m *StateMsg) Kind() string { return "state" }

// Cost implements Msg.
func (m *StateMsg) Cost() metrics.Transmission { return m.cost }

// stateBased is the classic state-based synchronization baseline: the full
// local state is periodically shipped to every neighbor and joined on
// receipt. It needs no synchronization metadata at all, which is why the
// paper reports it as memory-optimal (Figure 10) yet transmission-heavy.
type stateBased struct {
	cfg Config
	x   lattice.State
}

// NewStateBased returns the state-based engine factory.
func NewStateBased() Factory {
	return func(cfg Config) Engine {
		return &stateBased{cfg: cfg, x: cfg.Datatype.New()}
	}
}

func (e *stateBased) ID() string           { return e.cfg.ID }
func (e *stateBased) State() lattice.State { return e.x }

func (e *stateBased) LocalOp(op workload.Op) {
	d := e.cfg.Datatype.Delta(e.x, e.cfg.ID, op)
	e.x.Merge(d)
}

func (e *stateBased) Sync(send Sender) {
	if e.x.IsBottom() {
		return
	}
	for _, j := range e.cfg.Neighbors {
		send(j, &StateMsg{State: e.x.Clone(), cost: stateCost(e.x, 0)})
	}
}

func (e *stateBased) Deliver(_ string, m Msg, _ Sender) {
	sm, ok := m.(*StateMsg)
	if !ok {
		return
	}
	e.x.Merge(sm.State)
}

func (e *stateBased) Memory() metrics.Memory {
	return metrics.Memory{CRDTBytes: e.x.SizeBytes()}
}
