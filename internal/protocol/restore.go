package protocol

import "crdtsync/internal/lattice"

// This file is the protocol side of crash-restart durability: how a
// snapshot's states re-enter the engines on startup. Restoring is not
// delivering — a delivered δ-group is buffered for onward propagation,
// which on restart would re-ship the entire restored keyspace to peers
// that already hold it. Restore merges state and nothing else; the
// divergence a stale snapshot leaves behind (in either direction) is
// exactly what the store's digest anti-entropy and Merkle drill-down
// repair, so no new wire protocol is involved.

// Restorer is implemented by engines that can adopt persisted state on
// startup. Restore joins st into the local state without buffering it,
// assigning sequence numbers, or creating ack obligations.
type Restorer interface {
	Restore(st lattice.State)
}

// ObjectRestorer is the keyed counterpart for multi-object engines: one
// (key, state) record from a snapshot file, adopted quiescently.
type ObjectRestorer interface {
	RestoreObject(key string, st lattice.State)
}

// Restore implements Restorer: the snapshot state joins the local state
// directly, bypassing the δ-buffer.
func (e *deltaBased) Restore(st lattice.State) { e.x.Merge(st) }

// Restore implements Restorer: the snapshot state joins the local state
// directly, bypassing the acked buffer and its sequence space.
func (e *deltaAcked) Restore(st lattice.State) { e.x.Merge(st) }

// dropSender swallows replies an engine emits during a fallback restore
// delivery; there is no peer to reply to at startup.
var dropSender Sender = func(string, Msg) {}

// RestoreObject implements ObjectRestorer. The object's engine is
// created on demand (datatype from the key, as everywhere) and restored
// through its Restorer when it has one. Restored keys are deliberately
// not marked active: a freshly restored store has nothing new to say,
// and leaving the keyspace quiescent keeps restart cost O(changed), not
// O(keyspace) — the same property Sync's active set provides in steady
// state.
func (e *perObject) RestoreObject(key string, st lattice.State) {
	eng := e.obj(key)
	if r, ok := eng.(Restorer); ok {
		r.Restore(st)
		return
	}
	// An engine without a restore path adopts the state as an inbound
	// full-state δ-group — correct (idempotent join) but buffered, so it
	// may be propagated once before acks or clears retire it.
	eng.Deliver("", NewDeltaMsg(st, stateCost(st, 0)), dropSender)
}
