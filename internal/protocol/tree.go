package protocol

import (
	"crdtsync/internal/metrics"
)

// Merkle drill-down geometry. A shard's keyspace is partitioned into
// TreeLeaves hash buckets; interior levels group them TreeFanout at a
// time, so level L has TreeFanout^L nodes and level TreeDepth is the leaf
// level. Both replicas must agree on the geometry — node indices are wire
// metadata, exactly like shard indices — so these are protocol constants,
// not configuration. (An adaptive fanout would need the geometry carried
// on the advertisement; a ROADMAP follow-up.)
const (
	// TreeFanoutBits is log2 of the tree fanout.
	TreeFanoutBits = 4
	// TreeFanout is the number of children per interior node.
	TreeFanout = 1 << TreeFanoutBits
	// TreeDepth is the leaf level: levels run 1..TreeDepth below the
	// per-shard root digest.
	TreeDepth = 3
	// TreeLeaves is the number of leaf buckets per shard.
	TreeLeaves = 1 << (TreeFanoutBits * TreeDepth)
)

// TreeNodesAt returns the node count at a level (level 0 is the root).
func TreeNodesAt(level int) int {
	return 1 << (TreeFanoutBits * level)
}

// TreeLeafSpan returns how many leaves one node at the given level covers.
func TreeLeafSpan(level int) uint32 {
	return 1 << (TreeFanoutBits * (TreeDepth - level))
}

// TreeMsg is one step of a Merkle drill-down repairing a single diverged
// shard: instead of pulling the whole shard on a root-digest mismatch,
// the requester walks the shard's hash tree level by level, exchanging
// interior-node hashes until it has isolated the diverged leaf ranges,
// and then pulls only those ranges. One message plays three roles,
// distinguished by which field is populated (all indices are node indices
// at Level):
//
//   - Query asks the receiver for its hashes of those nodes; the receiver
//     answers with a Nodes/Hashes message at the same level.
//   - Nodes/Hashes answer a query (parallel slices). The requester
//     compares them against its own node hashes and either queries the
//     differing nodes' children (Level+1) or, at the leaf level, sends a
//     Want.
//   - Want asks the receiver to ship the keys in those nodes' hash
//     ranges, in full, as per-key δ-groups — the range-limited form of
//     the full-shard repair ship.
//
// The exchange is log-depth: TreeDepth query/answer rounds, each carrying
// at most TreeFanout hashes per diverged node, then one range ship whose
// size is proportional to the diverged ranges — not to the shard.
type TreeMsg struct {
	Shard  uint32
	Level  uint8
	Query  []uint32
	Nodes  []uint32
	Hashes []uint64
	Want   []uint32
	cost   metrics.Transmission
}

// Kind implements Msg.
func (m *TreeMsg) Kind() string { return "tree" }

// Cost implements Msg.
func (m *TreeMsg) Cost() metrics.Transmission { return m.cost }

// NewTreeMsg builds a TreeMsg with explicit accounting. Nodes and Hashes
// must be the same length.
func NewTreeMsg(shard uint32, level uint8, query, nodes []uint32, hashes []uint64, want []uint32, cost metrics.Transmission) *TreeMsg {
	return &TreeMsg{Shard: shard, Level: level, Query: query, Nodes: nodes, Hashes: hashes, Want: want, cost: cost}
}

// TreeCost returns the standard accounting for a drill-down message: one
// message, 4 bytes per node index, 8 bytes per hash, plus the fixed
// shard/level header — all metadata, no payload.
func TreeCost(query, nodes []uint32, hashes []uint64, want []uint32) metrics.Transmission {
	return metrics.Transmission{
		Messages:      1,
		MetadataBytes: 5 + 4*(len(query)+len(nodes)+len(want)) + 8*len(hashes),
	}
}
