package protocol_test

import (
	"testing"

	"crdtsync/internal/crdt"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

func TestAckedDeltaBasicExchange(t *testing.T) {
	a, b := twoNodes(protocol.NewDeltaAcked(true, true), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	sent := pump(engines, "a")
	// One delta out, one ack back.
	kinds := map[string]int{}
	for _, m := range sent {
		kinds[m.Kind()]++
	}
	if kinds["delta-acked"] != 1 || kinds["ack"] != 1 {
		t.Fatalf("message kinds = %v, want 1 delta-acked + 1 ack", kinds)
	}
	if !b.State().(*crdt.GSet).Contains("x") {
		t.Error("delta not applied")
	}
	// Entry fully acked: buffer empty, nothing resent.
	if m := a.Memory(); m.BufferBytes != 0 {
		t.Errorf("acked entry not pruned: buffer=%d", m.BufferBytes)
	}
	if again := pump(engines, "a"); len(again) != 0 {
		t.Errorf("acked entry resent: %d messages", len(again))
	}
}

func TestAckedDeltaRetransmitsUntilAcked(t *testing.T) {
	a, b := twoNodes(protocol.NewDeltaAcked(true, true), workload.GSetType{})
	a.LocalOp(addOp("x"))

	// Simulate loss: run Sync but drop everything.
	a.Sync(func(string, protocol.Msg) {})
	if m := a.Memory(); m.BufferBytes == 0 {
		t.Fatal("entry pruned without any ack")
	}

	// Next round retransmits; deliver normally this time.
	engines := map[string]protocol.Engine{"a": a, "b": b}
	pump(engines, "a")
	if !b.State().(*crdt.GSet).Contains("x") {
		t.Error("retransmission did not deliver")
	}
	if m := a.Memory(); m.BufferBytes != 0 {
		t.Error("entry not pruned after ack")
	}
}

func TestAckedDeltaAcksRedundantGroups(t *testing.T) {
	// Even a fully redundant δ-group must be acknowledged, or the sender
	// would retransmit it forever.
	a, b := twoNodes(protocol.NewDeltaAcked(false, true), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	pump(engines, "a")
	// b now has x; make a buffer x again via b's back-propagation...
	// (no BP in this variant) and ensure no infinite ping-pong: run a
	// few rounds and check quiescence.
	for i := 0; i < 4; i++ {
		pump(engines, "b")
		pump(engines, "a")
	}
	if sent := pump(engines, "a"); len(sent) != 0 {
		t.Errorf("system did not quiesce: %d messages still flowing", len(sent))
	}
	if sent := pump(engines, "b"); len(sent) != 0 {
		t.Errorf("system did not quiesce: %d messages still flowing", len(sent))
	}
}

func TestAckedDeltaBPSkipsOriginAck(t *testing.T) {
	// With BP, an entry received from j never needs j's ack: it is
	// pruned once all other neighbors acknowledge.
	nodes := []string{"a", "b", "c"}
	f := protocol.NewDeltaAcked(true, false)
	engines := map[string]protocol.Engine{
		"a": f(protocol.Config{ID: "a", Neighbors: []string{"b"}, Nodes: nodes, Datatype: workload.GSetType{}}),
		"b": f(protocol.Config{ID: "b", Neighbors: []string{"a", "c"}, Nodes: nodes, Datatype: workload.GSetType{}}),
		"c": f(protocol.Config{ID: "c", Neighbors: []string{"b"}, Nodes: nodes, Datatype: workload.GSetType{}}),
	}
	engines["a"].LocalOp(addOp("x"))
	pump(engines, "a") // a→b, acked
	pump(engines, "b") // b→c only (BP skips a), acked by c
	if m := engines["b"].Memory(); m.BufferBytes != 0 {
		t.Errorf("b's entry should be pruned after c's ack alone (BP), buffer=%d", m.BufferBytes)
	}
	if !engines["c"].State().(*crdt.GSet).Contains("x") {
		t.Error("x did not reach c")
	}
}

func TestAckedDeltaMergesRepairDeltaMsg(t *testing.T) {
	// The store's digest anti-entropy ships full object states as plain
	// DeltaMsgs outside the acked sequence space. The engine must merge
	// what inflates and reply with nothing — there are no sequence
	// numbers to acknowledge.
	_, b := twoNodes(protocol.NewDeltaAcked(true, true), workload.GSetType{})
	full := crdt.NewGSet("r1", "r2")
	var replies []protocol.Msg
	b.Deliver("a", protocol.NewDeltaMsg(full, metrics.Transmission{Messages: 1}), func(_ string, m protocol.Msg) {
		replies = append(replies, m)
	})
	if len(replies) != 0 {
		t.Errorf("repair delta triggered %d replies, want none", len(replies))
	}
	s := b.State().(*crdt.GSet)
	if !s.Contains("r1") || !s.Contains("r2") {
		t.Error("repair delta not merged")
	}
	// With BP and "a" as the only neighbor there is nobody to propagate
	// the repair to: buffering it would leak, since nothing ever sends
	// (and so nothing ever acks and prunes) the entry.
	if m := b.Memory(); m.BufferBytes != 0 {
		t.Errorf("repair with no audience buffered anyway: %d bytes", m.BufferBytes)
	}
}

func TestAckedDeltaBuffersRepairForPropagation(t *testing.T) {
	// With a second neighbor the repair must be buffered and flow
	// onwards: under BP it is resent to every neighbor except its
	// origin, until acknowledged.
	f := protocol.NewDeltaAcked(true, true)
	nodes := []string{"a", "b", "c"}
	b := f(protocol.Config{ID: "b", Neighbors: []string{"a", "c"}, Nodes: nodes, Datatype: workload.GSetType{}})
	b.Deliver("a", protocol.NewDeltaMsg(crdt.NewGSet("r1"), metrics.Transmission{Messages: 1}), func(string, protocol.Msg) {
		t.Error("repair delta triggered a reply")
	})
	if m := b.Memory(); m.BufferBytes == 0 {
		t.Error("repair delta not buffered for propagation")
	}
	sent := map[string]int{}
	b.Sync(func(to string, m protocol.Msg) { sent[to]++ })
	if sent["c"] != 1 || sent["a"] != 0 {
		t.Errorf("repair propagation = %v, want one message to c only (BP skips origin)", sent)
	}
	// A redundant repair (nothing new) must not grow the buffer.
	before := b.Memory().BufferBytes
	b.Deliver("a", protocol.NewDeltaMsg(crdt.NewGSet("r1"), metrics.Transmission{Messages: 1}), func(string, protocol.Msg) {
		t.Error("redundant repair triggered a reply")
	})
	if after := b.Memory().BufferBytes; after != before {
		t.Errorf("redundant repair grew the buffer: %d -> %d", before, after)
	}
}

func TestAckedDeltaTwoNodeBufferDrains(t *testing.T) {
	// Regression: in a 2-node BP cluster, an entry received from the
	// only neighbor is needed by nobody — it must not be buffered, or it
	// would sit unacked (Sync never sends it back to its origin) and the
	// δ-buffer would never drain.
	a, b := twoNodes(protocol.NewDeltaAcked(true, true), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	pump(engines, "a")
	if !b.State().(*crdt.GSet).Contains("x") {
		t.Fatal("delta not delivered")
	}
	if m := b.Memory(); m.BufferBytes != 0 {
		t.Errorf("receiver buffered an entry it can never send: %d bytes", m.BufferBytes)
	}
	if m := a.Memory(); m.BufferBytes != 0 {
		t.Errorf("sender's entry not pruned after ack: %d bytes", m.BufferBytes)
	}
}
