package protocol

import (
	"crdtsync/internal/core"
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/workload"
)

// AckedDeltaMsg is a δ-group tagged with the buffer sequence numbers it
// covers, so the receiver can acknowledge them.
type AckedDeltaMsg struct {
	Delta lattice.State
	Seqs  []uint64
	cost  metrics.Transmission
}

// Kind implements Msg.
func (m *AckedDeltaMsg) Kind() string { return "delta-acked" }

// Cost implements Msg.
func (m *AckedDeltaMsg) Cost() metrics.Transmission { return m.cost }

// AckMsg acknowledges received δ-buffer entries.
type AckMsg struct {
	Seqs []uint64
	cost metrics.Transmission
}

// Kind implements Msg.
func (m *AckMsg) Kind() string { return "ack" }

// Cost implements Msg.
func (m *AckMsg) Cost() metrics.Transmission { return m.cost }

// ackedEntry is one δ-buffer entry awaiting acknowledgment.
type ackedEntry struct {
	seq    uint64
	delta  lattice.State
	origin string
	acked  map[string]bool
}

// deltaAcked is the lossy-channel variant of delta-based synchronization
// the paper sketches in §IV: instead of clearing the δ-buffer after every
// synchronization step, each entry carries a unique sequence number,
// receivers acknowledge, and an entry is dropped once every neighbor that
// must receive it has acknowledged it. Unacknowledged entries are resent
// every round, so convergence survives message loss — which the
// clear-after-send algorithm does not.
//
// BP and RR compose with acknowledgments exactly as in Algorithm 1.
type deltaAcked struct {
	cfg     Config
	bp, rr  bool
	x       lattice.State
	nextSeq uint64
	buf     []*ackedEntry
}

// NewDeltaAcked returns the acknowledgment-based delta engine factory with
// the given optimizations.
func NewDeltaAcked(bp, rr bool) Factory {
	return func(cfg Config) Engine {
		return &deltaAcked{cfg: cfg, bp: bp, rr: rr, x: cfg.Datatype.New()}
	}
}

func (e *deltaAcked) ID() string           { return e.cfg.ID }
func (e *deltaAcked) State() lattice.State { return e.x }

func (e *deltaAcked) store(s lattice.State, origin string) {
	e.x.Merge(s)
	entry := &ackedEntry{
		delta:  s,
		origin: origin,
		acked:  make(map[string]bool),
	}
	if e.fullyAcked(entry) {
		// No neighbor ever needs this entry — e.g. its origin is the
		// only neighbor under BP, or the node has no neighbors at all.
		// Buffering it would leak: nothing sends it, so no ack could
		// ever prune it.
		return
	}
	e.nextSeq++
	entry.seq = e.nextSeq
	e.buf = append(e.buf, entry)
}

func (e *deltaAcked) LocalOp(op workload.Op) {
	d := e.cfg.Datatype.Delta(e.x, e.cfg.ID, op)
	if d.IsBottom() {
		return
	}
	e.store(d, e.cfg.ID)
}

func (e *deltaAcked) Sync(send Sender) {
	for _, j := range e.cfg.Neighbors {
		var d lattice.State
		var seqs []uint64
		for _, entry := range e.buf {
			if e.bp && entry.origin == j {
				continue
			}
			if entry.acked[j] {
				continue
			}
			if d == nil {
				d = entry.delta.Clone()
			} else {
				d.Merge(entry.delta)
			}
			seqs = append(seqs, entry.seq)
		}
		if d == nil || d.IsBottom() {
			continue
		}
		cost := stateCost(d, 8*len(seqs))
		send(j, &AckedDeltaMsg{Delta: d, Seqs: seqs, cost: cost})
	}
}

// absorb runs Algorithm 1's receive side on one δ-group: under RR it
// extracts and stores exactly the part that strictly inflates the local
// state, otherwise it applies the classic inflation check.
func (e *deltaAcked) absorb(d lattice.State, from string) {
	if e.rr {
		// The subset check recognizes a fully redundant δ-group (the
		// steady-state re-delivery) without allocating the bottom Δ
		// would return.
		if d.Leq(e.x) {
			return
		}
		e.store(core.Delta(d, e.x), from)
	} else if lattice.StrictlyInflates(d, e.x) {
		e.store(d, from)
	}
}

func (e *deltaAcked) Deliver(from string, m Msg, send Sender) {
	switch msg := m.(type) {
	case *AckedDeltaMsg:
		e.absorb(msg.Delta, from)
		// Acknowledge regardless of redundancy: the data arrived.
		send(from, &AckMsg{
			Seqs: msg.Seqs,
			cost: metrics.Transmission{Messages: 1, MetadataBytes: 8 * len(msg.Seqs)},
		})
	case *DeltaMsg:
		// A δ-group outside the acked sequence space: the store-level
		// digest anti-entropy repair path ships full object states this
		// way. Merge what inflates and propagate it onwards; there is
		// nothing to acknowledge.
		e.absorb(msg.Delta, from)
	case *AckMsg:
		acked := make(map[uint64]bool, len(msg.Seqs))
		for _, s := range msg.Seqs {
			acked[s] = true
		}
		kept := e.buf[:0]
		for _, entry := range e.buf {
			if acked[entry.seq] {
				entry.acked[from] = true
			}
			if !e.fullyAcked(entry) {
				kept = append(kept, entry)
			}
		}
		e.buf = kept
	}
}

// fullyAcked reports whether every neighbor that must receive the entry
// has acknowledged it (its origin, under BP, never receives it).
func (e *deltaAcked) fullyAcked(entry *ackedEntry) bool {
	for _, j := range e.cfg.Neighbors {
		if e.bp && entry.origin == j {
			continue
		}
		if !entry.acked[j] {
			return false
		}
	}
	return true
}

func (e *deltaAcked) Memory() metrics.Memory {
	buf, meta := 0, 0
	for _, entry := range e.buf {
		buf += entry.delta.SizeBytes() + len(entry.origin)
		meta += 8 + 8*len(entry.acked)
	}
	return metrics.Memory{
		CRDTBytes:     e.x.SizeBytes(),
		BufferBytes:   buf,
		MetadataBytes: meta,
	}
}
