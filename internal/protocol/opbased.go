package protocol

import (
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/vclock"
	"crdtsync/internal/workload"
)

// TaggedOp is one operation in flight through the causal broadcast
// middleware: the operation payload tagged with its dot and the vector
// clock summarizing its causal past.
type TaggedOp struct {
	Dot vclock.Dot
	// Dep is the origin's vector clock immediately before the operation.
	Dep *vclock.VClock
	// Payload is the effect of the operation, applied by join at every
	// replica exactly once (exactly-once causal delivery).
	Payload lattice.State
	// OpBytes is the wire size of the operation itself.
	OpBytes int
}

// OpsMsg carries a batch of tagged operations.
type OpsMsg struct {
	Ops  []TaggedOp
	cost metrics.Transmission
}

// Kind implements Msg.
func (m *OpsMsg) Kind() string { return "ops" }

// Cost implements Msg.
func (m *OpsMsg) Cost() metrics.Transmission { return m.cost }

// fwdEntry is a transmission-buffer entry: an operation plus the set of
// peers known to have it (so unnecessary transmissions are avoided, the
// best-possible store-and-forward middleware described in §V-B).
type fwdEntry struct {
	op   TaggedOp
	seen map[string]bool
}

// opBased is the operation-based synchronization baseline: a
// store-and-forward causal broadcast middleware. Each operation is tagged
// with a vector clock; recipients deliver it only after its causal past,
// and forward it to neighbors that have not seen it yet.
type opBased struct {
	cfg Config
	x   lattice.State
	// v summarizes the operations delivered locally.
	v *vclock.VClock
	// fwd is the transmission buffer.
	fwd []*fwdEntry
	// fwdIndex finds transmission-buffer entries by dot.
	fwdIndex map[vclock.Dot]*fwdEntry
	// pending holds received but not yet causally deliverable ops.
	pending map[vclock.Dot]TaggedOp
	// pendingFrom remembers who first sent each pending op.
	pendingFrom map[vclock.Dot]string
}

// NewOpBased returns the operation-based engine factory.
func NewOpBased() Factory {
	return func(cfg Config) Engine {
		return &opBased{
			cfg:         cfg,
			x:           cfg.Datatype.New(),
			v:           vclock.New(),
			fwdIndex:    make(map[vclock.Dot]*fwdEntry),
			pending:     make(map[vclock.Dot]TaggedOp),
			pendingFrom: make(map[vclock.Dot]string),
		}
	}
}

func (e *opBased) ID() string           { return e.cfg.ID }
func (e *opBased) State() lattice.State { return e.x }

func (e *opBased) LocalOp(op workload.Op) {
	payload := e.cfg.Datatype.Delta(e.x, e.cfg.ID, op)
	if payload.IsBottom() {
		return
	}
	dep := e.v.Clone()
	dot := e.v.Next(e.cfg.ID)
	e.x.Merge(payload)
	e.buffer(TaggedOp{Dot: dot, Dep: dep, Payload: payload, OpBytes: e.cfg.Datatype.OpBytes(op)}, e.cfg.ID)
}

// buffer adds a delivered op to the transmission buffer, marking self and
// the immediate sender as having seen it.
func (e *opBased) buffer(op TaggedOp, from string) {
	entry := &fwdEntry{op: op, seen: map[string]bool{e.cfg.ID: true}}
	if from != e.cfg.ID {
		entry.seen[from] = true
	}
	e.fwd = append(e.fwd, entry)
	e.fwdIndex[op.Dot] = entry
}

func (e *opBased) Sync(send Sender) {
	for _, j := range e.cfg.Neighbors {
		var batch []TaggedOp
		for _, entry := range e.fwd {
			if !entry.seen[j] {
				batch = append(batch, entry.op)
				entry.seen[j] = true // channels are reliable
			}
		}
		if len(batch) == 0 {
			continue
		}
		// One vector's worth of entries per message counts against the
		// "entries transmitted" metric (causal metadata a batching
		// middleware must still ship), while the per-op vector tags of
		// the paper's NPU model count as metadata bytes.
		cost := metrics.Transmission{Messages: 1, Elements: len(e.cfg.Nodes)}
		for _, op := range batch {
			cost.Elements += op.Payload.Elements()
			cost.PayloadBytes += op.OpBytes
			cost.MetadataBytes += e.cfg.vectorBytes() + e.cfg.idBytes() + 8
		}
		send(j, &OpsMsg{Ops: batch, cost: cost})
	}
	e.pruneFwd()
}

// pruneFwd drops transmission-buffer entries already seen by every
// neighbor.
func (e *opBased) pruneFwd() {
	kept := e.fwd[:0]
	for _, entry := range e.fwd {
		all := true
		for _, j := range e.cfg.Neighbors {
			if !entry.seen[j] {
				all = false
				break
			}
		}
		if all {
			delete(e.fwdIndex, entry.op.Dot)
		} else {
			kept = append(kept, entry)
		}
	}
	e.fwd = kept
}

func (e *opBased) Deliver(from string, m Msg, _ Sender) {
	om, ok := m.(*OpsMsg)
	if !ok {
		return
	}
	for _, op := range om.Ops {
		if e.v.Contains(op.Dot) {
			// Already delivered: just record that the sender has it.
			if entry, present := e.fwdIndex[op.Dot]; present {
				entry.seen[from] = true
			}
			continue
		}
		if _, present := e.pending[op.Dot]; present {
			continue
		}
		e.pending[op.Dot] = op
		e.pendingFrom[op.Dot] = from
	}
	e.drainPending()
}

// drainPending delivers every causally ready pending operation, repeating
// until a fixpoint is reached.
func (e *opBased) drainPending() {
	for {
		progressed := false
		for dot, op := range e.pending {
			if !e.v.CausallyReady(dot, op.Dep) {
				continue
			}
			e.x.Merge(op.Payload)
			e.v.Set(dot.Actor, dot.Seq)
			e.buffer(op, e.pendingFrom[dot])
			delete(e.pending, dot)
			delete(e.pendingFrom, dot)
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

func (e *opBased) Memory() metrics.Memory {
	buf, meta := 0, e.cfg.vectorBytes() // the local vector clock
	for _, entry := range e.fwd {
		buf += entry.op.OpBytes
		meta += e.cfg.vectorBytes() + e.cfg.idBytes() + 8
	}
	for _, op := range e.pending {
		buf += op.OpBytes
		meta += e.cfg.vectorBytes() + e.cfg.idBytes() + 8
	}
	return metrics.Memory{
		CRDTBytes:     e.x.SizeBytes(),
		BufferBytes:   buf,
		MetadataBytes: meta,
	}
}
