package protocol

import (
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/vclock"
)

// Message constructors used by transports that deserialize messages from
// the wire (package codec). Engines construct messages internally and do
// not need these.

// NewStateMsg builds a StateMsg with explicit accounting.
func NewStateMsg(s lattice.State, cost metrics.Transmission) *StateMsg {
	return &StateMsg{State: s, cost: cost}
}

// NewDeltaMsg builds a DeltaMsg with explicit accounting.
func NewDeltaMsg(d lattice.State, cost metrics.Transmission) *DeltaMsg {
	return &DeltaMsg{Delta: d, cost: cost}
}

// NewAckedDeltaMsg builds an AckedDeltaMsg with explicit accounting.
func NewAckedDeltaMsg(d lattice.State, seqs []uint64, cost metrics.Transmission) *AckedDeltaMsg {
	return &AckedDeltaMsg{Delta: d, Seqs: seqs, cost: cost}
}

// NewAckMsg builds an AckMsg with explicit accounting.
func NewAckMsg(seqs []uint64, cost metrics.Transmission) *AckMsg {
	return &AckMsg{Seqs: seqs, cost: cost}
}

// NewSBDigestMsg builds an SBDigestMsg with explicit accounting.
func NewSBDigestMsg(vec *vclock.VClock, matrix map[string]*vclock.VClock, cost metrics.Transmission) *SBDigestMsg {
	return &SBDigestMsg{Vec: vec, Matrix: matrix, cost: cost}
}

// NewSBDeltasMsg builds an SBDeltasMsg with explicit accounting.
func NewSBDeltasMsg(items []SBItem, cost metrics.Transmission) *SBDeltasMsg {
	return &SBDeltasMsg{Items: items, cost: cost}
}

// NewOpsMsg builds an OpsMsg with explicit accounting.
func NewOpsMsg(ops []TaggedOp, cost metrics.Transmission) *OpsMsg {
	return &OpsMsg{Ops: ops, cost: cost}
}

// NewBatchMsg builds a BatchMsg with explicit accounting.
func NewBatchMsg(items []ObjectMsg, cost metrics.Transmission) *BatchMsg {
	return &BatchMsg{Items: items, cost: cost}
}
