package protocol_test

import (
	"testing"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// newKeyedEngine builds the per-object engine the store runs per shard.
func newKeyedEngine(inner protocol.Factory) protocol.KeyedEngine {
	f := protocol.NewPerObject(inner, func(string) workload.Datatype { return workload.GSetType{} })
	e := f(protocol.Config{ID: "a", Neighbors: []string{"b"}, Nodes: []string{"a", "b"}})
	return e.(protocol.KeyedEngine)
}

// TestRestoreObjectQuiescent pins the restore contract for both inner
// engines: the restored state is visible, but nothing is buffered for
// propagation — a restarted replica must not re-ship its keyspace.
func TestRestoreObjectQuiescent(t *testing.T) {
	factories := map[string]protocol.Factory{
		"delta": protocol.NewDeltaBPRR(),
		"acked": protocol.NewDeltaAcked(true, true),
	}
	for name, inner := range factories {
		t.Run(name, func(t *testing.T) {
			e := newKeyedEngine(inner)
			r, ok := e.(protocol.ObjectRestorer)
			if !ok {
				t.Fatal("per-object engine does not implement ObjectRestorer")
			}
			r.RestoreObject("s/k1", crdt.NewGSet("x", "y"))
			r.RestoreObject("s/k2", crdt.NewGSet("z"))
			if st := e.ObjectState("s/k1"); st == nil || !st.Equal(crdt.NewGSet("x", "y")) {
				t.Fatalf("restored state = %v", st)
			}
			if m := e.Memory(); m.BufferBytes != 0 {
				t.Errorf("restore buffered %d bytes for propagation, want 0", m.BufferBytes)
			}
			sent := 0
			e.Sync(func(string, protocol.Msg) { sent++ })
			if sent != 0 {
				t.Errorf("restored engine emitted %d messages on Sync, want 0", sent)
			}
		})
	}
}

// TestRestoreThenUpdatePropagates checks restore does not wedge the
// object: a local op after restore ships its delta normally, and the
// restored portion stays out of the wire traffic.
func TestRestoreThenUpdatePropagates(t *testing.T) {
	e := newKeyedEngine(protocol.NewDeltaBPRR())
	e.(protocol.ObjectRestorer).RestoreObject("s/k", crdt.NewGSet("old1", "old2", "old3"))
	e.LocalOp(workload.Op{Key: "s/k", Kind: workload.KindAdd, Elem: "new"})
	var sent []protocol.Msg
	e.Sync(func(_ string, m protocol.Msg) { sent = append(sent, m) })
	if len(sent) != 1 {
		t.Fatalf("messages = %d, want 1", len(sent))
	}
	if got := sent[0].Cost().Elements; got != 1 {
		t.Errorf("shipped %d elements, want only the new delta (1)", got)
	}
}
