package protocol_test

import (
	"testing"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// twoNodes builds engines a, b that are mutual neighbors.
func twoNodes(f protocol.Factory, dt workload.Datatype) (a, b protocol.Engine) {
	nodes := []string{"a", "b"}
	a = f(protocol.Config{ID: "a", Neighbors: []string{"b"}, Nodes: nodes, Datatype: dt})
	b = f(protocol.Config{ID: "b", Neighbors: []string{"a"}, Nodes: nodes, Datatype: dt})
	return a, b
}

// pump runs one sync step of from, delivering everything to the peers map,
// including same-step replies, and returns the messages sent (transitively).
func pump(engines map[string]protocol.Engine, from string) []protocol.Msg {
	type env struct {
		from, to string
		m        protocol.Msg
	}
	var queue []env
	var sent []protocol.Msg
	sender := func(src string) protocol.Sender {
		return func(to string, m protocol.Msg) {
			sent = append(sent, m)
			queue = append(queue, env{from: src, to: to, m: m})
		}
	}
	engines[from].Sync(sender(from))
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		engines[e.to].Deliver(e.from, e.m, sender(e.to))
	}
	return sent
}

func addOp(e string) workload.Op { return workload.Op{Kind: workload.KindAdd, Elem: e} }

func TestStateBasedShipsFullState(t *testing.T) {
	a, b := twoNodes(protocol.NewStateBased(), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	a.LocalOp(addOp("y"))
	sent := pump(engines, "a")
	if len(sent) != 1 {
		t.Fatalf("messages = %d, want 1", len(sent))
	}
	if got := sent[0].Cost().Elements; got != 2 {
		t.Errorf("state msg elements = %d, want full state (2)", got)
	}
	if !b.State().(*crdt.GSet).Contains("x") {
		t.Error("state not merged at receiver")
	}
	// State-based keeps no sync metadata in memory.
	if m := a.Memory(); m.BufferBytes != 0 || m.MetadataBytes != 0 {
		t.Errorf("state-based memory = %+v, want zero sync overhead", m)
	}
}

func TestStateBasedSkipsBottom(t *testing.T) {
	a, b := twoNodes(protocol.NewStateBased(), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	if sent := pump(engines, "a"); len(sent) != 0 {
		t.Errorf("bottom state should not be sent, got %d msgs", len(sent))
	}
}

func TestDeltaClassicInflationCheck(t *testing.T) {
	a, b := twoNodes(protocol.NewDeltaClassic(), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	pump(engines, "a")
	if !b.State().(*crdt.GSet).Contains("x") {
		t.Fatal("delta not applied")
	}
	// b now holds {x}; b's buffer holds the received δ-group, so b's
	// next sync back-propagates it to a (the BP problem).
	sent := pump(engines, "b")
	if len(sent) != 1 || sent[0].Cost().Elements != 1 {
		t.Fatalf("classic should back-propagate: %+v", sent)
	}
	// a receives its own {x} back: no inflation, buffer stays empty.
	if sentAgain := pump(engines, "a"); len(sentAgain) != 0 {
		t.Errorf("redundant δ-group must not re-enter the buffer (classic line 16)")
	}
}

func TestDeltaBPAvoidsBackPropagation(t *testing.T) {
	a, b := twoNodes(protocol.NewDeltaBased(true, false), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	pump(engines, "a")
	// With BP, b's buffered δ-group is tagged with origin a and filtered
	// when syncing with a: nothing is sent.
	if sent := pump(engines, "b"); len(sent) != 0 {
		t.Errorf("BP violated: %d messages sent back to origin", len(sent))
	}
}

func TestDeltaRRExtractsStrictInflation(t *testing.T) {
	// Triangle a—b, a—c, b—c: c receives overlapping δ-groups.
	nodes := []string{"a", "b", "c"}
	f := protocol.NewDeltaBased(false, true)
	mk := func(id string, nb ...string) protocol.Engine {
		return f(protocol.Config{ID: id, Neighbors: nb, Nodes: nodes, Datatype: workload.GSetType{}})
	}
	engines := map[string]protocol.Engine{
		"a": mk("a", "b", "c"),
		"b": mk("b", "a", "c"),
		"c": mk("c", "a", "b"),
	}
	engines["a"].LocalOp(addOp("x"))
	pump(engines, "a") // b and c now know x
	pump(engines, "c") // c flushes its buffered {x}
	engines["b"].LocalOp(addOp("y"))
	// b sends {x,y} to a and c (no BP). c already has x; RR must store
	// only {y}, so c's next δ-group is {y}, not {x,y}.
	pump(engines, "b")
	sent := pump(engines, "c")
	for _, m := range sent {
		if n := m.Cost().Elements; n > 1 {
			t.Errorf("RR violated: δ-group carries %d elements, want ≤ 1", n)
		}
	}
}

func TestDeltaMemoryAccountsBuffer(t *testing.T) {
	a, _ := twoNodes(protocol.NewDeltaClassic(), workload.GSetType{})
	a.LocalOp(addOp("abc"))
	m := a.Memory()
	if m.BufferBytes == 0 {
		t.Error("buffered delta should count toward memory")
	}
	if m.MetadataBytes != 8 { // one seq counter for one neighbor
		t.Errorf("metadata = %d, want 8", m.MetadataBytes)
	}
}

func TestScuttlebuttReconciliation(t *testing.T) {
	a, b := twoNodes(protocol.NewScuttlebutt(), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	b.LocalOp(addOp("y"))
	// a digests to b; b replies with what a misses.
	pump(engines, "a")
	if !a.State().(*crdt.GSet).Contains("y") {
		t.Error("pull direction failed")
	}
	pump(engines, "b")
	if !b.State().(*crdt.GSet).Contains("x") {
		t.Error("push-pull second direction failed")
	}
	// Reconciled: another digest exchange ships no deltas.
	sent := pump(engines, "a")
	for _, m := range sent {
		if m.Kind() == "sb-deltas" {
			t.Error("no deltas should flow once reconciled")
		}
	}
}

func TestScuttlebuttNeverPrunes(t *testing.T) {
	a, b := twoNodes(protocol.NewScuttlebutt(), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	for i := 0; i < 5; i++ {
		a.LocalOp(addOp(string(rune('a' + i))))
		pump(engines, "a")
		pump(engines, "b")
	}
	// All 5 deltas remain in both stores forever.
	if m := a.Memory(); m.BufferBytes < 5 {
		t.Errorf("plain scuttlebutt should retain all deltas, buffer=%d", m.BufferBytes)
	}
}

func TestScuttlebuttGCPrunes(t *testing.T) {
	a, b := twoNodes(protocol.NewScuttlebuttGC(), workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(addOp("x"))
	// Several digest exchanges let the seen-matrix converge; then the
	// delta (seen by both nodes) is deleted from both stores.
	for i := 0; i < 4; i++ {
		pump(engines, "a")
		pump(engines, "b")
	}
	am, bm := a.Memory(), b.Memory()
	if am.BufferBytes != 0 || bm.BufferBytes != 0 {
		t.Errorf("GC should prune fully-seen deltas: a=%d b=%d", am.BufferBytes, bm.BufferBytes)
	}
	// State survives pruning.
	if !b.State().(*crdt.GSet).Contains("x") {
		t.Error("pruning must not lose state")
	}
}

func TestOpBasedCausalDelivery(t *testing.T) {
	// Line a—b—c: ops from a must be applied at c in causal order even
	// though c only talks to b.
	nodes := []string{"a", "b", "c"}
	f := protocol.NewOpBased()
	engines := map[string]protocol.Engine{
		"a": f(protocol.Config{ID: "a", Neighbors: []string{"b"}, Nodes: nodes, Datatype: workload.GCounterType{}}),
		"b": f(protocol.Config{ID: "b", Neighbors: []string{"a", "c"}, Nodes: nodes, Datatype: workload.GCounterType{}}),
		"c": f(protocol.Config{ID: "c", Neighbors: []string{"b"}, Nodes: nodes, Datatype: workload.GCounterType{}}),
	}
	inc := workload.Op{Kind: workload.KindInc, N: 1}
	engines["a"].LocalOp(inc)
	engines["a"].LocalOp(inc)
	engines["a"].LocalOp(inc)
	pump(engines, "a") // a → b
	pump(engines, "b") // b → c (store-and-forward)
	if got := engines["c"].State().(*crdt.GCounter).Value(); got != 3 {
		t.Errorf("c's counter = %d, want 3", got)
	}
}

func TestOpBasedNoDuplicateApplication(t *testing.T) {
	a, b := twoNodes(protocol.NewOpBased(), workload.GCounterType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(workload.Op{Kind: workload.KindInc, N: 1})
	sent := pump(engines, "a")
	if len(sent) != 1 {
		t.Fatalf("messages = %d", len(sent))
	}
	// Redeliver the same message: exactly-once semantics must hold.
	b.Deliver("a", sent[0], func(string, protocol.Msg) {})
	if got := b.State().(*crdt.GCounter).Value(); got != 1 {
		t.Errorf("duplicate delivery changed value to %d", got)
	}
}

func TestOpBasedSeenFilteringStopsForwarding(t *testing.T) {
	a, b := twoNodes(protocol.NewOpBased(), workload.GCounterType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}
	a.LocalOp(workload.Op{Kind: workload.KindInc, N: 1})
	pump(engines, "a")
	// b received the op from a; it must not forward it back to a.
	if sent := pump(engines, "b"); len(sent) != 0 {
		t.Errorf("op forwarded back to its sender: %d messages", len(sent))
	}
	// And a must not resend it either (marked seen at send time).
	if sent := pump(engines, "a"); len(sent) != 0 {
		t.Errorf("op resent after being sent once: %d messages", len(sent))
	}
}

func TestPerObjectRoutesAndBatches(t *testing.T) {
	objType := func(string) workload.Datatype { return workload.GSetType{} }
	f := protocol.NewPerObject(protocol.NewDeltaBPRR(), objType)
	a, b := twoNodes(f, workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}

	a.LocalOp(workload.Op{Kind: workload.KindAdd, Key: "obj1", Elem: "x"})
	a.LocalOp(workload.Op{Kind: workload.KindAdd, Key: "obj2", Elem: "y"})
	sent := pump(engines, "a")
	// Two objects, one neighbor: one batch message.
	if len(sent) != 1 {
		t.Fatalf("batches = %d, want 1", len(sent))
	}
	if got := sent[0].Cost().Elements; got != 2 {
		t.Errorf("batch elements = %d, want 2", got)
	}
	// Receiver's aggregate state holds both objects.
	bs := b.State()
	if bs.Elements() != 2 {
		t.Errorf("aggregate state = %v", bs)
	}
}

func TestPerObjectInflationCheckIsPerObject(t *testing.T) {
	// The Retwis low-contention effect: a δ-group for an object that is
	// already known is dropped entirely and never re-propagated, even by
	// the classic algorithm.
	objType := func(string) workload.Datatype { return workload.GSetType{} }
	f := protocol.NewPerObject(protocol.NewDeltaClassic(), objType)
	a, b := twoNodes(f, workload.GSetType{})
	engines := map[string]protocol.Engine{"a": a, "b": b}

	a.LocalOp(workload.Op{Kind: workload.KindAdd, Key: "obj", Elem: "x"})
	pump(engines, "a")
	pump(engines, "b") // back-propagates once (classic)...
	if sent := pump(engines, "a"); len(sent) != 0 {
		t.Errorf("second echo should die at the per-object inflation check")
	}
}

func TestConfigIDBytesDefault(t *testing.T) {
	// Without IDBytes, metadata accounting uses actual id lengths: the
	// scuttlebutt digest for 2 nodes of 1-char ids is 2*(1+8) = 18 bytes.
	a, _ := twoNodes(protocol.NewScuttlebutt(), workload.GSetType{})
	var meta int
	a.LocalOp(addOp("x"))
	a.Sync(func(_ string, m protocol.Msg) { meta = m.Cost().MetadataBytes })
	if meta != 18 {
		t.Errorf("digest metadata = %d, want 18", meta)
	}
}
