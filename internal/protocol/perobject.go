package protocol

import (
	"sort"

	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/workload"
)

// ObjectMsg is one object's protocol message inside a batch.
type ObjectMsg struct {
	Key   string
	Inner Msg
}

// BatchMsg groups the per-object messages a node sends to one neighbor in
// one synchronization step, with batch-level accounting: one sequence
// number for the whole message plus the object keys as routing metadata
// (the inner per-message metadata is replaced, matching the paper's
// "sequence number per neighbor" delta-based cost model).
type BatchMsg struct {
	Items []ObjectMsg
	cost  metrics.Transmission
}

// Kind implements Msg.
func (m *BatchMsg) Kind() string { return "batch" }

// Cost implements Msg.
func (m *BatchMsg) Cost() metrics.Transmission { return m.cost }

// perObject synchronizes a keyspace of independent CRDT objects, each with
// its own instance of an inner protocol engine — the deployment model of
// the paper's Retwis evaluation (§V-C), where 30 000 objects each have
// their own δ-buffer and the per-object inflation check is what lets
// classic delta-based behave almost optimally at low contention.
type perObject struct {
	cfg     Config
	inner   Factory
	objType func(key string) workload.Datatype
	objects map[string]Engine
	keys    []string // sorted, for deterministic iteration
	// active holds keys that must be visited on the next Sync: keys
	// touched by LocalOp/Deliver since the last one, plus keys whose
	// engine emitted a message last round (it may need to emit again,
	// e.g. unacked retransmissions or Scuttlebutt digests). Quiescent
	// keys are skipped, making Sync O(changed) instead of O(keyspace):
	// the large-keyspace win the Retwis evaluation relies on.
	active map[string]struct{}
}

var _ KeyedEngine = (*perObject)(nil)

// NewPerObject wraps an inner protocol factory so that every distinct
// op.Key is replicated as an independent object; objType chooses the
// datatype of each object from its key.
func NewPerObject(inner Factory, objType func(key string) workload.Datatype) Factory {
	return func(cfg Config) Engine {
		return &perObject{
			cfg:     cfg,
			inner:   inner,
			objType: objType,
			objects: make(map[string]Engine),
			active:  make(map[string]struct{}),
		}
	}
}

func (e *perObject) ID() string { return e.cfg.ID }

// Keys implements KeyedEngine.
func (e *perObject) Keys() []string { return e.keys }

// ObjectState implements KeyedEngine.
func (e *perObject) ObjectState(key string) lattice.State {
	eng, ok := e.objects[key]
	if !ok {
		return nil
	}
	return eng.State()
}

// State aggregates all object states into a map keyed by object key.
// Object states are shared, not cloned; callers must not mutate them.
func (e *perObject) State() lattice.State {
	m := lattice.NewMap()
	for _, key := range e.keys {
		if s := e.objects[key].State(); !s.IsBottom() {
			m.Set(key, s)
		}
	}
	return m
}

// obj returns (creating if needed) the engine of one object.
func (e *perObject) obj(key string) Engine {
	if eng, ok := e.objects[key]; ok {
		return eng
	}
	cfg := e.cfg
	cfg.Datatype = e.objType(key)
	eng := e.inner(cfg)
	e.objects[key] = eng
	i := sort.SearchStrings(e.keys, key)
	e.keys = append(e.keys, "")
	copy(e.keys[i+1:], e.keys[i:])
	e.keys[i] = key
	return eng
}

func (e *perObject) LocalOp(op workload.Op) {
	e.obj(op.Key).LocalOp(op)
	e.active[op.Key] = struct{}{}
}

// batcher accumulates inner sends per destination and flushes them as
// BatchMsgs.
type batcher struct {
	pending map[string][]ObjectMsg
	order   []string
}

func newBatcher() *batcher {
	return &batcher{pending: make(map[string][]ObjectMsg)}
}

func (b *batcher) sender(key string) Sender {
	return func(to string, m Msg) {
		if _, ok := b.pending[to]; !ok {
			b.order = append(b.order, to)
		}
		b.pending[to] = append(b.pending[to], ObjectMsg{Key: key, Inner: m})
	}
}

// flush emits one BatchMsg per destination, rebuilding the accounting.
func (b *batcher) flush(send Sender) {
	for _, to := range b.order {
		send(to, BatchOf(b.pending[to]))
	}
}

// BatchOf builds a BatchMsg over items with the standard batch accounting:
// elements and payload bytes are summed from the inner messages, metadata
// is one 8-byte sequence number plus the object keys. Transports use it to
// (re)build batches — e.g. when splitting an oversized batch into several
// frames, each half needs its accounting recomputed.
func BatchOf(items []ObjectMsg) *BatchMsg {
	cost := metrics.Transmission{Messages: 1, MetadataBytes: 8}
	for _, it := range items {
		ic := it.Inner.Cost()
		cost.Elements += ic.Elements
		cost.PayloadBytes += ic.PayloadBytes
		cost.MetadataBytes += len(it.Key)
	}
	return &BatchMsg{Items: items, cost: cost}
}

func (e *perObject) Sync(send Sender) {
	if len(e.active) == 0 {
		return
	}
	keys := make([]string, 0, len(e.active))
	for k := range e.active {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := newBatcher()
	for _, key := range keys {
		inner := b.sender(key)
		emitted := false
		e.objects[key].Sync(func(to string, m Msg) {
			emitted = true
			inner(to, m)
		})
		if !emitted {
			// The object had nothing to say and goes quiescent until
			// the next LocalOp or Deliver touches it.
			delete(e.active, key)
		}
	}
	b.flush(send)
}

func (e *perObject) Deliver(from string, m Msg, send Sender) {
	bm, ok := m.(*BatchMsg)
	if !ok {
		return
	}
	b := newBatcher()
	for _, it := range bm.Items {
		e.obj(it.Key).Deliver(from, it.Inner, b.sender(it.Key))
		e.active[it.Key] = struct{}{}
	}
	// Replies (e.g. Scuttlebutt pulls) are batched and sent onwards.
	b.flush(send)
}

var _ ObjectDeliverer = (*perObject)(nil)

// DeliverObject implements ObjectDeliverer: one object's inbound message,
// delivered without batch materialization. The map lookups convert the key
// view in place (the compiler elides the allocation for m[string(b)]), so
// the steady state — an existing, already-active object — allocates
// nothing here; the key is materialized only when the object is new or
// transitions back to active.
func (e *perObject) DeliverObject(from string, key []byte, m Msg, send Sender) {
	eng, ok := e.objects[string(key)]
	if !ok {
		eng = e.obj(string(key))
	}
	eng.Deliver(from, m, send)
	if _, ok := e.active[string(key)]; !ok {
		e.active[string(key)] = struct{}{}
	}
}

func (e *perObject) Memory() metrics.Memory {
	var total metrics.Memory
	for _, key := range e.keys {
		m := e.objects[key].Memory()
		total.CRDTBytes += m.CRDTBytes + len(key)
		total.BufferBytes += m.BufferBytes
		total.MetadataBytes += m.MetadataBytes
	}
	return total
}
