package protocol

import (
	"crdtsync/internal/core"
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/workload"
)

// DeltaMsg carries one δ-group (the join of buffered deltas).
type DeltaMsg struct {
	Delta lattice.State
	cost  metrics.Transmission
}

// Kind implements Msg.
func (m *DeltaMsg) Kind() string { return "delta" }

// Cost implements Msg.
func (m *DeltaMsg) Cost() metrics.Transmission { return m.cost }

// deltaBased implements Algorithm 1 of the paper in all four variants:
// classic (BP = RR = false), BP only, RR only, and BP+RR.
//
//   - LocalOp runs the δ-mutator and store()s the delta (lines 6–8).
//   - Sync joins the δ-buffer into one δ-group per neighbor — filtering
//     entries that originated at that neighbor when BP is on (lines 9–13).
//   - Deliver either performs the classic inflation check (line 16, left)
//     or extracts Δ(d, xᵢ), the exact part of the δ-group that strictly
//     inflates the local state, when RR is on (lines 15–16, right).
//
// Per the paper's channel assumptions (no loss; duplication and reordering
// allowed) the buffer is cleared after each synchronization step; each
// message carries one sequence number per neighbor as metadata.
type deltaBased struct {
	cfg    Config
	bp, rr bool
	x      lattice.State
	buf    core.Buffer
}

// NewDeltaBased returns a delta-based engine factory with the given
// optimizations enabled.
func NewDeltaBased(bp, rr bool) Factory {
	return func(cfg Config) Engine {
		return &deltaBased{cfg: cfg, bp: bp, rr: rr, x: cfg.Datatype.New()}
	}
}

// NewDeltaClassic returns the classic delta-based factory (no BP, no RR).
func NewDeltaClassic() Factory { return NewDeltaBased(false, false) }

// NewDeltaBPRR returns the fully optimized delta-based factory (BP + RR).
func NewDeltaBPRR() Factory { return NewDeltaBased(true, true) }

func (e *deltaBased) ID() string           { return e.cfg.ID }
func (e *deltaBased) State() lattice.State { return e.x }

// store is Algorithm 1's store(s, o): join into the local state and buffer
// for further propagation.
func (e *deltaBased) store(s lattice.State, origin string) {
	e.x.Merge(s)
	e.buf.Add(s, origin)
}

func (e *deltaBased) LocalOp(op workload.Op) {
	d := e.cfg.Datatype.Delta(e.x, e.cfg.ID, op)
	if d.IsBottom() {
		return
	}
	e.store(d, e.cfg.ID)
}

func (e *deltaBased) Sync(send Sender) {
	for _, j := range e.cfg.Neighbors {
		var d lattice.State
		if e.bp {
			d = e.buf.GroupExcluding(j)
		} else {
			d = e.buf.GroupAll()
		}
		if d == nil || d.IsBottom() {
			continue
		}
		// One sequence number per neighbor is the only metadata
		// (8 bytes), the paper's "P" cost in Figure 9.
		send(j, &DeltaMsg{Delta: d, cost: stateCost(d, 8)})
	}
	e.buf.Clear()
}

func (e *deltaBased) Deliver(from string, m Msg, _ Sender) {
	dm, ok := m.(*DeltaMsg)
	if !ok {
		return
	}
	d := dm.Delta
	if e.rr {
		// RR: extract exactly what strictly inflates the local state. A
		// δ-group the state already covers — every re-delivery at steady
		// state — is recognized by the subset check alone, without
		// allocating even the bottom Δ would return.
		if d.Leq(e.x) {
			return
		}
		d = core.Delta(d, e.x)
		e.store(d, from)
		return
	}
	// Classic: harmless-looking inflation check — the source of most
	// redundant propagation, as §IV explains.
	if lattice.StrictlyInflates(d, e.x) {
		e.store(d, from)
	}
}

func (e *deltaBased) Memory() metrics.Memory {
	return metrics.Memory{
		CRDTBytes:   e.x.SizeBytes(),
		BufferBytes: e.buf.SizeBytes(),
		// One 8-byte sequence counter per neighbor.
		MetadataBytes: 8 * len(e.cfg.Neighbors),
	}
}
