// Package protocol implements every synchronization protocol evaluated in
// the paper (§IV–§V):
//
//   - state-based synchronization (full-state shipping);
//   - classic delta-based synchronization (Algorithm 1, plain lines);
//   - delta-based with the BP (avoid back-propagation) and RR (remove
//     redundant state in received δ-groups) optimizations, in any
//     combination (Algorithm 1, highlighted lines);
//   - Scuttlebutt anti-entropy and its garbage-collecting variant
//     Scuttlebutt-GC;
//   - operation-based synchronization over a store-and-forward causal
//     broadcast middleware.
//
// Engines are single-goroutine event handlers driven by package netsim:
// LocalOp applies workload updates, Sync emits periodic messages, and
// Deliver handles inbound messages (possibly replying, as Scuttlebutt's
// push-pull does).
package protocol

import (
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/workload"
)

// Sender transmits a message to a neighbor; provided by the simulator.
type Sender func(to string, m Msg)

// Msg is a protocol message with precomputed transmission accounting.
type Msg interface {
	// Kind names the message type for logs and tests.
	Kind() string
	// Cost returns the transmission accounting of this message.
	Cost() metrics.Transmission
}

// Config carries the per-node construction parameters shared by all
// engines.
type Config struct {
	// ID is this node's identifier.
	ID string
	// Neighbors lists adjacent node ids (sorted).
	Neighbors []string
	// Nodes lists the full membership (sorted); vector-based protocols
	// size their metadata against it.
	Nodes []string
	// Datatype adapts the replicated CRDT.
	Datatype workload.Datatype
	// IDBytes is the accounting size of one node identifier in metadata
	// (the paper's Figure 9 uses 20-byte ids). Zero means "use the actual
	// id length".
	IDBytes int
}

// idBytes returns the accounting size of one id.
func (c Config) idBytes() int {
	if c.IDBytes > 0 {
		return c.IDBytes
	}
	if len(c.Nodes) > 0 {
		return len(c.Nodes[0])
	}
	return len(c.ID)
}

// vectorBytes returns the accounting size of one full membership vector.
func (c Config) vectorBytes() int {
	return len(c.Nodes) * (c.idBytes() + 8)
}

// Engine is one node's protocol instance.
type Engine interface {
	// ID returns the node identifier.
	ID() string
	// State returns the local lattice state (not a copy).
	State() lattice.State
	// LocalOp applies one workload update locally.
	LocalOp(op workload.Op)
	// Sync runs one periodic synchronization step, emitting messages.
	Sync(send Sender)
	// Deliver handles one inbound message; replies go through send.
	Deliver(from string, m Msg, send Sender)
	// Memory reports the current memory footprint.
	Memory() metrics.Memory
}

// Factory builds one engine per node; each protocol provides one.
type Factory func(cfg Config) Engine

// stateCost builds the accounting for shipping a bare lattice state with
// the given metadata byte count.
func stateCost(s lattice.State, metadataBytes int) metrics.Transmission {
	return metrics.Transmission{
		Messages:      1,
		Elements:      s.Elements(),
		PayloadBytes:  s.SizeBytes(),
		MetadataBytes: metadataBytes,
	}
}
