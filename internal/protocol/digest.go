package protocol

import (
	"crdtsync/internal/metrics"
)

// DigestMsg drives store-level digest anti-entropy between replicas of a
// sharded keyspace. It plays two roles, distinguished by which field is
// populated:
//
//   - An advertisement carries Digests, the sender's per-shard digest
//     vector (index = shard). The receiver compares it against its own
//     shard digests and replies with a request for the shards that differ.
//   - A request carries Want, the shard indices whose full contents the
//     sender asks for. The receiver answers with a ShardedMsg shipping
//     those shards in full (per-key δ-groups carrying whole object
//     states).
//
// Digests are computed over each shard's sorted keys and canonical state
// encodings, so two replicas holding the same shard contents always
// produce equal digests and a converged pair exchanges only the constant
// size advertisement — the near-constant heartbeat that replaces shipping
// state on idle keyspaces.
type DigestMsg struct {
	Digests []uint64
	Want    []uint32
	cost    metrics.Transmission
}

// Kind implements Msg.
func (m *DigestMsg) Kind() string { return "digest" }

// Cost implements Msg.
func (m *DigestMsg) Cost() metrics.Transmission { return m.cost }

// NewDigestMsg builds a DigestMsg with explicit accounting.
func NewDigestMsg(digests []uint64, want []uint32, cost metrics.Transmission) *DigestMsg {
	return &DigestMsg{Digests: digests, Want: want, cost: cost}
}

// DigestCost returns the standard accounting for a digest advertisement
// or request: one message, 8 bytes per shard digest and 4 bytes per
// requested shard index of metadata, no payload.
func DigestCost(digests []uint64, want []uint32) metrics.Transmission {
	return metrics.Transmission{
		Messages:      1,
		MetadataBytes: 8*len(digests) + 4*len(want),
	}
}
