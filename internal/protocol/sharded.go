package protocol

import (
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
)

// ShardItem is one shard's protocol message inside a sharded frame.
type ShardItem struct {
	Shard uint32
	Msg   Msg
}

// ShardedMsg coalesces the per-shard messages a multi-object store sends
// to one neighbor in one synchronization tick into a single wire frame:
// instead of one TCP frame per shard (or worse, per object), the transport
// ships one frame carrying deltas for many keys across many shards. The
// shard index routes each inner message to the peer's matching shard, so
// both sides must run the same shard count.
//
// Digests, when non-nil, piggybacks the sender's per-shard digest vector
// (the anti-entropy advertisement otherwise carried by a standalone
// DigestMsg) onto the data frame, Scuttlebutt-style: a tick that ships
// data anyway advertises its digests for free instead of paying a second
// frame. The receiver processes the vector exactly as it would a DigestMsg
// advertisement.
type ShardedMsg struct {
	Items   []ShardItem
	Digests []uint64
	cost    metrics.Transmission
}

// Kind implements Msg.
func (m *ShardedMsg) Kind() string { return "sharded" }

// Cost implements Msg.
func (m *ShardedMsg) Cost() metrics.Transmission { return m.cost }

// NewShardedMsg builds a ShardedMsg, aggregating the inner accounting:
// one message on the wire, inner elements/payload summed, and 4 bytes of
// routing metadata per shard index.
func NewShardedMsg(items []ShardItem) *ShardedMsg {
	return NewShardedDigestMsg(items, nil)
}

// NewShardedDigestMsg builds a ShardedMsg carrying a piggybacked digest
// vector, charging the standard 8 bytes of metadata per digest word on top
// of the item accounting.
func NewShardedDigestMsg(items []ShardItem, digests []uint64) *ShardedMsg {
	cost := metrics.Transmission{Messages: 1, MetadataBytes: 8 * len(digests)}
	for _, it := range items {
		ic := it.Msg.Cost()
		cost.Elements += ic.Elements
		cost.PayloadBytes += ic.PayloadBytes
		cost.MetadataBytes += ic.MetadataBytes + 4
	}
	return &ShardedMsg{Items: items, Digests: digests, cost: cost}
}

// NewShardedMsgWithCost rebuilds a ShardedMsg with explicit accounting;
// used by transports that deserialize frames from the wire.
func NewShardedMsgWithCost(items []ShardItem, cost metrics.Transmission) *ShardedMsg {
	return &ShardedMsg{Items: items, cost: cost}
}

// NewShardedDigestMsgWithCost rebuilds a digest-carrying ShardedMsg with
// explicit accounting; used by transports that deserialize frames.
func NewShardedDigestMsgWithCost(items []ShardItem, digests []uint64, cost metrics.Transmission) *ShardedMsg {
	return &ShardedMsg{Items: items, Digests: digests, cost: cost}
}

// KeyedEngine is implemented by engines that replicate a keyspace of named
// objects (NewPerObject). It adds per-key access on top of Engine, letting
// callers read one object without materializing the aggregate state map.
type KeyedEngine interface {
	Engine
	// Keys returns the known object keys in sorted order.
	Keys() []string
	// ObjectState returns the state of one object, or nil if the key is
	// unknown. The state is shared, not cloned; callers must not mutate.
	ObjectState(key string) lattice.State
}

// ObjectDeliverer is implemented by keyed engines that accept one object's
// inbound message directly, without a BatchMsg wrapper. It is the receive
// path's counterpart to the incremental frame packer: a transport that
// unpacks a frame into per-object views hands each one straight to the
// engine — no ObjectMsg slice, no batch materialization, and (key being a
// byte view into the frame buffer) no key allocation when the object
// already exists. Replies go to send exactly as they would from Deliver;
// the caller wraps them for the wire. The key view is only read during
// the call — implementations copy it if the object is new.
type ObjectDeliverer interface {
	DeliverObject(from string, key []byte, m Msg, send Sender)
}
