package lattice

import "fmt"

// Pair is the cartesian product lattice A × B, ordered component-wise with
// component-wise join. Bottom is ⟨⊥A, ⊥B⟩.
//
// Its irredundant join decomposition follows Appendix C of the paper:
// ⇓⟨a, b⟩ = ⇓a × {⊥} ∪ {⊥} × ⇓b.
type Pair struct {
	A, B State
}

// NewPair returns the pair ⟨a, b⟩. Both components must be non-nil.
func NewPair(a, b State) *Pair {
	if a == nil || b == nil {
		panic("lattice: NewPair with nil component")
	}
	return &Pair{A: a, B: b}
}

// Join returns the component-wise join.
func (p *Pair) Join(other State) State {
	o := mustPair("Join", p, other)
	return &Pair{A: p.A.Join(o.A), B: p.B.Join(o.B)}
}

// Merge joins both components in place.
func (p *Pair) Merge(other State) {
	o := mustPair("Merge", p, other)
	p.A.Merge(o.A)
	p.B.Merge(o.B)
}

// Leq reports the component-wise order.
func (p *Pair) Leq(other State) bool {
	o := mustPair("Leq", p, other)
	return p.A.Leq(o.A) && p.B.Leq(o.B)
}

// IsBottom reports whether both components are bottom.
func (p *Pair) IsBottom() bool { return p.A.IsBottom() && p.B.IsBottom() }

// Bottom returns ⟨⊥A, ⊥B⟩ built from the component bottoms.
func (p *Pair) Bottom() State { return &Pair{A: p.A.Bottom(), B: p.B.Bottom()} }

// Irreducibles yields ⟨a', ⊥⟩ for every irreducible a' of the first
// component, then ⟨⊥, b'⟩ for every irreducible b' of the second.
func (p *Pair) Irreducibles(yield func(State) bool) {
	stop := false
	p.A.Irreducibles(func(ia State) bool {
		if !yield(&Pair{A: ia, B: p.B.Bottom()}) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	p.B.Irreducibles(func(ib State) bool {
		return yield(&Pair{A: p.A.Bottom(), B: ib})
	})
}

// Equal reports component-wise structural equality.
func (p *Pair) Equal(other State) bool {
	o, ok := other.(*Pair)
	return ok && p.A.Equal(o.A) && p.B.Equal(o.B)
}

// Clone returns a deep copy of the pair.
func (p *Pair) Clone() State { return &Pair{A: p.A.Clone(), B: p.B.Clone()} }

// Elements returns the sum of the component element counts.
func (p *Pair) Elements() int { return p.A.Elements() + p.B.Elements() }

// SizeBytes returns the sum of the component sizes.
func (p *Pair) SizeBytes() int { return p.A.SizeBytes() + p.B.SizeBytes() }

// String renders the pair.
func (p *Pair) String() string { return fmt.Sprintf("⟨%s,%s⟩", p.A, p.B) }

func mustPair(op string, a State, b State) *Pair {
	o, ok := b.(*Pair)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}
