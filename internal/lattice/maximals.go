package lattice

import (
	"sort"
	"strings"
)

// ElemOrder is a partial order on opaque string-encoded elements:
// Leq(a, b) reports a ⊑ b. It must be reflexive, transitive, and
// antisymmetric. Instances are compared by identity only, so all states of
// one M(P) lattice must share the same ElemOrder value.
type ElemOrder func(a, b string) bool

// Maximals is the lattice M(P) of antichains (sets of pairwise-incomparable
// elements) of a partial order P, ordered by: s ⊑ t iff every element of s
// is below-or-equal some element of t. Join keeps the maximal elements of
// the union. Bottom is the empty antichain.
//
// Its irredundant join decomposition is the set of singleton antichains
// ⇓s = {{e} | e ∈ s} (Appendix C of the paper).
type Maximals struct {
	order ElemOrder
	elems map[string]struct{}
}

// NewMaximals returns the antichain of the maximal elements among elems
// under the given partial order.
func NewMaximals(order ElemOrder, elems ...string) *Maximals {
	m := &Maximals{order: order, elems: make(map[string]struct{}, len(elems))}
	for _, e := range elems {
		m.insert(e)
	}
	return m
}

// insert adds e, dropping it if dominated and evicting elements e dominates.
func (m *Maximals) insert(e string) {
	for cur := range m.elems {
		if cur == e {
			return
		}
		if m.order(e, cur) {
			return // e is dominated; antichain unchanged
		}
	}
	for cur := range m.elems {
		if m.order(cur, e) {
			delete(m.elems, cur)
		}
	}
	m.elems[e] = struct{}{}
}

// Contains reports whether e is one of the maximal elements.
func (m *Maximals) Contains(e string) bool {
	_, ok := m.elems[e]
	return ok
}

// Values returns the maximal elements in sorted order.
func (m *Maximals) Values() []string {
	out := make([]string, 0, len(m.elems))
	for e := range m.elems {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Join returns the maximals of the union of the two antichains.
func (m *Maximals) Join(other State) State {
	o := mustMaximals("Join", m, other)
	j := NewMaximals(m.order)
	for e := range m.elems {
		j.insert(e)
	}
	for e := range o.elems {
		j.insert(e)
	}
	return j
}

// Merge inserts all elements of other into the receiver.
func (m *Maximals) Merge(other State) {
	o := mustMaximals("Merge", m, other)
	if m.elems == nil {
		m.elems = make(map[string]struct{}, len(o.elems))
	}
	for e := range o.elems {
		m.insert(e)
	}
}

// Leq reports the antichain order: every element of m is ⊑ some element of
// other.
func (m *Maximals) Leq(other State) bool {
	o := mustMaximals("Leq", m, other)
	for e := range m.elems {
		dominated := false
		for f := range o.elems {
			if e == f || m.order(e, f) {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// IsBottom reports whether the antichain is empty.
func (m *Maximals) IsBottom() bool { return len(m.elems) == 0 }

// Bottom returns a fresh empty antichain under the same order.
func (m *Maximals) Bottom() State { return NewMaximals(m.order) }

// Irreducibles yields one singleton antichain per maximal element.
func (m *Maximals) Irreducibles(yield func(State) bool) {
	for e := range m.elems {
		if !yield(NewMaximals(m.order, e)) {
			return
		}
	}
}

// Equal reports whether both antichains hold the same elements.
func (m *Maximals) Equal(other State) bool {
	o, ok := other.(*Maximals)
	if !ok || len(m.elems) != len(o.elems) {
		return false
	}
	for e := range m.elems {
		if _, present := o.elems[e]; !present {
			return false
		}
	}
	return true
}

// Clone returns a deep copy sharing the element order.
func (m *Maximals) Clone() State {
	c := &Maximals{order: m.order, elems: make(map[string]struct{}, len(m.elems))}
	for e := range m.elems {
		c.elems[e] = struct{}{}
	}
	return c
}

// Elements returns the number of maximal elements.
func (m *Maximals) Elements() int { return len(m.elems) }

// SizeBytes returns the sum of the element byte lengths.
func (m *Maximals) SizeBytes() int {
	n := 0
	for e := range m.elems {
		n += len(e)
	}
	return n
}

// String renders the antichain in sorted order.
func (m *Maximals) String() string {
	return "⌈" + strings.Join(m.Values(), ",") + "⌉"
}

func mustMaximals(op string, a State, b State) *Maximals {
	o, ok := b.(*Maximals)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}
