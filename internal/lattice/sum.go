package lattice

import "fmt"

// Sum is the linear sum lattice A ⊕ B: a copy of A below a copy of B, i.e.
// Left a ⊑ Right b for every a ∈ A, b ∈ B. Bottom is Left ⊥A. Joining a
// Left with a Right yields the Right (every Right dominates every Left).
//
// Its irredundant join decomposition follows Appendix C of the paper:
// ⇓(Left a)  = {Left v | v ∈ ⇓a}
// ⇓(Right b) = {Right v | v ∈ ⇓b}, with Right ⊥B itself join-irreducible.
type Sum struct {
	// IsRight selects the active side.
	IsRight bool
	// Val is the active side's value.
	Val State
	// protoL and protoR are bottom prototypes used to rebuild either side.
	protoL, protoR State
}

// NewSumLeft returns Left(val). protoRight provides the B-side bottom shape.
func NewSumLeft(val, protoRight State) *Sum {
	return &Sum{IsRight: false, Val: val, protoL: val.Bottom(), protoR: protoRight.Bottom()}
}

// NewSumRight returns Right(val). protoLeft provides the A-side bottom shape.
func NewSumRight(val, protoLeft State) *Sum {
	return &Sum{IsRight: true, Val: val, protoL: protoLeft.Bottom(), protoR: val.Bottom()}
}

// Join returns the linear-sum join.
func (s *Sum) Join(other State) State {
	o := mustSum("Join", s, other)
	switch {
	case s.IsRight && o.IsRight:
		return &Sum{IsRight: true, Val: s.Val.Join(o.Val), protoL: s.protoL, protoR: s.protoR}
	case s.IsRight:
		return s.Clone()
	case o.IsRight:
		return o.Clone()
	default:
		return &Sum{IsRight: false, Val: s.Val.Join(o.Val), protoL: s.protoL, protoR: s.protoR}
	}
}

// Merge replaces the receiver with the join in place.
func (s *Sum) Merge(other State) {
	o := mustSum("Merge", s, other)
	switch {
	case s.IsRight && o.IsRight, !s.IsRight && !o.IsRight:
		s.Val.Merge(o.Val)
	case o.IsRight: // receiver is Left, other is Right: other wins
		s.IsRight = true
		s.Val = o.Val.Clone()
	}
	// receiver Right, other Left: nothing to do.
}

// Leq reports the linear-sum order.
func (s *Sum) Leq(other State) bool {
	o := mustSum("Leq", s, other)
	switch {
	case !s.IsRight && o.IsRight:
		return true
	case s.IsRight && !o.IsRight:
		return false
	default:
		return s.Val.Leq(o.Val)
	}
}

// IsBottom reports whether the value is Left ⊥A.
func (s *Sum) IsBottom() bool { return !s.IsRight && s.Val.IsBottom() }

// Bottom returns Left ⊥A.
func (s *Sum) Bottom() State {
	return &Sum{IsRight: false, Val: s.protoL.Bottom(), protoL: s.protoL, protoR: s.protoR}
}

// Irreducibles yields the tagged irreducibles of the active side. Right ⊥B
// is itself join-irreducible and yielded as such.
func (s *Sum) Irreducibles(yield func(State) bool) {
	if s.IsBottom() {
		return
	}
	if s.IsRight && s.Val.IsBottom() {
		yield(&Sum{IsRight: true, Val: s.protoR.Bottom(), protoL: s.protoL, protoR: s.protoR})
		return
	}
	s.Val.Irreducibles(func(iv State) bool {
		return yield(&Sum{IsRight: s.IsRight, Val: iv, protoL: s.protoL, protoR: s.protoR})
	})
}

// Equal reports same side and structurally equal value.
func (s *Sum) Equal(other State) bool {
	o, ok := other.(*Sum)
	return ok && s.IsRight == o.IsRight && s.Val.Equal(o.Val)
}

// Clone returns a deep copy.
func (s *Sum) Clone() State {
	return &Sum{IsRight: s.IsRight, Val: s.Val.Clone(), protoL: s.protoL, protoR: s.protoR}
}

// Elements returns the element count of the active value, at least 1 for a
// non-bottom Right (Right ⊥B carries the information "we are on the right").
func (s *Sum) Elements() int {
	if n := s.Val.Elements(); n > 0 {
		return n
	}
	if s.IsRight {
		return 1
	}
	return 0
}

// SizeBytes returns the active value size plus one tag byte.
func (s *Sum) SizeBytes() int { return 1 + s.Val.SizeBytes() }

// String renders the tagged value.
func (s *Sum) String() string {
	if s.IsRight {
		return fmt.Sprintf("Right(%s)", s.Val)
	}
	return fmt.Sprintf("Left(%s)", s.Val)
}

func mustSum(op string, a State, b State) *Sum {
	o, ok := b.(*Sum)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}
