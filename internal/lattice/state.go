// Package lattice defines the join-semilattice abstraction underlying
// state-based CRDTs, together with the lattice composition techniques of
// Enes et al., "Efficient Synchronization of State-based CRDTs" (ICDE 2019),
// Appendix B/C: chains, cartesian products, lexicographic products, linear
// sums, finite functions (maps), powersets, and sets of maximal elements.
//
// Every lattice value implements State. All states used in this library are
// distributive lattices satisfying the descending chain condition, so every
// state has a unique irredundant join decomposition into join-irreducibles
// (Birkhoff), exposed through the Irreducibles method.
package lattice

import "fmt"

// State is a value of a join-semilattice with bottom. Implementations must
// be distributive lattices satisfying the descending chain condition (DCC) so
// that the irredundant join decomposition exposed by Irreducibles is unique.
//
// All methods treat the receiver and arguments as immutable, except Merge,
// which mutates the receiver in place. Join(x, y) of two different concrete
// types panics: lattices of different shapes have no common upper bound.
type State interface {
	fmt.Stringer

	// Join returns the least upper bound of the receiver and other,
	// leaving both operands unchanged.
	Join(other State) State

	// Merge replaces the receiver with the join of the receiver and
	// other. It is the in-place variant of Join, used on hot paths to
	// avoid reallocating accumulator states.
	Merge(other State)

	// Leq reports whether the receiver is below-or-equal to other in the
	// lattice partial order: x ⊑ y ⇔ x ⊔ y = y.
	Leq(other State) bool

	// IsBottom reports whether the receiver is the bottom element ⊥.
	IsBottom() bool

	// Bottom returns a fresh bottom element of the same lattice as the
	// receiver. Mutating the result never affects the receiver.
	Bottom() State

	// Irreducibles calls yield once for every element of the unique
	// irredundant join decomposition ⇓x of the receiver, stopping early
	// if yield returns false. The join of all yielded states equals the
	// receiver; each yielded state is join-irreducible; no yielded state
	// is below the join of the others. Bottom yields nothing.
	Irreducibles(yield func(State) bool)

	// Equal reports structural equality, i.e. x ⊑ y ∧ y ⊑ x.
	Equal(other State) bool

	// Clone returns a deep copy of the receiver.
	Clone() State

	// Elements returns the measurement metric used throughout the
	// paper's evaluation: the number of leaf entries in the state
	// (set elements, map entries, counter entries). Bottom is 0.
	Elements() int

	// SizeBytes returns the approximate wire size of the state in bytes,
	// used for bandwidth and memory accounting.
	SizeBytes() int
}

// Decompose returns the unique irredundant join decomposition ⇓x as a slice.
// It is a convenience wrapper around State.Irreducibles.
func Decompose(x State) []State {
	var out []State
	x.Irreducibles(func(s State) bool {
		out = append(out, s)
		return true
	})
	return out
}

// JoinAll returns the join of all given states. It panics if states is
// empty, since the bottom of the lattice cannot be inferred.
func JoinAll(states ...State) State {
	if len(states) == 0 {
		panic("lattice: JoinAll of no states; bottom cannot be inferred")
	}
	acc := states[0].Clone()
	for _, s := range states[1:] {
		acc.Merge(s)
	}
	return acc
}

// StrictlyInflates reports whether joining d into x would change x,
// i.e. d ⋢ x. This is the inflation check used by classic delta-based
// synchronization (Algorithm 1, line 16 of the paper).
func StrictlyInflates(d, x State) bool {
	return !d.Leq(x)
}

// mismatch panics with a descriptive message for cross-type joins.
func mismatch(op string, a, b State) string {
	return fmt.Sprintf("lattice: %s of mismatched lattice types %T and %T", op, a, b)
}
