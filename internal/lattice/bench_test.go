package lattice_test

import (
	"strconv"
	"testing"

	"crdtsync/internal/lattice"
)

// bigSet builds an n-element set.
func bigSet(n int) *lattice.Set {
	s := lattice.NewSet()
	for i := 0; i < n; i++ {
		s.Add("element-" + strconv.Itoa(i))
	}
	return s
}

// bigMap builds an n-entry map of chains.
func bigMap(n int) *lattice.Map {
	m := lattice.NewMap()
	for i := 0; i < n; i++ {
		m.Set("key-"+strconv.Itoa(i), lattice.NewMaxInt(uint64(i+1)))
	}
	return m
}

func BenchmarkSetJoin(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			x, y := bigSet(n), bigSet(n/2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x.Join(y)
			}
		})
	}
}

func BenchmarkSetMergeInPlace(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			y := bigSet(n / 2)
			x := bigSet(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x.Merge(y) // idempotent after first iteration
			}
		})
	}
}

func BenchmarkSetLeq(b *testing.B) {
	x, y := bigSet(1024), bigSet(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Leq(y)
	}
}

func BenchmarkMapJoin(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			x, y := bigMap(n), bigMap(n/2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x.Join(y)
			}
		})
	}
}

func BenchmarkMapIrreducibles(b *testing.B) {
	m := bigMap(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		m.Irreducibles(func(lattice.State) bool { count++; return true })
	}
}

func BenchmarkSetClone(b *testing.B) {
	s := bigSet(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Clone()
	}
}
