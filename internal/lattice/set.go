package lattice

import (
	"sort"
	"strings"
)

// Set is the powerset lattice P(U) over string elements, ordered by
// inclusion with join = union. It is the lattice state of a grow-only set.
// Its irredundant join decomposition is the set of singletons
// ⇓s = {{e} | e ∈ s} (Appendix C of the paper).
type Set struct {
	elems map[string]struct{}
}

// NewSet returns a set containing the given elements.
func NewSet(elems ...string) *Set {
	s := &Set{elems: make(map[string]struct{}, len(elems))}
	for _, e := range elems {
		s.elems[e] = struct{}{}
	}
	return s
}

// Contains reports whether e is in the set.
func (s *Set) Contains(e string) bool {
	_, ok := s.elems[e]
	return ok
}

// Add inserts e into the set in place. It is the standard (non-delta)
// mutator; delta mutators live in package crdt.
func (s *Set) Add(e string) {
	if s.elems == nil {
		s.elems = make(map[string]struct{})
	}
	s.elems[e] = struct{}{}
}

// Len returns the number of elements.
func (s *Set) Len() int { return len(s.elems) }

// Values returns the elements in sorted order.
func (s *Set) Values() []string {
	out := make([]string, 0, len(s.elems))
	for e := range s.elems {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Join returns the union of the two sets.
func (s *Set) Join(other State) State {
	o := mustSet("Join", s, other)
	j := &Set{elems: make(map[string]struct{}, len(s.elems)+len(o.elems))}
	for e := range s.elems {
		j.elems[e] = struct{}{}
	}
	for e := range o.elems {
		j.elems[e] = struct{}{}
	}
	return j
}

// Merge adds all elements of other to the receiver.
func (s *Set) Merge(other State) {
	o := mustSet("Merge", s, other)
	if s.elems == nil {
		s.elems = make(map[string]struct{}, len(o.elems))
	}
	for e := range o.elems {
		s.elems[e] = struct{}{}
	}
}

// Leq reports subset inclusion.
func (s *Set) Leq(other State) bool {
	o := mustSet("Leq", s, other)
	if len(s.elems) > len(o.elems) {
		return false
	}
	for e := range s.elems {
		if _, ok := o.elems[e]; !ok {
			return false
		}
	}
	return true
}

// IsBottom reports whether the set is empty.
func (s *Set) IsBottom() bool { return len(s.elems) == 0 }

// Bottom returns a fresh empty set.
func (s *Set) Bottom() State { return NewSet() }

// Irreducibles yields one singleton set per element.
func (s *Set) Irreducibles(yield func(State) bool) {
	for e := range s.elems {
		if !yield(NewSet(e)) {
			return
		}
	}
}

// Equal reports whether both sets hold exactly the same elements.
func (s *Set) Equal(other State) bool {
	o, ok := other.(*Set)
	if !ok || len(s.elems) != len(o.elems) {
		return false
	}
	for e := range s.elems {
		if _, present := o.elems[e]; !present {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() State {
	c := &Set{elems: make(map[string]struct{}, len(s.elems))}
	for e := range s.elems {
		c.elems[e] = struct{}{}
	}
	return c
}

// Elements returns the number of set elements (the paper's GSet metric).
func (s *Set) Elements() int { return len(s.elems) }

// SizeBytes returns the sum of the element byte lengths.
func (s *Set) SizeBytes() int {
	n := 0
	for e := range s.elems {
		n += len(e)
	}
	return n
}

// String renders the set in sorted order.
func (s *Set) String() string {
	return "{" + strings.Join(s.Values(), ",") + "}"
}

func mustSet(op string, a State, b State) *Set {
	o, ok := b.(*Set)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}
