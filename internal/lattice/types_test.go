package lattice_test

import (
	"testing"

	"crdtsync/internal/lattice"
)

func TestMaxIntBasics(t *testing.T) {
	a := lattice.NewMaxInt(3)
	b := lattice.NewMaxInt(5)
	if got := a.Join(b).(*lattice.MaxInt).V; got != 5 {
		t.Errorf("3 ⊔ 5 = %d, want 5", got)
	}
	if !a.Leq(b) || b.Leq(a) {
		t.Error("chain order broken for 3, 5")
	}
	if a.String() != "3" {
		t.Errorf("String = %q", a.String())
	}
	d := lattice.Decompose(b)
	if len(d) != 1 || !d[0].Equal(b) {
		t.Errorf("⇓5 = %v, want {5}", d)
	}
}

func TestFlagBasics(t *testing.T) {
	f := lattice.NewFlag(false)
	tr := lattice.NewFlag(true)
	if !f.IsBottom() || tr.IsBottom() {
		t.Error("flag bottom wrong")
	}
	if got := f.Join(tr).(*lattice.Flag); !got.V {
		t.Error("false ⊔ true should be true")
	}
	if tr.Elements() != 1 || f.Elements() != 0 {
		t.Error("flag elements wrong")
	}
}

func TestSetBasics(t *testing.T) {
	s := lattice.NewSet("a", "b")
	if !s.Contains("a") || s.Contains("c") {
		t.Error("membership wrong")
	}
	if got := s.Values(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Values = %v", got)
	}
	j := s.Join(lattice.NewSet("b", "c")).(*lattice.Set)
	if j.Len() != 3 {
		t.Errorf("union size = %d, want 3", j.Len())
	}
	if s.String() != "{a,b}" {
		t.Errorf("String = %q", s.String())
	}
	// Example from the paper: ⇓{a,b,c} = {{a},{b},{c}} (S4 in Example 2).
	d := lattice.Decompose(lattice.NewSet("a", "b", "c"))
	if len(d) != 3 {
		t.Errorf("⇓{a,b,c} has %d members, want 3", len(d))
	}
}

func TestMapBasics(t *testing.T) {
	m := lattice.NewMap()
	m.Set("k1", lattice.NewMaxInt(2))
	m.Set("k2", lattice.NewMaxInt(7))
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if got := m.Get("k1").(*lattice.MaxInt).V; got != 2 {
		t.Errorf("Get k1 = %d", got)
	}
	// Setting bottom removes the entry (no-bottom-values invariant).
	m.Set("k1", lattice.NewMaxInt(0))
	if m.Get("k1") != nil {
		t.Error("bottom value should remove entry")
	}
	// Join takes entry-wise max.
	other := lattice.NewMapEntry("k2", lattice.NewMaxInt(3))
	j := m.Join(other).(*lattice.Map)
	if got := j.Get("k2").(*lattice.MaxInt).V; got != 7 {
		t.Errorf("k2 after join = %d, want 7", got)
	}
	// Decomposition: one entry per key per value-irreducible.
	d := lattice.Decompose(j)
	if len(d) != 1 {
		t.Errorf("⇓%v has %d members, want 1", j, len(d))
	}
	// Range visits all entries.
	count := 0
	j.Range(func(string, lattice.State) bool { count++; return true })
	if count != j.Len() {
		t.Errorf("Range visited %d, want %d", count, j.Len())
	}
}

func TestPairDecomposition(t *testing.T) {
	p := lattice.NewPair(lattice.NewSet("a", "b"), lattice.NewMaxInt(4))
	d := lattice.Decompose(p)
	// ⇓⟨{a,b},4⟩ = {⟨{a},⊥⟩, ⟨{b},⊥⟩, ⟨⊥,4⟩}.
	if len(d) != 3 {
		t.Fatalf("pair decomposition size = %d, want 3", len(d))
	}
	for _, y := range d {
		py := y.(*lattice.Pair)
		if !py.A.IsBottom() && !py.B.IsBottom() {
			t.Errorf("pair irreducible %v has both components non-bottom", y)
		}
	}
}

func TestLexPairOrder(t *testing.T) {
	lo := lattice.NewLexPair(lattice.NewMaxInt(1), lattice.NewSet("x"))
	hi := lattice.NewLexPair(lattice.NewMaxInt(2), lattice.NewSet())
	// Higher version dominates regardless of second component.
	if !lo.Leq(hi) || hi.Leq(lo) {
		t.Error("lex order: version should dominate")
	}
	j := lo.Join(hi).(*lattice.LexPair)
	if !j.Equal(hi) {
		t.Errorf("join = %v, want %v (arbitrary overwrite via version bump)", j, hi)
	}
	// Equal versions join the second components.
	a := lattice.NewLexPair(lattice.NewMaxInt(2), lattice.NewSet("p"))
	b := lattice.NewLexPair(lattice.NewMaxInt(2), lattice.NewSet("q"))
	jj := a.Join(b).(*lattice.LexPair)
	if jj.Second.Elements() != 2 {
		t.Errorf("equal-version lex join should merge seconds: %v", jj)
	}
}

func TestLexPairDecomposeVersionOnly(t *testing.T) {
	// ⟨c, ⊥⟩ is itself join-irreducible.
	p := lattice.NewLexPair(lattice.NewMaxInt(3), lattice.NewSet())
	d := lattice.Decompose(p)
	if len(d) != 1 || !d[0].Equal(p) {
		t.Errorf("⇓⟨3,⊥⟩ = %v, want itself", d)
	}
}

func TestSumOrder(t *testing.T) {
	l := lattice.NewSumLeft(lattice.NewSet("a"), lattice.NewMaxInt(0))
	r := lattice.NewSumRight(lattice.NewMaxInt(0), lattice.NewSet())
	// Every Left is below every Right, including Right ⊥.
	if !l.Leq(r) || r.Leq(l) {
		t.Error("linear sum order broken")
	}
	if j := l.Join(r); !j.Equal(r) {
		t.Errorf("Left ⊔ Right = %v, want the Right", j)
	}
	// Right ⊥ is join-irreducible.
	d := lattice.Decompose(r)
	if len(d) != 1 || !d[0].Equal(r) {
		t.Errorf("⇓Right(⊥) = %v, want itself", d)
	}
}

func TestMaximalsAntichain(t *testing.T) {
	m := lattice.NewMaximals(prefixOrder, "x", "xa", "y")
	// "x" is a prefix of "xa", so only "xa" and "y" remain maximal.
	if m.Elements() != 2 || !m.Contains("xa") || !m.Contains("y") || m.Contains("x") {
		t.Errorf("maximals = %v, want {xa,y}", m.Values())
	}
	// Joining a dominated element is a no-op.
	j := m.Join(lattice.NewMaximals(prefixOrder, "x")).(*lattice.Maximals)
	if !j.Equal(m) {
		t.Errorf("joining dominated element changed antichain: %v", j.Values())
	}
	// Joining a dominating element evicts.
	j2 := m.Join(lattice.NewMaximals(prefixOrder, "xab")).(*lattice.Maximals)
	if j2.Contains("xa") || !j2.Contains("xab") {
		t.Errorf("dominating element should evict: %v", j2.Values())
	}
}

func TestMaximalsLeq(t *testing.T) {
	small := lattice.NewMaximals(prefixOrder, "x")
	big := lattice.NewMaximals(prefixOrder, "xab", "y")
	if !small.Leq(big) {
		t.Error("{x} should be ⊑ {xab,y} (x below xab)")
	}
	if big.Leq(small) {
		t.Error("{xab,y} should not be ⊑ {x}")
	}
}
