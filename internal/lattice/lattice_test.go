package lattice_test

import (
	"math/rand"
	"strconv"
	"testing"

	"crdtsync/internal/core"
	"crdtsync/internal/lattice"
)

// genFunc produces a random state of one lattice type.
type genFunc func(r *rand.Rand) lattice.State

// elemOrder is a fixed partial order on strings for Maximals tests:
// a ⊑ b iff a is a prefix of b.
func prefixOrder(a, b string) bool {
	return len(a) <= len(b) && b[:len(a)] == a
}

var prefixes = []string{"x", "xa", "xab", "xb", "y", "ya", "z"}

// generators returns one random-state generator per lattice type. Each
// generator may return bottom.
func generators() map[string]genFunc {
	smallStr := func(r *rand.Rand) string { return "e" + strconv.Itoa(r.Intn(6)) }
	genMax := func(r *rand.Rand) lattice.State { return lattice.NewMaxInt(uint64(r.Intn(5))) }
	genFlag := func(r *rand.Rand) lattice.State { return lattice.NewFlag(r.Intn(2) == 0) }
	genSet := func(r *rand.Rand) lattice.State {
		s := lattice.NewSet()
		for i, n := 0, r.Intn(4); i < n; i++ {
			s.Add(smallStr(r))
		}
		return s
	}
	genMap := func(r *rand.Rand) lattice.State {
		m := lattice.NewMap()
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Set("k"+strconv.Itoa(r.Intn(4)), lattice.NewMaxInt(uint64(r.Intn(4))))
		}
		return m
	}
	return map[string]genFunc{
		"maxint": genMax,
		"flag":   genFlag,
		"set":    genSet,
		"map":    genMap,
		"nested-map": func(r *rand.Rand) lattice.State {
			m := lattice.NewMap()
			for i, n := 0, r.Intn(3); i < n; i++ {
				m.Set("k"+strconv.Itoa(r.Intn(3)), genSet(r))
			}
			return m
		},
		"pair": func(r *rand.Rand) lattice.State {
			return lattice.NewPair(genSet(r), genMax(r))
		},
		"lexpair": func(r *rand.Rand) lattice.State {
			return lattice.NewLexPair(genMax(r), genSet(r))
		},
		"sum": func(r *rand.Rand) lattice.State {
			if r.Intn(2) == 0 {
				return lattice.NewSumLeft(genSet(r), lattice.NewMaxInt(0))
			}
			return lattice.NewSumRight(genMax(r), lattice.NewSet())
		},
		"maximals": func(r *rand.Rand) lattice.State {
			m := lattice.NewMaximals(prefixOrder)
			for i, n := 0, r.Intn(4); i < n; i++ {
				m.Merge(lattice.NewMaximals(prefixOrder, prefixes[r.Intn(len(prefixes))]))
			}
			return m
		},
	}
}

const trials = 300

// forAll runs fn on random state tuples of every lattice type.
func forAll(t *testing.T, arity int, fn func(t *testing.T, name string, xs []lattice.State)) {
	t.Helper()
	for name, gen := range generators() {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			for i := 0; i < trials; i++ {
				xs := make([]lattice.State, arity)
				for j := range xs {
					xs[j] = gen(r)
				}
				fn(t, name, xs)
				if t.Failed() {
					return
				}
			}
		})
	}
}

func TestJoinCommutative(t *testing.T) {
	forAll(t, 2, func(t *testing.T, name string, xs []lattice.State) {
		a, b := xs[0], xs[1]
		if !a.Join(b).Equal(b.Join(a)) {
			t.Errorf("%s: a⊔b ≠ b⊔a for a=%v b=%v", name, a, b)
		}
	})
}

func TestJoinAssociative(t *testing.T) {
	forAll(t, 3, func(t *testing.T, name string, xs []lattice.State) {
		a, b, c := xs[0], xs[1], xs[2]
		l := a.Join(b).Join(c)
		r := a.Join(b.Join(c))
		if !l.Equal(r) {
			t.Errorf("%s: (a⊔b)⊔c ≠ a⊔(b⊔c) for a=%v b=%v c=%v", name, a, b, c)
		}
	})
}

func TestJoinIdempotent(t *testing.T) {
	forAll(t, 1, func(t *testing.T, name string, xs []lattice.State) {
		a := xs[0]
		if !a.Join(a).Equal(a) {
			t.Errorf("%s: a⊔a ≠ a for a=%v", name, a)
		}
	})
}

func TestBottomIsIdentity(t *testing.T) {
	forAll(t, 1, func(t *testing.T, name string, xs []lattice.State) {
		a := xs[0]
		if !a.Join(a.Bottom()).Equal(a) {
			t.Errorf("%s: a⊔⊥ ≠ a for a=%v", name, a)
		}
		if !a.Bottom().IsBottom() {
			t.Errorf("%s: Bottom() not IsBottom", name)
		}
		if !a.Bottom().Leq(a) {
			t.Errorf("%s: ⊥ ⋢ a for a=%v", name, a)
		}
	})
}

func TestLeqAgreesWithJoin(t *testing.T) {
	forAll(t, 2, func(t *testing.T, name string, xs []lattice.State) {
		a, b := xs[0], xs[1]
		// x ⊑ y ⇔ x ⊔ y = y (the paper's definition of the order).
		if got, want := a.Leq(b), a.Join(b).Equal(b); got != want {
			t.Errorf("%s: Leq=%t but join-test=%t for a=%v b=%v", name, got, want, a, b)
		}
	})
}

func TestLeqPartialOrder(t *testing.T) {
	forAll(t, 3, func(t *testing.T, name string, xs []lattice.State) {
		a, b, c := xs[0], xs[1], xs[2]
		if !a.Leq(a) {
			t.Errorf("%s: Leq not reflexive for %v", name, a)
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			t.Errorf("%s: Leq not antisymmetric for %v, %v", name, a, b)
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			t.Errorf("%s: Leq not transitive for %v ⊑ %v ⊑ %v", name, a, b, c)
		}
	})
}

func TestJoinIsUpperBound(t *testing.T) {
	forAll(t, 2, func(t *testing.T, name string, xs []lattice.State) {
		a, b := xs[0], xs[1]
		j := a.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			t.Errorf("%s: join %v not an upper bound of %v, %v", name, j, a, b)
		}
	})
}

func TestMergeMatchesJoin(t *testing.T) {
	forAll(t, 2, func(t *testing.T, name string, xs []lattice.State) {
		a, b := xs[0], xs[1]
		want := a.Join(b)
		got := a.Clone()
		got.Merge(b)
		if !got.Equal(want) {
			t.Errorf("%s: Merge result %v ≠ Join result %v", name, got, want)
		}
	})
}

func TestCloneIndependent(t *testing.T) {
	forAll(t, 2, func(t *testing.T, name string, xs []lattice.State) {
		a, b := xs[0], xs[1]
		c := a.Clone()
		if !c.Equal(a) {
			t.Fatalf("%s: clone %v ≠ original %v", name, c, a)
		}
		snapshot := a.Clone()
		c.Merge(b)
		if !a.Equal(snapshot) {
			t.Errorf("%s: mutating clone changed original: %v vs %v", name, a, snapshot)
		}
	})
}

func TestDecompositionLaws(t *testing.T) {
	forAll(t, 1, func(t *testing.T, name string, xs []lattice.State) {
		a := xs[0]
		d := lattice.Decompose(a)
		if a.IsBottom() {
			if len(d) != 0 {
				t.Errorf("%s: bottom decomposes to %v, want empty", name, d)
			}
			return
		}
		if !core.IsIrredundantDecomposition(d, a) {
			t.Errorf("%s: ⇓%v = %v is not an irredundant join decomposition", name, a, d)
		}
		for _, y := range d {
			if !y.Leq(a) {
				t.Errorf("%s: irreducible %v ⋢ %v", name, y, a)
			}
			if !core.IsJoinIrreducible(y) {
				t.Errorf("%s: decomposition member %v is not join-irreducible", name, y)
			}
		}
	})
}

func TestElementsAndSize(t *testing.T) {
	forAll(t, 1, func(t *testing.T, name string, xs []lattice.State) {
		a := xs[0]
		if a.IsBottom() && a.Elements() != 0 {
			t.Errorf("%s: bottom has %d elements, want 0", name, a.Elements())
		}
		if !a.IsBottom() && a.Elements() <= 0 {
			t.Errorf("%s: non-bottom %v has %d elements, want > 0", name, a, a.Elements())
		}
		if a.SizeBytes() < 0 {
			t.Errorf("%s: negative SizeBytes", name)
		}
	})
}

func TestIrreduciblesEarlyStop(t *testing.T) {
	forAll(t, 1, func(t *testing.T, name string, xs []lattice.State) {
		a := xs[0]
		if len(lattice.Decompose(a)) < 2 {
			return
		}
		n := 0
		a.Irreducibles(func(lattice.State) bool {
			n++
			return false
		})
		if n != 1 {
			t.Errorf("%s: yield returning false did not stop iteration (n=%d)", name, n)
		}
	})
}

func TestJoinAll(t *testing.T) {
	forAll(t, 3, func(t *testing.T, name string, xs []lattice.State) {
		want := xs[0].Join(xs[1]).Join(xs[2])
		got := lattice.JoinAll(xs...)
		if !got.Equal(want) {
			t.Errorf("%s: JoinAll %v ≠ chained joins %v", name, got, want)
		}
	})
}

func TestJoinAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("JoinAll() of nothing should panic")
		}
	}()
	lattice.JoinAll()
}

func TestCrossTypeJoinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type join should panic")
		}
	}()
	lattice.NewMaxInt(1).Join(lattice.NewSet("a"))
}
