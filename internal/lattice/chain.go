package lattice

import (
	"fmt"
	"strconv"
)

// MaxInt is the chain of natural numbers under max, the building block of
// grow-only counters. Bottom is 0. Every non-zero value is join-irreducible
// (a chain has exactly one link below each element in its Hasse diagram).
type MaxInt struct {
	V uint64
}

// NewMaxInt returns the chain element with value v.
func NewMaxInt(v uint64) *MaxInt { return &MaxInt{V: v} }

// Join returns the maximum of the two chain values.
func (m *MaxInt) Join(other State) State {
	o := mustMaxInt("Join", m, other)
	if o.V > m.V {
		return &MaxInt{V: o.V}
	}
	return &MaxInt{V: m.V}
}

// Merge replaces the receiver with the maximum of the two values.
func (m *MaxInt) Merge(other State) {
	o := mustMaxInt("Merge", m, other)
	if o.V > m.V {
		m.V = o.V
	}
}

// Leq reports m.V <= other.V; a chain is totally ordered.
func (m *MaxInt) Leq(other State) bool {
	return m.V <= mustMaxInt("Leq", m, other).V
}

// IsBottom reports whether the value is 0.
func (m *MaxInt) IsBottom() bool { return m.V == 0 }

// Bottom returns a fresh zero chain element.
func (m *MaxInt) Bottom() State { return &MaxInt{} }

// Irreducibles yields the value itself: every non-bottom element of a chain
// is join-irreducible (⇓c = {c}, Appendix C of the paper).
func (m *MaxInt) Irreducibles(yield func(State) bool) {
	if m.V == 0 {
		return
	}
	yield(&MaxInt{V: m.V})
}

// Equal reports value equality.
func (m *MaxInt) Equal(other State) bool {
	o, ok := other.(*MaxInt)
	return ok && o.V == m.V
}

// Clone returns a copy of the chain element.
func (m *MaxInt) Clone() State { return &MaxInt{V: m.V} }

// Elements returns 1 for non-bottom values, 0 for bottom.
func (m *MaxInt) Elements() int {
	if m.V == 0 {
		return 0
	}
	return 1
}

// SizeBytes returns the wire size of a 64-bit integer.
func (m *MaxInt) SizeBytes() int { return 8 }

// String renders the value.
func (m *MaxInt) String() string { return strconv.FormatUint(m.V, 10) }

func mustMaxInt(op string, a State, b State) *MaxInt {
	o, ok := b.(*MaxInt)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}

// Flag is the two-element boolean chain false ⊑ true, with join = or.
// Bottom is false.
type Flag struct {
	V bool
}

// NewFlag returns a chain element with the given boolean value.
func NewFlag(v bool) *Flag { return &Flag{V: v} }

// Join returns the logical or of the two flags.
func (f *Flag) Join(other State) State {
	o := mustFlag("Join", f, other)
	return &Flag{V: f.V || o.V}
}

// Merge replaces the receiver with the logical or of the two flags.
func (f *Flag) Merge(other State) {
	o := mustFlag("Merge", f, other)
	f.V = f.V || o.V
}

// Leq reports the boolean order false ⊑ true.
func (f *Flag) Leq(other State) bool {
	o := mustFlag("Leq", f, other)
	return !f.V || o.V
}

// IsBottom reports whether the flag is false.
func (f *Flag) IsBottom() bool { return !f.V }

// Bottom returns a fresh false flag.
func (f *Flag) Bottom() State { return &Flag{} }

// Irreducibles yields {true} for true, nothing for false.
func (f *Flag) Irreducibles(yield func(State) bool) {
	if f.V {
		yield(&Flag{V: true})
	}
}

// Equal reports value equality.
func (f *Flag) Equal(other State) bool {
	o, ok := other.(*Flag)
	return ok && o.V == f.V
}

// Clone returns a copy of the flag.
func (f *Flag) Clone() State { return &Flag{V: f.V} }

// Elements returns 1 for true, 0 for false.
func (f *Flag) Elements() int {
	if f.V {
		return 1
	}
	return 0
}

// SizeBytes returns the wire size of a boolean.
func (f *Flag) SizeBytes() int { return 1 }

// String renders the flag.
func (f *Flag) String() string { return fmt.Sprintf("%t", f.V) }

func mustFlag(op string, a State, b State) *Flag {
	o, ok := b.(*Flag)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}
