package lattice

import "fmt"

// LexPair is the lexicographic product lattice C ⋉ A. The first component
// must be a chain (total order) for the product to be distributive and have
// unique irredundant decompositions (Appendix B, Table III of the paper);
// this is the "single-writer principle" usage: an owner bumps the version
// chain C to overwrite the second component with an arbitrary value.
//
// Join: ⟨c1,a1⟩ ⊔ ⟨c2,a2⟩ = ⟨c2,a2⟩ if c1 < c2, ⟨c1,a1⟩ if c2 < c1, and
// ⟨c1, a1 ⊔ a2⟩ if c1 = c2.
//
// Its irredundant join decomposition follows Appendix C:
// ⇓⟨c,a⟩ = ⇓c × ⇓a, specialized to a chain first component:
// {⟨c, a'⟩ | a' ∈ ⇓a}, or {⟨c, ⊥⟩} when a is bottom and c is not.
type LexPair struct {
	// First is the version chain; its Leq must be a total order.
	First State
	// Second is the dominated value lattice.
	Second State
}

// NewLexPair returns the lexicographic pair ⟨first, second⟩.
func NewLexPair(first, second State) *LexPair {
	if first == nil || second == nil {
		panic("lattice: NewLexPair with nil component")
	}
	return &LexPair{First: first, Second: second}
}

// chainLess reports a < b using only Leq; valid because First is a chain.
func chainLess(a, b State) bool { return a.Leq(b) && !b.Leq(a) }

// Join returns the lexicographic join.
func (p *LexPair) Join(other State) State {
	o := mustLexPair("Join", p, other)
	switch {
	case chainLess(p.First, o.First):
		return o.Clone()
	case chainLess(o.First, p.First):
		return p.Clone()
	default: // equal first components
		return &LexPair{First: p.First.Clone(), Second: p.Second.Join(o.Second)}
	}
}

// Merge replaces the receiver with the lexicographic join in place.
func (p *LexPair) Merge(other State) {
	o := mustLexPair("Merge", p, other)
	switch {
	case chainLess(p.First, o.First):
		p.First = o.First.Clone()
		p.Second = o.Second.Clone()
	case chainLess(o.First, p.First):
		// receiver already dominates
	default:
		p.Second.Merge(o.Second)
	}
}

// Leq reports the lexicographic order: first components decide, ties fall
// through to the second components.
func (p *LexPair) Leq(other State) bool {
	o := mustLexPair("Leq", p, other)
	if chainLess(p.First, o.First) {
		return true
	}
	if chainLess(o.First, p.First) {
		return false
	}
	return p.Second.Leq(o.Second)
}

// IsBottom reports whether both components are bottom.
func (p *LexPair) IsBottom() bool { return p.First.IsBottom() && p.Second.IsBottom() }

// Bottom returns ⟨⊥C, ⊥A⟩.
func (p *LexPair) Bottom() State {
	return &LexPair{First: p.First.Bottom(), Second: p.Second.Bottom()}
}

// Irreducibles yields ⟨c, a'⟩ for every irreducible a' of the second
// component, or the single pair ⟨c, ⊥⟩ when the second component is bottom
// but the first is not.
func (p *LexPair) Irreducibles(yield func(State) bool) {
	if p.IsBottom() {
		return
	}
	if p.Second.IsBottom() {
		yield(&LexPair{First: p.First.Clone(), Second: p.Second.Bottom()})
		return
	}
	p.Second.Irreducibles(func(ia State) bool {
		return yield(&LexPair{First: p.First.Clone(), Second: ia})
	})
}

// Equal reports component-wise structural equality.
func (p *LexPair) Equal(other State) bool {
	o, ok := other.(*LexPair)
	return ok && p.First.Equal(o.First) && p.Second.Equal(o.Second)
}

// Clone returns a deep copy.
func (p *LexPair) Clone() State {
	return &LexPair{First: p.First.Clone(), Second: p.Second.Clone()}
}

// Elements returns the element count of the second component, or 1 when only
// the version chain is set: a lexicographic pair carries one logical value.
func (p *LexPair) Elements() int {
	if n := p.Second.Elements(); n > 0 {
		return n
	}
	if !p.First.IsBottom() {
		return 1
	}
	return 0
}

// SizeBytes returns the sum of the component sizes.
func (p *LexPair) SizeBytes() int { return p.First.SizeBytes() + p.Second.SizeBytes() }

// String renders the pair.
func (p *LexPair) String() string { return fmt.Sprintf("⟨%s⋉%s⟩", p.First, p.Second) }

func mustLexPair(op string, a State, b State) *LexPair {
	o, ok := b.(*LexPair)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}
