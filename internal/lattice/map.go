package lattice

import (
	"sort"
	"strings"
)

// Map is the finite-function lattice U ↪ A from string keys to a value
// lattice A, ordered pointwise with join computed key-wise. Absent keys are
// implicitly bottom, and the invariant "no stored value is bottom" is
// maintained by every operation, so two equal maps are structurally equal.
//
// Its irredundant join decomposition follows Appendix C of the paper:
// ⇓f = {{k ↦ v} | k ∈ dom(f) ∧ v ∈ ⇓f(k)}.
type Map struct {
	entries map[string]State
}

// NewMap returns an empty map lattice.
func NewMap() *Map { return &Map{entries: make(map[string]State)} }

// NewMapEntry returns a map holding the single entry {k ↦ v}; a bottom v
// yields the empty map.
func NewMapEntry(k string, v State) *Map {
	m := NewMap()
	m.Set(k, v)
	return m
}

// Get returns the value stored at k, or nil if k is absent (bottom).
func (m *Map) Get(k string) State { return m.entries[k] }

// Set stores v at key k in place, dropping the entry when v is bottom.
// The value is stored as given (not cloned); callers retaining v must
// clone it themselves.
func (m *Map) Set(k string, v State) {
	if m.entries == nil {
		m.entries = make(map[string]State)
	}
	if v == nil || v.IsBottom() {
		delete(m.entries, k)
		return
	}
	m.entries[k] = v
}

// Len returns the number of present (non-bottom) keys.
func (m *Map) Len() int { return len(m.entries) }

// Keys returns the present keys in sorted order.
func (m *Map) Keys() []string {
	out := make([]string, 0, len(m.entries))
	for k := range m.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Range calls fn for every entry until fn returns false. Iteration order is
// unspecified.
func (m *Map) Range(fn func(k string, v State) bool) {
	for k, v := range m.entries {
		if !fn(k, v) {
			return
		}
	}
}

// Join returns the key-wise join of the two maps.
func (m *Map) Join(other State) State {
	o := mustMap("Join", m, other)
	j := &Map{entries: make(map[string]State, len(m.entries)+len(o.entries))}
	for k, v := range m.entries {
		j.entries[k] = v.Clone()
	}
	for k, v := range o.entries {
		if cur, ok := j.entries[k]; ok {
			cur.Merge(v)
		} else {
			j.entries[k] = v.Clone()
		}
	}
	return j
}

// Merge joins every entry of other into the receiver in place.
func (m *Map) Merge(other State) {
	o := mustMap("Merge", m, other)
	if m.entries == nil {
		m.entries = make(map[string]State, len(o.entries))
	}
	for k, v := range o.entries {
		if cur, ok := m.entries[k]; ok {
			cur.Merge(v)
		} else {
			m.entries[k] = v.Clone()
		}
	}
}

// Leq reports the pointwise order: every entry of m must be ⊑ the
// corresponding entry of other.
func (m *Map) Leq(other State) bool {
	o := mustMap("Leq", m, other)
	for k, v := range m.entries {
		ov, ok := o.entries[k]
		if !ok || !v.Leq(ov) {
			return false
		}
	}
	return true
}

// IsBottom reports whether the map has no entries.
func (m *Map) IsBottom() bool { return len(m.entries) == 0 }

// Bottom returns a fresh empty map.
func (m *Map) Bottom() State { return NewMap() }

// Irreducibles yields singleton maps {k ↦ v} for every key k and every
// irreducible v of the stored value.
func (m *Map) Irreducibles(yield func(State) bool) {
	for k, v := range m.entries {
		stop := false
		v.Irreducibles(func(iv State) bool {
			e := &Map{entries: map[string]State{k: iv}}
			if !yield(e) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Equal reports key-wise structural equality.
func (m *Map) Equal(other State) bool {
	o, ok := other.(*Map)
	if !ok || len(m.entries) != len(o.entries) {
		return false
	}
	for k, v := range m.entries {
		ov, present := o.entries[k]
		if !present || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() State {
	c := &Map{entries: make(map[string]State, len(m.entries))}
	for k, v := range m.entries {
		c.entries[k] = v.Clone()
	}
	return c
}

// Elements returns the total number of leaf entries: the sum of Elements()
// over all stored values. For maps of chains this is the number of map
// entries, matching the paper's GCounter/GMap metric.
func (m *Map) Elements() int {
	n := 0
	for _, v := range m.entries {
		n += v.Elements()
	}
	return n
}

// SizeBytes returns the sum of key lengths plus stored value sizes.
func (m *Map) SizeBytes() int {
	n := 0
	for k, v := range m.entries {
		n += len(k) + v.SizeBytes()
	}
	return n
}

// String renders the map in sorted key order.
func (m *Map) String() string {
	keys := m.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"→"+m.entries[k].String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func mustMap(op string, a State, b State) *Map {
	o, ok := b.(*Map)
	if !ok {
		panic(mismatch(op, a, b))
	}
	return o
}
