package pairsync_test

import (
	"math/rand"
	"strconv"
	"testing"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/pairsync"
)

// diverged builds two replicas with shared history plus disjoint suffixes.
func diverged(r *rand.Rand) (lattice.State, lattice.State) {
	base := crdt.NewGSet()
	for i, n := 0, r.Intn(20); i < n; i++ {
		base.Add("shared" + strconv.Itoa(i))
	}
	a := base.Clone().(*crdt.GSet)
	b := base.Clone().(*crdt.GSet)
	for i, n := 0, r.Intn(10); i < n; i++ {
		a.Add("a" + strconv.Itoa(i))
	}
	for i, n := 0, r.Intn(10); i < n; i++ {
		b.Add("b" + strconv.Itoa(i))
	}
	return a, b
}

func TestStateDrivenConverges(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b := diverged(r)
		want := a.Join(b)
		stats := pairsync.StateDriven(a, b)
		if !a.Equal(want) || !b.Equal(want) {
			t.Fatalf("state-driven did not converge: a=%v b=%v want=%v", a, b, want)
		}
		if stats.Messages != 2 {
			t.Fatalf("messages = %d, want 2", stats.Messages)
		}
	}
}

func TestDigestDrivenConverges(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a, b := diverged(r)
		want := a.Join(b)
		stats := pairsync.DigestDriven(a, b)
		if !a.Equal(want) || !b.Equal(want) {
			t.Fatalf("digest-driven did not converge: a=%v b=%v want=%v", a, b, want)
		}
		if stats.Messages != 3 {
			t.Fatalf("messages = %d, want 3", stats.Messages)
		}
	}
}

func TestDigestDrivenShipsLessState(t *testing.T) {
	// With a large shared prefix and small divergence, digest-driven
	// ships only the divergent elements as state (plus fixed-size
	// hashes), while state-driven ships replica A wholesale.
	base := crdt.NewGSet()
	for i := 0; i < 500; i++ {
		base.Add("shared-elem-with-some-length-" + strconv.Itoa(i))
	}
	a1 := base.Clone().(*crdt.GSet)
	b1 := base.Clone().(*crdt.GSet)
	a1.Add("only-a")
	b1.Add("only-b")
	a2 := a1.Clone().(*crdt.GSet)
	b2 := b1.Clone().(*crdt.GSet)

	sd := pairsync.StateDriven(a1, b1)
	dd := pairsync.DigestDriven(a2, b2)
	if dd.StateBytes >= sd.StateBytes/10 {
		t.Errorf("digest-driven state bytes %d, state-driven %d: expected ≥10x reduction",
			dd.StateBytes, sd.StateBytes)
	}
}

func TestStateDrivenOnCounters(t *testing.T) {
	a := crdt.NewGCounter()
	b := crdt.NewGCounter()
	a.Inc("A", 5)
	b.Inc("B", 3)
	b.Inc("A", 2) // stale view of A
	want := a.Join(b)
	pairsync.StateDriven(a, b)
	if !a.Equal(want) || !b.Equal(want) {
		t.Error("counters did not reconcile")
	}
}

func TestDigestDrivenOnAWSet(t *testing.T) {
	a := crdt.NewAWSet()
	a.Add("A", "x")
	a.Add("A", "y")
	b := a.Clone().(*crdt.AWSet)
	b.Remove("x")
	a.Add("A", "z")
	want := a.Join(b)
	pairsync.DigestDriven(a, b)
	if !a.Equal(want) || !b.Equal(want) {
		t.Errorf("AWSet did not reconcile: a=%v b=%v want=%v", a, b, want)
	}
	if a.Contains("x") {
		t.Error("observed remove lost during reconciliation")
	}
}

func TestDigestSemantics(t *testing.T) {
	s := crdt.NewGSet("p", "q")
	d := pairsync.NewDigest(s)
	if !d.Contains(crdt.NewGSet("p")) {
		t.Error("digest should cover its own irreducibles")
	}
	if d.Contains(crdt.NewGSet("r")) {
		t.Error("digest should not cover foreign irreducibles")
	}
	if d.SizeBytes() != 16 {
		t.Errorf("digest size = %d, want 16 (2 hashes)", d.SizeBytes())
	}
}

func TestIdenticalReplicasShipNothing(t *testing.T) {
	a := crdt.NewGSet("same")
	b := a.Clone()
	dd := pairsync.DigestDriven(a, b)
	if dd.StateBytes != 0 {
		t.Errorf("identical replicas shipped %d state bytes", dd.StateBytes)
	}
}
