// Package pairsync implements the two pairwise reconciliation techniques
// the paper discusses in §VI (Enes et al., PMLDC@ECOOP 2016): state-driven
// and digest-driven synchronization of two state-based CRDT replicas after
// a network partition. Both exploit join decompositions; digest-driven
// additionally ships hashes of irreducibles instead of the state itself,
// trading one extra round trip for less data on the wire.
package pairsync

import (
	"hash/fnv"

	"crdtsync/internal/core"
	"crdtsync/internal/lattice"
)

// Stats reports what a reconciliation shipped.
type Stats struct {
	// Messages is the number of messages exchanged (2 for state-driven,
	// 3 for digest-driven).
	Messages int
	// StateBytes is the total CRDT state shipped (both directions).
	StateBytes int
	// DigestBytes is the total digest data shipped.
	DigestBytes int
}

// TotalBytes returns all bytes on the wire.
func (s Stats) TotalBytes() int { return s.StateBytes + s.DigestBytes }

// StateDriven reconciles replicas a and b in two messages:
//
//  1. A sends its full state xA to B.
//  2. B merges it, computes Δ(xB, xA) — exactly what A misses — and sends
//     it back; A merges.
//
// Both replicas end equal to the join of the initial states.
func StateDriven(a, b lattice.State) Stats {
	stats := Stats{Messages: 2}

	// Message 1: A → B, full state.
	xA := a.Clone()
	stats.StateBytes += xA.SizeBytes()

	// B computes what A misses before merging (Δ against the received
	// state gives the same result either way, but computing against the
	// received xA directly mirrors the protocol).
	deltaForA := core.Delta(b, xA)
	b.Merge(xA)

	// Message 2: B → A, optimal delta.
	stats.StateBytes += deltaForA.SizeBytes()
	a.Merge(deltaForA)
	return stats
}

// digestHashBytes is the size of one irreducible hash on the wire.
const digestHashBytes = 8

// Digest summarizes a state as the set of 64-bit hashes of its
// join-irreducible decomposition.
type Digest map[uint64]struct{}

// NewDigest builds the digest of a state. Hashes are FNV-1a over the
// canonical String rendering of each irreducible (String renders are
// sorted and deterministic across replicas).
func NewDigest(x lattice.State) Digest {
	d := make(Digest)
	x.Irreducibles(func(y lattice.State) bool {
		d[hashIrreducible(y)] = struct{}{}
		return true
	})
	return d
}

// Contains reports whether the digest covers the irreducible y.
func (d Digest) Contains(y lattice.State) bool {
	_, ok := d[hashIrreducible(y)]
	return ok
}

// SizeBytes returns the digest's wire size.
func (d Digest) SizeBytes() int { return len(d) * digestHashBytes }

func hashIrreducible(y lattice.State) uint64 {
	h := fnv.New64a()
	h.Write([]byte(y.String()))
	return h.Sum64()
}

// missing joins the irreducibles of x not covered by the digest.
func missing(x lattice.State, d Digest) lattice.State {
	out := x.Bottom()
	x.Irreducibles(func(y lattice.State) bool {
		if !d.Contains(y) {
			out.Merge(y)
		}
		return true
	})
	return out
}

// DigestDriven reconciles replicas a and b in three messages:
//
//  1. A sends a digest of ⇓xA (hashes of its irreducibles), smaller than
//     the state itself.
//  2. B computes the delta A misses from the digest alone, and replies
//     with that delta plus a digest of its own state.
//  3. A merges, computes the delta B misses, and sends it.
//
// Convergence matches StateDriven; only the wire contents differ.
func DigestDriven(a, b lattice.State) Stats {
	stats := Stats{Messages: 3}

	// Message 1: A → B, digest of A.
	digA := NewDigest(a)
	stats.DigestBytes += digA.SizeBytes()

	// Message 2: B → A, what A misses + digest of B.
	deltaForA := missing(b, digA)
	digB := NewDigest(b)
	stats.StateBytes += deltaForA.SizeBytes()
	stats.DigestBytes += digB.SizeBytes()

	// Message 3: A → B, what B misses (computed before merging B's
	// delta, since digB describes B's pre-merge state).
	deltaForB := missing(a, digB)
	stats.StateBytes += deltaForB.SizeBytes()

	a.Merge(deltaForA)
	b.Merge(deltaForB)
	return stats
}
