package metrics_test

import (
	"testing"
	"time"

	"crdtsync/internal/metrics"
)

func TestTransmissionAdd(t *testing.T) {
	a := metrics.Transmission{Messages: 1, Elements: 2, PayloadBytes: 10, MetadataBytes: 3}
	b := metrics.Transmission{Messages: 2, Elements: 5, PayloadBytes: 20, MetadataBytes: 4}
	a.Add(b)
	if a.Messages != 3 || a.Elements != 7 || a.PayloadBytes != 30 || a.MetadataBytes != 7 {
		t.Errorf("Add = %+v", a)
	}
	if a.TotalBytes() != 37 {
		t.Errorf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestMemoryTotals(t *testing.T) {
	m := metrics.Memory{CRDTBytes: 100, BufferBytes: 30, MetadataBytes: 7}
	if m.Total() != 137 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.SyncOverhead() != 37 {
		t.Errorf("SyncOverhead = %d", m.SyncOverhead())
	}
}

func TestNodeStats(t *testing.T) {
	var s metrics.NodeStats
	s.RecordMemory(metrics.Memory{CRDTBytes: 10})
	s.RecordMemory(metrics.Memory{CRDTBytes: 30})
	if got := s.AvgMemoryTotal(); got != 20 {
		t.Errorf("AvgMemoryTotal = %f", got)
	}
	if got := s.MaxMemoryTotal(); got != 30 {
		t.Errorf("MaxMemoryTotal = %d", got)
	}
	s.RecordCPU(time.Millisecond)
	s.RecordCPU(time.Millisecond)
	if s.CPU != 2*time.Millisecond {
		t.Errorf("CPU = %v", s.CPU)
	}
	if len(s.MemorySamples()) != 2 {
		t.Error("sample count wrong")
	}
}

func TestNodeStatsEmpty(t *testing.T) {
	var s metrics.NodeStats
	if s.AvgMemoryTotal() != 0 || s.MaxMemoryTotal() != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestCollectorRoundSeries(t *testing.T) {
	c := metrics.NewCollector()
	c.RecordRoundSend(0, "a", metrics.Transmission{Messages: 1, Elements: 3, PayloadBytes: 5})
	c.RecordRoundSend(0, "b", metrics.Transmission{Messages: 1, Elements: 2, PayloadBytes: 1})
	c.RecordRoundSend(2, "a", metrics.Transmission{Messages: 1, Elements: 7, MetadataBytes: 4})

	if got := c.RoundElements(); len(got) != 3 || got[0] != 5 || got[1] != 0 || got[2] != 7 {
		t.Errorf("RoundElements = %v", got)
	}
	if got := c.RoundBytes(); got[0] != 6 || got[2] != 4 {
		t.Errorf("RoundBytes = %v", got)
	}
	total := c.TotalSent()
	if total.Messages != 3 || total.Elements != 12 {
		t.Errorf("TotalSent = %+v", total)
	}
	if ids := c.NodeIDs(); len(ids) != 2 || ids[0] != "a" {
		t.Errorf("NodeIDs = %v", ids)
	}
}

func TestCollectorAverages(t *testing.T) {
	c := metrics.NewCollector()
	c.Node("a").RecordMemory(metrics.Memory{CRDTBytes: 10, BufferBytes: 4})
	c.Node("b").RecordMemory(metrics.Memory{CRDTBytes: 30, BufferBytes: 2})
	if got := c.AvgMemoryPerNode(); got != 23 {
		t.Errorf("AvgMemoryPerNode = %f", got)
	}
	if got := c.AvgSyncMemoryPerNode(); got != 3 {
		t.Errorf("AvgSyncMemoryPerNode = %f", got)
	}
	c.Node("a").RecordCPU(time.Second)
	c.Node("b").RecordCPU(time.Second)
	if c.TotalCPU() != 2*time.Second {
		t.Errorf("TotalCPU = %v", c.TotalCPU())
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := metrics.NewCollector()
	if c.AvgMemoryPerNode() != 0 || c.AvgSyncMemoryPerNode() != 0 {
		t.Error("empty collector averages should be zero")
	}
}
