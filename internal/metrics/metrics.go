// Package metrics provides the measurement harness of the reproduction:
// per-node transmission accounting (lattice elements, payload bytes, and
// synchronization metadata bytes), periodic memory snapshots, and CPU
// processing-time accumulation, matching what the paper measures in §V.
package metrics

import (
	"sort"
	"time"
)

// Transmission accumulates what a node has sent over the network.
type Transmission struct {
	// Messages is the number of messages sent.
	Messages int
	// Elements is the number of lattice elements shipped (the paper's
	// micro-benchmark metric: set elements or map entries).
	Elements int
	// PayloadBytes is the byte size of the CRDT payload shipped.
	PayloadBytes int
	// MetadataBytes is the byte size of synchronization metadata shipped
	// (sequence numbers, digests, vectors).
	MetadataBytes int
}

// Add accumulates another transmission record.
func (t *Transmission) Add(o Transmission) {
	t.Messages += o.Messages
	t.Elements += o.Elements
	t.PayloadBytes += o.PayloadBytes
	t.MetadataBytes += o.MetadataBytes
}

// TotalBytes returns payload plus metadata bytes.
func (t Transmission) TotalBytes() int { return t.PayloadBytes + t.MetadataBytes }

// Memory is a snapshot of a node's memory footprint.
type Memory struct {
	// CRDTBytes is the size of the local lattice state.
	CRDTBytes int
	// BufferBytes is the size of outbound buffers (δ-buffer, key-delta
	// store, op transmission buffer).
	BufferBytes int
	// MetadataBytes is the size of synchronization metadata kept resident
	// (vectors, seen matrices, sequence counters).
	MetadataBytes int
}

// Total returns the full footprint.
func (m Memory) Total() int { return m.CRDTBytes + m.BufferBytes + m.MetadataBytes }

// SyncOverhead returns the footprint excluding the CRDT state itself, i.e.
// the memory required only for synchronization.
func (m Memory) SyncOverhead() int { return m.BufferBytes + m.MetadataBytes }

// NodeStats aggregates the full history of one node.
type NodeStats struct {
	Sent Transmission
	// memSamples holds one memory snapshot per sampled round.
	memSamples []Memory
	// CPU is the accumulated processing time across update, sync and
	// receive handling.
	CPU time.Duration
}

// RecordSend accumulates an outbound message.
func (s *NodeStats) RecordSend(t Transmission) { s.Sent.Add(t) }

// RecordMemory appends a memory snapshot.
func (s *NodeStats) RecordMemory(m Memory) { s.memSamples = append(s.memSamples, m) }

// RecordCPU accumulates processing time.
func (s *NodeStats) RecordCPU(d time.Duration) { s.CPU += d }

// MemorySamples returns the recorded snapshots.
func (s *NodeStats) MemorySamples() []Memory { return s.memSamples }

// AvgMemoryTotal returns the average total footprint across snapshots.
func (s *NodeStats) AvgMemoryTotal() float64 {
	if len(s.memSamples) == 0 {
		return 0
	}
	sum := 0
	for _, m := range s.memSamples {
		sum += m.Total()
	}
	return float64(sum) / float64(len(s.memSamples))
}

// MaxMemoryTotal returns the peak total footprint.
func (s *NodeStats) MaxMemoryTotal() int {
	max := 0
	for _, m := range s.memSamples {
		if t := m.Total(); t > max {
			max = t
		}
	}
	return max
}

// Collector gathers per-node statistics plus a per-round transmission
// series for time-series plots (Figure 1).
type Collector struct {
	nodes map[string]*NodeStats
	// roundElements[r] is the total number of elements sent in round r
	// across all nodes.
	roundElements []int
	roundBytes    []int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{nodes: make(map[string]*NodeStats)}
}

// Node returns (allocating if needed) the stats of a node.
func (c *Collector) Node(id string) *NodeStats {
	s, ok := c.nodes[id]
	if !ok {
		s = &NodeStats{}
		c.nodes[id] = s
	}
	return s
}

// NodeIDs returns the known node ids in sorted order.
func (c *Collector) NodeIDs() []string {
	out := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RecordRoundSend accumulates a message into both the per-node stats and
// the per-round series for the given round index.
func (c *Collector) RecordRoundSend(round int, node string, t Transmission) {
	c.Node(node).RecordSend(t)
	for len(c.roundElements) <= round {
		c.roundElements = append(c.roundElements, 0)
		c.roundBytes = append(c.roundBytes, 0)
	}
	c.roundElements[round] += t.Elements
	c.roundBytes[round] += t.TotalBytes()
}

// RoundElements returns the per-round total elements series.
func (c *Collector) RoundElements() []int { return c.roundElements }

// RoundBytes returns the per-round total bytes series.
func (c *Collector) RoundBytes() []int { return c.roundBytes }

// TotalSent sums transmission over all nodes.
func (c *Collector) TotalSent() Transmission {
	var t Transmission
	for _, s := range c.nodes {
		t.Add(s.Sent)
	}
	return t
}

// TotalCPU sums processing time over all nodes.
func (c *Collector) TotalCPU() time.Duration {
	var d time.Duration
	for _, s := range c.nodes {
		d += s.CPU
	}
	return d
}

// AvgMemoryPerNode returns the mean over nodes of each node's average
// total memory footprint.
func (c *Collector) AvgMemoryPerNode() float64 {
	if len(c.nodes) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range c.nodes {
		sum += s.AvgMemoryTotal()
	}
	return sum / float64(len(c.nodes))
}

// AvgSyncMemoryPerNode returns the mean over nodes of the average
// synchronization-only footprint (buffers plus metadata).
func (c *Collector) AvgSyncMemoryPerNode() float64 {
	if len(c.nodes) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range c.nodes {
		if len(s.memSamples) == 0 {
			continue
		}
		sum := 0
		for _, m := range s.memSamples {
			sum += m.SyncOverhead()
		}
		total += float64(sum) / float64(len(s.memSamples))
	}
	return total / float64(len(c.nodes))
}
