package vclock_test

import (
	"testing"
	"testing/quick"

	"crdtsync/internal/vclock"
)

func TestNextAndContains(t *testing.T) {
	c := vclock.New()
	d1 := c.Next("A")
	d2 := c.Next("A")
	if d1.Seq != 1 || d2.Seq != 2 {
		t.Fatalf("Next sequences: %d, %d", d1.Seq, d2.Seq)
	}
	if !c.Contains(d1) || !c.Contains(d2) {
		t.Error("vector should contain generated dots")
	}
	if c.Contains(vclock.Dot{Actor: "A", Seq: 3}) {
		t.Error("vector should not contain future dots")
	}
	if c.Contains(vclock.Dot{Actor: "B", Seq: 1}) {
		t.Error("vector should not contain other actors' dots")
	}
}

func TestSetOnlyRaises(t *testing.T) {
	c := vclock.New()
	c.Set("A", 5)
	c.Set("A", 3)
	if got := c.Get("A"); got != 5 {
		t.Errorf("Get(A) = %d, want 5 (Set must not lower)", got)
	}
}

func TestMergeLeqEqual(t *testing.T) {
	a := vclock.New()
	a.Set("A", 3)
	a.Set("B", 1)
	b := vclock.New()
	b.Set("A", 1)
	b.Set("C", 4)

	if a.Leq(b) || b.Leq(a) {
		t.Error("a and b should be incomparable")
	}
	if !a.Concurrent(b) {
		t.Error("a and b should be concurrent")
	}
	m := a.Clone()
	m.Merge(b)
	if m.Get("A") != 3 || m.Get("B") != 1 || m.Get("C") != 4 {
		t.Errorf("merge = %v", m)
	}
	if !a.Leq(m) || !b.Leq(m) {
		t.Error("merge should dominate both")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone should be equal")
	}
}

func TestEqualIgnoresZeroEntries(t *testing.T) {
	a := vclock.New()
	a.Set("A", 0) // no-op: Set only raises above 0
	b := vclock.New()
	if !a.Equal(b) {
		t.Error("empty vectors should be equal")
	}
}

func TestCausallyReady(t *testing.T) {
	// Receiver has delivered A:1 and B:2.
	c := vclock.New()
	c.Set("A", 1)
	c.Set("B", 2)

	// Op A:2 with dep {A:1} is ready.
	dep := vclock.New()
	dep.Set("A", 1)
	if !c.CausallyReady(vclock.Dot{Actor: "A", Seq: 2}, dep) {
		t.Error("A:2 should be deliverable")
	}
	// Op A:3 skips A:2: not ready.
	if c.CausallyReady(vclock.Dot{Actor: "A", Seq: 3}, dep) {
		t.Error("A:3 should wait for A:2")
	}
	// Op C:1 depending on B:3 (undelivered): not ready.
	dep2 := vclock.New()
	dep2.Set("B", 3)
	if c.CausallyReady(vclock.Dot{Actor: "C", Seq: 1}, dep2) {
		t.Error("C:1 should wait for B:3")
	}
	// Op C:1 depending on B:2 (delivered): ready.
	dep3 := vclock.New()
	dep3.Set("B", 2)
	if !c.CausallyReady(vclock.Dot{Actor: "C", Seq: 1}, dep3) {
		t.Error("C:1 should be deliverable")
	}
}

func TestActorsSorted(t *testing.T) {
	c := vclock.New()
	c.Set("B", 1)
	c.Set("A", 1)
	got := c.Actors()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Actors = %v", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestSizeBytes(t *testing.T) {
	c := vclock.New()
	c.Set("AB", 1) // 2-byte id + 8-byte counter
	if got := c.SizeBytes(); got != 10 {
		t.Errorf("SizeBytes = %d, want 10", got)
	}
	if got := vclock.SizeBytesFixed(15, 20); got != 15*28 {
		t.Errorf("SizeBytesFixed = %d, want %d", got, 15*28)
	}
}

func TestDotString(t *testing.T) {
	d := vclock.Dot{Actor: "n01", Seq: 7}
	if d.String() != "n01:7" {
		t.Errorf("String = %q", d.String())
	}
}

func TestQuickMergeIsJoin(t *testing.T) {
	build := func(vals []uint8) *vclock.VClock {
		c := vclock.New()
		actors := []string{"A", "B", "C", "D"}
		for i, v := range vals {
			c.Set(actors[i%len(actors)], uint64(v))
		}
		return c
	}
	f := func(as, bs []uint8) bool {
		a, b := build(as), build(bs)
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		// Merge is commutative, idempotent, and an upper bound.
		self := a.Clone()
		self.Merge(a)
		return ab.Equal(ba) && a.Leq(ab) && b.Leq(ab) && self.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
