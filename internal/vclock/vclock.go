// Package vclock implements version vectors and dots, the causality
// substrate needed by the Scuttlebutt and operation-based baselines of the
// paper's evaluation (§V-B) and by the add-wins set extension.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Dot identifies a single event: the s-th event of replica Actor. Sequence
// numbers start at 1; sequence 0 never identifies an event.
type Dot struct {
	Actor string
	Seq   uint64
}

// String renders the dot as actor:seq.
func (d Dot) String() string { return fmt.Sprintf("%s:%d", d.Actor, d.Seq) }

// VClock is a version vector I ↪ ℕ mapping replicas to the highest
// contiguous sequence number known. The zero value is unusable; use New.
type VClock struct {
	v map[string]uint64
}

// New returns an empty vector.
func New() *VClock { return &VClock{v: make(map[string]uint64)} }

// Get returns the sequence recorded for actor (0 if absent).
func (c *VClock) Get(actor string) uint64 { return c.v[actor] }

// Set records seq for actor if it exceeds the current entry.
func (c *VClock) Set(actor string, seq uint64) {
	if seq > c.v[actor] {
		c.v[actor] = seq
	}
}

// Next returns the dot for the next locally generated event of actor and
// records it in the vector.
func (c *VClock) Next(actor string) Dot {
	n := c.v[actor] + 1
	c.v[actor] = n
	return Dot{Actor: actor, Seq: n}
}

// Contains reports whether the vector dominates the dot (d.Seq ≤ entry).
func (c *VClock) Contains(d Dot) bool { return d.Seq <= c.v[d.Actor] }

// Merge takes the entry-wise max with other in place.
func (c *VClock) Merge(other *VClock) {
	for a, s := range other.v {
		if s > c.v[a] {
			c.v[a] = s
		}
	}
}

// Leq reports entry-wise dominance: every entry of c is ≤ other's.
func (c *VClock) Leq(other *VClock) bool {
	for a, s := range c.v {
		if s > other.v[a] {
			return false
		}
	}
	return true
}

// Equal reports entry-wise equality (absent entries count as 0).
func (c *VClock) Equal(other *VClock) bool {
	for a, s := range c.v {
		if s != other.v[a] && s != 0 {
			return false
		}
	}
	for a, s := range other.v {
		if s != c.v[a] && s != 0 {
			return false
		}
	}
	return true
}

// Concurrent reports that neither vector dominates the other.
func (c *VClock) Concurrent(other *VClock) bool {
	return !c.Leq(other) && !other.Leq(c)
}

// CausallyReady reports whether an event tagged with dep (the sender's
// vector *before* the event) and dot d can be delivered on top of c:
// every entry of dep must be contained in c, and d must be the next
// sequence expected from its actor.
func (c *VClock) CausallyReady(d Dot, dep *VClock) bool {
	if c.v[d.Actor]+1 != d.Seq {
		return false
	}
	for a, s := range dep.v {
		if a == d.Actor {
			continue
		}
		if s > c.v[a] {
			return false
		}
	}
	return true
}

// Len returns the number of non-zero entries.
func (c *VClock) Len() int { return len(c.v) }

// Actors returns the actors with non-zero entries in sorted order.
func (c *VClock) Actors() []string {
	out := make([]string, 0, len(c.v))
	for a := range c.v {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (c *VClock) Clone() *VClock {
	n := &VClock{v: make(map[string]uint64, len(c.v))}
	for a, s := range c.v {
		n.v[a] = s
	}
	return n
}

// SizeBytes returns the wire size: per entry, the actor id plus 8 bytes.
// Absent entries still cost space in a fixed-membership deployment, so
// callers that account for the paper's N-entry vectors should use
// SizeBytesFixed instead.
func (c *VClock) SizeBytes() int {
	n := 0
	for a := range c.v {
		n += len(a) + 8
	}
	return n
}

// SizeBytesFixed returns the wire size of a vector serialized for a fixed
// membership of numActors replicas with idBytes-long identifiers, matching
// the paper's metadata model in Figure 9 (N entries regardless of how many
// are zero).
func SizeBytesFixed(numActors, idBytes int) int {
	return numActors * (idBytes + 8)
}

// String renders the vector in sorted actor order.
func (c *VClock) String() string {
	actors := c.Actors()
	parts := make([]string, 0, len(actors))
	for _, a := range actors {
		parts = append(parts, fmt.Sprintf("%s:%d", a, c.v[a]))
	}
	return "[" + strings.Join(parts, ",") + "]"
}
