// Package workload defines the update workloads of the paper's evaluation
// (Table I): GSet unique-element additions, GCounter increments, and GMap
// K% key updates, plus the op/datatype abstraction that lets every
// synchronization protocol (state-, delta-, digest- and op-based) run the
// same workload, and a Zipf sampler for the Retwis experiment's contention
// knob.
package workload

import (
	"fmt"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

// Kind enumerates the update operations of the micro-benchmarks.
type Kind int

// Operation kinds.
const (
	// KindAdd adds Elem to a grow-only set.
	KindAdd Kind = iota
	// KindInc increments a counter by N.
	KindInc
	// KindPut bumps the version of map key Key (GMap micro-benchmark) or
	// writes Value at Key (Retwis-style maps of registers).
	KindPut
	// KindRemove removes Elem from a removable set (AWSet extension).
	KindRemove
)

// Op is one update operation produced by a workload generator.
type Op struct {
	Kind  Kind
	Elem  string // KindAdd: element to insert
	Key   string // KindPut: map key
	Value string // KindPut: payload (may be empty for version bumps)
	N     uint64 // KindInc: increment amount
}

// Datatype adapts one CRDT to the protocol engines: it creates states,
// turns ops into optimal deltas, and sizes ops for op-based accounting.
type Datatype interface {
	// Name identifies the datatype in reports ("gset", "gcounter", ...).
	Name() string
	// New returns a fresh bottom state.
	New() lattice.State
	// Delta is the pure δ-mutator: it returns the optimal delta of
	// applying op at the given replica on state s, without mutating s.
	Delta(s lattice.State, replica string, op Op) lattice.State
	// OpBytes returns the wire size of op when shipped as an operation
	// by op-based synchronization.
	OpBytes(op Op) int
}

// GSetType adapts crdt.GSet.
type GSetType struct{}

// Name implements Datatype.
func (GSetType) Name() string { return "gset" }

// New implements Datatype.
func (GSetType) New() lattice.State { return crdt.NewGSet() }

// Delta implements Datatype for KindAdd ops.
func (GSetType) Delta(s lattice.State, _ string, op Op) lattice.State {
	if op.Kind != KindAdd {
		panic("workload: GSetType supports only KindAdd")
	}
	return s.(*crdt.GSet).AddDelta(op.Elem)
}

// OpBytes implements Datatype.
func (GSetType) OpBytes(op Op) int { return len(op.Elem) }

// GCounterType adapts crdt.GCounter.
type GCounterType struct{}

// Name implements Datatype.
func (GCounterType) Name() string { return "gcounter" }

// New implements Datatype.
func (GCounterType) New() lattice.State { return crdt.NewGCounter() }

// Delta implements Datatype for KindInc ops.
func (GCounterType) Delta(s lattice.State, replica string, op Op) lattice.State {
	if op.Kind != KindInc {
		panic("workload: GCounterType supports only KindInc")
	}
	return s.(*crdt.GCounter).IncDelta(replica, op.N)
}

// OpBytes implements Datatype.
func (GCounterType) OpBytes(Op) int { return 8 }

// GMapType adapts a grow-only map whose values are version chains
// (lattice.MaxInt): every KindPut bumps the version of one key. This is the
// GMap K% micro-benchmark state; the GCounter benchmark is its K = 100%
// special case, as the paper notes.
type GMapType struct{}

// Name implements Datatype.
func (GMapType) Name() string { return "gmap" }

// New implements Datatype.
func (GMapType) New() lattice.State { return crdt.NewGMap() }

// Delta implements Datatype for KindPut ops: {key ↦ version + 1}.
func (GMapType) Delta(s lattice.State, _ string, op Op) lattice.State {
	if op.Kind != KindPut {
		panic("workload: GMapType supports only KindPut")
	}
	m := s.(*crdt.GMap)
	var next uint64 = 1
	if cur := m.Get(op.Key); cur != nil {
		next = cur.(*lattice.MaxInt).V + 1
	}
	return lattice.NewMapEntry(op.Key, lattice.NewMaxInt(next))
}

// OpBytes implements Datatype.
func (GMapType) OpBytes(op Op) int { return len(op.Key) + 8 }

// LWWMapType adapts a grow-only map whose values are LWW registers,
// the shape of the Retwis wall and timeline objects.
type LWWMapType struct{}

// Name implements Datatype.
func (LWWMapType) Name() string { return "lwwmap" }

// New implements Datatype.
func (LWWMapType) New() lattice.State { return crdt.NewGMap() }

// Delta implements Datatype for KindPut ops: write Value at Key with a
// version derived from the current register (current TS + 1).
func (LWWMapType) Delta(s lattice.State, replica string, op Op) lattice.State {
	if op.Kind != KindPut {
		panic("workload: LWWMapType supports only KindPut")
	}
	m := s.(*crdt.GMap)
	var ts uint64 = 1
	if cur := m.Get(op.Key); cur != nil {
		ts = cur.(*crdt.LWWRegister).TS + 1
	}
	reg := &crdt.LWWRegister{TS: ts, Writer: replica, Val: op.Value}
	return lattice.NewMapEntry(op.Key, reg)
}

// OpBytes implements Datatype.
func (LWWMapType) OpBytes(op Op) int { return len(op.Key) + len(op.Value) + 8 }

// AWSetType adapts crdt.AWSet, the add-wins observed-remove set extension
// of Appendix B. It accepts KindAdd and KindRemove ops.
type AWSetType struct{}

// Name implements Datatype.
func (AWSetType) Name() string { return "awset" }

// New implements Datatype.
func (AWSetType) New() lattice.State { return crdt.NewAWSet() }

// Delta implements Datatype for KindAdd and KindRemove ops.
func (AWSetType) Delta(s lattice.State, replica string, op Op) lattice.State {
	set := s.(*crdt.AWSet)
	switch op.Kind {
	case KindAdd:
		return set.AddDelta(replica, op.Elem)
	case KindRemove:
		return set.RemoveDelta(op.Elem)
	default:
		panic("workload: AWSetType supports only KindAdd and KindRemove")
	}
}

// OpBytes implements Datatype.
func (AWSetType) OpBytes(op Op) int { return len(op.Elem) + 12 }

// Generator produces the per-round updates of one node.
type Generator interface {
	// Ops returns the operations node (with the given index among n
	// nodes) executes in the given round.
	Ops(round int, node string, nodeIndex, numNodes int) []Op
}

// AWSetGen adds one unique element per node per round and, every
// RemoveEvery rounds, removes the element the node added RemoveEvery
// rounds earlier — a grow-mostly workload that exercises removal.
type AWSetGen struct {
	// RemoveEvery is the removal period in rounds (0 disables removals).
	RemoveEvery int
}

// Ops implements Generator.
func (g AWSetGen) Ops(round int, node string, _, _ int) []Op {
	elem := func(r int) string { return fmt.Sprintf("%s-e%05d", node, r) }
	ops := []Op{{Kind: KindAdd, Elem: elem(round)}}
	if g.RemoveEvery > 0 && round >= g.RemoveEvery && round%g.RemoveEvery == 0 {
		ops = append(ops, Op{Kind: KindRemove, Elem: elem(round - g.RemoveEvery)})
	}
	return ops
}

// GSetGen adds one globally unique element per node per round
// (Table I: "addition of unique element").
type GSetGen struct{}

// Ops implements Generator.
func (GSetGen) Ops(round int, node string, _, _ int) []Op {
	return []Op{{Kind: KindAdd, Elem: fmt.Sprintf("%s-e%05d", node, round)}}
}

// GCounterGen increments by one per node per round
// (Table I: "single increment").
type GCounterGen struct{}

// Ops implements Generator.
func (GCounterGen) Ops(int, string, int, int) []Op {
	return []Op{{Kind: KindInc, N: 1}}
}

// GMapGen updates K/N% of TotalKeys per node per round, partitioned so that
// globally K% of all keys change within each synchronization interval
// (Table I: "change the value of K/N% keys").
type GMapGen struct {
	// K is the global percentage of keys modified per interval (10, 30,
	// 60, 100 in the paper).
	K int
	// TotalKeys is the map size (1000 in the paper).
	TotalKeys int
}

// Ops implements Generator: node i updates a rotating window of its own
// TotalKeys/numNodes partition.
func (g GMapGen) Ops(round int, _ string, nodeIndex, numNodes int) []Op {
	if g.TotalKeys == 0 || numNodes == 0 {
		return nil
	}
	chunk := g.TotalKeys / numNodes
	if chunk == 0 {
		chunk = 1
	}
	perRound := g.TotalKeys * g.K / 100 / numNodes
	if perRound < 1 {
		perRound = 1
	}
	if perRound > chunk {
		perRound = chunk
	}
	base := nodeIndex * chunk
	ops := make([]Op, 0, perRound)
	for j := 0; j < perRound; j++ {
		k := base + (round*perRound+j)%chunk
		ops = append(ops, Op{Kind: KindPut, Key: fmt.Sprintf("k%04d", k)})
	}
	return ops
}
