package workload_test

import (
	"math"
	"strings"
	"testing"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/workload"
)

func TestGSetGenUnique(t *testing.T) {
	gen := workload.GSetGen{}
	seen := make(map[string]bool)
	for round := 0; round < 10; round++ {
		for node := 0; node < 5; node++ {
			ops := gen.Ops(round, "n0"+string(rune('0'+node)), node, 5)
			if len(ops) != 1 || ops[0].Kind != workload.KindAdd {
				t.Fatalf("ops = %+v", ops)
			}
			if seen[ops[0].Elem] {
				t.Fatalf("duplicate element %q", ops[0].Elem)
			}
			seen[ops[0].Elem] = true
		}
	}
}

func TestGCounterGen(t *testing.T) {
	ops := workload.GCounterGen{}.Ops(3, "n00", 0, 15)
	if len(ops) != 1 || ops[0].Kind != workload.KindInc || ops[0].N != 1 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestGMapGenGlobalCoverage(t *testing.T) {
	// With K=30 and 1000 keys over 10 nodes, globally 300 keys (30%)
	// must be touched per round, disjointly across nodes.
	gen := workload.GMapGen{K: 30, TotalKeys: 1000}
	seen := make(map[string]int)
	total := 0
	for node := 0; node < 10; node++ {
		ops := gen.Ops(0, "n", node, 10)
		total += len(ops)
		for _, op := range ops {
			if op.Kind != workload.KindPut {
				t.Fatalf("op kind = %v", op.Kind)
			}
			seen[op.Key]++
		}
	}
	if total != 300 {
		t.Errorf("global keys touched = %d, want 300", total)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %s touched %d times in one round, want 1 (disjoint partitions)", k, n)
		}
	}
}

func TestGMapGenRotation(t *testing.T) {
	// Distinct rounds eventually cover a node's whole partition when
	// K < 100.
	gen := workload.GMapGen{K: 10, TotalKeys: 100}
	keys := make(map[string]bool)
	for round := 0; round < 20; round++ {
		for _, op := range gen.Ops(round, "n", 0, 10) {
			keys[op.Key] = true
		}
	}
	if len(keys) != 10 { // node 0's partition is 10 keys
		t.Errorf("rotation covered %d keys, want 10", len(keys))
	}
}

func TestDatatypeDeltas(t *testing.T) {
	// GSet driver.
	gs := workload.GSetType{}
	s := gs.New()
	d := gs.Delta(s, "n00", workload.Op{Kind: workload.KindAdd, Elem: "x"})
	if d.Elements() != 1 {
		t.Errorf("gset delta = %v", d)
	}
	s.Merge(d)
	if d2 := gs.Delta(s, "n00", workload.Op{Kind: workload.KindAdd, Elem: "x"}); !d2.IsBottom() {
		t.Error("re-adding should yield bottom delta")
	}

	// GCounter driver.
	gc := workload.GCounterType{}
	c := gc.New()
	d = gc.Delta(c, "n00", workload.Op{Kind: workload.KindInc, N: 2})
	if d.(*crdt.GCounter).Entry("n00") != 2 {
		t.Errorf("gcounter delta = %v", d)
	}

	// GMap driver bumps versions.
	gm := workload.GMapType{}
	m := gm.New()
	d = gm.Delta(m, "n00", workload.Op{Kind: workload.KindPut, Key: "k1"})
	m.Merge(d)
	d = gm.Delta(m, "n00", workload.Op{Kind: workload.KindPut, Key: "k1"})
	if got := d.(*crdt.GMap).Get("k1").(*lattice.MaxInt).V; got != 2 {
		t.Errorf("second put version = %d, want 2", got)
	}

	// LWWMap driver writes values.
	lm := workload.LWWMapType{}
	w := lm.New()
	d = lm.Delta(w, "n00", workload.Op{Kind: workload.KindPut, Key: "k", Value: "v"})
	w.Merge(d)
	if got := w.(*crdt.GMap).Get("k").(*crdt.LWWRegister).Value(); got != "v" {
		t.Errorf("lww value = %q", got)
	}
}

func TestDatatypeKindPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"gset-inc", func() {
			workload.GSetType{}.Delta(workload.GSetType{}.New(), "n", workload.Op{Kind: workload.KindInc})
		}},
		{"gcounter-add", func() {
			workload.GCounterType{}.Delta(workload.GCounterType{}.New(), "n", workload.Op{Kind: workload.KindAdd})
		}},
		{"gmap-add", func() {
			workload.GMapType{}.Delta(workload.GMapType{}.New(), "n", workload.Op{Kind: workload.KindAdd})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic on wrong op kind")
				}
			}()
			tc.fn()
		})
	}
}

func TestOpBytes(t *testing.T) {
	if got := (workload.GSetType{}).OpBytes(workload.Op{Elem: "abcd"}); got != 4 {
		t.Errorf("gset OpBytes = %d", got)
	}
	if got := (workload.GCounterType{}).OpBytes(workload.Op{}); got != 8 {
		t.Errorf("gcounter OpBytes = %d", got)
	}
	if got := (workload.GMapType{}).OpBytes(workload.Op{Key: "abc"}); got != 11 {
		t.Errorf("gmap OpBytes = %d", got)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := workload.NewZipf(10, 0, 1)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		p := float64(c) / n
		if math.Abs(p-0.1) > 0.01 {
			t.Errorf("theta=0 index %d probability %.3f, want ≈0.1", i, p)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := workload.NewZipf(1000, 1.5, 1)
	const n = 100000
	head := 0
	for i := 0; i < n; i++ {
		if z.Next() < 10 {
			head++
		}
	}
	// With theta=1.5 the top-10 of 1000 items carry ≈78% of the mass
	// (Σ1/i^1.5 for i ≤ 10 over i ≤ 1000).
	if frac := float64(head) / n; frac < 0.74 || frac > 0.82 {
		t.Errorf("top-10 mass = %.3f, want ≈0.78 at theta=1.5", frac)
	}
	// Probabilities are decreasing.
	if z.Prob(0) <= z.Prob(1) || z.Prob(1) <= z.Prob(10) {
		t.Error("zipf probabilities should decrease with rank")
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := workload.NewZipf(100, 1.0, 9)
	b := workload.NewZipf(100, 1.0, 9)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed should give same sequence")
		}
	}
	if a.N() != 100 {
		t.Errorf("N = %d", a.N())
	}
}

func TestZipfValidation(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
	}{{0, 1}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%f) should panic", tc.n, tc.theta)
				}
			}()
			workload.NewZipf(tc.n, tc.theta, 1)
		}()
	}
}

func TestGSetGenElementNaming(t *testing.T) {
	ops := workload.GSetGen{}.Ops(7, "n03", 3, 15)
	if !strings.HasPrefix(ops[0].Elem, "n03-e") {
		t.Errorf("element %q should embed the node id", ops[0].Elem)
	}
}
