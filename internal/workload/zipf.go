package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples indexes in [0, n) with probability proportional to
// 1/(i+1)^theta. Unlike math/rand's Zipf it supports any theta ≥ 0
// (the paper sweeps coefficients 0.5–1.5, crossing the s > 1 restriction
// of the standard library), using an inverse-CDF table.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf returns a sampler over n items with exponent theta, seeded
// deterministically.
func NewZipf(n int, theta float64, seed int64) *Zipf {
	if n <= 0 {
		panic("workload: NewZipf requires n > 0")
	}
	if theta < 0 {
		panic("workload: NewZipf requires theta >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// Next samples one index.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability mass of index i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
