package workload

// Op constructors. Engines and stores consume Op values; constructing
// them field by field at every call site invites zero-value mistakes
// (a KindInc with N == 0, a KindAdd with the element in Value), so the
// typed surfaces build ops exclusively through these.

// Inc returns the operation that increments the counter object named key
// by n.
func Inc(key string, n uint64) Op {
	return Op{Kind: KindInc, Key: key, N: n}
}

// Add returns the operation that inserts elem into the set object named
// key.
func Add(key, elem string) Op {
	return Op{Kind: KindAdd, Key: key, Elem: elem}
}

// Remove returns the operation that removes elem from the removable-set
// object named key (AWSet semantics: add-wins under concurrency).
func Remove(key, elem string) Op {
	return Op{Kind: KindRemove, Key: key, Elem: elem}
}

// Put returns the operation that writes value at the register keyed by
// key (LWW maps write the register at map key key; version-chain maps
// ignore value and bump key's version).
func Put(key, value string) Op {
	return Op{Kind: KindPut, Key: key, Value: value}
}
