package netsim

import (
	"testing"

	"crdtsync/internal/protocol"
	"crdtsync/internal/topology"
	"crdtsync/internal/workload"
)

// protocols under test, used across the integration tests.
func allFactories() map[string]protocol.Factory {
	return map[string]protocol.Factory{
		"state":         protocol.NewStateBased(),
		"delta-classic": protocol.NewDeltaClassic(),
		"delta-bp":      protocol.NewDeltaBased(true, false),
		"delta-rr":      protocol.NewDeltaBased(false, true),
		"delta-bprr":    protocol.NewDeltaBPRR(),
		"scuttlebutt":   protocol.NewScuttlebutt(),
		"scuttlebuttgc": protocol.NewScuttlebuttGC(),
		"opbased":       protocol.NewOpBased(),
	}
}

func allTopologies() map[string]*topology.Graph {
	return map[string]*topology.Graph{
		"mesh": topology.PartialMesh(15, 4, 1),
		"tree": topology.Tree(15, 2),
		"line": topology.Line(5),
		"ring": topology.Ring(7),
	}
}

func allWorkloads() map[string]struct {
	dt  workload.Datatype
	gen workload.Generator
} {
	return map[string]struct {
		dt  workload.Datatype
		gen workload.Generator
	}{
		"gset":     {workload.GSetType{}, workload.GSetGen{}},
		"gcounter": {workload.GCounterType{}, workload.GCounterGen{}},
		"gmap30":   {workload.GMapType{}, workload.GMapGen{K: 30, TotalKeys: 100}},
		"awset":    {workload.AWSetType{}, workload.AWSetGen{RemoveEvery: 3}},
	}
}

// TestConvergenceAllProtocols checks that every protocol converges every
// replica to the same state on every topology and datatype.
func TestConvergenceAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol x topology x workload sweep is slow")
	}
	for tname, topo := range allTopologies() {
		for pname, factory := range allFactories() {
			for wname, w := range allWorkloads() {
				t.Run(tname+"/"+pname+"/"+wname, func(t *testing.T) {
					sim := New(topo, factory, w.dt, Options{Seed: 42})
					sim.Run(10, w.gen)
					rounds, ok := sim.RunQuiet(50)
					if !ok {
						t.Fatalf("no convergence after %d quiet rounds", rounds)
					}
					if sim.Engine(sim.Nodes()[0]).State().IsBottom() {
						t.Fatal("converged to bottom: workload had no effect")
					}
				})
			}
		}
	}
}

// TestConvergenceUnderFaults checks convergence with message duplication
// and reordering, the paper's channel model.
func TestConvergenceUnderFaults(t *testing.T) {
	topo := topology.PartialMesh(15, 4, 3)
	for pname, factory := range allFactories() {
		t.Run(pname, func(t *testing.T) {
			sim := New(topo, factory, workload.GSetType{}, Options{
				Seed:          7,
				DuplicateProb: 0.3,
				Reorder:       true,
			})
			sim.Run(10, workload.GSetGen{})
			if _, ok := sim.RunQuiet(60); !ok {
				t.Fatal("no convergence under duplication + reordering")
			}
		})
	}
}

// TestCrossProtocolEquivalence checks that every protocol drives the
// replicas to the *same* final state for the same deterministic workload —
// they differ in cost, never in outcome.
func TestCrossProtocolEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-protocol sweep is slow")
	}
	topo := topology.PartialMesh(15, 4, 1)
	for wname, w := range allWorkloads() {
		t.Run(wname, func(t *testing.T) {
			var reference protocol.Engine
			for pname, factory := range allFactories() {
				sim := New(topo, factory, w.dt, Options{Seed: 42})
				sim.Run(10, w.gen)
				if _, ok := sim.RunQuiet(60); !ok {
					t.Fatalf("%s did not converge", pname)
				}
				eng := sim.Engine(sim.Nodes()[0])
				if reference == nil {
					reference = eng
					continue
				}
				if !eng.State().Equal(reference.State()) {
					t.Errorf("%s converged to a different state than %s",
						pname, reference.ID())
				}
			}
		})
	}
}

// TestAckedDeltaMatchesPlainOnReliableChannels checks that with no loss,
// the acknowledgment-based δ-buffer converges like the clear-after-send
// variant on every topology.
func TestAckedDeltaMatchesPlainOnReliableChannels(t *testing.T) {
	for tname, topo := range allTopologies() {
		t.Run(tname, func(t *testing.T) {
			sim := New(topo, protocol.NewDeltaAcked(true, true), workload.GSetType{}, Options{Seed: 5})
			sim.Run(10, workload.GSetGen{})
			if _, ok := sim.RunQuiet(50); !ok {
				t.Fatal("acked delta did not converge")
			}
		})
	}
}

// TestAckedDeltaSurvivesMessageLoss is the robustness result the paper
// sketches in §IV: clearing the δ-buffer each round is only safe on
// lossless channels; with sequence numbers and acks, entries are resent
// until acknowledged and convergence survives heavy loss.
func TestAckedDeltaSurvivesMessageLoss(t *testing.T) {
	topo := topology.PartialMesh(15, 4, 3)
	opts := Options{Seed: 11, DropProb: 0.3}
	for _, v := range []struct {
		name   string
		bp, rr bool
	}{{"classic-acked", false, false}, {"bp+rr-acked", true, true}} {
		t.Run(v.name, func(t *testing.T) {
			sim := New(topo, protocol.NewDeltaAcked(v.bp, v.rr), workload.GSetType{}, opts)
			sim.Run(10, workload.GSetGen{})
			if r, ok := sim.RunQuiet(200); !ok {
				t.Fatalf("no convergence under 30%% loss after %d quiet rounds", r)
			}
			// All 150 unique elements must have survived the loss.
			if got := sim.Engine(sim.Nodes()[0]).State().Elements(); got != 150 {
				t.Errorf("converged to %d elements, want 150", got)
			}
		})
	}
}

// TestPlainDeltaLosesDataUnderLoss documents the converse: the
// clear-after-send algorithm drops buffered δ-groups whose message was
// lost, so replicas converge (quiesce) on incomplete states.
func TestPlainDeltaLosesDataUnderLoss(t *testing.T) {
	topo := topology.PartialMesh(15, 4, 3)
	sim := New(topo, protocol.NewDeltaBPRR(), workload.GSetType{}, Options{Seed: 11, DropProb: 0.3})
	sim.Run(10, workload.GSetGen{})
	sim.RunQuiet(200)
	got := sim.Engine(sim.Nodes()[0]).State().Elements()
	if got >= 150 {
		t.Skip("loss pattern happened to spare all δ-groups; nothing to show")
	}
	// The run documented the expected data loss; nothing to assert
	// beyond it being below the full set.
	t.Logf("plain delta under loss kept %d/150 elements (expected < 150)", got)
}

// TestHeadlineResult reproduces the paper's core claim on a mesh: classic
// delta-based transmits roughly as much as state-based, while BP+RR
// transmits far less; and in a tree, BP alone already reaches BP+RR.
func TestHeadlineResult(t *testing.T) {
	run := func(topo *topology.Graph, f protocol.Factory) int {
		sim := New(topo, f, workload.GSetType{}, Options{Seed: 42})
		sim.Run(50, workload.GSetGen{})
		sim.RunQuiet(50)
		return sim.Collector().TotalSent().Elements
	}

	mesh := topology.PartialMesh(15, 4, 1)
	stateEl := run(mesh, protocol.NewStateBased())
	classicEl := run(mesh, protocol.NewDeltaClassic())
	bprrEl := run(mesh, protocol.NewDeltaBPRR())

	if classicEl < stateEl/2 {
		t.Errorf("mesh: classic delta (%d) should be comparable to state-based (%d)", classicEl, stateEl)
	}
	if bprrEl*3 > classicEl {
		t.Errorf("mesh: BP+RR (%d) should be well below classic (%d)", bprrEl, classicEl)
	}

	tree := topology.Tree(15, 2)
	bpEl := run(tree, protocol.NewDeltaBased(true, false))
	bprrTreeEl := run(tree, protocol.NewDeltaBPRR())
	if diff := bpEl - bprrTreeEl; diff < 0 {
		diff = -diff
	} else if float64(diff) > 0.1*float64(bprrTreeEl) {
		t.Errorf("tree: BP alone (%d) should match BP+RR (%d)", bpEl, bprrTreeEl)
	}
}
