package netsim

import (
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"testing"

	"crdtsync/internal/protocol"
	"crdtsync/internal/topology"
	"crdtsync/internal/workload"
)

// TestDeterministicMetrics checks that two runs with the same seed produce
// identical transmission accounting.
func TestDeterministicMetrics(t *testing.T) {
	runOnce := func() (int, int, int) {
		topo := topology.PartialMesh(15, 4, 2)
		sim := New(topo, protocol.NewDeltaBPRR(), workload.GSetType{}, Options{Seed: 9})
		sim.Run(15, workload.GSetGen{})
		sim.RunQuiet(50)
		sent := sim.Collector().TotalSent()
		return sent.Messages, sent.Elements, sent.TotalBytes()
	}
	m1, e1, b1 := runOnce()
	m2, e2, b2 := runOnce()
	if m1 != m2 || e1 != e2 || b1 != b2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", m1, e1, b1, m2, e2, b2)
	}
}

// TestCPUMeasurement checks that MeasureCPU populates per-node CPU time.
func TestCPUMeasurement(t *testing.T) {
	topo := topology.Line(3)
	sim := New(topo, protocol.NewStateBased(), workload.GSetType{}, Options{Seed: 1, MeasureCPU: true})
	sim.Run(5, workload.GSetGen{})
	if sim.Collector().TotalCPU() <= 0 {
		t.Error("MeasureCPU did not accumulate time")
	}
	off := New(topo, protocol.NewStateBased(), workload.GSetType{}, Options{Seed: 1})
	off.Run(5, workload.GSetGen{})
	if off.Collector().TotalCPU() != 0 {
		t.Error("CPU measured despite MeasureCPU=false")
	}
}

// TestNonNeighborSendPanics checks the simulator's topology enforcement.
func TestNonNeighborSendPanics(t *testing.T) {
	topo := topology.Line(3) // n00 — n01 — n02
	var rogue protocol.Factory = func(cfg protocol.Config) protocol.Engine {
		return &rogueEngine{cfg: cfg}
	}
	sim := New(topo, rogue, workload.GSetType{}, Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("sending to a non-neighbor should panic")
		}
	}()
	sim.Step(nil)
}

// rogueEngine sends to a node it is not connected to.
type rogueEngine struct {
	cfg protocol.Config
}

func (r *rogueEngine) ID() string             { return r.cfg.ID }
func (r *rogueEngine) State() lattice.State   { return r.cfg.Datatype.New() }
func (r *rogueEngine) LocalOp(workload.Op)    {}
func (r *rogueEngine) Memory() metrics.Memory { return metrics.Memory{} }
func (r *rogueEngine) Sync(send protocol.Sender) {
	if r.cfg.ID == "n00" {
		send("n02", &protocol.DeltaMsg{})
	}
}
func (r *rogueEngine) Deliver(string, protocol.Msg, protocol.Sender) {}

// TestRoundCounting checks Round() and the per-round series lengths.
func TestRoundCounting(t *testing.T) {
	topo := topology.Line(2)
	sim := New(topo, protocol.NewDeltaBPRR(), workload.GSetType{}, Options{Seed: 1})
	sim.Run(7, workload.GSetGen{})
	if sim.Round() != 7 {
		t.Errorf("Round = %d, want 7", sim.Round())
	}
	if got := len(sim.Collector().RoundElements()); got > 7 {
		t.Errorf("round series has %d entries for 7 rounds", got)
	}
}

// TestRunQuietStopsEarly checks that convergence is detected promptly on a
// trivial topology.
func TestRunQuietStopsEarly(t *testing.T) {
	topo := topology.Line(2)
	sim := New(topo, protocol.NewStateBased(), workload.GSetType{}, Options{Seed: 1})
	sim.Run(3, workload.GSetGen{})
	rounds, ok := sim.RunQuiet(50)
	if !ok {
		t.Fatal("no convergence")
	}
	if rounds > 3 {
		t.Errorf("took %d quiet rounds on a 2-node line, want ≤ 3", rounds)
	}
}

// TestSingleNode checks the degenerate cluster.
func TestSingleNode(t *testing.T) {
	topo := topology.NewGraph()
	topo.AddNode("n00")
	sim := New(topo, protocol.NewDeltaBPRR(), workload.GSetType{}, Options{Seed: 1})
	sim.Run(5, workload.GSetGen{})
	if !sim.Converged() {
		t.Error("single node should always be converged")
	}
	if got := sim.Engine("n00").State().Elements(); got != 5 {
		t.Errorf("local ops lost: %d elements, want 5", got)
	}
}
