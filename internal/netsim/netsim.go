// Package netsim is the replica-cluster substrate of the reproduction: a
// deterministic lock-step simulator that replaces the paper's
// Emulab/Kubernetes deployment. Each round every node (1) executes its
// workload updates, (2) runs one periodic synchronization step, and (3)
// receives every message addressed to it — including same-round replies,
// which Scuttlebutt's push-pull reconciliation requires.
//
// The channel model matches the paper's assumptions: no loss, but optional
// duplication and reordering (§IV). All transmission, memory and CPU
// accounting flows into a metrics.Collector.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/topology"
	"crdtsync/internal/workload"
)

// Options configures a simulation.
type Options struct {
	// Seed drives duplication/reordering decisions.
	Seed int64
	// DuplicateProb is the per-message probability of duplicate delivery.
	DuplicateProb float64
	// DropProb is the per-message probability of loss. The paper assumes
	// lossless channels for Algorithm 1 (clearing the δ-buffer each
	// round); the acknowledgment-based variant (protocol.NewDeltaAcked)
	// tolerates loss, which tests exercise through this knob.
	DropProb float64
	// Reorder shuffles the delivery order within each round.
	Reorder bool
	// IDBytes overrides the metadata accounting size of node identifiers
	// (the paper's Figure 9 uses 20 bytes). Zero uses actual id lengths.
	IDBytes int
	// MeasureCPU enables wall-clock timing of engine calls. Leave off in
	// transmission-only experiments to reduce overhead.
	MeasureCPU bool
}

// envelope is one in-flight message.
type envelope struct {
	from, to string
	msg      protocol.Msg
}

// Sim drives a set of protocol engines over a topology.
type Sim struct {
	topo    *topology.Graph
	nodes   []string
	engines map[string]protocol.Engine
	col     *metrics.Collector
	opts    Options
	rng     *rand.Rand
	round   int
	queue   []envelope
}

// New builds a simulator: one engine per topology node, constructed by the
// given factory over the given datatype.
func New(topo *topology.Graph, factory protocol.Factory, dt workload.Datatype, opts Options) *Sim {
	s := &Sim{
		topo:    topo,
		nodes:   topo.Nodes(),
		engines: make(map[string]protocol.Engine, topo.NumNodes()),
		col:     metrics.NewCollector(),
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
	for _, id := range s.nodes {
		cfg := protocol.Config{
			ID:        id,
			Neighbors: topo.Neighbors(id),
			Nodes:     s.nodes,
			Datatype:  dt,
			IDBytes:   opts.IDBytes,
		}
		s.engines[id] = factory(cfg)
	}
	return s
}

// Collector exposes the metrics gathered so far.
func (s *Sim) Collector() *metrics.Collector { return s.col }

// Engine returns the engine of a node.
func (s *Sim) Engine(id string) protocol.Engine { return s.engines[id] }

// Nodes returns the node ids in sorted order.
func (s *Sim) Nodes() []string { return s.nodes }

// Round returns the number of completed rounds.
func (s *Sim) Round() int { return s.round }

// sender returns the Sender closure for messages originating at from,
// accounting costs and applying channel faults.
func (s *Sim) sender(from string) protocol.Sender {
	return func(to string, m protocol.Msg) {
		if !s.topo.HasEdge(from, to) {
			panic(fmt.Sprintf("netsim: %s sent to non-neighbor %s", from, to))
		}
		s.col.RecordRoundSend(s.round, from, m.Cost())
		if s.opts.DropProb > 0 && s.rng.Float64() < s.opts.DropProb {
			return // lost on the wire; the send was still paid for
		}
		s.queue = append(s.queue, envelope{from: from, to: to, msg: m})
		if s.opts.DuplicateProb > 0 && s.rng.Float64() < s.opts.DuplicateProb {
			// Duplication does not consume extra application-level
			// transmission; it stresses idempotence only.
			s.queue = append(s.queue, envelope{from: from, to: to, msg: m})
		}
	}
}

// timed runs fn, charging its duration to node's CPU accounting.
func (s *Sim) timed(node string, fn func()) {
	if !s.opts.MeasureCPU {
		fn()
		return
	}
	start := time.Now()
	fn()
	s.col.Node(node).RecordCPU(time.Since(start))
}

// Step runs one round. opsFor returns the updates each node performs this
// round; nil means a quiet round (synchronization only).
func (s *Sim) Step(opsFor func(node string, idx int) []workload.Op) {
	// 1. Local updates.
	if opsFor != nil {
		for i, id := range s.nodes {
			eng := s.engines[id]
			for _, op := range opsFor(id, i) {
				s.timed(id, func() { eng.LocalOp(op) })
			}
		}
	}
	// 2. Periodic synchronization.
	for _, id := range s.nodes {
		eng := s.engines[id]
		s.timed(id, func() { eng.Sync(s.sender(id)) })
	}
	// 3. Delivery, including same-round replies.
	for len(s.queue) > 0 {
		if s.opts.Reorder {
			s.rng.Shuffle(len(s.queue), func(i, j int) {
				s.queue[i], s.queue[j] = s.queue[j], s.queue[i]
			})
		}
		env := s.queue[0]
		s.queue = s.queue[1:]
		eng := s.engines[env.to]
		s.timed(env.to, func() { eng.Deliver(env.from, env.msg, s.sender(env.to)) })
	}
	// 4. Memory snapshot.
	for _, id := range s.nodes {
		s.col.Node(id).RecordMemory(s.engines[id].Memory())
	}
	s.round++
}

// Run executes rounds rounds of the given workload generator.
func (s *Sim) Run(rounds int, gen workload.Generator) {
	n := len(s.nodes)
	for r := 0; r < rounds; r++ {
		round := s.round
		s.Step(func(node string, idx int) []workload.Op {
			return gen.Ops(round, node, idx, n)
		})
	}
}

// Converged reports whether all replicas hold equal states.
func (s *Sim) Converged() bool {
	if len(s.nodes) < 2 {
		return true
	}
	first := s.engines[s.nodes[0]].State()
	for _, id := range s.nodes[1:] {
		if !first.Equal(s.engines[id].State()) {
			return false
		}
	}
	return true
}

// RunQuiet runs update-free rounds until convergence or maxRounds,
// returning the number of rounds used and whether convergence was reached.
func (s *Sim) RunQuiet(maxRounds int) (rounds int, converged bool) {
	for r := 0; r < maxRounds; r++ {
		if s.Converged() {
			return r, true
		}
		s.Step(nil)
	}
	return maxRounds, s.Converged()
}
