package crdt

import (
	"fmt"
	"sort"
	"strings"

	"crdtsync/internal/lattice"
)

// pn holds the per-replica increment and decrement totals of a PNCounter.
type pn struct {
	Inc, Dec uint64
}

// PNCounter is a positive-negative counter: the finite-function lattice
// I ↪ (ℕ × ℕ) mapping each replica to a pair of increment and decrement
// totals (Appendix C of the paper). Value is the difference of the sums.
type PNCounter struct {
	counts map[string]pn
}

// NewPNCounter returns an empty (bottom) counter.
func NewPNCounter() *PNCounter { return &PNCounter{counts: make(map[string]pn)} }

// IncDelta returns the δ-mutator result for n increments by replica:
// the single entry {i ↦ ⟨inc + n, 0⟩}. n must be ≥ 1.
func (c *PNCounter) IncDelta(replica string, n uint64) *PNCounter {
	if n == 0 {
		panic("crdt: PNCounter.IncDelta with n == 0 is not an inflation")
	}
	cur := c.counts[replica]
	return &PNCounter{counts: map[string]pn{replica: {Inc: cur.Inc + n}}}
}

// DecDelta returns the δ-mutator result for n decrements by replica:
// the single entry {i ↦ ⟨0, dec + n⟩}. n must be ≥ 1.
func (c *PNCounter) DecDelta(replica string, n uint64) *PNCounter {
	if n == 0 {
		panic("crdt: PNCounter.DecDelta with n == 0 is not an inflation")
	}
	cur := c.counts[replica]
	return &PNCounter{counts: map[string]pn{replica: {Dec: cur.Dec + n}}}
}

// Inc applies n increments in place and returns the delta.
func (c *PNCounter) Inc(replica string, n uint64) *PNCounter {
	d := c.IncDelta(replica, n)
	c.Merge(d)
	return d
}

// Dec applies n decrements in place and returns the delta.
func (c *PNCounter) Dec(replica string, n uint64) *PNCounter {
	d := c.DecDelta(replica, n)
	c.Merge(d)
	return d
}

// Value returns total increments minus total decrements.
func (c *PNCounter) Value() int64 {
	var v int64
	for _, e := range c.counts {
		v += int64(e.Inc) - int64(e.Dec)
	}
	return v
}

// Range calls fn for every (replica, increments, decrements) entry until
// fn returns false. Iteration order is unspecified.
func (c *PNCounter) Range(fn func(replica string, inc, dec uint64) bool) {
	for k, v := range c.counts {
		if !fn(k, v.Inc, v.Dec) {
			return
		}
	}
}

// Join returns the entry-wise, component-wise max of the two counters.
func (c *PNCounter) Join(other lattice.State) lattice.State {
	o := mustPNCounter("Join", c, other)
	j := &PNCounter{counts: make(map[string]pn, len(c.counts)+len(o.counts))}
	for k, v := range c.counts {
		j.counts[k] = v
	}
	for k, v := range o.counts {
		cur := j.counts[k]
		if v.Inc > cur.Inc {
			cur.Inc = v.Inc
		}
		if v.Dec > cur.Dec {
			cur.Dec = v.Dec
		}
		j.counts[k] = cur
	}
	return j
}

// Merge joins other into the receiver in place.
func (c *PNCounter) Merge(other lattice.State) {
	o := mustPNCounter("Merge", c, other)
	if c.counts == nil {
		c.counts = make(map[string]pn, len(o.counts))
	}
	for k, v := range o.counts {
		cur := c.counts[k]
		if v.Inc > cur.Inc {
			cur.Inc = v.Inc
		}
		if v.Dec > cur.Dec {
			cur.Dec = v.Dec
		}
		c.counts[k] = cur
	}
}

// Leq reports entry-wise, component-wise ≤.
func (c *PNCounter) Leq(other lattice.State) bool {
	o := mustPNCounter("Leq", c, other)
	for k, v := range c.counts {
		ov := o.counts[k]
		if v.Inc > ov.Inc || v.Dec > ov.Dec {
			return false
		}
	}
	return true
}

// IsBottom reports whether no replica has recorded operations.
func (c *PNCounter) IsBottom() bool { return len(c.counts) == 0 }

// Bottom returns a fresh empty counter.
func (c *PNCounter) Bottom() lattice.State { return NewPNCounter() }

// Irreducibles yields, per entry, the increment-only and decrement-only
// projections, matching the paper's PNCounter example in Appendix C:
// ⇓{A↦⟨2,3⟩} = {{A↦⟨2,0⟩}, {A↦⟨0,3⟩}}.
func (c *PNCounter) Irreducibles(yield func(lattice.State) bool) {
	for k, v := range c.counts {
		if v.Inc > 0 {
			if !yield(&PNCounter{counts: map[string]pn{k: {Inc: v.Inc}}}) {
				return
			}
		}
		if v.Dec > 0 {
			if !yield(&PNCounter{counts: map[string]pn{k: {Dec: v.Dec}}}) {
				return
			}
		}
	}
}

// Equal reports entry-wise equality.
func (c *PNCounter) Equal(other lattice.State) bool {
	o, ok := other.(*PNCounter)
	if !ok || len(c.counts) != len(o.counts) {
		return false
	}
	for k, v := range c.counts {
		if o.counts[k] != v {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (c *PNCounter) Clone() lattice.State {
	cp := &PNCounter{counts: make(map[string]pn, len(c.counts))}
	for k, v := range c.counts {
		cp.counts[k] = v
	}
	return cp
}

// Elements returns the number of non-zero components across all entries.
func (c *PNCounter) Elements() int {
	n := 0
	for _, v := range c.counts {
		if v.Inc > 0 {
			n++
		}
		if v.Dec > 0 {
			n++
		}
	}
	return n
}

// SizeBytes returns the wire size: per entry, the replica id plus 16 bytes.
func (c *PNCounter) SizeBytes() int {
	n := 0
	for k := range c.counts {
		n += len(k) + 16
	}
	return n
}

// String renders the counter in sorted replica order.
func (c *PNCounter) String() string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		e := c.counts[k]
		parts = append(parts, fmt.Sprintf("%s:+%d-%d", k, e.Inc, e.Dec))
	}
	return "PNCounter{" + strings.Join(parts, ",") + "}"
}

func mustPNCounter(op string, a, b lattice.State) *PNCounter {
	o, ok := b.(*PNCounter)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
