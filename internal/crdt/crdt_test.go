package crdt_test

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"crdtsync/internal/core"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

func TestGCounterValue(t *testing.T) {
	c := crdt.NewGCounter()
	c.Inc("A", 3)
	c.Inc("B", 4)
	c.Inc("A", 2)
	if got := c.Value(); got != 9 {
		t.Errorf("Value = %d, want 9", got)
	}
	if got := c.Entry("A"); got != 5 {
		t.Errorf("Entry(A) = %d, want 5", got)
	}
}

func TestGCounterIncDeltaSingleEntry(t *testing.T) {
	c := crdt.NewGCounter()
	c.Inc("A", 7)
	d := c.IncDelta("A", 1)
	if d.Elements() != 1 {
		t.Fatalf("incδ returned %d entries, want 1", d.Elements())
	}
	if got := d.Entry("A"); got != 8 {
		t.Errorf("incδ entry = %d, want 8", got)
	}
	// The δ-mutator law: m(x) = x ⊔ mδ(x).
	full := c.Clone().(*crdt.GCounter)
	full.Inc("A", 1)
	if !c.Join(d).Equal(full) {
		t.Error("inc(x) ≠ x ⊔ incδ(x)")
	}
}

func TestGCounterIncZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IncDelta(_, 0) should panic")
		}
	}()
	crdt.NewGCounter().IncDelta("A", 0)
}

func TestGCounterJoinIsEntryMax(t *testing.T) {
	a := crdt.NewGCounter()
	a.Inc("A", 5)
	a.Inc("B", 1)
	b := crdt.NewGCounter()
	b.Inc("A", 2)
	b.Inc("B", 7)
	j := a.Join(b).(*crdt.GCounter)
	if j.Entry("A") != 5 || j.Entry("B") != 7 {
		t.Errorf("join = %v", j)
	}
	// Join never loses increments observed by either side.
	if j.Value() != 12 {
		t.Errorf("joined value = %d, want 12", j.Value())
	}
}

func TestPNCounterValue(t *testing.T) {
	c := crdt.NewPNCounter()
	c.Inc("A", 10)
	c.Dec("A", 3)
	c.Dec("B", 4)
	if got := c.Value(); got != 3 {
		t.Errorf("Value = %d, want 3", got)
	}
}

func TestPNCounterDeltaLaw(t *testing.T) {
	c := crdt.NewPNCounter()
	c.Inc("A", 2)
	d := c.DecDelta("A", 5)
	full := c.Clone().(*crdt.PNCounter)
	full.Dec("A", 5)
	if !c.Join(d).Equal(full) {
		t.Error("dec(x) ≠ x ⊔ decδ(x)")
	}
	if d.Elements() != 1 {
		t.Errorf("decδ has %d elements, want 1", d.Elements())
	}
}

func TestGSetAddDeltaOptimal(t *testing.T) {
	s := crdt.NewGSet("a")
	// Figure 2b: addδ returns ⊥ when the element is already present —
	// the optimal δ-mutator (the original one in [13] always returned
	// the singleton).
	if d := s.AddDelta("a"); !d.IsBottom() {
		t.Errorf("addδ(a) on {a} = %v, want ⊥", d)
	}
	if d := s.AddDelta("b"); d.Elements() != 1 || !d.Contains("b") {
		t.Errorf("addδ(b) = %v, want {b}", d)
	}
}

func TestGSetValues(t *testing.T) {
	s := crdt.NewGSet()
	s.Add("b")
	s.Add("a")
	if got := s.Values(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Values = %v", got)
	}
	if s.Len() != 2 || !s.Contains("a") {
		t.Error("membership wrong")
	}
}

func TestTwoPSetSemantics(t *testing.T) {
	s := crdt.NewTwoPSet()
	s.Add("a")
	s.Add("b")
	if !s.Contains("a") {
		t.Error("a should be a member")
	}
	s.Remove("a")
	if s.Contains("a") {
		t.Error("removed element still a member")
	}
	// Re-add after remove has no effect (two-phase semantics).
	s.Add("a")
	if s.Contains("a") {
		t.Error("2P-Set must not re-add a removed element")
	}
	if got := s.Values(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Values = %v, want [b]", got)
	}
}

func TestTwoPSetRemoveWinsAcrossReplicas(t *testing.T) {
	a := crdt.NewTwoPSet()
	b := crdt.NewTwoPSet()
	a.Add("x")
	b.Remove("x") // concurrent remove at another replica
	j := a.Join(b).(*crdt.TwoPSet)
	if j.Contains("x") {
		t.Error("concurrent remove should win")
	}
}

func TestLWWRegisterSemantics(t *testing.T) {
	r := crdt.NewLWWRegister()
	r.Write(1, "A", "v1")
	r.Write(3, "B", "v3")
	if d := r.WriteDelta(2, "A", "v2"); !d.IsBottom() {
		t.Errorf("stale write delta = %v, want ⊥", d)
	}
	if r.Value() != "v3" {
		t.Errorf("Value = %q, want v3", r.Value())
	}
	// Timestamp ties break by writer id.
	x := crdt.NewLWWRegister()
	x.Write(5, "A", "va")
	y := crdt.NewLWWRegister()
	y.Write(5, "B", "vb")
	j := x.Join(y).(*crdt.LWWRegister)
	if j.Value() != "vb" {
		t.Errorf("tie broken to %q, want vb (higher writer)", j.Value())
	}
	// Join is symmetric under the tie-break.
	if jj := y.Join(x).(*crdt.LWWRegister); !jj.Equal(j) {
		t.Error("LWW join not symmetric")
	}
}

func TestLWWZeroTSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteDelta(0, ...) should panic")
		}
	}()
	crdt.NewLWWRegister().WriteDelta(0, "A", "v")
}

func TestGMapPutDelta(t *testing.T) {
	m := crdt.NewGMap()
	crdt.MapPut(m, "k", lattice.NewMaxInt(5))
	// Re-putting an already-covered value yields a bottom-valued delta.
	d := crdt.MapPutDelta(m, "k", lattice.NewMaxInt(3))
	if !d.IsBottom() {
		t.Errorf("covered put delta = %v, want ⊥", d)
	}
	d = crdt.MapPutDelta(m, "k", lattice.NewMaxInt(9))
	if d.IsBottom() || d.Get("k").(*lattice.MaxInt).V != 9 {
		t.Errorf("delta = %v, want {k↦9}", d)
	}
}

func TestGMapApplyDelta(t *testing.T) {
	m := crdt.NewGMap()
	crdt.MapPut(m, "k", lattice.NewMaxInt(5))
	d := crdt.MapApplyDelta(m, "k", lattice.NewMaxInt(5))
	if !d.IsBottom() {
		t.Errorf("redundant apply delta = %v, want ⊥", d)
	}
	if d := crdt.MapApplyDelta(m, "other", lattice.NewMaxInt(1)); d.IsBottom() {
		t.Error("apply to fresh key should not be bottom")
	}
}

// --- property-based tests (testing/quick) ---

// randomGCounter builds a counter from quick-generated data.
func randomGCounter(incs []uint8) *crdt.GCounter {
	c := crdt.NewGCounter()
	for i, n := range incs {
		if n == 0 {
			continue
		}
		c.Inc("r"+strconv.Itoa(i%5), uint64(n))
	}
	return c
}

func TestQuickGCounterMutatorsAreInflations(t *testing.T) {
	f := func(incs []uint8, who uint8, n uint8) bool {
		c := randomGCounter(incs)
		before := c.Clone()
		c.Inc("r"+strconv.Itoa(int(who%5)), uint64(n)+1)
		return before.Leq(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGCounterValueIsSumOfMaxima(t *testing.T) {
	f := func(incs []uint8) bool {
		c := randomGCounter(incs)
		var want uint64
		for i := 0; i < 5; i++ {
			want += c.Entry("r" + strconv.Itoa(i))
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGSetDeltaLaw(t *testing.T) {
	f := func(elems []uint8, add uint8) bool {
		s := crdt.NewGSet()
		for _, e := range elems {
			s.Add("e" + strconv.Itoa(int(e%10)))
		}
		e := "e" + strconv.Itoa(int(add%12))
		d := s.AddDelta(e)
		full := s.Clone().(*crdt.GSet)
		full.Add(e)
		return s.Join(d).Equal(full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinConvergence(t *testing.T) {
	// Any interleaving of joins converges to the same state.
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a, b := crdt.NewGCounter(), crdt.NewGCounter()
		for i := 0; i < 10; i++ {
			a.Inc("r"+strconv.Itoa(ra.Intn(3)), uint64(ra.Intn(5)+1))
			b.Inc("r"+strconv.Itoa(rb.Intn(3)), uint64(rb.Intn(5)+1))
		}
		ab := a.Join(b)
		ba := b.Join(a)
		return ab.Equal(ba) && a.Leq(ab) && b.Leq(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDecompositionsAreIrredundant(t *testing.T) {
	f := func(incs []uint8, decs []uint8) bool {
		c := crdt.NewPNCounter()
		for i, n := range incs {
			if n > 0 {
				c.Inc("r"+strconv.Itoa(i%4), uint64(n))
			}
		}
		for i, n := range decs {
			if n > 0 {
				c.Dec("r"+strconv.Itoa(i%4), uint64(n))
			}
		}
		if c.IsBottom() {
			return true
		}
		return core.IsIrredundantDecomposition(lattice.Decompose(c), c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTwoPSetDecomposition(t *testing.T) {
	f := func(adds, removes []uint8) bool {
		s := crdt.NewTwoPSet()
		for _, a := range adds {
			s.Add("e" + strconv.Itoa(int(a%8)))
		}
		for _, r := range removes {
			s.Remove("e" + strconv.Itoa(int(r%8)))
		}
		if s.IsBottom() {
			return true
		}
		return core.IsIrredundantDecomposition(lattice.Decompose(s), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLWWIsChain(t *testing.T) {
	f := func(ts1, ts2 uint8, w1, w2 uint8) bool {
		a := crdt.NewLWWRegister()
		a.Write(uint64(ts1)+1, "w"+strconv.Itoa(int(w1%4)), "va")
		b := crdt.NewLWWRegister()
		b.Write(uint64(ts2)+1, "w"+strconv.Itoa(int(w2%4)), "vb")
		// Chains are totally ordered.
		return a.Leq(b) || b.Leq(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
