package crdt

import (
	"fmt"
	"sort"
	"strings"

	"crdtsync/internal/lattice"
)

// GSet is a grow-only set over string elements: the powerset lattice P(E)
// with join = union (Figure 2b of the paper).
type GSet struct {
	elems map[string]struct{}
}

// NewGSet returns a set containing the given elements.
func NewGSet(elems ...string) *GSet {
	s := &GSet{elems: make(map[string]struct{}, len(elems))}
	for _, e := range elems {
		s.elems[e] = struct{}{}
	}
	return s
}

// AddDelta is the optimal δ-mutator addδ of Figure 2b: it returns {e} if e
// is not yet in the set and bottom otherwise, without mutating the receiver.
func (s *GSet) AddDelta(e string) *GSet {
	if _, ok := s.elems[e]; ok {
		return NewGSet()
	}
	return NewGSet(e)
}

// Add applies the standard mutator in place and returns the delta.
func (s *GSet) Add(e string) *GSet {
	d := s.AddDelta(e)
	s.Merge(d)
	return d
}

// Contains reports membership of e.
func (s *GSet) Contains(e string) bool {
	_, ok := s.elems[e]
	return ok
}

// Len returns the number of elements.
func (s *GSet) Len() int { return len(s.elems) }

// Values returns the elements in sorted order.
func (s *GSet) Values() []string {
	out := make([]string, 0, len(s.elems))
	for e := range s.elems {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Join returns the union of the two sets.
func (s *GSet) Join(other lattice.State) lattice.State {
	o := mustGSet("Join", s, other)
	j := &GSet{elems: make(map[string]struct{}, len(s.elems)+len(o.elems))}
	for e := range s.elems {
		j.elems[e] = struct{}{}
	}
	for e := range o.elems {
		j.elems[e] = struct{}{}
	}
	return j
}

// Merge adds all elements of other in place.
func (s *GSet) Merge(other lattice.State) {
	o := mustGSet("Merge", s, other)
	if s.elems == nil {
		s.elems = make(map[string]struct{}, len(o.elems))
	}
	for e := range o.elems {
		s.elems[e] = struct{}{}
	}
}

// Leq reports subset inclusion.
func (s *GSet) Leq(other lattice.State) bool {
	o := mustGSet("Leq", s, other)
	if len(s.elems) > len(o.elems) {
		return false
	}
	for e := range s.elems {
		if _, ok := o.elems[e]; !ok {
			return false
		}
	}
	return true
}

// IsBottom reports whether the set is empty.
func (s *GSet) IsBottom() bool { return len(s.elems) == 0 }

// Bottom returns a fresh empty set.
func (s *GSet) Bottom() lattice.State { return NewGSet() }

// Irreducibles yields one singleton per element: ⇓s = {{e} | e ∈ s}.
func (s *GSet) Irreducibles(yield func(lattice.State) bool) {
	for e := range s.elems {
		if !yield(NewGSet(e)) {
			return
		}
	}
}

// Equal reports element-wise equality.
func (s *GSet) Equal(other lattice.State) bool {
	o, ok := other.(*GSet)
	if !ok || len(s.elems) != len(o.elems) {
		return false
	}
	for e := range s.elems {
		if _, present := o.elems[e]; !present {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *GSet) Clone() lattice.State {
	c := &GSet{elems: make(map[string]struct{}, len(s.elems))}
	for e := range s.elems {
		c.elems[e] = struct{}{}
	}
	return c
}

// Elements returns the number of set elements (the paper's GSet metric).
func (s *GSet) Elements() int { return len(s.elems) }

// SizeBytes returns the sum of the element byte lengths.
func (s *GSet) SizeBytes() int {
	n := 0
	for e := range s.elems {
		n += len(e)
	}
	return n
}

// String renders the set in sorted order.
func (s *GSet) String() string {
	return "GSet{" + strings.Join(s.Values(), ",") + "}"
}

func mustGSet(op string, a, b lattice.State) *GSet {
	o, ok := b.(*GSet)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
