package crdt

import (
	"crdtsync/internal/core"
	"crdtsync/internal/lattice"
)

// GMap is a grow-only map: the finite-function lattice U ↪ A from string
// keys to an embedded value lattice, exactly the lattice.Map combinator.
// The alias gives the CRDT catalog a home for the δ-mutators below while
// keeping full type identity with the combinator (joins across the two
// names are the same lattice).
type GMap = lattice.Map

// NewGMap returns an empty grow-only map.
func NewGMap() *GMap { return lattice.NewMap() }

// MapPutDelta is the optimal δ-mutator for storing value v at key k:
// it returns the singleton map {k ↦ Δ(v, current(k))}, i.e. only the part
// of v not already present under k. The receiver map is not mutated.
// Writing a value that is already fully contained yields bottom.
func MapPutDelta(m *GMap, k string, v lattice.State) *GMap {
	cur := m.Get(k)
	if cur == nil {
		return lattice.NewMapEntry(k, v.Clone())
	}
	return lattice.NewMapEntry(k, core.Delta(v, cur))
}

// MapApplyDelta is the optimal δ-mutator for applying a value-level delta d
// at key k (for example a nested counter increment): it returns
// {k ↦ Δ(d, current(k))}. The receiver map is not mutated.
func MapApplyDelta(m *GMap, k string, d lattice.State) *GMap {
	cur := m.Get(k)
	if cur == nil {
		return lattice.NewMapEntry(k, d.Clone())
	}
	return lattice.NewMapEntry(k, core.Delta(d, cur))
}

// MapPut applies MapPutDelta in place and returns the delta.
func MapPut(m *GMap, k string, v lattice.State) *GMap {
	d := MapPutDelta(m, k, v)
	m.Merge(d)
	return d
}
