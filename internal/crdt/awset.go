package crdt

import (
	"fmt"
	"sort"
	"strings"

	"crdtsync/internal/lattice"
	"crdtsync/internal/vclock"
)

// AWSet is an add-wins observed-remove set, the "more complex CRDT" class
// the paper's Appendix B extends join decompositions to. Unlike GSet it
// supports removals: state is a causal pair ⟨dot store, causal context⟩
// where the dot store maps elements to the dots (unique event ids) of
// their surviving adds and the context records every dot ever observed.
//
// Join follows the delta-state causal CRDT rule (Almeida et al. 2018):
//
//	m''(e) = (m(e) ∩ m'(e)) ∪ (m(e) \ c') ∪ (m'(e) \ c),  c'' = c ∪ c'
//
// so an element survives iff some add dot is unseen by the other side's
// context — concurrent add wins over remove.
//
// Decomposition: every live dot yields the atom ⟨{e ↦ {d}}, {d}⟩ and every
// context-only (removed) dot yields ⟨∅, {d}⟩. On the sublattice of
// well-formed states — each dot tags at most one element, an invariant of
// the data type — these atoms are join-irreducible and the decomposition
// is unique and irredundant, so Δ and the RR optimization apply unchanged.
type AWSet struct {
	entries map[string]map[vclock.Dot]struct{}
	ctx     map[vclock.Dot]struct{}
	// maxSeq caches the highest context sequence per actor, for dot
	// generation.
	maxSeq map[string]uint64
}

// NewAWSet returns an empty add-wins set.
func NewAWSet() *AWSet {
	return &AWSet{
		entries: make(map[string]map[vclock.Dot]struct{}),
		ctx:     make(map[vclock.Dot]struct{}),
		maxSeq:  make(map[string]uint64),
	}
}

// addDot records d in the context (and the per-actor max cache).
func (s *AWSet) addDot(d vclock.Dot) {
	s.ctx[d] = struct{}{}
	if d.Seq > s.maxSeq[d.Actor] {
		s.maxSeq[d.Actor] = d.Seq
	}
}

// AddDelta is the δ-mutator for adding e at the given replica: it returns
// ⟨{e ↦ {d}}, {d} ∪ m(e)⟩ where d is a fresh dot — the old dots of e ride
// along in the context so the join supersedes earlier adds (and any
// removes they had observed lose against this one). The receiver is not
// mutated.
func (s *AWSet) AddDelta(replica, e string) *AWSet {
	d := vclock.Dot{Actor: replica, Seq: s.maxSeq[replica] + 1}
	delta := NewAWSet()
	delta.entries[e] = map[vclock.Dot]struct{}{d: {}}
	delta.addDot(d)
	for old := range s.entries[e] {
		delta.addDot(old)
	}
	return delta
}

// RemoveDelta is the δ-mutator for removing e: it returns ⟨∅, m(e)⟩, the
// observed add dots as bare context. Removing an absent element yields
// bottom. The receiver is not mutated.
func (s *AWSet) RemoveDelta(e string) *AWSet {
	delta := NewAWSet()
	for d := range s.entries[e] {
		delta.addDot(d)
	}
	return delta
}

// Add applies AddDelta in place and returns the delta.
func (s *AWSet) Add(replica, e string) *AWSet {
	d := s.AddDelta(replica, e)
	s.Merge(d)
	return d
}

// Remove applies RemoveDelta in place and returns the delta.
func (s *AWSet) Remove(e string) *AWSet {
	d := s.RemoveDelta(e)
	s.Merge(d)
	return d
}

// Contains reports whether e is currently in the set.
func (s *AWSet) Contains(e string) bool { return len(s.entries[e]) > 0 }

// Values returns the current members in sorted order.
func (s *AWSet) Values() []string {
	out := make([]string, 0, len(s.entries))
	for e := range s.entries {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of current members.
func (s *AWSet) Len() int { return len(s.entries) }

// RangeLive calls fn for every (element, dot) pair in the dot store until
// fn returns false. Iteration order is unspecified.
func (s *AWSet) RangeLive(fn func(elem string, d vclock.Dot) bool) {
	for e, dots := range s.entries {
		for d := range dots {
			if !fn(e, d) {
				return
			}
		}
	}
}

// RangeContext calls fn for every observed dot (live or removed) until fn
// returns false. Iteration order is unspecified.
func (s *AWSet) RangeContext(fn func(d vclock.Dot) bool) {
	for d := range s.ctx {
		if !fn(d) {
			return
		}
	}
}

// NewAWSetAtom builds a single-dot state: a live entry ⟨{elem ↦ {d}}, {d}⟩
// when elem is non-empty, or the bare-context tombstone ⟨∅, {d}⟩ otherwise.
// Atoms are the unit of the wire format and of decompositions.
func NewAWSetAtom(elem string, d vclock.Dot) *AWSet {
	a := NewAWSet()
	if elem != "" {
		a.entries[elem] = map[vclock.Dot]struct{}{d: {}}
	}
	a.addDot(d)
	return a
}

// Join returns the causal join of the two states.
func (s *AWSet) Join(other lattice.State) lattice.State {
	o := mustAWSet("Join", s, other)
	j := s.Clone().(*AWSet)
	j.Merge(o)
	return j
}

// Merge joins other into the receiver in place.
func (s *AWSet) Merge(other lattice.State) {
	o := mustAWSet("Merge", s, other)
	// Surviving dots of s: those also in o, or unseen by o's context.
	for e, dots := range s.entries {
		for d := range dots {
			if _, inOther := o.entries[e][d]; inOther {
				continue
			}
			if _, seen := o.ctx[d]; seen {
				delete(dots, d)
			}
		}
		if len(dots) == 0 {
			delete(s.entries, e)
		}
	}
	// Incoming dots of o: keep those unseen by s's context or already
	// shared.
	for e, dots := range o.entries {
		for d := range dots {
			_, seen := s.ctx[d]
			if _, mine := s.entries[e][d]; mine || !seen {
				if s.entries[e] == nil {
					s.entries[e] = make(map[vclock.Dot]struct{})
				}
				s.entries[e][d] = struct{}{}
			}
		}
	}
	for d := range o.ctx {
		s.addDot(d)
	}
}

// Leq reports the causal order: s's context is contained in other's and
// every surviving dot of other that s has observed is still live in s.
func (s *AWSet) Leq(other lattice.State) bool {
	o := mustAWSet("Leq", s, other)
	for d := range s.ctx {
		if _, ok := o.ctx[d]; !ok {
			return false
		}
	}
	for e, dots := range o.entries {
		for d := range dots {
			if _, observed := s.ctx[d]; !observed {
				continue
			}
			if _, live := s.entries[e][d]; !live {
				// s observed d and removed it, but other still has
				// it live: s is not below other.
				return false
			}
		}
	}
	return true
}

// IsBottom reports whether nothing was ever observed.
func (s *AWSet) IsBottom() bool { return len(s.ctx) == 0 }

// Bottom returns a fresh empty add-wins set.
func (s *AWSet) Bottom() lattice.State { return NewAWSet() }

// Irreducibles yields one atom per live dot (⟨{e ↦ {d}}, {d}⟩) and one per
// removed dot (⟨∅, {d}⟩).
func (s *AWSet) Irreducibles(yield func(lattice.State) bool) {
	live := make(map[vclock.Dot]struct{}, len(s.ctx))
	for e, dots := range s.entries {
		for d := range dots {
			live[d] = struct{}{}
			atom := NewAWSet()
			atom.entries[e] = map[vclock.Dot]struct{}{d: {}}
			atom.addDot(d)
			if !yield(atom) {
				return
			}
		}
	}
	for d := range s.ctx {
		if _, ok := live[d]; ok {
			continue
		}
		atom := NewAWSet()
		atom.addDot(d)
		if !yield(atom) {
			return
		}
	}
}

// Equal reports structural equality of dot store and context.
func (s *AWSet) Equal(other lattice.State) bool {
	o, ok := other.(*AWSet)
	if !ok || len(s.ctx) != len(o.ctx) || len(s.entries) != len(o.entries) {
		return false
	}
	for d := range s.ctx {
		if _, present := o.ctx[d]; !present {
			return false
		}
	}
	for e, dots := range s.entries {
		od := o.entries[e]
		if len(od) != len(dots) {
			return false
		}
		for d := range dots {
			if _, present := od[d]; !present {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *AWSet) Clone() lattice.State {
	c := NewAWSet()
	for e, dots := range s.entries {
		nd := make(map[vclock.Dot]struct{}, len(dots))
		for d := range dots {
			nd[d] = struct{}{}
		}
		c.entries[e] = nd
	}
	for d := range s.ctx {
		c.ctx[d] = struct{}{}
	}
	for a, q := range s.maxSeq {
		c.maxSeq[a] = q
	}
	return c
}

// Elements returns the number of observed dots (live and removed), the
// granularity at which state is shipped.
func (s *AWSet) Elements() int { return len(s.ctx) }

// SizeBytes returns the wire size: element names plus one dot per live
// entry, plus the context dots.
func (s *AWSet) SizeBytes() int {
	n := 0
	for e, dots := range s.entries {
		n += len(e) + len(dots)*12
	}
	n += len(s.ctx) * 12
	return n
}

// String renders the current membership and context size.
func (s *AWSet) String() string {
	return fmt.Sprintf("AWSet{%s|ctx:%d}", strings.Join(s.Values(), ","), len(s.ctx))
}

func mustAWSet(op string, a, b lattice.State) *AWSet {
	o, ok := b.(*AWSet)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
