package crdt

import (
	"fmt"

	"crdtsync/internal/lattice"
)

// LWWRegister is a last-writer-wins register: the lexicographic product of
// a totally ordered version (timestamp broken by writer id, making writes
// unique) and an arbitrary payload. It is a chain, so every non-bottom
// state is join-irreducible and its decomposition is itself. Bottom is the
// unwritten register (timestamp 0, empty writer, empty value).
//
// This is the typical lexicographic-product CRDT of Appendix B: bumping the
// version chain lets the writer replace the payload with an arbitrary value
// while keeping the state an inflation.
type LWWRegister struct {
	TS     uint64
	Writer string
	Val    string
}

// NewLWWRegister returns an unwritten (bottom) register.
func NewLWWRegister() *LWWRegister { return &LWWRegister{} }

// WriteDelta is the δ-mutator for writing val at timestamp ts: it returns
// the new register state if it would supersede the current one, bottom
// otherwise (a stale write carries no information). The receiver is not
// mutated. ts must be ≥ 1 so that writes are non-bottom.
func (r *LWWRegister) WriteDelta(ts uint64, writer, val string) *LWWRegister {
	if ts == 0 {
		panic("crdt: LWWRegister.WriteDelta with ts == 0 is reserved for bottom")
	}
	w := &LWWRegister{TS: ts, Writer: writer, Val: val}
	if w.less(r) || w.sameVersion(r) {
		return NewLWWRegister()
	}
	return w
}

// Write applies WriteDelta in place and returns the delta.
func (r *LWWRegister) Write(ts uint64, writer, val string) *LWWRegister {
	d := r.WriteDelta(ts, writer, val)
	r.Merge(d)
	return d
}

// Value returns the current payload ("" when unwritten).
func (r *LWWRegister) Value() string { return r.Val }

// less reports strict order by (TS, Writer); Val never participates because
// (TS, Writer) identifies a write uniquely.
func (r *LWWRegister) less(o *LWWRegister) bool {
	if r.TS != o.TS {
		return r.TS < o.TS
	}
	return r.Writer < o.Writer
}

func (r *LWWRegister) sameVersion(o *LWWRegister) bool {
	return r.TS == o.TS && r.Writer == o.Writer
}

// Join returns the register with the greater (TS, Writer) version.
func (r *LWWRegister) Join(other lattice.State) lattice.State {
	o := mustLWW("Join", r, other)
	if r.less(o) {
		return o.Clone()
	}
	return r.Clone()
}

// Merge keeps the greater version in place.
func (r *LWWRegister) Merge(other lattice.State) {
	o := mustLWW("Merge", r, other)
	if r.less(o) {
		*r = *o
	}
}

// Leq reports the chain order by (TS, Writer).
func (r *LWWRegister) Leq(other lattice.State) bool {
	o := mustLWW("Leq", r, other)
	return r.less(o) || r.sameVersion(o)
}

// IsBottom reports whether the register was never written.
func (r *LWWRegister) IsBottom() bool { return r.TS == 0 && r.Writer == "" }

// Bottom returns a fresh unwritten register.
func (r *LWWRegister) Bottom() lattice.State { return NewLWWRegister() }

// Irreducibles yields the register itself: a chain element is
// join-irreducible.
func (r *LWWRegister) Irreducibles(yield func(lattice.State) bool) {
	if r.IsBottom() {
		return
	}
	yield(r.Clone())
}

// Equal reports identical version and payload.
func (r *LWWRegister) Equal(other lattice.State) bool {
	o, ok := other.(*LWWRegister)
	return ok && r.TS == o.TS && r.Writer == o.Writer && r.Val == o.Val
}

// Clone returns a copy of the register.
func (r *LWWRegister) Clone() lattice.State {
	return &LWWRegister{TS: r.TS, Writer: r.Writer, Val: r.Val}
}

// Elements returns 1 for a written register, 0 for bottom.
func (r *LWWRegister) Elements() int {
	if r.IsBottom() {
		return 0
	}
	return 1
}

// SizeBytes returns the wire size: timestamp, writer id, and payload.
func (r *LWWRegister) SizeBytes() int { return 8 + len(r.Writer) + len(r.Val) }

// String renders the register.
func (r *LWWRegister) String() string {
	return fmt.Sprintf("LWW{ts:%d,w:%s,val:%q}", r.TS, r.Writer, r.Val)
}

func mustLWW(op string, a, b lattice.State) *LWWRegister {
	o, ok := b.(*LWWRegister)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
