// Package crdt implements the catalog of state-based CRDTs used in the
// paper's evaluation (GCounter, GSet, GMap) together with the further data
// types its appendices cover (PNCounter, 2P-Set, LWW register) and an
// add-wins set extension built on dot stores.
//
// Every data type exposes the paper's split between mutators and
// δ-mutators: methods suffixed Delta are pure δ-mutators mδ that read the
// current state and return only the (optimal) delta; the caller joins the
// delta into the local state, exactly as Algorithm 1's store() does.
package crdt

import (
	"fmt"
	"sort"
	"strings"

	"crdtsync/internal/lattice"
)

// GCounter is a grow-only counter: the finite-function lattice I ↪ ℕ from
// replica identifiers to per-replica increment counts, joined entry-wise
// with max (Figure 2a of the paper).
type GCounter struct {
	counts map[string]uint64
}

// NewGCounter returns an empty (bottom) grow-only counter.
func NewGCounter() *GCounter { return &GCounter{counts: make(map[string]uint64)} }

// IncDelta is the optimal δ-mutator incδᵢ: it returns the single updated
// entry {i ↦ p(i) + n} without mutating the receiver. n must be ≥ 1.
func (c *GCounter) IncDelta(replica string, n uint64) *GCounter {
	if n == 0 {
		panic("crdt: GCounter.IncDelta with n == 0 is not an inflation")
	}
	return &GCounter{counts: map[string]uint64{replica: c.counts[replica] + n}}
}

// Inc applies the standard mutator incᵢ in place and returns the delta that
// a δ-mutator would have produced, for convenience.
func (c *GCounter) Inc(replica string, n uint64) *GCounter {
	d := c.IncDelta(replica, n)
	c.Merge(d)
	return d
}

// Value returns the counter value: the sum of all per-replica entries.
func (c *GCounter) Value() uint64 {
	var sum uint64
	for _, v := range c.counts {
		sum += v
	}
	return sum
}

// Entry returns the count recorded for the given replica.
func (c *GCounter) Entry(replica string) uint64 { return c.counts[replica] }

// Range calls fn for every (replica, count) entry until fn returns false.
// Iteration order is unspecified.
func (c *GCounter) Range(fn func(replica string, count uint64) bool) {
	for k, v := range c.counts {
		if !fn(k, v) {
			return
		}
	}
}

// Join returns the entry-wise max of the two counters.
func (c *GCounter) Join(other lattice.State) lattice.State {
	o := mustGCounter("Join", c, other)
	j := &GCounter{counts: make(map[string]uint64, len(c.counts)+len(o.counts))}
	for k, v := range c.counts {
		j.counts[k] = v
	}
	for k, v := range o.counts {
		if v > j.counts[k] {
			j.counts[k] = v
		}
	}
	return j
}

// Merge joins other into the receiver in place.
func (c *GCounter) Merge(other lattice.State) {
	o := mustGCounter("Merge", c, other)
	if c.counts == nil {
		c.counts = make(map[string]uint64, len(o.counts))
	}
	for k, v := range o.counts {
		if v > c.counts[k] {
			c.counts[k] = v
		}
	}
}

// Leq reports entry-wise ≤.
func (c *GCounter) Leq(other lattice.State) bool {
	o := mustGCounter("Leq", c, other)
	for k, v := range c.counts {
		if v > o.counts[k] {
			return false
		}
	}
	return true
}

// IsBottom reports whether no replica has recorded increments.
func (c *GCounter) IsBottom() bool { return len(c.counts) == 0 }

// Bottom returns a fresh empty counter.
func (c *GCounter) Bottom() lattice.State { return NewGCounter() }

// Irreducibles yields one single-entry counter per map entry:
// ⇓p = {{k ↦ v} | k ↦ v ∈ p} (§III-A of the paper).
func (c *GCounter) Irreducibles(yield func(lattice.State) bool) {
	for k, v := range c.counts {
		if !yield(&GCounter{counts: map[string]uint64{k: v}}) {
			return
		}
	}
}

// Equal reports entry-wise equality.
func (c *GCounter) Equal(other lattice.State) bool {
	o, ok := other.(*GCounter)
	if !ok || len(c.counts) != len(o.counts) {
		return false
	}
	for k, v := range c.counts {
		if o.counts[k] != v {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (c *GCounter) Clone() lattice.State {
	cp := &GCounter{counts: make(map[string]uint64, len(c.counts))}
	for k, v := range c.counts {
		cp.counts[k] = v
	}
	return cp
}

// Elements returns the number of entries in the map (the paper's GCounter
// transmission/memory metric, Table I).
func (c *GCounter) Elements() int { return len(c.counts) }

// SizeBytes returns the wire size: per entry, the replica id plus 8 bytes.
func (c *GCounter) SizeBytes() int {
	n := 0
	for k := range c.counts {
		n += len(k) + 8
	}
	return n
}

// String renders the counter in sorted replica order.
func (c *GCounter) String() string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, c.counts[k]))
	}
	return "GCounter{" + strings.Join(parts, ",") + "}"
}

func mustGCounter(op string, a, b lattice.State) *GCounter {
	o, ok := b.(*GCounter)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
