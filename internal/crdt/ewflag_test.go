package crdt_test

import (
	"testing"

	"crdtsync/internal/core"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

func TestEWFlagBasics(t *testing.T) {
	f := crdt.NewEWFlag()
	if f.Read() || !f.IsBottom() {
		t.Fatal("new flag should be disabled and bottom")
	}
	f.Enable("A")
	if !f.Read() {
		t.Error("enable failed")
	}
	f.Disable()
	if f.Read() {
		t.Error("disable failed")
	}
	f.Enable("A")
	if !f.Read() {
		t.Error("re-enable failed")
	}
}

func TestEWFlagEnableWins(t *testing.T) {
	a := crdt.NewEWFlag()
	a.Enable("A")
	b := a.Clone().(*crdt.EWFlag)
	// Concurrently: a re-enables, b disables.
	a.Enable("A")
	b.Disable()
	j := a.Join(b).(*crdt.EWFlag)
	if !j.Read() {
		t.Error("concurrent enable must win")
	}
	// Symmetric join agrees.
	if jj := b.Join(a).(*crdt.EWFlag); !jj.Equal(j) {
		t.Error("join not commutative")
	}
}

func TestEWFlagObservedDisableWins(t *testing.T) {
	a := crdt.NewEWFlag()
	a.Enable("A")
	b := a.Clone().(*crdt.EWFlag)
	b.Disable() // b observed the enable
	j := a.Join(b).(*crdt.EWFlag)
	if j.Read() {
		t.Error("an observed disable with no concurrent enable must win")
	}
}

func TestEWFlagDeltaLaw(t *testing.T) {
	f := crdt.NewEWFlag()
	d := f.EnableDelta("A")
	full := f.Clone().(*crdt.EWFlag)
	full.Enable("A")
	got := f.Join(d)
	if !got.Equal(full) {
		t.Error("enable(x) ≠ x ⊔ enableδ(x)")
	}
}

func TestEWFlagDecomposition(t *testing.T) {
	f := crdt.NewEWFlag()
	f.Enable("A")
	f.Enable("B")
	d := lattice.Decompose(f)
	if !core.IsDecomposition(d, f) || !core.IsIrredundant(d) {
		t.Errorf("EWFlag decomposition invalid: %v", d)
	}
	// Δ works through the wrapper.
	g := crdt.NewEWFlag()
	delta := core.Delta(f, g)
	g.Merge(delta)
	if !g.Equal(f) {
		t.Error("Δ did not reconcile flags")
	}
}
