package crdt

import (
	"fmt"
	"sort"
	"strings"

	"crdtsync/internal/lattice"
	"crdtsync/internal/vclock"
)

// MVRegister is a multi-value register: a write replaces every value it
// has observed, and writes issued concurrently at different replicas all
// survive until a later write observes them — the reader sees the set of
// concurrent values (as in Dynamo). Like AWSet it is a causal CRDT:
// state is ⟨dot store, causal context⟩ with the dot store mapping each
// surviving write's dot to its value.
//
// Decomposition mirrors AWSet: one atom ⟨{d ↦ v}, {d}⟩ per surviving
// write and one bare-context atom ⟨∅, {d}⟩ per superseded dot, unique on
// the sublattice of well-formed states (one value per dot).
type MVRegister struct {
	vals   map[vclock.Dot]string
	ctx    map[vclock.Dot]struct{}
	maxSeq map[string]uint64
}

// NewMVRegister returns an unwritten (bottom) register.
func NewMVRegister() *MVRegister {
	return &MVRegister{
		vals:   make(map[vclock.Dot]string),
		ctx:    make(map[vclock.Dot]struct{}),
		maxSeq: make(map[string]uint64),
	}
}

func (r *MVRegister) addDot(d vclock.Dot) {
	r.ctx[d] = struct{}{}
	if d.Seq > r.maxSeq[d.Actor] {
		r.maxSeq[d.Actor] = d.Seq
	}
}

// WriteDelta is the δ-mutator for writing v at the given replica: a fresh
// dot carrying v, with every observed write dot riding along in the
// context so the join supersedes them. The receiver is not mutated.
func (r *MVRegister) WriteDelta(replica, v string) *MVRegister {
	d := vclock.Dot{Actor: replica, Seq: r.maxSeq[replica] + 1}
	delta := NewMVRegister()
	delta.vals[d] = v
	delta.addDot(d)
	for old := range r.vals {
		delta.addDot(old)
	}
	return delta
}

// Write applies WriteDelta in place and returns the delta.
func (r *MVRegister) Write(replica, v string) *MVRegister {
	d := r.WriteDelta(replica, v)
	r.Merge(d)
	return d
}

// Values returns the surviving (concurrent) values, sorted and
// deduplicated. An unwritten register returns nil.
func (r *MVRegister) Values() []string {
	seen := make(map[string]struct{}, len(r.vals))
	var out []string
	for _, v := range r.vals {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Join returns the causal join of the two registers.
func (r *MVRegister) Join(other lattice.State) lattice.State {
	j := r.Clone().(*MVRegister)
	j.Merge(other)
	return j
}

// Merge joins other into the receiver in place: a write survives iff the
// other side has it too, or has not observed it.
func (r *MVRegister) Merge(other lattice.State) {
	o := mustMVRegister("Merge", r, other)
	for d := range r.vals {
		if _, inOther := o.vals[d]; inOther {
			continue
		}
		if _, seen := o.ctx[d]; seen {
			delete(r.vals, d)
		}
	}
	for d, v := range o.vals {
		_, seen := r.ctx[d]
		if _, mine := r.vals[d]; mine || !seen {
			r.vals[d] = v
		}
	}
	for d := range o.ctx {
		r.addDot(d)
	}
}

// Leq reports the causal order, mirroring AWSet.
func (r *MVRegister) Leq(other lattice.State) bool {
	o := mustMVRegister("Leq", r, other)
	for d := range r.ctx {
		if _, ok := o.ctx[d]; !ok {
			return false
		}
	}
	for d := range o.vals {
		if _, observed := r.ctx[d]; !observed {
			continue
		}
		if _, live := r.vals[d]; !live {
			return false
		}
	}
	return true
}

// IsBottom reports whether the register was never written.
func (r *MVRegister) IsBottom() bool { return len(r.ctx) == 0 }

// Bottom returns a fresh unwritten register.
func (r *MVRegister) Bottom() lattice.State { return NewMVRegister() }

// Irreducibles yields one atom per surviving write and one per superseded
// dot.
func (r *MVRegister) Irreducibles(yield func(lattice.State) bool) {
	for d, v := range r.vals {
		atom := NewMVRegister()
		atom.vals[d] = v
		atom.addDot(d)
		if !yield(atom) {
			return
		}
	}
	for d := range r.ctx {
		if _, live := r.vals[d]; live {
			continue
		}
		atom := NewMVRegister()
		atom.addDot(d)
		if !yield(atom) {
			return
		}
	}
}

// Equal reports structural equality.
func (r *MVRegister) Equal(other lattice.State) bool {
	o, ok := other.(*MVRegister)
	if !ok || len(r.ctx) != len(o.ctx) || len(r.vals) != len(o.vals) {
		return false
	}
	for d := range r.ctx {
		if _, present := o.ctx[d]; !present {
			return false
		}
	}
	for d, v := range r.vals {
		if ov, present := o.vals[d]; !present || ov != v {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (r *MVRegister) Clone() lattice.State {
	c := NewMVRegister()
	for d, v := range r.vals {
		c.vals[d] = v
	}
	for d := range r.ctx {
		c.ctx[d] = struct{}{}
	}
	for a, q := range r.maxSeq {
		c.maxSeq[a] = q
	}
	return c
}

// Elements returns the number of observed dots.
func (r *MVRegister) Elements() int { return len(r.ctx) }

// SizeBytes returns the wire size: values plus one dot each, plus context.
func (r *MVRegister) SizeBytes() int {
	n := len(r.ctx) * 12
	for _, v := range r.vals {
		n += len(v)
	}
	return n
}

// String renders the surviving values and context size.
func (r *MVRegister) String() string {
	return fmt.Sprintf("MVReg{%s|ctx:%d}", strings.Join(r.Values(), ","), len(r.ctx))
}

func mustMVRegister(op string, a, b lattice.State) *MVRegister {
	o, ok := b.(*MVRegister)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
