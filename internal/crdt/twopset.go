package crdt

import (
	"fmt"

	"crdtsync/internal/lattice"
)

// TwoPSet is a two-phase set: the product lattice P(E) × P(E) of an added
// set and a removed (tombstone) set. An element is a member when it is in
// added and not in removed; removal is permanent (remove-wins, no re-add).
type TwoPSet struct {
	added, removed *GSet
}

// NewTwoPSet returns an empty two-phase set.
func NewTwoPSet() *TwoPSet {
	return &TwoPSet{added: NewGSet(), removed: NewGSet()}
}

// AddDelta returns the δ-mutator result for adding e: a state whose added
// component is {e} if e was absent from added, bottom otherwise.
func (s *TwoPSet) AddDelta(e string) *TwoPSet {
	return &TwoPSet{added: s.added.AddDelta(e), removed: NewGSet()}
}

// RemoveDelta returns the δ-mutator result for removing e: a state whose
// removed component is {e} if e was absent from removed, bottom otherwise.
// Removing a never-added element is permitted and poisons future adds.
func (s *TwoPSet) RemoveDelta(e string) *TwoPSet {
	return &TwoPSet{added: NewGSet(), removed: s.removed.AddDelta(e)}
}

// Add applies AddDelta in place and returns the delta.
func (s *TwoPSet) Add(e string) *TwoPSet {
	d := s.AddDelta(e)
	s.Merge(d)
	return d
}

// Remove applies RemoveDelta in place and returns the delta.
func (s *TwoPSet) Remove(e string) *TwoPSet {
	d := s.RemoveDelta(e)
	s.Merge(d)
	return d
}

// Contains reports whether e is currently a member.
func (s *TwoPSet) Contains(e string) bool {
	return s.added.Contains(e) && !s.removed.Contains(e)
}

// Values returns the current members in sorted order.
func (s *TwoPSet) Values() []string {
	var out []string
	for _, e := range s.added.Values() {
		if !s.removed.Contains(e) {
			out = append(out, e)
		}
	}
	return out
}

// Added returns the added-set contents in sorted order (including
// tombstoned elements).
func (s *TwoPSet) Added() []string { return s.added.Values() }

// Removed returns the tombstone-set contents in sorted order.
func (s *TwoPSet) Removed() []string { return s.removed.Values() }

// Join returns the component-wise union.
func (s *TwoPSet) Join(other lattice.State) lattice.State {
	o := mustTwoPSet("Join", s, other)
	return &TwoPSet{
		added:   s.added.Join(o.added).(*GSet),
		removed: s.removed.Join(o.removed).(*GSet),
	}
}

// Merge joins other into the receiver in place.
func (s *TwoPSet) Merge(other lattice.State) {
	o := mustTwoPSet("Merge", s, other)
	s.added.Merge(o.added)
	s.removed.Merge(o.removed)
}

// Leq reports component-wise inclusion.
func (s *TwoPSet) Leq(other lattice.State) bool {
	o := mustTwoPSet("Leq", s, other)
	return s.added.Leq(o.added) && s.removed.Leq(o.removed)
}

// IsBottom reports whether both components are empty.
func (s *TwoPSet) IsBottom() bool { return s.added.IsBottom() && s.removed.IsBottom() }

// Bottom returns a fresh empty two-phase set.
func (s *TwoPSet) Bottom() lattice.State { return NewTwoPSet() }

// Irreducibles yields singleton-added and singleton-removed states,
// following the product decomposition rule ⇓⟨a,b⟩ = ⇓a×{⊥} ∪ {⊥}×⇓b.
func (s *TwoPSet) Irreducibles(yield func(lattice.State) bool) {
	stop := false
	s.added.Irreducibles(func(ia lattice.State) bool {
		if !yield(&TwoPSet{added: ia.(*GSet), removed: NewGSet()}) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	s.removed.Irreducibles(func(ir lattice.State) bool {
		return yield(&TwoPSet{added: NewGSet(), removed: ir.(*GSet)})
	})
}

// Equal reports component-wise equality.
func (s *TwoPSet) Equal(other lattice.State) bool {
	o, ok := other.(*TwoPSet)
	return ok && s.added.Equal(o.added) && s.removed.Equal(o.removed)
}

// Clone returns a deep copy.
func (s *TwoPSet) Clone() lattice.State {
	return &TwoPSet{added: s.added.Clone().(*GSet), removed: s.removed.Clone().(*GSet)}
}

// Elements returns the total number of added plus removed entries.
func (s *TwoPSet) Elements() int { return s.added.Elements() + s.removed.Elements() }

// SizeBytes returns the combined component sizes.
func (s *TwoPSet) SizeBytes() int { return s.added.SizeBytes() + s.removed.SizeBytes() }

// String renders both components.
func (s *TwoPSet) String() string {
	return fmt.Sprintf("TwoPSet{added:%s,removed:%s}", s.added, s.removed)
}

func mustTwoPSet(op string, a, b lattice.State) *TwoPSet {
	o, ok := b.(*TwoPSet)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
