package crdt_test

import (
	"math/rand"
	"strconv"
	"testing"

	"crdtsync/internal/core"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

func TestMVRegisterSequentialWrites(t *testing.T) {
	r := crdt.NewMVRegister()
	if got := r.Values(); got != nil {
		t.Fatalf("unwritten register values = %v", got)
	}
	r.Write("A", "v1")
	r.Write("A", "v2")
	if got := r.Values(); len(got) != 1 || got[0] != "v2" {
		t.Errorf("values = %v, want [v2] (write supersedes observed write)", got)
	}
}

func TestMVRegisterConcurrentWritesSurvive(t *testing.T) {
	a := crdt.NewMVRegister()
	a.Write("A", "base")
	b := a.Clone().(*crdt.MVRegister)
	a.Write("A", "from-a")
	b.Write("B", "from-b")
	j := a.Join(b).(*crdt.MVRegister)
	if got := j.Values(); len(got) != 2 || got[0] != "from-a" || got[1] != "from-b" {
		t.Errorf("values = %v, want both concurrent writes", got)
	}
	// A later write observing both collapses them.
	j.Write("C", "resolved")
	if got := j.Values(); len(got) != 1 || got[0] != "resolved" {
		t.Errorf("values = %v, want [resolved]", got)
	}
}

func TestMVRegisterJoinCommutes(t *testing.T) {
	a := crdt.NewMVRegister()
	b := crdt.NewMVRegister()
	a.Write("A", "x")
	b.Write("B", "y")
	ab := a.Join(b)
	ba := b.Join(a)
	if !ab.Equal(ba) {
		t.Error("join not commutative")
	}
}

func TestMVRegisterLatticeLaws(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	// Dots must identify writes uniquely, so every simulated replica
	// writes under its own actor namespace (a well-formedness invariant
	// of causal CRDTs).
	random := func(actor string) *crdt.MVRegister {
		reg := crdt.NewMVRegister()
		for i, n := 0, r.Intn(5); i < n; i++ {
			reg.Write(actor+strconv.Itoa(r.Intn(3)), "v"+strconv.Itoa(r.Intn(4)))
		}
		return reg
	}
	for i := 0; i < 300; i++ {
		a, b, c := random("a"), random("b"), random("c")
		if !a.Join(b).Equal(b.Join(a)) {
			t.Fatal("join not commutative")
		}
		if !a.Join(a).Equal(a) {
			t.Fatal("join not idempotent")
		}
		if !a.Join(b).Join(c).Equal(a.Join(b.Join(c))) {
			t.Fatal("join not associative")
		}
		if got, want := a.Leq(b), a.Join(b).Equal(b); got != want {
			t.Fatalf("Leq disagrees with join-test for %v vs %v", a, b)
		}
	}
}

func TestMVRegisterDecompositionAndDelta(t *testing.T) {
	a := crdt.NewMVRegister()
	a.Write("A", "x")
	b := a.Clone().(*crdt.MVRegister)
	a.Write("A", "y") // supersedes x: one live atom + one tombstone
	d := lattice.Decompose(a)
	if len(d) != 2 {
		t.Fatalf("decomposition size = %d, want 2", len(d))
	}
	if !core.IsDecomposition(d, a) || !core.IsIrredundant(d) {
		t.Error("MVRegister decomposition invalid")
	}
	// Optimal delta reconciles the stale replica.
	delta := core.Delta(a, b)
	b.Merge(delta)
	if !b.Equal(a) {
		t.Errorf("Δ did not reconcile: %v vs %v", b, a)
	}
}

func TestMVRegisterWriteDeltaLaw(t *testing.T) {
	r := crdt.NewMVRegister()
	r.Write("A", "v0")
	d := r.WriteDelta("B", "v1")
	full := r.Clone().(*crdt.MVRegister)
	full.Write("B", "v1")
	if got := r.Join(d); !got.Equal(full) {
		t.Error("write(x) ≠ x ⊔ writeδ(x)")
	}
}
