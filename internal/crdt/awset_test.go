package crdt_test

import (
	"math/rand"
	"strconv"
	"testing"

	"crdtsync/internal/core"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

func TestAWSetAddRemove(t *testing.T) {
	s := crdt.NewAWSet()
	s.Add("A", "x")
	s.Add("A", "y")
	if !s.Contains("x") || !s.Contains("y") || s.Len() != 2 {
		t.Fatalf("membership after adds: %v", s)
	}
	s.Remove("x")
	if s.Contains("x") {
		t.Error("removed element still present")
	}
	// Unlike 2P-Set, re-adding works.
	s.Add("A", "x")
	if !s.Contains("x") {
		t.Error("re-add after remove must succeed (observed-remove semantics)")
	}
}

func TestAWSetRemoveAbsentIsBottom(t *testing.T) {
	s := crdt.NewAWSet()
	if d := s.RemoveDelta("ghost"); !d.IsBottom() {
		t.Errorf("removing an absent element should be a no-op delta, got %v", d)
	}
}

func TestAWSetAddWins(t *testing.T) {
	// Replicas a and b share element x.
	a := crdt.NewAWSet()
	a.Add("A", "x")
	b := a.Clone().(*crdt.AWSet)

	// Concurrently: a re-adds x (fresh dot), b removes x.
	a.Add("A", "x")
	b.Remove("x")

	ab := a.Join(b).(*crdt.AWSet)
	ba := b.Join(a).(*crdt.AWSet)
	if !ab.Equal(ba) {
		t.Fatal("join not commutative")
	}
	if !ab.Contains("x") {
		t.Error("concurrent add must win over remove")
	}
}

func TestAWSetRemoveCoversObservedAdds(t *testing.T) {
	a := crdt.NewAWSet()
	a.Add("A", "x")
	b := a.Clone().(*crdt.AWSet)
	// b removes x having observed a's add; no concurrent re-add.
	b.Remove("x")
	j := a.Join(b).(*crdt.AWSet)
	if j.Contains("x") {
		t.Error("observed remove must delete the element")
	}
}

func TestAWSetDeltaMutatorLaw(t *testing.T) {
	s := crdt.NewAWSet()
	s.Add("A", "x")
	s.Add("B", "y")
	// m(x) = x ⊔ mδ(x) for add.
	full := s.Clone().(*crdt.AWSet)
	d := s.AddDelta("A", "z")
	full.Merge(d)
	viaJoin := s.Join(d)
	if !viaJoin.Equal(full) {
		t.Error("add: x ⊔ addδ(x) diverged from direct application")
	}
	// And for remove.
	full2 := s.Clone().(*crdt.AWSet)
	rd := s.RemoveDelta("x")
	full2.Merge(rd)
	if full2.Contains("x") {
		t.Error("remove delta did not remove")
	}
}

func TestAWSetLatticeLaws(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	random := func() *crdt.AWSet {
		s := crdt.NewAWSet()
		for i, n := 0, r.Intn(6); i < n; i++ {
			e := "e" + strconv.Itoa(r.Intn(4))
			if r.Intn(3) == 0 {
				s.Remove(e)
			} else {
				s.Add("r"+strconv.Itoa(r.Intn(3)), e)
			}
		}
		return s
	}
	for i := 0; i < 300; i++ {
		a, b, c := random(), random(), random()
		if !a.Join(b).Equal(b.Join(a)) {
			t.Fatalf("join not commutative: %v %v", a, b)
		}
		if !a.Join(a).Equal(a) {
			t.Fatalf("join not idempotent: %v", a)
		}
		if !a.Join(b).Join(c).Equal(a.Join(b.Join(c))) {
			t.Fatalf("join not associative")
		}
		j := a.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			t.Fatalf("join not an upper bound: %v %v → %v", a, b, j)
		}
		if got, want := a.Leq(b), a.Join(b).Equal(b); got != want {
			t.Fatalf("Leq disagrees with join-test: %v vs %v", a, b)
		}
	}
}

func TestAWSetMutatorsAreInflations(t *testing.T) {
	s := crdt.NewAWSet()
	for i := 0; i < 50; i++ {
		before := s.Clone()
		if i%3 == 0 {
			s.Remove("e" + strconv.Itoa(i%5))
		} else {
			s.Add("A", "e"+strconv.Itoa(i%5))
		}
		if !before.Leq(s) {
			t.Fatalf("mutation %d was not an inflation", i)
		}
	}
}

func TestAWSetDecomposition(t *testing.T) {
	s := crdt.NewAWSet()
	s.Add("A", "x")
	s.Add("B", "y")
	s.Remove("x")
	d := lattice.Decompose(s)
	// Dots: A:1 (x, removed → context-only), B:1 (y, live) → 2 atoms.
	if len(d) != 2 {
		t.Fatalf("decomposition size = %d, want 2 (%v)", len(d), d)
	}
	if !core.IsDecomposition(d, s) {
		t.Error("atoms do not join back to the state")
	}
	if !core.IsIrredundant(d) {
		t.Error("decomposition is redundant")
	}
}

func TestAWSetOptimalDeltaRR(t *testing.T) {
	// The RR code path: extract from a received state exactly what
	// inflates the local state.
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		a, b := crdt.NewAWSet(), crdt.NewAWSet()
		for j, n := 0, r.Intn(8); j < n; j++ {
			e := "e" + strconv.Itoa(r.Intn(4))
			switch r.Intn(3) {
			case 0:
				a.Add("A", e)
			case 1:
				b.Add("B", e)
			default:
				a.Remove(e)
			}
		}
		// Simulate shared history: b learns some of a.
		if r.Intn(2) == 0 {
			b.Merge(a)
			a.Add("A", "late")
		}
		d := core.Delta(a, b)
		if !d.Join(b).Equal(a.Join(b)) {
			t.Fatalf("Δ ⊔ b ≠ a ⊔ b for a=%v b=%v Δ=%v", a, b, d)
		}
		// Fully redundant transfers are dropped entirely.
		if a.Leq(b) && !d.IsBottom() {
			t.Fatalf("Δ should be ⊥ when a ⊑ b, got %v", d)
		}
	}
}

func TestAWSetClownIndependence(t *testing.T) {
	s := crdt.NewAWSet()
	s.Add("A", "x")
	c := s.Clone().(*crdt.AWSet)
	c.Add("B", "y")
	if s.Contains("y") {
		t.Error("mutating a clone affected the original")
	}
}

func TestAWSetElementsMetric(t *testing.T) {
	s := crdt.NewAWSet()
	if s.Elements() != 0 {
		t.Error("bottom should have 0 elements")
	}
	s.Add("A", "x")
	s.Add("A", "y")
	s.Remove("x")
	// 3 dots observed: x's add (now context-only), y's add, and the
	// re-add... Remove adds no dot, so 2 dots total.
	if got := s.Elements(); got != 2 {
		t.Errorf("Elements = %d, want 2", got)
	}
}
