package crdt

import (
	"fmt"

	"crdtsync/internal/lattice"
)

// ewToken is the single element an EWFlag stores in its underlying AWSet.
const ewToken = "on"

// EWFlag is an enable-wins flag: a boolean where a concurrent Enable beats
// a concurrent Disable. It is the AWSet over a one-element universe — a
// demonstration that the causal machinery (dot stores, contexts, and their
// decompositions) composes into further data types for free.
type EWFlag struct {
	s *AWSet
}

// NewEWFlag returns a disabled (bottom) flag.
func NewEWFlag() *EWFlag { return &EWFlag{s: NewAWSet()} }

// EnableDelta is the δ-mutator for enabling at the given replica.
func (f *EWFlag) EnableDelta(replica string) *EWFlag {
	return &EWFlag{s: f.s.AddDelta(replica, ewToken)}
}

// DisableDelta is the δ-mutator for disabling: it tombstones the observed
// enable dots; unseen concurrent enables survive the join (enable wins).
func (f *EWFlag) DisableDelta() *EWFlag {
	return &EWFlag{s: f.s.RemoveDelta(ewToken)}
}

// Enable applies EnableDelta in place and returns the delta.
func (f *EWFlag) Enable(replica string) *EWFlag {
	d := f.EnableDelta(replica)
	f.Merge(d)
	return d
}

// Disable applies DisableDelta in place and returns the delta.
func (f *EWFlag) Disable() *EWFlag {
	d := f.DisableDelta()
	f.Merge(d)
	return d
}

// Read returns the flag value.
func (f *EWFlag) Read() bool { return f.s.Contains(ewToken) }

// Join implements lattice.State.
func (f *EWFlag) Join(other lattice.State) lattice.State {
	return &EWFlag{s: f.s.Join(mustEWFlag("Join", f, other).s).(*AWSet)}
}

// Merge implements lattice.State.
func (f *EWFlag) Merge(other lattice.State) {
	f.s.Merge(mustEWFlag("Merge", f, other).s)
}

// Leq implements lattice.State.
func (f *EWFlag) Leq(other lattice.State) bool {
	return f.s.Leq(mustEWFlag("Leq", f, other).s)
}

// IsBottom implements lattice.State.
func (f *EWFlag) IsBottom() bool { return f.s.IsBottom() }

// Bottom implements lattice.State.
func (f *EWFlag) Bottom() lattice.State { return NewEWFlag() }

// Irreducibles implements lattice.State by lifting the AWSet atoms.
func (f *EWFlag) Irreducibles(yield func(lattice.State) bool) {
	f.s.Irreducibles(func(atom lattice.State) bool {
		return yield(&EWFlag{s: atom.(*AWSet)})
	})
}

// Equal implements lattice.State.
func (f *EWFlag) Equal(other lattice.State) bool {
	o, ok := other.(*EWFlag)
	return ok && f.s.Equal(o.s)
}

// Clone implements lattice.State.
func (f *EWFlag) Clone() lattice.State { return &EWFlag{s: f.s.Clone().(*AWSet)} }

// Elements implements lattice.State.
func (f *EWFlag) Elements() int { return f.s.Elements() }

// SizeBytes implements lattice.State.
func (f *EWFlag) SizeBytes() int { return f.s.SizeBytes() }

// String renders the flag.
func (f *EWFlag) String() string { return fmt.Sprintf("EWFlag{%t}", f.Read()) }

func mustEWFlag(op string, a, b lattice.State) *EWFlag {
	o, ok := b.(*EWFlag)
	if !ok {
		panic(fmt.Sprintf("crdt: %s of mismatched types %T and %T", op, a, b))
	}
	return o
}
