package codec_test

import (
	"encoding/binary"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/vclock"
)

func cost() metrics.Transmission {
	return metrics.Transmission{Messages: 1, Elements: 3, PayloadBytes: 17, MetadataBytes: 9}
}

// msgRoundTrip encodes and decodes a message, checking cost preservation.
func msgRoundTrip(t *testing.T, m protocol.Msg) protocol.Msg {
	t.Helper()
	data, err := codec.EncodeMsg(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, n, err := codec.DecodeMsg(data)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if n != len(data) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(data))
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("kind = %q, want %q", got.Kind(), m.Kind())
	}
	if got.Cost() != m.Cost() {
		t.Fatalf("cost = %+v, want %+v", got.Cost(), m.Cost())
	}
	return got
}

func TestStateMsgRoundTrip(t *testing.T) {
	m := protocol.NewStateMsg(crdt.NewGSet("a", "b"), cost())
	got := msgRoundTrip(t, m).(*protocol.StateMsg)
	if !got.State.Equal(m.State) {
		t.Error("state payload mismatch")
	}
}

func TestDeltaMsgRoundTrip(t *testing.T) {
	m := protocol.NewDeltaMsg(crdt.NewGSet("d"), cost())
	got := msgRoundTrip(t, m).(*protocol.DeltaMsg)
	if !got.Delta.Equal(m.Delta) {
		t.Error("delta payload mismatch")
	}
}

func TestAckedDeltaAndAckRoundTrip(t *testing.T) {
	m := protocol.NewAckedDeltaMsg(crdt.NewGSet("x"), []uint64{3, 9, 12}, cost())
	got := msgRoundTrip(t, m).(*protocol.AckedDeltaMsg)
	if len(got.Seqs) != 3 || got.Seqs[2] != 12 {
		t.Errorf("seqs = %v", got.Seqs)
	}
	a := protocol.NewAckMsg([]uint64{7}, cost())
	gotAck := msgRoundTrip(t, a).(*protocol.AckMsg)
	if len(gotAck.Seqs) != 1 || gotAck.Seqs[0] != 7 {
		t.Errorf("ack seqs = %v", gotAck.Seqs)
	}
}

func TestSBDigestRoundTrip(t *testing.T) {
	vec := vclock.New()
	vec.Set("n00", 4)
	vec.Set("n01", 2)
	// Plain digest (no matrix).
	m := protocol.NewSBDigestMsg(vec, nil, cost())
	got := msgRoundTrip(t, m).(*protocol.SBDigestMsg)
	if !got.Vec.Equal(vec) || got.Matrix != nil {
		t.Error("plain digest mismatch")
	}
	// GC digest with matrix.
	other := vclock.New()
	other.Set("n02", 8)
	mg := protocol.NewSBDigestMsg(vec, map[string]*vclock.VClock{"n00": vec.Clone(), "n02": other}, cost())
	gotGC := msgRoundTrip(t, mg).(*protocol.SBDigestMsg)
	if len(gotGC.Matrix) != 2 || !gotGC.Matrix["n02"].Equal(other) {
		t.Error("matrix mismatch")
	}
}

func TestSBDeltasRoundTrip(t *testing.T) {
	items := []protocol.SBItem{
		{Dot: vclock.Dot{Actor: "n00", Seq: 1}, Delta: crdt.NewGSet("p")},
		{Dot: vclock.Dot{Actor: "n01", Seq: 5}, Delta: crdt.NewGSet("q")},
	}
	m := protocol.NewSBDeltasMsg(items, cost())
	got := msgRoundTrip(t, m).(*protocol.SBDeltasMsg)
	if len(got.Items) != 2 || got.Items[1].Dot.Seq != 5 {
		t.Errorf("items = %+v", got.Items)
	}
	if !got.Items[0].Delta.Equal(items[0].Delta) {
		t.Error("item delta mismatch")
	}
}

func TestOpsMsgRoundTrip(t *testing.T) {
	dep := vclock.New()
	dep.Set("n00", 2)
	ops := []protocol.TaggedOp{{
		Dot:     vclock.Dot{Actor: "n00", Seq: 3},
		Dep:     dep,
		Payload: crdt.NewGSet("op-elem"),
		OpBytes: 7,
	}}
	m := protocol.NewOpsMsg(ops, cost())
	got := msgRoundTrip(t, m).(*protocol.OpsMsg)
	if len(got.Ops) != 1 {
		t.Fatalf("ops = %d", len(got.Ops))
	}
	op := got.Ops[0]
	if op.Dot != ops[0].Dot || op.OpBytes != 7 || !op.Dep.Equal(dep) || !op.Payload.Equal(ops[0].Payload) {
		t.Errorf("op mismatch: %+v", op)
	}
}

func TestBatchMsgRoundTrip(t *testing.T) {
	items := []protocol.ObjectMsg{
		{Key: "obj1", Inner: protocol.NewDeltaMsg(crdt.NewGSet("a"), cost())},
		{Key: "obj2", Inner: protocol.NewStateMsg(crdt.NewGCounter(), cost())},
	}
	m := protocol.NewBatchMsg(items, cost())
	got := msgRoundTrip(t, m).(*protocol.BatchMsg)
	if len(got.Items) != 2 || got.Items[0].Key != "obj1" {
		t.Fatalf("items = %+v", got.Items)
	}
	if got.Items[0].Inner.Kind() != "delta" || got.Items[1].Inner.Kind() != "state" {
		t.Error("nested message kinds mismatch")
	}
}

func TestShardedMsgRoundTrip(t *testing.T) {
	batch := protocol.NewBatchMsg([]protocol.ObjectMsg{
		{Key: "user:1", Inner: protocol.NewDeltaMsg(crdt.NewGSet("a"), cost())},
		{Key: "user:2", Inner: protocol.NewDeltaMsg(crdt.NewGSet("b"), cost())},
	}, cost())
	items := []protocol.ShardItem{
		{Shard: 0, Msg: batch},
		{Shard: 13, Msg: protocol.NewDeltaMsg(crdt.NewGSet("c"), cost())},
	}
	m := protocol.NewShardedMsg(items)
	got := msgRoundTrip(t, m).(*protocol.ShardedMsg)
	if len(got.Items) != 2 || got.Items[1].Shard != 13 {
		t.Fatalf("items = %+v", got.Items)
	}
	inner, ok := got.Items[0].Msg.(*protocol.BatchMsg)
	if !ok || len(inner.Items) != 2 || inner.Items[1].Key != "user:2" {
		t.Errorf("nested batch mismatch: %+v", got.Items[0].Msg)
	}
	if got.Items[1].Msg.Kind() != "delta" {
		t.Errorf("second item kind = %q, want delta", got.Items[1].Msg.Kind())
	}
}

func TestShardedDigestMsgRoundTrip(t *testing.T) {
	items := []protocol.ShardItem{
		{Shard: 2, Msg: protocol.NewDeltaMsg(crdt.NewGSet("a"), cost())},
	}
	vec := []uint64{7, 0, ^uint64(0), 0xfeedface}
	m := protocol.NewShardedDigestMsg(items, vec)
	got := msgRoundTrip(t, m).(*protocol.ShardedMsg)
	if len(got.Items) != 1 || got.Items[0].Shard != 2 {
		t.Fatalf("items = %+v", got.Items)
	}
	if len(got.Digests) != 4 || got.Digests[2] != ^uint64(0) || got.Digests[3] != 0xfeedface {
		t.Errorf("digests = %v", got.Digests)
	}
	// The plain and digest-carrying variants use distinct wire tags, so a
	// nil vector must re-encode to the plain encoding and a non-nil one
	// (even empty) to the digest-carrying encoding — the canonical fixed
	// point the fuzz target demands.
	plain, _ := codec.EncodeMsg(protocol.NewShardedMsg(items))
	carrying, _ := codec.EncodeMsg(m)
	if plain[0] == carrying[0] {
		t.Error("digest-carrying encoding shares the plain tag")
	}
	empty, _ := codec.EncodeMsg(protocol.NewShardedDigestMsg(items, []uint64{}))
	if empty[0] != carrying[0] {
		t.Error("empty non-nil vector should keep the digest-carrying tag")
	}
	gotEmpty, _, err := codec.DecodeMsg(empty)
	if err != nil {
		t.Fatal(err)
	}
	if gotEmpty.(*protocol.ShardedMsg).Digests == nil {
		t.Error("empty vector decoded to nil: re-encode would change tags")
	}
}

func TestShardedDigestMsgHostileCount(t *testing.T) {
	// The piggybacked vector's count is bounds-checked against the actual
	// remaining bytes before allocating, like DigestMsg's.
	header := []byte{74, 0, 0, 0, 0} // tagShardedDigestMsg, zero cost
	for _, count := range []uint64{1 << 60, 3} {
		data := binary.AppendUvarint(append([]byte{}, header...), count)
		data = append(data, make([]byte, 16)...) // room for only 2 digests
		if _, _, err := codec.DecodeMsg(data); err == nil {
			t.Errorf("digest count %d over 16 payload bytes should fail", count)
		}
	}
}

func TestMergeSharded(t *testing.T) {
	itemsA := []protocol.ShardItem{
		{Shard: 1, Msg: protocol.NewDeltaMsg(crdt.NewGSet("a"), cost())},
		{Shard: 2, Msg: protocol.NewDeltaMsg(crdt.NewGSet("b"), cost())},
	}
	itemsB := []protocol.ShardItem{
		{Shard: 9, Msg: protocol.NewAckMsg([]uint64{4}, cost())},
	}
	ma, mb := protocol.NewShardedMsg(itemsA), protocol.NewShardedMsg(itemsB)
	ea, _ := codec.EncodeMsg(ma)
	eb, _ := codec.EncodeMsg(mb)
	if !codec.CanMergeSharded(ea) || !codec.CanMergeSharded(eb) {
		t.Fatal("plain sharded frames reported unmergeable")
	}
	merged, ok := codec.MergeSharded([][]byte{ea, eb})
	if !ok {
		t.Fatal("two plain sharded frames refused to merge")
	}
	if len(merged) > len(ea)+len(eb) {
		t.Errorf("merged %d bytes from %d+%d: merging must never grow", len(merged), len(ea), len(eb))
	}
	got, n, err := codec.DecodeMsg(merged)
	if err != nil || n != len(merged) {
		t.Fatalf("merged frame decode: n=%d err=%v", n, err)
	}
	sm := got.(*protocol.ShardedMsg)
	if len(sm.Items) != 3 || sm.Items[0].Shard != 1 || sm.Items[2].Shard != 9 {
		t.Fatalf("merged items = %+v", sm.Items)
	}
	wantCost := ma.Cost()
	wantCost.Add(mb.Cost())
	if sm.Cost() != wantCost {
		t.Errorf("merged cost = %+v, want summed %+v", sm.Cost(), wantCost)
	}
	// Non-mergeable inputs: a digest-carrying frame (its vector describes
	// one instant, not a range) and a non-sharded message. CanMergeSharded
	// must agree with MergeSharded on every case.
	ec, _ := codec.EncodeMsg(protocol.NewShardedDigestMsg(itemsB, []uint64{1, 2}))
	if _, ok := codec.MergeSharded([][]byte{ea, ec}); ok || codec.CanMergeSharded(ec) {
		t.Error("digest-carrying frame must not merge")
	}
	ed, _ := codec.EncodeMsg(protocol.NewAckMsg([]uint64{1}, cost()))
	if _, ok := codec.MergeSharded([][]byte{ea, ed}); ok || codec.CanMergeSharded(ed) {
		t.Error("non-sharded frame must not merge")
	}
	if _, ok := codec.MergeSharded([][]byte{nil, ea}); ok {
		t.Error("empty input must not merge")
	}
	if _, ok := codec.MergeSharded(nil); ok {
		t.Error("empty frame list must not merge")
	}
}

func TestShardedMsgCostAggregation(t *testing.T) {
	inner := protocol.NewDeltaMsg(crdt.NewGSet("x", "y"), metrics.Transmission{
		Messages: 1, Elements: 2, PayloadBytes: 10, MetadataBytes: 8,
	})
	m := protocol.NewShardedMsg([]protocol.ShardItem{{Shard: 3, Msg: inner}})
	c := m.Cost()
	if c.Messages != 1 {
		t.Errorf("messages = %d, want 1 (one frame on the wire)", c.Messages)
	}
	if c.Elements != 2 || c.PayloadBytes != 10 {
		t.Errorf("payload accounting = %+v, want inner sums", c)
	}
	if c.MetadataBytes != 8+4 {
		t.Errorf("metadata = %d, want inner 8 + 4 routing bytes", c.MetadataBytes)
	}
}

func TestDigestMsgRoundTrip(t *testing.T) {
	// Advertisement: a digest vector, no wants.
	vec := []uint64{0, 1, ^uint64(0), 0xdeadbeefcafe}
	m := protocol.NewDigestMsg(vec, nil, cost())
	got := msgRoundTrip(t, m).(*protocol.DigestMsg)
	if len(got.Digests) != 4 || got.Digests[2] != ^uint64(0) || got.Digests[3] != 0xdeadbeefcafe {
		t.Errorf("digests = %v", got.Digests)
	}
	if got.Want != nil {
		t.Errorf("want = %v, want nil", got.Want)
	}
	// Request: shard indices, no digests.
	r := protocol.NewDigestMsg(nil, []uint32{0, 13, 4294967295}, cost())
	gotR := msgRoundTrip(t, r).(*protocol.DigestMsg)
	if len(gotR.Want) != 3 || gotR.Want[2] != 4294967295 {
		t.Errorf("want = %v", gotR.Want)
	}
	if gotR.Digests != nil {
		t.Errorf("digests = %v, want nil", gotR.Digests)
	}
}

func TestTreeMsgRoundTrip(t *testing.T) {
	// Query round (drill-down request).
	q := protocol.NewTreeMsg(7, 1, []uint32{0, 5, 15}, nil, nil, nil, cost())
	gotQ := msgRoundTrip(t, q).(*protocol.TreeMsg)
	if gotQ.Shard != 7 || gotQ.Level != 1 {
		t.Errorf("shard/level = %d/%d", gotQ.Shard, gotQ.Level)
	}
	if len(gotQ.Query) != 3 || gotQ.Query[2] != 15 || gotQ.Nodes != nil || gotQ.Want != nil {
		t.Errorf("query round = %+v", gotQ)
	}
	// Answer round (nodes + hashes, parallel slices).
	a := protocol.NewTreeMsg(0, 2, nil, []uint32{3, 255}, []uint64{0, ^uint64(0)}, nil, cost())
	gotA := msgRoundTrip(t, a).(*protocol.TreeMsg)
	if len(gotA.Nodes) != 2 || gotA.Nodes[1] != 255 || len(gotA.Hashes) != 2 || gotA.Hashes[1] != ^uint64(0) {
		t.Errorf("answer round = %+v", gotA)
	}
	// Want round (leaf-level range request).
	w := protocol.NewTreeMsg(4294967295, protocol.TreeDepth, nil, nil, nil,
		[]uint32{0, protocol.TreeLeaves - 1}, cost())
	gotW := msgRoundTrip(t, w).(*protocol.TreeMsg)
	if gotW.Shard != 4294967295 || len(gotW.Want) != 2 || gotW.Want[1] != protocol.TreeLeaves-1 {
		t.Errorf("want round = %+v", gotW)
	}
}

func TestEncodeTreeMsgMismatchedHashes(t *testing.T) {
	m := protocol.NewTreeMsg(0, 1, nil, []uint32{1, 2}, []uint64{9}, nil, cost())
	if _, err := codec.EncodeMsg(m); err == nil {
		t.Error("nodes/hashes length mismatch should fail encoding")
	}
}

func TestDecodeTreeHostileInput(t *testing.T) {
	header := []byte{75, 0, 0, 0, 0, 0} // tagTreeMsg, zero cost, shard 0
	// Levels outside [1, TreeDepth] bound no node index and must fail.
	for _, level := range []byte{0, protocol.TreeDepth + 1, 255} {
		data := append(append([]byte{}, header...), level)
		data = append(data, 0, 0, 0) // empty query/nodes/want
		if _, _, err := codec.DecodeMsg(data); err == nil {
			t.Errorf("level %d should fail decoding", level)
		}
	}
	// A query index at the level's node count must be rejected, not
	// passed through to alias another node.
	data := append(append([]byte{}, header...), 1) // level 1: 16 nodes
	data = binary.AppendUvarint(data, 1)           // one query index
	data = binary.AppendUvarint(data, 16)          // == TreeNodesAt(1)
	if _, _, err := codec.DecodeMsg(data); err == nil {
		t.Error("out-of-range query index should fail decoding")
	}
	// A node count promising far more pairs than the payload holds must
	// fail before allocating.
	data = append(append([]byte{}, header...), 3, 0) // leaf level, no query
	data = binary.AppendUvarint(data, 1<<50)
	if _, _, err := codec.DecodeMsg(data); err == nil {
		t.Error("hostile node count should fail decoding")
	}
	// A pair whose hash is truncated must fail.
	data = append(append([]byte{}, header...), 3, 0)
	data = binary.AppendUvarint(data, 1) // one pair
	data = binary.AppendUvarint(data, 2) // node index
	data = append(data, 1, 2, 3)         // only 3 of 8 hash bytes
	if _, _, err := codec.DecodeMsg(data); err == nil {
		t.Error("truncated node hash should fail decoding")
	}
	// A shard index beyond uint32 must be rejected, as everywhere else.
	data = []byte{75, 0, 0, 0, 0}
	data = binary.AppendUvarint(data, uint64(1)<<35)
	data = append(data, 1, 0, 0, 0)
	if _, _, err := codec.DecodeMsg(data); err == nil {
		t.Error("out-of-range shard index should fail decoding")
	}
	// Truncated before the level byte.
	data = []byte{75, 0, 0, 0, 0, 0}
	if _, _, err := codec.DecodeMsg(data); err == nil {
		t.Error("message truncated at level should fail decoding")
	}
}

func TestDecodeDigestHostileInput(t *testing.T) {
	header := []byte{73, 0, 0, 0, 0} // tagDigestMsg, zero cost
	// A count promising 2^60 digests in a few bytes must fail before
	// allocating, as must one barely above the actual payload.
	for _, count := range []uint64{1 << 60, 3} {
		data := binary.AppendUvarint(append([]byte{}, header...), count)
		data = append(data, make([]byte, 16)...) // room for only 2 digests
		if _, _, err := codec.DecodeMsg(data); err == nil {
			t.Errorf("count %d over 16 payload bytes should fail", count)
		}
	}
	// A want index beyond uint32 must be rejected, not truncated into the
	// valid shard range.
	data := append(append([]byte{}, header...), 0) // no digests
	data = binary.AppendUvarint(data, 1)           // one want
	data = binary.AppendUvarint(data, uint64(1)<<34)
	if _, _, err := codec.DecodeMsg(data); err == nil {
		t.Error("out-of-range want index should fail decoding")
	}
	// Truncated want list.
	data = append(append([]byte{}, header...), 0)
	data = binary.AppendUvarint(data, 5) // promises 5 wants, has none
	if _, _, err := codec.DecodeMsg(data); err == nil {
		t.Error("truncated want list should fail decoding")
	}
}

func TestDecodeShardIndexOutOfRange(t *testing.T) {
	// A shard index beyond uint32 must be rejected, not truncated into
	// the valid range where it would bypass the receiver's bounds check.
	msg := []byte{72, 0, 0, 0, 0, 1}               // sharded, zero cost, 1 item
	msg = binary.AppendUvarint(msg, uint64(1)<<33) // hostile shard index
	inner, _ := codec.EncodeMsg(protocol.NewAckMsg(nil, cost()))
	msg = append(msg, inner...)
	if _, _, err := codec.DecodeMsg(msg); err == nil {
		t.Error("out-of-range shard index should fail decoding")
	}
}

func TestDecodeHostileNestingDoesNotPanic(t *testing.T) {
	// A chain of container prefixes far past legitimate nesting must fail
	// with an error, not exhaust the stack.
	var msg []byte
	for i := 0; i < 1000; i++ {
		msg = append(msg, 72)         // tagShardedMsg
		msg = append(msg, 0, 0, 0, 0) // zero cost
		msg = append(msg, 1)          // one item
		msg = append(msg, 0)          // shard 0
	}
	if _, _, err := codec.DecodeMsg(msg); err == nil {
		t.Error("deeply nested sharded message should fail")
	}
	var state []byte
	for i := 0; i < 1000; i++ {
		state = append(state, 4)    // tagMap
		state = append(state, 1, 0) // one entry, empty key
	}
	if _, _, err := codec.Decode(state); err == nil {
		t.Error("deeply nested map state should fail")
	}
}

func TestDecodeMsgErrors(t *testing.T) {
	if _, _, err := codec.DecodeMsg(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := codec.DecodeMsg([]byte{200, 0, 0, 0, 0}); err == nil {
		t.Error("unknown tag should fail")
	}
	data, _ := codec.EncodeMsg(protocol.NewDeltaMsg(crdt.NewGSet("abc"), cost()))
	if _, _, err := codec.DecodeMsg(data[:3]); err == nil {
		t.Error("truncated message should fail")
	}
}

func TestDecodeHostileCountDoesNotPanic(t *testing.T) {
	// A frame declaring an absurd element count (here 2^60 sharded items
	// in a few bytes) must fail with a decode error, not panic allocating
	// the claimed capacity. Exercise every counted message shape.
	encodeHeader := func(tag byte) []byte {
		b := []byte{tag}
		b = append(b, 0, 0, 0, 0) // zero cost
		return b
	}
	hugeCount := binary.AppendUvarint(nil, 1<<60)
	for _, tag := range []byte{68, 69, 70, 71, 72} { // sbdigest..sharded
		data := encodeHeader(tag)
		if tag == 68 { // SBDigestMsg: empty vector, matrix present
			data = append(data, 0, 1)
		}
		data = append(data, hugeCount...)
		if _, _, err := codec.DecodeMsg(data); err == nil {
			t.Errorf("tag %d: hostile count should fail", tag)
		}
	}
}
