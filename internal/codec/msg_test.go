package codec_test

import (
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/vclock"
)

func cost() metrics.Transmission {
	return metrics.Transmission{Messages: 1, Elements: 3, PayloadBytes: 17, MetadataBytes: 9}
}

// msgRoundTrip encodes and decodes a message, checking cost preservation.
func msgRoundTrip(t *testing.T, m protocol.Msg) protocol.Msg {
	t.Helper()
	data, err := codec.EncodeMsg(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, n, err := codec.DecodeMsg(data)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if n != len(data) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(data))
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("kind = %q, want %q", got.Kind(), m.Kind())
	}
	if got.Cost() != m.Cost() {
		t.Fatalf("cost = %+v, want %+v", got.Cost(), m.Cost())
	}
	return got
}

func TestStateMsgRoundTrip(t *testing.T) {
	m := protocol.NewStateMsg(crdt.NewGSet("a", "b"), cost())
	got := msgRoundTrip(t, m).(*protocol.StateMsg)
	if !got.State.Equal(m.State) {
		t.Error("state payload mismatch")
	}
}

func TestDeltaMsgRoundTrip(t *testing.T) {
	m := protocol.NewDeltaMsg(crdt.NewGSet("d"), cost())
	got := msgRoundTrip(t, m).(*protocol.DeltaMsg)
	if !got.Delta.Equal(m.Delta) {
		t.Error("delta payload mismatch")
	}
}

func TestAckedDeltaAndAckRoundTrip(t *testing.T) {
	m := protocol.NewAckedDeltaMsg(crdt.NewGSet("x"), []uint64{3, 9, 12}, cost())
	got := msgRoundTrip(t, m).(*protocol.AckedDeltaMsg)
	if len(got.Seqs) != 3 || got.Seqs[2] != 12 {
		t.Errorf("seqs = %v", got.Seqs)
	}
	a := protocol.NewAckMsg([]uint64{7}, cost())
	gotAck := msgRoundTrip(t, a).(*protocol.AckMsg)
	if len(gotAck.Seqs) != 1 || gotAck.Seqs[0] != 7 {
		t.Errorf("ack seqs = %v", gotAck.Seqs)
	}
}

func TestSBDigestRoundTrip(t *testing.T) {
	vec := vclock.New()
	vec.Set("n00", 4)
	vec.Set("n01", 2)
	// Plain digest (no matrix).
	m := protocol.NewSBDigestMsg(vec, nil, cost())
	got := msgRoundTrip(t, m).(*protocol.SBDigestMsg)
	if !got.Vec.Equal(vec) || got.Matrix != nil {
		t.Error("plain digest mismatch")
	}
	// GC digest with matrix.
	other := vclock.New()
	other.Set("n02", 8)
	mg := protocol.NewSBDigestMsg(vec, map[string]*vclock.VClock{"n00": vec.Clone(), "n02": other}, cost())
	gotGC := msgRoundTrip(t, mg).(*protocol.SBDigestMsg)
	if len(gotGC.Matrix) != 2 || !gotGC.Matrix["n02"].Equal(other) {
		t.Error("matrix mismatch")
	}
}

func TestSBDeltasRoundTrip(t *testing.T) {
	items := []protocol.SBItem{
		{Dot: vclock.Dot{Actor: "n00", Seq: 1}, Delta: crdt.NewGSet("p")},
		{Dot: vclock.Dot{Actor: "n01", Seq: 5}, Delta: crdt.NewGSet("q")},
	}
	m := protocol.NewSBDeltasMsg(items, cost())
	got := msgRoundTrip(t, m).(*protocol.SBDeltasMsg)
	if len(got.Items) != 2 || got.Items[1].Dot.Seq != 5 {
		t.Errorf("items = %+v", got.Items)
	}
	if !got.Items[0].Delta.Equal(items[0].Delta) {
		t.Error("item delta mismatch")
	}
}

func TestOpsMsgRoundTrip(t *testing.T) {
	dep := vclock.New()
	dep.Set("n00", 2)
	ops := []protocol.TaggedOp{{
		Dot:     vclock.Dot{Actor: "n00", Seq: 3},
		Dep:     dep,
		Payload: crdt.NewGSet("op-elem"),
		OpBytes: 7,
	}}
	m := protocol.NewOpsMsg(ops, cost())
	got := msgRoundTrip(t, m).(*protocol.OpsMsg)
	if len(got.Ops) != 1 {
		t.Fatalf("ops = %d", len(got.Ops))
	}
	op := got.Ops[0]
	if op.Dot != ops[0].Dot || op.OpBytes != 7 || !op.Dep.Equal(dep) || !op.Payload.Equal(ops[0].Payload) {
		t.Errorf("op mismatch: %+v", op)
	}
}

func TestBatchMsgRoundTrip(t *testing.T) {
	items := []protocol.ObjectMsg{
		{Key: "obj1", Inner: protocol.NewDeltaMsg(crdt.NewGSet("a"), cost())},
		{Key: "obj2", Inner: protocol.NewStateMsg(crdt.NewGCounter(), cost())},
	}
	m := protocol.NewBatchMsg(items, cost())
	got := msgRoundTrip(t, m).(*protocol.BatchMsg)
	if len(got.Items) != 2 || got.Items[0].Key != "obj1" {
		t.Fatalf("items = %+v", got.Items)
	}
	if got.Items[0].Inner.Kind() != "delta" || got.Items[1].Inner.Kind() != "state" {
		t.Error("nested message kinds mismatch")
	}
}

func TestDecodeMsgErrors(t *testing.T) {
	if _, _, err := codec.DecodeMsg(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := codec.DecodeMsg([]byte{200, 0, 0, 0, 0}); err == nil {
		t.Error("unknown tag should fail")
	}
	data, _ := codec.EncodeMsg(protocol.NewDeltaMsg(crdt.NewGSet("abc"), cost()))
	if _, _, err := codec.DecodeMsg(data[:3]); err == nil {
		t.Error("truncated message should fail")
	}
}
