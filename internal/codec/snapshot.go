package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"crdtsync/internal/lattice"
)

// This file defines the on-disk snapshot record format the transport's
// per-shard snapshotter writes and restores. A snapshot file is a small
// manifest header plus the shard's (key, state) records, reusing the
// canonical wire encoding for states so equal contents produce equal
// bytes on disk exactly as they do on the wire:
//
//	"CSNP" | version | header frame | data frame | data frame | ...
//
// Every frame is length-prefixed and individually checksummed —
//
//	uvarint payloadLen | payload | 4-byte big-endian CRC-32C
//
// — so a torn write, bit rot, or truncation is detected before any
// record in the damaged region is parsed. The header payload carries the
// manifest (shard index, shard count, key count); each data frame
// payload is a run of appendString(key) + appendState(state) records,
// cut at ~64 KiB so corruption costs one frame's worth of verification,
// not the file. Decoding applies the same hostile-input discipline as
// the wire decoders: every length is checked against the bytes that
// remain, and no allocation is sized by unverified wire-declared counts.

// SnapshotVersion is the current snapshot file format version.
const SnapshotVersion = 1

const (
	snapshotMagic = "CSNP"
	// snapshotFrameTarget is the data-frame cut point; a record that
	// lands past it seals the frame, so frames exceed it by at most one
	// record.
	snapshotFrameTarget = 64 << 10
	// maxSnapshotShards bounds the manifest's shard count; the transport
	// caps shard counts orders of magnitude below this.
	maxSnapshotShards = 1 << 20
)

// ErrSnapshotCorrupt reports a snapshot file that failed validation —
// bad magic, unknown version, a frame whose checksum or length does not
// match, or records that disagree with the manifest. Restore treats the
// whole file as absent: a torn snapshot contributes nothing rather than
// a silently partial shard.
var ErrSnapshotCorrupt = errors.New("codec: snapshot corrupt")

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// SnapshotInfo is the decoded manifest of one snapshot file.
type SnapshotInfo struct {
	// Shard is the shard index the file was written for. Restore treats
	// it as provenance, not routing: keys are re-routed by hash, so a
	// store restarted with a different shard count still restores.
	Shard int
	// Shards is the writer's shard count.
	Shards int
	// Keys is the number of records in the file; decoding verifies it.
	Keys int
}

// SnapshotWriter serializes one shard's objects into the snapshot file
// format. Records are appended in the order given (the transport passes
// them in sorted key order, matching the digest discipline, though the
// decoder does not require it).
type SnapshotWriter struct {
	buf   []byte
	frame []byte
}

// NewSnapshotWriter starts a snapshot file for the given shard manifest.
func NewSnapshotWriter(shard, shards, keys int) *SnapshotWriter {
	w := &SnapshotWriter{}
	w.buf = append(w.buf, snapshotMagic...)
	w.buf = append(w.buf, SnapshotVersion)
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(shard))
	hdr = binary.AppendUvarint(hdr, uint64(shards))
	hdr = binary.AppendUvarint(hdr, uint64(keys))
	w.buf = appendSnapshotFrame(w.buf, hdr)
	return w
}

func appendSnapshotFrame(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, snapshotCRC))
}

// Add appends one object record. It panics on a state without a wire
// encoding, like Encode — snapshotting an unencodable state is the same
// programming error as shipping one.
func (w *SnapshotWriter) Add(key string, st lattice.State) {
	w.frame = appendString(w.frame, key)
	w.frame = appendState(w.frame, st)
	if len(w.frame) >= snapshotFrameTarget {
		w.buf = appendSnapshotFrame(w.buf, w.frame)
		w.frame = w.frame[:0]
	}
}

// Bytes seals the file and returns its encoded form.
func (w *SnapshotWriter) Bytes() []byte {
	if len(w.frame) > 0 {
		w.buf = appendSnapshotFrame(w.buf, w.frame)
		w.frame = w.frame[:0]
	}
	return w.buf
}

// readSnapshotFrame validates and returns the next frame's payload and
// the total bytes it occupied.
func readSnapshotFrame(data []byte) ([]byte, int, error) {
	l, n, err := readUvarint(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: truncated frame length", ErrSnapshotCorrupt)
	}
	rest := uint64(len(data) - n)
	if l > rest || rest-l < 4 {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds remaining %d bytes", ErrSnapshotCorrupt, l, rest)
	}
	payload := data[n : n+int(l)]
	sum := binary.BigEndian.Uint32(data[n+int(l):])
	if crc32.Checksum(payload, snapshotCRC) != sum {
		return nil, 0, fmt.Errorf("%w: frame checksum mismatch", ErrSnapshotCorrupt)
	}
	return payload, n + int(l) + 4, nil
}

// DecodeSnapshot validates a snapshot file and streams its records to
// fn, returning the manifest. Each frame's checksum is verified before
// any record inside it is parsed, and the total record count must match
// the manifest, so fn never sees records from a damaged region — but a
// caller that must treat a corrupt file as wholly absent (the restore
// path) should still buffer records and apply them only after
// DecodeSnapshot returns nil. A non-nil error from fn aborts the decode
// and is returned as is.
func DecodeSnapshot(data []byte, fn func(key string, st lattice.State) error) (SnapshotInfo, error) {
	var info SnapshotInfo
	if len(data) < len(snapshotMagic)+1 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return info, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := data[len(snapshotMagic)]; v != SnapshotVersion {
		return info, fmt.Errorf("%w: unsupported version %d", ErrSnapshotCorrupt, v)
	}
	rest := data[len(snapshotMagic)+1:]
	hdr, n, err := readSnapshotFrame(rest)
	if err != nil {
		return info, err
	}
	rest = rest[n:]
	var fields [3]uint64
	for i := range fields {
		v, vn, err := readUvarint(hdr)
		if err != nil {
			return info, fmt.Errorf("%w: truncated manifest", ErrSnapshotCorrupt)
		}
		fields[i] = v
		hdr = hdr[vn:]
	}
	if len(hdr) != 0 {
		return info, fmt.Errorf("%w: %d trailing manifest bytes", ErrSnapshotCorrupt, len(hdr))
	}
	shard, shards, keys := fields[0], fields[1], fields[2]
	// Each record costs at least one key-length byte and one state tag,
	// so the manifest cannot honestly promise more records than half the
	// remaining bytes — reject the lie before counting records against it.
	if shards == 0 || shards > maxSnapshotShards || shard >= shards || keys > uint64(len(rest))/2 {
		return info, fmt.Errorf("%w: implausible manifest (shard %d of %d, %d keys)", ErrSnapshotCorrupt, shard, shards, keys)
	}
	info = SnapshotInfo{Shard: int(shard), Shards: int(shards), Keys: int(keys)}
	total := 0
	for len(rest) > 0 {
		payload, n, err := readSnapshotFrame(rest)
		if err != nil {
			return info, err
		}
		rest = rest[n:]
		for len(payload) > 0 {
			key, kn, err := readString(payload)
			if err != nil {
				return info, fmt.Errorf("%w: record key: %v", ErrSnapshotCorrupt, err)
			}
			payload = payload[kn:]
			st, sn, err := readState(payload)
			if err != nil {
				return info, fmt.Errorf("%w: record state: %v", ErrSnapshotCorrupt, err)
			}
			payload = payload[sn:]
			if total++; total > info.Keys {
				return info, fmt.Errorf("%w: more records than the manifest's %d", ErrSnapshotCorrupt, info.Keys)
			}
			if err := fn(key, st); err != nil {
				return info, err
			}
		}
	}
	if total != info.Keys {
		return info, fmt.Errorf("%w: %d records, manifest says %d", ErrSnapshotCorrupt, total, info.Keys)
	}
	return info, nil
}
