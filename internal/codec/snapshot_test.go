package codec_test

import (
	"errors"
	"fmt"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

type snapRecord struct {
	key string
	st  lattice.State
}

// sampleSnapshot builds a snapshot file over a representative mix of
// state types, returning the file and the records written.
func sampleSnapshot(t *testing.T, shard, shards int) ([]byte, []snapRecord) {
	t.Helper()
	c := crdt.NewGCounter()
	c.Inc("n00", 3)
	c.Inc("n01", 41)
	m := lattice.NewMap()
	m.Set("inner", lattice.NewSet("x", "y"))
	aw := crdt.NewAWSet()
	aw.Add("A", "kept")
	aw.Add("A", "gone")
	aw.Remove("gone")
	recs := []snapRecord{
		{"c/hits", c},
		{"m/profile", m},
		{"s/follows", crdt.NewGSet("a", "b", "c")},
		{"s/tags", aw},
		{"x/watermark", lattice.NewMaxInt(99)},
	}
	w := codec.NewSnapshotWriter(shard, shards, len(recs))
	for _, r := range recs {
		w.Add(r.key, r.st)
	}
	return w.Bytes(), recs
}

func decodeAll(data []byte) (codec.SnapshotInfo, []snapRecord, error) {
	var recs []snapRecord
	info, err := codec.DecodeSnapshot(data, func(key string, st lattice.State) error {
		recs = append(recs, snapRecord{key, st})
		return nil
	})
	return info, recs, err
}

func TestSnapshotRoundTrip(t *testing.T) {
	data, want := sampleSnapshot(t, 3, 16)
	info, got, err := decodeAll(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info != (codec.SnapshotInfo{Shard: 3, Shards: 16, Keys: len(want)}) {
		t.Fatalf("manifest = %+v", info)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].key != want[i].key {
			t.Errorf("record %d key = %q, want %q", i, got[i].key, want[i].key)
		}
		if !got[i].st.Equal(want[i].st) {
			t.Errorf("record %d state = %v, want %v", i, got[i].st, want[i].st)
		}
	}
}

func TestSnapshotEmptyShard(t *testing.T) {
	data := codec.NewSnapshotWriter(0, 4, 0).Bytes()
	info, recs, err := decodeAll(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.Keys != 0 || len(recs) != 0 {
		t.Fatalf("empty snapshot decoded to %d records (manifest %d)", len(recs), info.Keys)
	}
}

// TestSnapshotManyFrames pushes a snapshot past the frame cut so the
// multi-frame path (records split across several checksummed frames) is
// exercised, and checks nothing is lost or reordered across the cuts.
func TestSnapshotManyFrames(t *testing.T) {
	const n = 4000 // ~30 bytes/record, several 64 KiB frames
	w := codec.NewSnapshotWriter(0, 1, n)
	for i := 0; i < n; i++ {
		w.Add(fmt.Sprintf("obj:%07d", i), crdt.NewGSet(fmt.Sprintf("member-%d", i)))
	}
	data := w.Bytes()
	info, recs, err := decodeAll(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.Keys != n || len(recs) != n {
		t.Fatalf("decoded %d records (manifest %d), want %d", len(recs), info.Keys, n)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("obj:%07d", i); r.key != want {
			t.Fatalf("record %d key = %q, want %q", i, r.key, want)
		}
	}
}

// TestSnapshotCorruptionDetected flips every byte of a valid snapshot in
// turn; each flip must surface as ErrSnapshotCorrupt, never as a clean
// decode of different records and never as a panic.
func TestSnapshotCorruptionDetected(t *testing.T) {
	data, _ := sampleSnapshot(t, 1, 8)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, _, err := decodeAll(mut); err == nil {
			t.Fatalf("flip at byte %d of %d decoded cleanly", i, len(data))
		} else if !errors.Is(err, codec.ErrSnapshotCorrupt) {
			t.Fatalf("flip at byte %d: error %v is not ErrSnapshotCorrupt", i, err)
		}
	}
}

// TestSnapshotTruncationDetected decodes every strict prefix of a valid
// snapshot; all must fail (a prefix ending on a frame boundary still
// disagrees with the manifest's key count).
func TestSnapshotTruncationDetected(t *testing.T) {
	data, _ := sampleSnapshot(t, 0, 2)
	for n := 0; n < len(data); n++ {
		if _, _, err := decodeAll(data[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(data))
		}
	}
}

// TestSnapshotHostileManifest pins the bounds discipline: manifests
// promising absurd shard or key counts are rejected up front, without
// the declared sizes driving any allocation or work.
func TestSnapshotHostileManifest(t *testing.T) {
	cases := map[string]struct{ shard, shards, keys int }{
		"zero shards":     {0, 0, 0},
		"shard >= shards": {4, 4, 0},
		"huge shards":     {0, 1 << 30, 0},
		"huge keys":       {0, 1, 1 << 30},
	}
	for name, c := range cases {
		data := codec.NewSnapshotWriter(c.shard, c.shards, c.keys).Bytes()
		if _, _, err := decodeAll(data); !errors.Is(err, codec.ErrSnapshotCorrupt) {
			t.Errorf("%s: err = %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

// TestSnapshotKeyCountMismatch covers both directions of a manifest that
// disagrees with the records actually present.
func TestSnapshotKeyCountMismatch(t *testing.T) {
	for _, manifest := range []int{1, 3} {
		w := codec.NewSnapshotWriter(0, 1, manifest)
		w.Add("a", lattice.NewMaxInt(1))
		w.Add("b", lattice.NewMaxInt(2))
		if _, _, err := decodeAll(w.Bytes()); !errors.Is(err, codec.ErrSnapshotCorrupt) {
			t.Errorf("manifest %d with 2 records: err = %v, want ErrSnapshotCorrupt", manifest, err)
		}
	}
}

// TestSnapshotCallbackError checks a callback error aborts the decode
// and comes back verbatim, not wrapped as corruption.
func TestSnapshotCallbackError(t *testing.T) {
	data, _ := sampleSnapshot(t, 0, 1)
	boom := errors.New("boom")
	_, err := codec.DecodeSnapshot(data, func(string, lattice.State) error { return boom })
	if !errors.Is(err, boom) || errors.Is(err, codec.ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
}
