package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/vclock"
)

// Message tags. Stable on the wire: append, never renumber.
const (
	tagStateMsg byte = iota + 64
	tagDeltaMsg
	tagAckedDeltaMsg
	tagAckMsg
	tagSBDigestMsg
	tagSBDeltasMsg
	tagOpsMsg
	tagBatchMsg
	tagShardedMsg
	tagDigestMsg
	tagShardedDigestMsg
	tagTreeMsg
)

// maxMsgNesting bounds message nesting during decoding. Legitimate
// traffic nests at most ShardedMsg → BatchMsg → leaf (depth 3); a hostile
// frame of repeated container prefixes must fail with an error instead of
// exhausting the goroutine stack.
const maxMsgNesting = 8

// EncodeMsg serializes a protocol message, including its transmission
// accounting, so a receiving transport can reconstruct it exactly.
func EncodeMsg(m protocol.Msg) ([]byte, error) {
	var b []byte
	return appendMsg(b, m)
}

// DecodeMsg deserializes one protocol message, returning the bytes
// consumed.
func DecodeMsg(data []byte) (protocol.Msg, int, error) {
	return decodeMsg(data, 0)
}

func decodeMsg(data []byte, depth int) (protocol.Msg, int, error) {
	if depth >= maxMsgNesting {
		return nil, 0, ErrNestingTooDeep
	}
	if len(data) == 0 {
		return nil, 0, ErrTruncated
	}
	m, n, err := readMsgBody(data[0], data[1:], depth)
	if err != nil {
		return nil, 0, err
	}
	return m, n + 1, nil
}

func appendCost(b []byte, c metrics.Transmission) []byte {
	b = binary.AppendUvarint(b, uint64(c.Messages))
	b = binary.AppendUvarint(b, uint64(c.Elements))
	b = binary.AppendUvarint(b, uint64(c.PayloadBytes))
	return binary.AppendUvarint(b, uint64(c.MetadataBytes))
}

func readCost(data []byte) (metrics.Transmission, int, error) {
	var c metrics.Transmission
	n := 0
	for _, dst := range []*int{&c.Messages, &c.Elements, &c.PayloadBytes, &c.MetadataBytes} {
		v, m, err := readUvarint(data[n:])
		if err != nil {
			return c, 0, err
		}
		*dst = int(v)
		n += m
	}
	return c, n, nil
}

func appendVClock(b []byte, v *vclock.VClock) []byte {
	actors := v.Actors()
	b = binary.AppendUvarint(b, uint64(len(actors)))
	for _, a := range actors {
		b = appendString(b, a)
		b = binary.AppendUvarint(b, v.Get(a))
	}
	return b
}

func readVClock(data []byte) (*vclock.VClock, int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	v := vclock.New()
	for i := uint64(0); i < count; i++ {
		a, m, err := readString(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		s, m2, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m2
		v.Set(a, s)
	}
	return v, n, nil
}

func appendDot(b []byte, d vclock.Dot) []byte {
	b = appendString(b, d.Actor)
	return binary.AppendUvarint(b, d.Seq)
}

func readDot(data []byte) (vclock.Dot, int, error) {
	a, n, err := readString(data)
	if err != nil {
		return vclock.Dot{}, 0, err
	}
	s, m, err := readUvarint(data[n:])
	if err != nil {
		return vclock.Dot{}, 0, err
	}
	return vclock.Dot{Actor: a, Seq: s}, n + m, nil
}

func appendSeqs(b []byte, seqs []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(seqs)))
	for _, s := range seqs {
		b = binary.AppendUvarint(b, s)
	}
	return b
}

func readSeqs(data []byte) ([]uint64, int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	seqs := make([]uint64, 0, capHint(count, data[n:]))
	for i := uint64(0); i < count; i++ {
		s, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		seqs = append(seqs, s)
		n += m
	}
	return seqs, n, nil
}

func appendMsg(b []byte, m protocol.Msg) ([]byte, error) {
	switch v := m.(type) {
	case *protocol.StateMsg:
		b = append(b, tagStateMsg)
		b = appendCost(b, v.Cost())
		return appendState(b, v.State), nil

	case *protocol.DeltaMsg:
		b = append(b, tagDeltaMsg)
		b = appendCost(b, v.Cost())
		return appendState(b, v.Delta), nil

	case *protocol.AckedDeltaMsg:
		b = append(b, tagAckedDeltaMsg)
		b = appendCost(b, v.Cost())
		b = appendSeqs(b, v.Seqs)
		return appendState(b, v.Delta), nil

	case *protocol.AckMsg:
		b = append(b, tagAckMsg)
		b = appendCost(b, v.Cost())
		return appendSeqs(b, v.Seqs), nil

	case *protocol.SBDigestMsg:
		b = append(b, tagSBDigestMsg)
		b = appendCost(b, v.Cost())
		b = appendVClock(b, v.Vec)
		if v.Matrix == nil {
			return append(b, 0), nil
		}
		b = append(b, 1)
		// Deterministic order: sort the node keys.
		keys := make([]string, 0, len(v.Matrix))
		for k := range v.Matrix {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
			b = appendVClock(b, v.Matrix[k])
		}
		return b, nil

	case *protocol.SBDeltasMsg:
		b = append(b, tagSBDeltasMsg)
		b = appendCost(b, v.Cost())
		b = binary.AppendUvarint(b, uint64(len(v.Items)))
		for _, it := range v.Items {
			b = appendDot(b, it.Dot)
			b = appendState(b, it.Delta)
		}
		return b, nil

	case *protocol.OpsMsg:
		b = append(b, tagOpsMsg)
		b = appendCost(b, v.Cost())
		b = binary.AppendUvarint(b, uint64(len(v.Ops)))
		for _, op := range v.Ops {
			b = appendDot(b, op.Dot)
			b = appendVClock(b, op.Dep)
			b = binary.AppendUvarint(b, uint64(op.OpBytes))
			b = appendState(b, op.Payload)
		}
		return b, nil

	case *protocol.BatchMsg:
		b = AppendBatchHeader(b, v.Cost(), len(v.Items))
		for _, it := range v.Items {
			var err error
			b, err = AppendObjectMsg(b, it)
			if err != nil {
				return nil, err
			}
		}
		return b, nil

	case *protocol.ShardedMsg:
		b = AppendShardedHeader(b, v.Cost(), v.Digests, len(v.Items))
		for _, it := range v.Items {
			var err error
			b, err = AppendShardItem(b, it)
			if err != nil {
				return nil, err
			}
		}
		return b, nil

	case *protocol.DigestMsg:
		b = append(b, tagDigestMsg)
		b = appendCost(b, v.Cost())
		b = binary.AppendUvarint(b, uint64(len(v.Digests)))
		for _, d := range v.Digests {
			// Digests are hash values: fixed 8-byte words, since uvarint
			// averages >9 bytes on uniformly random 64-bit values.
			b = binary.BigEndian.AppendUint64(b, d)
		}
		b = binary.AppendUvarint(b, uint64(len(v.Want)))
		for _, w := range v.Want {
			b = binary.AppendUvarint(b, uint64(w))
		}
		return b, nil

	case *protocol.TreeMsg:
		if len(v.Nodes) != len(v.Hashes) {
			return nil, fmt.Errorf("codec: tree message with %d nodes but %d hashes", len(v.Nodes), len(v.Hashes))
		}
		b = append(b, tagTreeMsg)
		b = appendCost(b, v.Cost())
		b = binary.AppendUvarint(b, uint64(v.Shard))
		b = append(b, v.Level)
		b = binary.AppendUvarint(b, uint64(len(v.Query)))
		for _, q := range v.Query {
			b = binary.AppendUvarint(b, uint64(q))
		}
		b = binary.AppendUvarint(b, uint64(len(v.Nodes)))
		for i, idx := range v.Nodes {
			b = binary.AppendUvarint(b, uint64(idx))
			// Hashes are fixed 8-byte words, like digest vectors.
			b = binary.BigEndian.AppendUint64(b, v.Hashes[i])
		}
		b = binary.AppendUvarint(b, uint64(len(v.Want)))
		for _, w := range v.Want {
			b = binary.AppendUvarint(b, uint64(w))
		}
		return b, nil

	default:
		return nil, fmt.Errorf("codec: no wire format for message %T", m)
	}
}

// readShardItems decodes the shared tail of the sharded frame variants:
// an item count followed by (shard index, inner message) pairs.
func readShardItems(data []byte, depth int) ([]protocol.ShardItem, int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	items := make([]protocol.ShardItem, 0, capHint(count, data[n:]))
	for i := uint64(0); i < count; i++ {
		shard, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		if shard > math.MaxUint32 {
			// Truncating would alias a corrupt index into the valid
			// shard range, bypassing the receiver's bounds check.
			return nil, 0, fmt.Errorf("codec: shard index %d out of range", shard)
		}
		n += m
		inner, m2, err := decodeMsg(data[n:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		n += m2
		items = append(items, protocol.ShardItem{Shard: uint32(shard), Msg: inner})
	}
	return items, n, nil
}

func readMsgBody(tag byte, data []byte, depth int) (protocol.Msg, int, error) {
	cost, n, err := readCost(data)
	if err != nil {
		return nil, 0, err
	}
	switch tag {
	case tagStateMsg:
		s, m, err := readState(data[n:])
		if err != nil {
			return nil, 0, err
		}
		return protocol.NewStateMsg(s, cost), n + m, nil

	case tagDeltaMsg:
		s, m, err := readState(data[n:])
		if err != nil {
			return nil, 0, err
		}
		return protocol.NewDeltaMsg(s, cost), n + m, nil

	case tagAckedDeltaMsg:
		seqs, m, err := readSeqs(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		s, m2, err := readState(data[n:])
		if err != nil {
			return nil, 0, err
		}
		return protocol.NewAckedDeltaMsg(s, seqs, cost), n + m2, nil

	case tagAckMsg:
		seqs, m, err := readSeqs(data[n:])
		if err != nil {
			return nil, 0, err
		}
		return protocol.NewAckMsg(seqs, cost), n + m, nil

	case tagSBDigestMsg:
		vec, m, err := readVClock(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		if len(data) <= n {
			return nil, 0, ErrTruncated
		}
		hasMatrix := data[n] == 1
		n++
		var matrix map[string]*vclock.VClock
		if hasMatrix {
			count, m2, err := readUvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m2
			matrix = make(map[string]*vclock.VClock, capHint(count, data[n:]))
			for i := uint64(0); i < count; i++ {
				k, m3, err := readString(data[n:])
				if err != nil {
					return nil, 0, err
				}
				n += m3
				v, m4, err := readVClock(data[n:])
				if err != nil {
					return nil, 0, err
				}
				n += m4
				matrix[k] = v
			}
		}
		return protocol.NewSBDigestMsg(vec, matrix, cost), n, nil

	case tagSBDeltasMsg:
		count, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		items := make([]protocol.SBItem, 0, capHint(count, data[n:]))
		for i := uint64(0); i < count; i++ {
			d, m2, err := readDot(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m2
			s, m3, err := readState(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m3
			items = append(items, protocol.SBItem{Dot: d, Delta: s})
		}
		return protocol.NewSBDeltasMsg(items, cost), n, nil

	case tagOpsMsg:
		count, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		ops := make([]protocol.TaggedOp, 0, capHint(count, data[n:]))
		for i := uint64(0); i < count; i++ {
			d, m2, err := readDot(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m2
			dep, m3, err := readVClock(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m3
			opBytes, m4, err := readUvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m4
			payload, m5, err := readState(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m5
			ops = append(ops, protocol.TaggedOp{Dot: d, Dep: dep, Payload: payload, OpBytes: int(opBytes)})
		}
		return protocol.NewOpsMsg(ops, cost), n, nil

	case tagBatchMsg:
		count, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		items := make([]protocol.ObjectMsg, 0, capHint(count, data[n:]))
		for i := uint64(0); i < count; i++ {
			k, m2, err := readString(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m2
			inner, m3, err := decodeMsg(data[n:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			n += m3
			items = append(items, protocol.ObjectMsg{Key: k, Inner: inner})
		}
		return protocol.NewBatchMsg(items, cost), n, nil

	case tagShardedMsg:
		items, m, err := readShardItems(data[n:], depth)
		if err != nil {
			return nil, 0, err
		}
		return protocol.NewShardedMsgWithCost(items, cost), n + m, nil

	case tagShardedDigestMsg:
		dcount, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		// Digests are fixed 8-byte words, so a hostile count is checked
		// against the actual remaining bytes before allocating.
		if dcount > uint64(len(data)-n)/8 {
			return nil, 0, ErrTruncated
		}
		// Non-nil even when empty: a decoded message must re-encode to the
		// same tag (the canonical fixed point), and nil selects the plain
		// sharded encoding.
		digests := make([]uint64, dcount)
		for i := range digests {
			digests[i] = binary.BigEndian.Uint64(data[n:])
			n += 8
		}
		items, m, err := readShardItems(data[n:], depth)
		if err != nil {
			return nil, 0, err
		}
		return protocol.NewShardedDigestMsgWithCost(items, digests, cost), n + m, nil

	case tagDigestMsg:
		count, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		// Each digest is a fixed 8-byte word, so a hostile count is
		// checked against the actual remaining bytes before allocating.
		if count > uint64(len(data)-n)/8 {
			return nil, 0, ErrTruncated
		}
		var digests []uint64
		if count > 0 {
			digests = make([]uint64, count)
			for i := range digests {
				digests[i] = binary.BigEndian.Uint64(data[n:])
				n += 8
			}
		}
		wcount, m2, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m2
		var want []uint32
		if wcount > 0 {
			want = make([]uint32, 0, capHint(wcount, data[n:]))
			for i := uint64(0); i < wcount; i++ {
				w, m3, err := readUvarint(data[n:])
				if err != nil {
					return nil, 0, err
				}
				if w > math.MaxUint32 {
					// Same rule as sharded routing: never truncate a
					// corrupt shard index into the valid range.
					return nil, 0, fmt.Errorf("codec: shard index %d out of range", w)
				}
				n += m3
				want = append(want, uint32(w))
			}
		}
		return protocol.NewDigestMsg(digests, want, cost), n, nil

	case tagTreeMsg:
		shard, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		if shard > math.MaxUint32 {
			return nil, 0, fmt.Errorf("codec: shard index %d out of range", shard)
		}
		n += m
		if len(data) <= n {
			return nil, 0, ErrTruncated
		}
		level := data[n]
		n++
		// The level bounds every node index below: tree geometry is a
		// protocol constant, so a level outside the drill-down range is
		// corrupt on its face, exactly like an oversized shard index.
		if level < 1 || level > protocol.TreeDepth {
			return nil, 0, fmt.Errorf("codec: tree level %d out of range", level)
		}
		maxNode := uint64(protocol.TreeNodesAt(int(level)))
		query, m, err := readTreeIndices(data[n:], maxNode)
		if err != nil {
			return nil, 0, err
		}
		n += m
		ncount, m, err := readUvarint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		// Each (node, hash) pair is at least 9 bytes, so a hostile count
		// is checked against the remaining bytes before allocating.
		if ncount > uint64(len(data)-n)/9 {
			return nil, 0, ErrTruncated
		}
		var nodes []uint32
		var hashes []uint64
		if ncount > 0 {
			nodes = make([]uint32, 0, ncount)
			hashes = make([]uint64, 0, ncount)
			for i := uint64(0); i < ncount; i++ {
				idx, m2, err := readUvarint(data[n:])
				if err != nil {
					return nil, 0, err
				}
				if idx >= maxNode {
					return nil, 0, fmt.Errorf("codec: tree node %d out of range at level %d", idx, level)
				}
				n += m2
				if len(data)-n < 8 {
					return nil, 0, ErrTruncated
				}
				nodes = append(nodes, uint32(idx))
				hashes = append(hashes, binary.BigEndian.Uint64(data[n:]))
				n += 8
			}
		}
		want, m, err := readTreeIndices(data[n:], maxNode)
		if err != nil {
			return nil, 0, err
		}
		n += m
		return protocol.NewTreeMsg(uint32(shard), level, query, nodes, hashes, want, cost), n, nil

	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
}

// readTreeIndices decodes one of a tree message's node-index lists,
// rejecting indices at or beyond maxNode (the node count of the message's
// level) — never truncating a corrupt index into the valid range.
func readTreeIndices(data []byte, maxNode uint64) ([]uint32, int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	var out []uint32
	if count > 0 {
		out = make([]uint32, 0, capHint(count, data[n:]))
		for i := uint64(0); i < count; i++ {
			v, m, err := readUvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			if v >= maxNode {
				return nil, 0, fmt.Errorf("codec: tree node %d out of range", v)
			}
			n += m
			out = append(out, uint32(v))
		}
	}
	return out, n, nil
}
