package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// Single-pass inbound frame unpacking. The transport's receive path used
// to decode a frame fully — ShardedMsg, item slice, every batch, every
// object message, every state — before touching a single shard. UnpackFrame
// is the mirror of the single-pass packer: it walks the raw frame once,
// validating structure with the same hostile-input bounds as the eager
// decoders but materializing nothing, and groups the items by shard into
// reusable views whose key and payload bytes alias the frame buffer.
// Payloads decode lazily (ItemView.Msg), exactly once, at the moment a
// shard engine needs the message — and a consumer that only needs to
// classify an item (ack vs data, for watcher notification) reads its wire
// tag without decoding anything.
//
// A FrameView and everything it hands out is only valid until the next
// Unpack on the same view, and aliases the frame buffer: callers that
// reuse read buffers must finish with the view before reusing the frame's
// bytes. Decoded messages never alias the buffer (the decoders copy), so
// only the views themselves are scoped.

// ErrNotSharded reports input whose leading tag is not one of the sharded
// frame encodings. Callers fall back to DecodeMsg for control frames
// (digest heartbeats, single-object node traffic).
var ErrNotSharded = errors.New("codec: not a sharded frame")

// ItemView is one object's message within a sharded frame: the shard it
// routes to, its key, and the raw encoding of its inner message. Key and
// Payload alias the frame buffer. Key is nil for a shard item that is not
// a per-object batch (a bare engine message — conforming stores never send
// one, and the keyed engines ignore them).
type ItemView struct {
	// Shard is the destination shard index, already bounds-checked
	// against the receiver's shard count by UnpackFrame.
	Shard uint32
	// Key is the object key, aliasing the frame buffer; nil when the
	// item did not come from a per-object batch.
	Key []byte
	// Payload is the inner message's full encoding (tag byte included),
	// aliasing the frame buffer.
	Payload []byte

	msg protocol.Msg // decoded on first Msg call
}

// Tag returns the payload's wire tag — enough to classify an item (ack,
// anti-entropy digest, delta) without decoding it.
func (iv *ItemView) Tag() byte { return iv.Payload[0] }

// IsAckTag reports whether tag names a pure acknowledgement or protocol
// digest — messages that carry no object state, so watcher notification
// and similar state-change consumers skip them by tag alone.
func IsAckTag(tag byte) bool {
	return tag == tagAckMsg || tag == tagSBDigestMsg
}

// Msg decodes the payload into a protocol message, once; repeated calls
// return the cached result. The decoded message owns its memory (the
// decoders copy out of the input), so it stays valid after the frame
// buffer is reused — only the view itself is frame-scoped.
func (iv *ItemView) Msg() (protocol.Msg, error) {
	if iv.msg != nil {
		return iv.msg, nil
	}
	m, n, err := DecodeMsg(iv.Payload)
	if err != nil {
		return nil, err
	}
	if n != len(iv.Payload) {
		// The skip walk and the decoder disagree on the payload extent:
		// a codec bug, surfaced instead of silently misrouting bytes.
		return nil, fmt.Errorf("codec: item decode consumed %d of %d bytes", n, len(iv.Payload))
	}
	iv.msg = m
	return m, nil
}

// ItemGroup is one shard's run of item views within an unpacked frame —
// the unit the store applies under a single lock hold.
type ItemGroup struct {
	Shard uint32
	Items []ItemView
}

// FrameView is the reusable result of UnpackFrame: frame-level accounting,
// the piggybacked digest vector (if any), and the item views grouped by
// shard. A view is valid until its next Unpack; pool and reuse it — a
// steady-state unpack allocates nothing.
type FrameView struct {
	// Cost is the frame's transmission accounting record.
	Cost metrics.Transmission
	// Digests is the piggybacked per-shard digest vector; nil when the
	// frame carried none. The backing array is reused across unpacks.
	Digests []uint64
	// Dropped counts items whose shard index was outside the receiver's
	// shard range — a shard-map mismatch between sender and receiver.
	// They are skipped, not delivered; the transport surfaces the count.
	Dropped int

	items  []ItemView  // wire order
	sorted []ItemView  // shard order (scratch for the grouping sort)
	counts []int       // counting-sort scratch, one slot per shard
	groups []ItemGroup // contiguous per-shard runs
}

// Groups returns the frame's items grouped by shard, each shard exactly
// once, with the frame's per-shard item order preserved inside its group.
func (v *FrameView) Groups() []ItemGroup { return v.groups }

// NumItems returns the number of item views the unpack kept (flattened
// across groups, excluding dropped items).
func (v *FrameView) NumItems() int { return len(v.items) }

// reset clears the view for reuse, releasing references to previously
// decoded messages and the previous frame's buffer so a pooled view never
// pins a dead frame or its states.
func (v *FrameView) reset() {
	v.Cost = metrics.Transmission{}
	v.Digests = v.Digests[:0]
	v.Dropped = 0
	items := v.items[:cap(v.items)]
	clear(items)
	v.items = v.items[:0]
	sorted := v.sorted[:cap(v.sorted)]
	clear(sorted)
	v.sorted = v.sorted[:0]
	v.groups = v.groups[:0]
}

// Reset clears the view without unpacking a new frame, dropping its
// references to the last frame's buffer and decoded messages. Callers
// that pool views call it before Put so an idle pooled view pins nothing.
func (v *FrameView) Reset() { v.reset() }

// UnpackFrame walks one encoded sharded frame (either variant) into v,
// grouped by shard. shards is the receiver's shard count: items routed
// beyond it are counted in v.Dropped and skipped. It accepts exactly the
// frames DecodeMsg accepts — the skip walk enforces the same nesting
// depth, count-versus-remaining-bytes, and index-range bounds, so hostile
// input fails with an error before any large allocation — and returns
// ErrNotSharded for any other message kind, which callers decode eagerly.
func UnpackFrame(data []byte, shards int, v *FrameView) error {
	v.reset()
	if len(data) == 0 {
		return ErrTruncated
	}
	tag := data[0]
	if tag != tagShardedMsg && tag != tagShardedDigestMsg {
		return ErrNotSharded
	}
	cost, n, err := readCost(data[1:])
	if err != nil {
		return err
	}
	n++
	v.Cost = cost
	if tag == tagShardedDigestMsg {
		dcount, m, err := readUvarint(data[n:])
		if err != nil {
			return err
		}
		n += m
		// Digests are fixed 8-byte words: a hostile count is checked
		// against the actual remaining bytes before any allocation,
		// exactly as in the eager decoder.
		if dcount > uint64(len(data)-n)/8 {
			return ErrTruncated
		}
		if cap(v.Digests) < int(dcount) {
			v.Digests = make([]uint64, dcount)
		} else {
			v.Digests = v.Digests[:dcount]
		}
		for i := range v.Digests {
			v.Digests[i] = binary.BigEndian.Uint64(data[n:])
			n += 8
		}
	}
	count, m, err := readUvarint(data[n:])
	if err != nil {
		return err
	}
	n += m
	grouped := true // items arrive in non-decreasing shard order
	var lastShard uint32
	for i := uint64(0); i < count; i++ {
		shard, m, err := readUvarint(data[n:])
		if err != nil {
			return err
		}
		if shard > math.MaxUint32 {
			// Truncating would alias a corrupt index into the valid
			// shard range, bypassing the bounds check below.
			return fmt.Errorf("codec: shard index %d out of range", shard)
		}
		n += m
		keep := shard < uint64(shards)
		m, err = v.appendItem(data, n, uint32(shard), keep)
		if err != nil {
			return err
		}
		n += m
		if !keep {
			v.Dropped++
			continue
		}
		if len(v.items) > 0 && uint32(shard) < lastShard {
			grouped = false
		}
		lastShard = uint32(shard)
	}
	v.group(shards, grouped)
	return nil
}

// appendItem walks one shard item starting at data[at:], appending its
// flattened views to v.items when keep is true (always validating, so a
// dropped or out-of-range item still costs the sender a full structural
// check). A per-object batch flattens into one view per object message;
// any other message becomes a single keyless view.
func (v *FrameView) appendItem(data []byte, at int, shard uint32, keep bool) (int, error) {
	d := data[at:]
	if len(d) == 0 {
		return 0, ErrTruncated
	}
	if d[0] != tagBatchMsg {
		n, err := skipMsg(d, 1)
		if err != nil {
			return 0, err
		}
		if keep {
			v.items = append(v.items, ItemView{Shard: shard, Payload: d[:n]})
		}
		return n, nil
	}
	// A batch: walk its header, then flatten each (key, inner message)
	// pair into its own view. The batch-level wrapper (its accounting and
	// count) is never materialized on the receive path.
	_, n, err := readCost(d[1:])
	if err != nil {
		return 0, err
	}
	n++
	count, m, err := readUvarint(d[n:])
	if err != nil {
		return 0, err
	}
	n += m
	for i := uint64(0); i < count; i++ {
		klen, m, err := readUvarint(d[n:])
		if err != nil {
			return 0, err
		}
		if klen > uint64(len(d)-n-m) {
			return 0, ErrTruncated
		}
		key := d[n+m : n+m+int(klen)]
		n += m + int(klen)
		inner, err := skipMsg(d[n:], 2)
		if err != nil {
			return 0, err
		}
		if keep {
			v.items = append(v.items, ItemView{Shard: shard, Key: key, Payload: d[n : n+inner]})
		}
		n += inner
	}
	return n, nil
}

// group builds the per-shard runs. Conforming senders emit items in shard
// order (the packer walks shards in index order), so the common case is a
// single pass over already-grouped items; interleaved frames (a drain
// coalition splicing several ticks) fall back to a stable counting sort —
// O(items + shards), order within each shard preserved.
func (v *FrameView) group(shards int, grouped bool) {
	items := v.items
	if !grouped {
		if cap(v.counts) < shards {
			v.counts = make([]int, shards)
		}
		counts := v.counts[:shards]
		clear(counts)
		for i := range items {
			counts[items[i].Shard]++
		}
		off := 0
		for s := range counts {
			c := counts[s]
			counts[s] = off
			off += c
		}
		if cap(v.sorted) < len(items) {
			v.sorted = make([]ItemView, len(items))
		}
		v.sorted = v.sorted[:len(items)]
		for i := range items {
			s := items[i].Shard
			v.sorted[counts[s]] = items[i]
			counts[s]++
		}
		items = v.sorted
	}
	for i := 0; i < len(items); {
		j := i + 1
		for j < len(items) && items[j].Shard == items[i].Shard {
			j++
		}
		v.groups = append(v.groups, ItemGroup{Shard: items[i].Shard, Items: items[i:j]})
		i = j
	}
}

// The skip walkers: structural validation that computes encoded extents
// without materializing anything. Each mirrors its reader exactly — same
// bounds, same nesting limits, same rejections — so a payload the walk
// accepts always decodes, and one it rejects never would have.

func skipUvarint(data []byte) (int, error) {
	_, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, ErrTruncated
	}
	return n, nil
}

func skipString(data []byte) (int, error) {
	l, n, err := readUvarint(data)
	if err != nil {
		return 0, err
	}
	if l > uint64(len(data)-n) {
		return 0, ErrTruncated
	}
	return n + int(l), nil
}

func skipStringList(data []byte) (int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < count; i++ {
		m, err := skipString(data[n:])
		if err != nil {
			return 0, err
		}
		n += m
	}
	return n, nil
}

func skipCost(data []byte) (int, error) {
	n := 0
	for i := 0; i < 4; i++ {
		m, err := skipUvarint(data[n:])
		if err != nil {
			return 0, err
		}
		n += m
	}
	return n, nil
}

func skipVClock(data []byte) (int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < count; i++ {
		m, err := skipString(data[n:])
		if err != nil {
			return 0, err
		}
		n += m
		m, err = skipUvarint(data[n:])
		if err != nil {
			return 0, err
		}
		n += m
	}
	return n, nil
}

func skipDot(data []byte) (int, error) {
	n, err := skipString(data)
	if err != nil {
		return 0, err
	}
	m, err := skipUvarint(data[n:])
	if err != nil {
		return 0, err
	}
	return n + m, nil
}

func skipSeqs(data []byte) (int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < count; i++ {
		m, err := skipUvarint(data[n:])
		if err != nil {
			return 0, err
		}
		n += m
	}
	return n, nil
}

// skipState computes one encoded state's extent, mirroring readStateDepth.
func skipState(data []byte, depth int) (int, error) {
	if depth >= maxStateNesting {
		return 0, ErrNestingTooDeep
	}
	if len(data) == 0 {
		return 0, ErrTruncated
	}
	tag, body := data[0], data[1:]
	var (
		n   int
		err error
	)
	switch tag {
	case tagMaxInt:
		n, err = skipUvarint(body)

	case tagFlag:
		if len(body) < 1 {
			return 0, ErrTruncated
		}
		n = 1

	case tagSet, tagGSet:
		n, err = skipStringList(body)

	case tagMap:
		var count uint64
		var m int
		count, n, err = readUvarint(body)
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < count; i++ {
			m, err = skipString(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			m, err = skipState(body[n:], depth+1)
			if err != nil {
				return 0, err
			}
			n += m
		}

	case tagGCounter, tagPNCounter:
		uvarints := 1 // per-entry counters after the id
		if tag == tagPNCounter {
			uvarints = 2
		}
		var count uint64
		var m int
		count, n, err = readUvarint(body)
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < count; i++ {
			m, err = skipString(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			for u := 0; u < uvarints; u++ {
				m, err = skipUvarint(body[n:])
				if err != nil {
					return 0, err
				}
				n += m
			}
		}

	case tagTwoPSet:
		var m int
		n, err = skipStringList(body)
		if err != nil {
			return 0, err
		}
		m, err = skipStringList(body[n:])
		n += m

	case tagLWW:
		var m int
		n, err = skipUvarint(body)
		if err != nil {
			return 0, err
		}
		for i := 0; i < 2; i++ {
			m, err = skipString(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
		}

	case tagAWSet:
		var count uint64
		var m int
		count, n, err = readUvarint(body)
		if err != nil {
			return 0, err
		}
		// An AWSet atom is (elem, actor, seq): two strings then a
		// uvarint — an elem string followed by a dot.
		for i := uint64(0); i < count; i++ {
			m, err = skipString(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			m, err = skipDot(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
		}

	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	if err != nil {
		return 0, err
	}
	return n + 1, nil
}

// skipMsg computes one encoded protocol message's extent, mirroring
// decodeMsg/readMsgBody: same tags, same bounds, same depth limit.
func skipMsg(data []byte, depth int) (int, error) {
	if depth >= maxMsgNesting {
		return 0, ErrNestingTooDeep
	}
	if len(data) == 0 {
		return 0, ErrTruncated
	}
	tag := data[0]
	n, err := skipCost(data[1:])
	if err != nil {
		return 0, err
	}
	n++
	body := data
	switch tag {
	case tagStateMsg, tagDeltaMsg:
		m, err := skipState(body[n:], 0)
		if err != nil {
			return 0, err
		}
		return n + m, nil

	case tagAckedDeltaMsg:
		m, err := skipSeqs(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		m, err = skipState(body[n:], 0)
		if err != nil {
			return 0, err
		}
		return n + m, nil

	case tagAckMsg:
		m, err := skipSeqs(body[n:])
		if err != nil {
			return 0, err
		}
		return n + m, nil

	case tagSBDigestMsg:
		m, err := skipVClock(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		if len(body) <= n {
			return 0, ErrTruncated
		}
		hasMatrix := body[n] == 1
		n++
		if hasMatrix {
			count, m, err := readUvarint(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			for i := uint64(0); i < count; i++ {
				m, err = skipString(body[n:])
				if err != nil {
					return 0, err
				}
				n += m
				m, err = skipVClock(body[n:])
				if err != nil {
					return 0, err
				}
				n += m
			}
		}
		return n, nil

	case tagSBDeltasMsg:
		count, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		for i := uint64(0); i < count; i++ {
			m, err = skipDot(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			m, err = skipState(body[n:], 0)
			if err != nil {
				return 0, err
			}
			n += m
		}
		return n, nil

	case tagOpsMsg:
		count, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		for i := uint64(0); i < count; i++ {
			m, err = skipDot(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			m, err = skipVClock(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			m, err = skipUvarint(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			m, err = skipState(body[n:], 0)
			if err != nil {
				return 0, err
			}
			n += m
		}
		return n, nil

	case tagBatchMsg:
		count, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		for i := uint64(0); i < count; i++ {
			m, err = skipString(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			m, err = skipMsg(body[n:], depth+1)
			if err != nil {
				return 0, err
			}
			n += m
		}
		return n, nil

	case tagShardedMsg, tagShardedDigestMsg:
		if tag == tagShardedDigestMsg {
			dcount, m, err := readUvarint(body[n:])
			if err != nil {
				return 0, err
			}
			n += m
			if dcount > uint64(len(body)-n)/8 {
				return 0, ErrTruncated
			}
			n += 8 * int(dcount)
		}
		count, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		for i := uint64(0); i < count; i++ {
			shard, m, err := readUvarint(body[n:])
			if err != nil {
				return 0, err
			}
			if shard > math.MaxUint32 {
				return 0, fmt.Errorf("codec: shard index %d out of range", shard)
			}
			n += m
			m, err = skipMsg(body[n:], depth+1)
			if err != nil {
				return 0, err
			}
			n += m
		}
		return n, nil

	case tagDigestMsg:
		dcount, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		if dcount > uint64(len(body)-n)/8 {
			return 0, ErrTruncated
		}
		n += 8 * int(dcount)
		wcount, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		for i := uint64(0); i < wcount; i++ {
			w, m, err := readUvarint(body[n:])
			if err != nil {
				return 0, err
			}
			if w > math.MaxUint32 {
				return 0, fmt.Errorf("codec: shard index %d out of range", w)
			}
			n += m
		}
		return n, nil

	case tagTreeMsg:
		shard, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		if shard > math.MaxUint32 {
			return 0, fmt.Errorf("codec: shard index %d out of range", shard)
		}
		n += m
		if len(body) <= n {
			return 0, ErrTruncated
		}
		level := body[n]
		n++
		if level < 1 || level > protocol.TreeDepth {
			return 0, fmt.Errorf("codec: tree level %d out of range", level)
		}
		maxNode := uint64(protocol.TreeNodesAt(int(level)))
		m, err = skipTreeIndices(body[n:], maxNode)
		if err != nil {
			return 0, err
		}
		n += m
		ncount, m, err := readUvarint(body[n:])
		if err != nil {
			return 0, err
		}
		n += m
		if ncount > uint64(len(body)-n)/9 {
			return 0, ErrTruncated
		}
		for i := uint64(0); i < ncount; i++ {
			idx, m, err := readUvarint(body[n:])
			if err != nil {
				return 0, err
			}
			if idx >= maxNode {
				return 0, fmt.Errorf("codec: tree node %d out of range at level %d", idx, level)
			}
			n += m
			if len(body)-n < 8 {
				return 0, ErrTruncated
			}
			n += 8
		}
		m, err = skipTreeIndices(body[n:], maxNode)
		if err != nil {
			return 0, err
		}
		return n + m, nil

	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
}

// skipTreeIndices mirrors readTreeIndices: same per-index level bound.
func skipTreeIndices(data []byte, maxNode uint64) (int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < count; i++ {
		v, m, err := readUvarint(data[n:])
		if err != nil {
			return 0, err
		}
		if v >= maxNode {
			return 0, fmt.Errorf("codec: tree node %d out of range", v)
		}
		n += m
	}
	return n, nil
}
