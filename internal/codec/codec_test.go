package codec_test

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

// roundTrip asserts Decode(Encode(s)) == s and full input consumption.
func roundTrip(t *testing.T, s lattice.State) {
	t.Helper()
	data := codec.Encode(s)
	got, n, err := codec.Decode(data)
	if err != nil {
		t.Fatalf("decode %v: %v", s, err)
	}
	if n != len(data) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(data))
	}
	if !got.Equal(s) {
		t.Fatalf("round trip: got %v, want %v", got, s)
	}
}

func TestRoundTripScalars(t *testing.T) {
	roundTrip(t, lattice.NewMaxInt(0))
	roundTrip(t, lattice.NewMaxInt(1<<40))
	roundTrip(t, lattice.NewFlag(false))
	roundTrip(t, lattice.NewFlag(true))
}

func TestRoundTripSets(t *testing.T) {
	roundTrip(t, lattice.NewSet())
	roundTrip(t, lattice.NewSet("a", "b", "long-element-name"))
	roundTrip(t, crdt.NewGSet())
	roundTrip(t, crdt.NewGSet("x", "y", "z"))
}

func TestRoundTripCounters(t *testing.T) {
	c := crdt.NewGCounter()
	roundTrip(t, c)
	c.Inc("n01", 5)
	c.Inc("n02", 1<<33)
	roundTrip(t, c)

	p := crdt.NewPNCounter()
	p.Inc("a", 3)
	p.Dec("a", 1)
	p.Dec("b", 9)
	roundTrip(t, p)
}

func TestRoundTripMapsNested(t *testing.T) {
	m := lattice.NewMap()
	m.Set("counter", lattice.NewMaxInt(4))
	m.Set("set", lattice.NewSet("p", "q"))
	inner := lattice.NewMap()
	inner.Set("deep", lattice.NewFlag(true))
	m.Set("nested", inner)
	roundTrip(t, m)
}

func TestRoundTripTwoPSet(t *testing.T) {
	s := crdt.NewTwoPSet()
	s.Add("a")
	s.Add("b")
	s.Remove("a")
	s.Remove("never-added")
	roundTrip(t, s)
}

func TestRoundTripLWW(t *testing.T) {
	roundTrip(t, crdt.NewLWWRegister())
	r := crdt.NewLWWRegister()
	r.Write(42, "writer-7", "payload with spaces")
	roundTrip(t, r)
}

func TestRoundTripAWSet(t *testing.T) {
	s := crdt.NewAWSet()
	roundTrip(t, s)
	s.Add("A", "x")
	s.Add("B", "y")
	roundTrip(t, s)
	s.Remove("x") // context-only dot
	roundTrip(t, s)
	s.Add("A", "x") // re-add with fresh dot
	roundTrip(t, s)
}

func TestRoundTripRandomAWSets(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		s := crdt.NewAWSet()
		for j, n := 0, r.Intn(10); j < n; j++ {
			e := "e" + strconv.Itoa(r.Intn(5))
			if r.Intn(3) == 0 {
				s.Remove(e)
			} else {
				s.Add("r"+strconv.Itoa(r.Intn(3)), e)
			}
		}
		roundTrip(t, s)
	}
}

func TestCanonicalEncoding(t *testing.T) {
	// Equal states built differently encode to identical bytes.
	a := crdt.NewGSet()
	a.Add("p")
	a.Add("q")
	b := crdt.NewGSet()
	b.Add("q")
	b.Add("p")
	if !bytes.Equal(codec.Encode(a), codec.Encode(b)) {
		t.Error("insertion order leaked into the encoding")
	}
}

func TestEncodedSizeTracksSizeBytes(t *testing.T) {
	// The wire size should be within a small constant factor of the
	// SizeBytes() accounting used by the experiments.
	s := crdt.NewGSet()
	for i := 0; i < 100; i++ {
		s.Add("element-" + strconv.Itoa(i))
	}
	enc := len(codec.Encode(s))
	acc := s.SizeBytes()
	if enc < acc || enc > 2*acc {
		t.Errorf("encoded %d bytes vs accounted %d: accounting is off", enc, acc)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := codec.Decode(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := codec.Decode([]byte{250}); err == nil {
		t.Error("unknown tag should fail")
	}
	// Truncated set: claims 3 elements, provides none.
	data := codec.Encode(lattice.NewSet("abc"))
	if _, _, err := codec.Decode(data[:2]); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestEncodeUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding a Pair should panic (no wire format)")
		}
	}()
	codec.Encode(lattice.NewPair(lattice.NewMaxInt(1), lattice.NewMaxInt(2)))
}

func TestDecodeStream(t *testing.T) {
	// Multiple states back-to-back decode sequentially via the returned
	// byte counts.
	var buf []byte
	buf = append(buf, codec.Encode(lattice.NewMaxInt(7))...)
	buf = append(buf, codec.Encode(crdt.NewGSet("s"))...)
	first, n, err := codec.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	second, m, err := codec.Decode(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(buf) {
		t.Error("stream not fully consumed")
	}
	if first.(*lattice.MaxInt).V != 7 || !second.(*crdt.GSet).Contains("s") {
		t.Error("stream decoded wrong values")
	}
}
