package codec_test

import (
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// FuzzDecodeState checks that arbitrary input never panics the state
// decoder and that accepted inputs re-encode losslessly.
func FuzzDecodeState(f *testing.F) {
	f.Add(codec.Encode(lattice.NewMaxInt(7)))
	f.Add(codec.Encode(crdt.NewGSet("a", "b")))
	c := crdt.NewGCounter()
	c.Inc("n00", 3)
	f.Add(codec.Encode(c))
	m := lattice.NewMap()
	m.Set("k", lattice.NewSet("x"))
	f.Add(codec.Encode(m))
	aw := crdt.NewAWSet()
	aw.Add("A", "e")
	aw.Remove("e")
	f.Add(codec.Encode(aw))
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := codec.Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must re-encode to an equal state.
		re := codec.Encode(s)
		got, _, err := codec.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !got.Equal(s) {
			t.Fatalf("re-encode changed the state: %v vs %v", got, s)
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
	})
}

// FuzzDecodeMsg checks the message decoder never panics.
func FuzzDecodeMsg(f *testing.F) {
	cost := metrics.Transmission{Messages: 1}
	if d, err := codec.EncodeMsg(protocol.NewDeltaMsg(crdt.NewGSet("x"), cost)); err == nil {
		f.Add(d)
	}
	if d, err := codec.EncodeMsg(protocol.NewAckMsg([]uint64{1, 2}, cost)); err == nil {
		f.Add(d)
	}
	f.Add([]byte{64})
	f.Add([]byte{70, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, _, err := codec.DecodeMsg(data)
		if err != nil {
			return
		}
		// Accepted messages must re-encode.
		if _, err := codec.EncodeMsg(m); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
	})
}
