package codec_test

import (
	"bytes"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// FuzzDecodeState checks that arbitrary input never panics the state
// decoder and that accepted inputs re-encode losslessly.
func FuzzDecodeState(f *testing.F) {
	f.Add(codec.Encode(lattice.NewMaxInt(7)))
	f.Add(codec.Encode(crdt.NewGSet("a", "b")))
	c := crdt.NewGCounter()
	c.Inc("n00", 3)
	f.Add(codec.Encode(c))
	m := lattice.NewMap()
	m.Set("k", lattice.NewSet("x"))
	f.Add(codec.Encode(m))
	aw := crdt.NewAWSet()
	aw.Add("A", "e")
	aw.Remove("e")
	f.Add(codec.Encode(aw))
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := codec.Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must re-encode to an equal state.
		re := codec.Encode(s)
		got, _, err := codec.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !got.Equal(s) {
			t.Fatalf("re-encode changed the state: %v vs %v", got, s)
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
	})
}

// FuzzDecodeMsg checks that arbitrary input never panics the message
// decoder and that accepted inputs reach an encoding fixed point: the
// codec is canonical, so decode∘encode must be the identity on the bytes
// an accepted message re-encodes to.
func FuzzDecodeMsg(f *testing.F) {
	cost := metrics.Transmission{Messages: 1}
	seed := func(m protocol.Msg) {
		if d, err := codec.EncodeMsg(m); err == nil {
			f.Add(d)
		}
	}
	seed(protocol.NewDeltaMsg(crdt.NewGSet("x"), cost))
	seed(protocol.NewAckMsg([]uint64{1, 2}, cost))
	// The store's wire frames: batched sharded data and digests.
	batch := protocol.NewBatchMsg([]protocol.ObjectMsg{
		{Key: "obj:1", Inner: protocol.NewDeltaMsg(crdt.NewGSet("a"), cost)},
		{Key: "obj:2", Inner: protocol.NewAckedDeltaMsg(crdt.NewGSet("b"), []uint64{3}, cost)},
	}, cost)
	seed(batch)
	seed(protocol.NewShardedMsg([]protocol.ShardItem{
		{Shard: 0, Msg: batch},
		{Shard: 7, Msg: protocol.NewAckMsg([]uint64{9}, cost)},
	}))
	// The digest-carrying sharded variant (piggybacked anti-entropy).
	seed(protocol.NewShardedDigestMsg([]protocol.ShardItem{
		{Shard: 3, Msg: protocol.NewDeltaMsg(crdt.NewGSet("p"), cost)},
	}, []uint64{0, ^uint64(0), 0xabcdef}))
	seed(protocol.NewDigestMsg([]uint64{0, ^uint64(0), 0xdeadbeef}, nil,
		protocol.DigestCost([]uint64{0, 1, 2}, nil)))
	seed(protocol.NewDigestMsg(nil, []uint32{0, 5, 4294967295},
		protocol.DigestCost(nil, []uint32{0, 5, 6})))
	// The Merkle drill-down rounds (query, answer, want).
	seed(protocol.NewTreeMsg(3, 1, []uint32{0, 15}, nil, nil, nil,
		protocol.TreeCost([]uint32{0, 15}, nil, nil, nil)))
	seed(protocol.NewTreeMsg(0, 2, nil, []uint32{7}, []uint64{^uint64(0)}, nil,
		protocol.TreeCost(nil, []uint32{7}, []uint64{0}, nil)))
	seed(protocol.NewTreeMsg(1, protocol.TreeDepth, nil, nil, nil, []uint32{protocol.TreeLeaves - 1},
		protocol.TreeCost(nil, nil, nil, []uint32{0})))
	f.Add([]byte{64})
	f.Add([]byte{70, 1, 2, 3})
	f.Add([]byte{72, 0, 0, 0, 0, 2, 1})                   // sharded, 2 items, truncated
	f.Add([]byte{73, 0, 0, 0, 0, 255, 255, 255, 255, 15}) // digest, hostile count
	f.Add([]byte{74, 0, 0, 0, 0, 255, 255, 255, 255, 15}) // sharded+digest, hostile count
	f.Add([]byte{75, 0, 0, 0, 0, 0, 3, 0, 255, 255, 15})  // tree, hostile node count

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := codec.DecodeMsg(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Accepted messages must re-encode, re-decode, and re-encode to
		// the same bytes (canonical fixed point).
		e1, err := codec.EncodeMsg(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, n2, err := codec.DecodeMsg(e1)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if n2 != len(e1) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(e1))
		}
		if m2.Kind() != m.Kind() || m2.Cost() != m.Cost() {
			t.Fatalf("re-decode changed kind/cost: %s/%+v vs %s/%+v",
				m2.Kind(), m2.Cost(), m.Kind(), m.Cost())
		}
		e2, err := codec.EncodeMsg(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encoding not a fixed point: %x vs %x", e1, e2)
		}
	})
}

// FuzzSnapshot checks the snapshot decoder never panics on arbitrary
// file bytes and that accepted files survive a round trip through the
// canonical writer: re-writing the decoded records reproduces the same
// manifest and semantically equal records. (Frame segmentation is not
// part of the format's identity — a fuzz-accepted file may cut frames
// anywhere — so the comparison is record-wise, not byte-wise.)
func FuzzSnapshot(f *testing.F) {
	w := codec.NewSnapshotWriter(3, 16, 2)
	w.Add("c/hits", func() lattice.State {
		c := crdt.NewGCounter()
		c.Inc("n00", 7)
		return c
	}())
	w.Add("s/follows", crdt.NewGSet("a", "b"))
	valid := w.Bytes()
	f.Add(valid)
	f.Add(codec.NewSnapshotWriter(0, 1, 0).Bytes())
	f.Add(valid[:len(valid)-3])           // truncated mid-CRC
	f.Add(append([]byte("CSNP"), 99))     // unknown version
	f.Add([]byte("CSNP\x01\xff\xff\x0f")) // hostile frame length
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		type rec struct {
			key string
			st  lattice.State
		}
		var recs []rec
		info, err := codec.DecodeSnapshot(data, func(key string, st lattice.State) error {
			recs = append(recs, rec{key, st})
			return nil
		})
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if info.Keys != len(recs) {
			t.Fatalf("manifest says %d keys, callback saw %d", info.Keys, len(recs))
		}
		w := codec.NewSnapshotWriter(info.Shard, info.Shards, len(recs))
		for _, r := range recs {
			w.Add(r.key, r.st)
		}
		var recs2 []rec
		info2, err := codec.DecodeSnapshot(w.Bytes(), func(key string, st lattice.State) error {
			recs2 = append(recs2, rec{key, st})
			return nil
		})
		if err != nil {
			t.Fatalf("re-written snapshot failed to decode: %v", err)
		}
		if info2 != info {
			t.Fatalf("re-written manifest %+v, want %+v", info2, info)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-written snapshot has %d records, want %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].key != recs[i].key || !recs2[i].st.Equal(recs[i].st) {
				t.Fatalf("record %d changed across the round trip", i)
			}
		}
	})
}

// FuzzDigest targets the anti-entropy control plane specifically: the
// digest advertisement/request and the Merkle drill-down rounds, the
// messages a store decodes straight off hostile connections. Beyond the
// fixed-point check, accepted tree messages must honor the invariants
// the transport relies on without re-validating: parallel nodes/hashes,
// a level inside the drill-down range, and every index under its
// level's node count.
func FuzzDigest(f *testing.F) {
	seed := func(m protocol.Msg) {
		if d, err := codec.EncodeMsg(m); err == nil {
			f.Add(d)
		}
	}
	seed(protocol.NewDigestMsg([]uint64{0, ^uint64(0), 0xdeadbeef}, nil,
		protocol.DigestCost([]uint64{0, 1, 2}, nil)))
	seed(protocol.NewDigestMsg(nil, []uint32{0, 5, 4294967295},
		protocol.DigestCost(nil, []uint32{0, 5, 6})))
	seed(protocol.NewTreeMsg(0, 1, []uint32{0, 1, 2, 15}, nil, nil, nil,
		protocol.TreeCost([]uint32{0, 1, 2, 15}, nil, nil, nil)))
	seed(protocol.NewTreeMsg(7, 2, nil, []uint32{0, 255}, []uint64{1, ^uint64(0)}, nil,
		protocol.TreeCost(nil, []uint32{0, 255}, []uint64{1, 2}, nil)))
	seed(protocol.NewTreeMsg(4294967295, protocol.TreeDepth, nil, nil, nil,
		[]uint32{0, protocol.TreeLeaves - 1},
		protocol.TreeCost(nil, nil, nil, []uint32{0, 1})))
	f.Add([]byte{73, 0, 0, 0, 0, 255, 255, 255, 255, 15}) // digest, hostile count
	f.Add([]byte{75, 0, 0, 0, 0, 0, 0, 0, 0, 0})          // tree, level 0
	f.Add([]byte{75, 0, 0, 0, 0, 0, 1, 1, 16, 0, 0})      // tree, query index == node count
	f.Add([]byte{75, 0, 0, 0, 0, 0, 3, 0, 1, 2, 1, 2, 3}) // tree, truncated pair hash

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := codec.DecodeMsg(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if tm, ok := m.(*protocol.TreeMsg); ok {
			if len(tm.Nodes) != len(tm.Hashes) {
				t.Fatalf("accepted %d nodes with %d hashes", len(tm.Nodes), len(tm.Hashes))
			}
			if tm.Level < 1 || tm.Level > protocol.TreeDepth {
				t.Fatalf("accepted level %d", tm.Level)
			}
			maxNode := uint32(protocol.TreeNodesAt(int(tm.Level)))
			for _, lst := range [][]uint32{tm.Query, tm.Nodes, tm.Want} {
				for _, idx := range lst {
					if idx >= maxNode {
						t.Fatalf("accepted node index %d at level %d (max %d)", idx, tm.Level, maxNode)
					}
				}
			}
		}
		e1, err := codec.EncodeMsg(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, _, err := codec.DecodeMsg(e1)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		e2, err := codec.EncodeMsg(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encoding not a fixed point: %x vs %x", e1, e2)
		}
	})
}
