// Package codec provides a compact, self-describing binary encoding for
// the lattice states shipped by the synchronization protocols. It backs
// the byte-level accounting of the evaluation with a real wire format and
// lets the examples persist or transport states.
//
// The format is type-tagged: one tag byte, then a type-specific body using
// unsigned varints for lengths and counters; map entries and set elements
// are written in sorted order so encodings are canonical (equal states
// encode to equal bytes). Nested states (map values) recurse. Unknown tags
// fail decoding with an error, never a panic.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/vclock"
)

// Type tags. Stable on the wire: append, never renumber.
const (
	tagMaxInt byte = iota + 1
	tagFlag
	tagSet
	tagMap
	tagGCounter
	tagPNCounter
	tagGSet
	tagTwoPSet
	tagLWW
	tagAWSet
)

// ErrUnknownTag reports an unrecognized type tag in the input.
var ErrUnknownTag = errors.New("codec: unknown type tag")

// ErrTruncated reports input that ended mid-value.
var ErrTruncated = errors.New("codec: truncated input")

// Encode serializes a state. It panics on state types without a wire
// format (the generic combinators Pair/LexPair/Sum/Maximals, whose shape
// is application-specific); all concrete CRDT types round-trip.
func Encode(s lattice.State) []byte {
	return appendState(nil, s)
}

// AppendState is Encode with a caller-owned scratch buffer: it appends
// the state's serialization to b and returns the extended slice. Hot
// paths that encode many states transiently (content digests, Merkle
// leaf hashes) reuse one buffer across keys instead of allocating per
// key. The bytes written are identical to Encode's.
func AppendState(b []byte, s lattice.State) []byte {
	return appendState(b, s)
}

// Decode deserializes one state, returning it and the number of bytes
// consumed.
func Decode(data []byte) (lattice.State, int, error) {
	return readState(data)
}

// maxStateNesting bounds state nesting during decoding (maps of maps);
// a hostile chain of map prefixes must fail with an error instead of
// exhausting the goroutine stack.
const maxStateNesting = 16

// ErrNestingTooDeep reports input nested beyond the decoder's limit.
var ErrNestingTooDeep = errors.New("codec: nesting too deep")

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStringList(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func readUvarint(data []byte) (uint64, int, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, ErrTruncated
	}
	return v, n, nil
}

// maxCapHint caps the slice capacity preallocated from a wire-declared
// element count (append grows larger results amortized); combined with the
// remaining-bytes bound below it keeps one hostile frame from forcing a
// multi-gigabyte allocation.
const maxCapHint = 1 << 16

// capHint bounds a wire-declared element count by the bytes actually
// remaining (each element occupies at least one byte on the wire, so a
// count beyond that is certainly corrupt and decoding will fail with
// ErrTruncated) and by maxCapHint, so a hostile count can never drive a
// huge allocation or a makeslice panic.
func capHint(count uint64, remaining []byte) int {
	if count > uint64(len(remaining)) {
		count = uint64(len(remaining))
	}
	if count > maxCapHint {
		count = maxCapHint
	}
	return int(count)
}

func readString(data []byte) (string, int, error) {
	l, n, err := readUvarint(data)
	if err != nil {
		return "", 0, err
	}
	if uint64(len(data)-n) < l {
		return "", 0, ErrTruncated
	}
	return string(data[n : n+int(l)]), n + int(l), nil
}

func readStringList(data []byte) ([]string, int, error) {
	count, n, err := readUvarint(data)
	if err != nil {
		return nil, 0, err
	}
	out := make([]string, 0, capHint(count, data[n:]))
	for i := uint64(0); i < count; i++ {
		s, m, err := readString(data[n:])
		if err != nil {
			return nil, 0, err
		}
		out = append(out, s)
		n += m
	}
	return out, n, nil
}

func appendState(b []byte, s lattice.State) []byte {
	switch v := s.(type) {
	case *lattice.MaxInt:
		b = append(b, tagMaxInt)
		return binary.AppendUvarint(b, v.V)

	case *lattice.Flag:
		b = append(b, tagFlag)
		if v.V {
			return append(b, 1)
		}
		return append(b, 0)

	case *lattice.Set:
		b = append(b, tagSet)
		return appendStringList(b, v.Values())

	case *lattice.Map:
		b = append(b, tagMap)
		keys := v.Keys()
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
			b = appendState(b, v.Get(k))
		}
		return b

	case *crdt.GCounter:
		b = append(b, tagGCounter)
		type entry struct {
			id string
			v  uint64
		}
		var entries []entry
		v.Range(func(id string, count uint64) bool {
			entries = append(entries, entry{id, count})
			return true
		})
		sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
		b = binary.AppendUvarint(b, uint64(len(entries)))
		for _, e := range entries {
			b = appendString(b, e.id)
			b = binary.AppendUvarint(b, e.v)
		}
		return b

	case *crdt.PNCounter:
		b = append(b, tagPNCounter)
		type entry struct {
			id       string
			inc, dec uint64
		}
		var entries []entry
		v.Range(func(id string, inc, dec uint64) bool {
			entries = append(entries, entry{id, inc, dec})
			return true
		})
		sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
		b = binary.AppendUvarint(b, uint64(len(entries)))
		for _, e := range entries {
			b = appendString(b, e.id)
			b = binary.AppendUvarint(b, e.inc)
			b = binary.AppendUvarint(b, e.dec)
		}
		return b

	case *crdt.GSet:
		b = append(b, tagGSet)
		return appendStringList(b, v.Values())

	case *crdt.TwoPSet:
		b = append(b, tagTwoPSet)
		b = appendStringList(b, v.Added())
		return appendStringList(b, v.Removed())

	case *crdt.LWWRegister:
		b = append(b, tagLWW)
		b = binary.AppendUvarint(b, v.TS)
		b = appendString(b, v.Writer)
		return appendString(b, v.Val)

	case *crdt.AWSet:
		b = append(b, tagAWSet)
		type atom struct {
			elem string
			dot  vclock.Dot
		}
		var atoms []atom
		live := make(map[vclock.Dot]struct{})
		v.RangeLive(func(elem string, d vclock.Dot) bool {
			atoms = append(atoms, atom{elem, d})
			live[d] = struct{}{}
			return true
		})
		v.RangeContext(func(d vclock.Dot) bool {
			if _, ok := live[d]; !ok {
				atoms = append(atoms, atom{"", d})
			}
			return true
		})
		sort.Slice(atoms, func(i, j int) bool {
			if atoms[i].dot.Actor != atoms[j].dot.Actor {
				return atoms[i].dot.Actor < atoms[j].dot.Actor
			}
			if atoms[i].dot.Seq != atoms[j].dot.Seq {
				return atoms[i].dot.Seq < atoms[j].dot.Seq
			}
			return atoms[i].elem < atoms[j].elem
		})
		b = binary.AppendUvarint(b, uint64(len(atoms)))
		for _, a := range atoms {
			b = appendString(b, a.elem)
			b = appendString(b, a.dot.Actor)
			b = binary.AppendUvarint(b, a.dot.Seq)
		}
		return b

	default:
		panic(fmt.Sprintf("codec: no wire format for %T", s))
	}
}

func readState(data []byte) (lattice.State, int, error) {
	return readStateDepth(data, 0)
}

func readStateDepth(data []byte, depth int) (lattice.State, int, error) {
	if depth >= maxStateNesting {
		return nil, 0, ErrNestingTooDeep
	}
	if len(data) == 0 {
		return nil, 0, ErrTruncated
	}
	tag, body := data[0], data[1:]
	s, n, err := readBody(tag, body, depth)
	if err != nil {
		return nil, 0, err
	}
	return s, n + 1, nil
}

func readBody(tag byte, data []byte, depth int) (lattice.State, int, error) {
	switch tag {
	case tagMaxInt:
		v, n, err := readUvarint(data)
		if err != nil {
			return nil, 0, err
		}
		return lattice.NewMaxInt(v), n, nil

	case tagFlag:
		if len(data) < 1 {
			return nil, 0, ErrTruncated
		}
		return lattice.NewFlag(data[0] == 1), 1, nil

	case tagSet:
		elems, n, err := readStringList(data)
		if err != nil {
			return nil, 0, err
		}
		return lattice.NewSet(elems...), n, nil

	case tagMap:
		count, n, err := readUvarint(data)
		if err != nil {
			return nil, 0, err
		}
		m := lattice.NewMap()
		for i := uint64(0); i < count; i++ {
			k, kn, err := readString(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += kn
			v, vn, err := readStateDepth(data[n:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			n += vn
			m.Set(k, v)
		}
		return m, n, nil

	case tagGCounter:
		count, n, err := readUvarint(data)
		if err != nil {
			return nil, 0, err
		}
		c := crdt.NewGCounter()
		for i := uint64(0); i < count; i++ {
			id, m, err := readString(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m
			v, m2, err := readUvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m2
			if v > 0 {
				c.Inc(id, v)
			}
		}
		return c, n, nil

	case tagPNCounter:
		count, n, err := readUvarint(data)
		if err != nil {
			return nil, 0, err
		}
		c := crdt.NewPNCounter()
		for i := uint64(0); i < count; i++ {
			id, m, err := readString(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m
			inc, m2, err := readUvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m2
			dec, m3, err := readUvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m3
			if inc > 0 {
				c.Inc(id, inc)
			}
			if dec > 0 {
				c.Dec(id, dec)
			}
		}
		return c, n, nil

	case tagGSet:
		elems, n, err := readStringList(data)
		if err != nil {
			return nil, 0, err
		}
		return crdt.NewGSet(elems...), n, nil

	case tagTwoPSet:
		added, n, err := readStringList(data)
		if err != nil {
			return nil, 0, err
		}
		removed, m, err := readStringList(data[n:])
		if err != nil {
			return nil, 0, err
		}
		s := crdt.NewTwoPSet()
		for _, e := range added {
			s.Add(e)
		}
		for _, e := range removed {
			s.Remove(e)
		}
		return s, n + m, nil

	case tagLWW:
		ts, n, err := readUvarint(data)
		if err != nil {
			return nil, 0, err
		}
		w, m, err := readString(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		v, m2, err := readString(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m2
		return &crdt.LWWRegister{TS: ts, Writer: w, Val: v}, n, nil

	case tagAWSet:
		count, n, err := readUvarint(data)
		if err != nil {
			return nil, 0, err
		}
		s := crdt.NewAWSet()
		for i := uint64(0); i < count; i++ {
			elem, m, err := readString(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m
			actor, m2, err := readString(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m2
			seq, m3, err := readUvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m3
			s.Merge(crdt.NewAWSetAtom(elem, vclock.Dot{Actor: actor, Seq: seq}))
		}
		return s, n, nil

	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
}
