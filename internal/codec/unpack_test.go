package codec_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// flatItem is the comparison form of one unpacked item: shard, key (empty
// for keyless items), and the inner message's canonical encoding.
type flatItem struct {
	shard uint32
	key   string
	enc   string
}

// flattenEager expands a decoded ShardedMsg the way UnpackFrame does:
// batches become one entry per object message, anything else one keyless
// entry; items routed beyond the shard count are dropped (and counted).
func flattenEager(t testing.TB, sm *protocol.ShardedMsg, shards int) (kept []flatItem, dropped int) {
	t.Helper()
	for _, it := range sm.Items {
		if it.Shard >= uint32(shards) {
			dropped++
			continue
		}
		if bm, ok := it.Msg.(*protocol.BatchMsg); ok {
			for _, om := range bm.Items {
				enc, err := codec.EncodeMsg(om.Inner)
				if err != nil {
					t.Fatalf("encode inner: %v", err)
				}
				kept = append(kept, flatItem{shard: it.Shard, key: om.Key, enc: string(enc)})
			}
			continue
		}
		enc, err := codec.EncodeMsg(it.Msg)
		if err != nil {
			t.Fatalf("encode msg: %v", err)
		}
		kept = append(kept, flatItem{shard: it.Shard, enc: string(enc)})
	}
	return kept, dropped
}

// flattenView lowers a FrameView's groups into comparison items, checking
// the grouping invariants on the way: every group's items carry its shard,
// no shard appears in two groups, and each view's lazy decode agrees with
// its raw payload.
func flattenView(t testing.TB, v *codec.FrameView) []flatItem {
	t.Helper()
	var out []flatItem
	seen := make(map[uint32]bool)
	for _, g := range v.Groups() {
		if seen[g.Shard] {
			t.Fatalf("shard %d appears in two groups", g.Shard)
		}
		seen[g.Shard] = true
		for i := range g.Items {
			iv := &g.Items[i]
			if iv.Shard != g.Shard {
				t.Fatalf("item shard %d inside group %d", iv.Shard, g.Shard)
			}
			m, err := iv.Msg()
			if err != nil {
				t.Fatalf("lazy decode: %v", err)
			}
			// Compare re-encodings, not raw payload bytes: the decoders
			// (and the skip walk, identically) tolerate non-minimal
			// uvarints, so an accepted hostile payload may re-encode
			// shorter than the wire form.
			enc, err := codec.EncodeMsg(m)
			if err != nil {
				t.Fatalf("re-encode decoded item: %v", err)
			}
			out = append(out, flatItem{shard: g.Shard, key: string(iv.Key), enc: string(enc)})
		}
	}
	return out
}

// checkUnpacked verifies that unpacking data matches the eager decode of
// the same bytes, modulo the stable shard grouping.
func checkUnpacked(t testing.TB, data []byte, shards int, v *codec.FrameView) {
	t.Helper()
	m, _, err := codec.DecodeMsg(data)
	if err != nil {
		t.Fatalf("eager decode: %v", err)
	}
	sm, ok := m.(*protocol.ShardedMsg)
	if !ok {
		t.Fatalf("eager decode produced %T, want *ShardedMsg", m)
	}
	if err := codec.UnpackFrame(data, shards, v); err != nil {
		t.Fatalf("UnpackFrame: %v", err)
	}
	if v.Cost != sm.Cost() {
		t.Fatalf("cost %+v, want %+v", v.Cost, sm.Cost())
	}
	if len(v.Digests) != len(sm.Digests) {
		t.Fatalf("digests %v, want %v", v.Digests, sm.Digests)
	}
	for i := range v.Digests {
		if v.Digests[i] != sm.Digests[i] {
			t.Fatalf("digests %v, want %v", v.Digests, sm.Digests)
		}
	}
	want, dropped := flattenEager(t, sm, shards)
	if v.Dropped != dropped {
		t.Fatalf("Dropped = %d, want %d", v.Dropped, dropped)
	}
	// The view groups by shard but keeps per-shard wire order: a stable
	// sort of the eager flattening is the expected sequence.
	sort.SliceStable(want, func(i, j int) bool { return want[i].shard < want[j].shard })
	got := flattenView(t, v)
	if len(got) != len(want) {
		t.Fatalf("unpacked %d items, want %d", len(got), len(want))
	}
	if v.NumItems() != len(want) {
		t.Fatalf("NumItems = %d, want %d", v.NumItems(), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func encodeMsg(t testing.TB, m protocol.Msg) []byte {
	t.Helper()
	data, err := codec.EncodeMsg(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

func unpackGSetDelta(seed, n int) protocol.Msg {
	els := make([]string, n)
	for i := range els {
		els[i] = fmt.Sprintf("el-%d-%d", seed, i)
	}
	s := crdt.NewGSet(els...)
	return protocol.NewDeltaMsg(s, metrics.Transmission{
		Messages: 1, Elements: s.Elements(), PayloadBytes: s.SizeBytes(),
	})
}

func unpackBatch(shard uint32, keys ...string) protocol.ShardItem {
	oms := make([]protocol.ObjectMsg, 0, len(keys))
	for i, k := range keys {
		oms = append(oms, protocol.ObjectMsg{Key: k, Inner: unpackGSetDelta(int(shard)*100+i, 1+i)})
	}
	return protocol.ShardItem{Shard: shard, Msg: protocol.BatchOf(oms)}
}

// TestUnpackFrameGrouped covers the common case: a packer-built frame
// whose items already arrive in shard order, plus view reuse across
// frames of both sharded variants.
func TestUnpackFrameGrouped(t *testing.T) {
	cost := metrics.Transmission{Messages: 1}
	var v codec.FrameView
	first := encodeMsg(t, protocol.NewShardedMsg([]protocol.ShardItem{
		unpackBatch(0, "a", "b"),
		{Shard: 1, Msg: protocol.NewAckMsg([]uint64{4, 5}, cost)},
		unpackBatch(1, "c"),
		unpackBatch(3, "d", "e", "f"),
	}))
	checkUnpacked(t, first, 4, &v)
	if got := len(v.Groups()); got != 3 {
		t.Fatalf("groups = %d, want 3", got)
	}
	// Reuse the same view on a digest-carrying frame: everything from the
	// first unpack must be gone.
	second := encodeMsg(t, protocol.NewShardedDigestMsg([]protocol.ShardItem{
		unpackBatch(2, "x"),
	}, []uint64{7, 8, 9, 10}))
	checkUnpacked(t, second, 4, &v)
	if got := len(v.Groups()); got != 1 {
		t.Fatalf("groups = %d, want 1", got)
	}
}

// TestUnpackFrameInterleaved covers the counting-sort fallback: shard
// runs split across the frame regroup into one group per shard with the
// per-shard wire order preserved.
func TestUnpackFrameInterleaved(t *testing.T) {
	var v codec.FrameView
	data := encodeMsg(t, protocol.NewShardedMsg([]protocol.ShardItem{
		unpackBatch(2, "c1"),
		unpackBatch(0, "a1", "a2"),
		unpackBatch(2, "c2"),
		unpackBatch(1, "b1"),
		unpackBatch(0, "a3"),
	}))
	checkUnpacked(t, data, 4, &v)
	if got := len(v.Groups()); got != 3 {
		t.Fatalf("groups = %d, want 3", got)
	}
}

// TestUnpackFrameDropped covers shard-map skew: items routed beyond the
// receiver's shard count are counted and skipped, not delivered.
func TestUnpackFrameDropped(t *testing.T) {
	var v codec.FrameView
	data := encodeMsg(t, protocol.NewShardedMsg([]protocol.ShardItem{
		unpackBatch(1, "keep"),
		unpackBatch(9, "drop1", "drop2"),
		unpackBatch(40_000, "drop3"),
	}))
	checkUnpacked(t, data, 4, &v)
	if v.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", v.Dropped)
	}
	if v.NumItems() != 1 {
		t.Fatalf("NumItems = %d, want 1", v.NumItems())
	}
}

// TestUnpackFrameNotSharded: every non-sharded message kind falls back to
// the eager decoder via the sentinel error.
func TestUnpackFrameNotSharded(t *testing.T) {
	var v codec.FrameView
	for _, m := range []protocol.Msg{
		unpackGSetDelta(1, 3),
		protocol.NewDigestMsg([]uint64{1, 2}, nil, protocol.DigestCost([]uint64{1, 2}, nil)),
		protocol.NewBatchMsg(nil, metrics.Transmission{Messages: 1}),
	} {
		if err := codec.UnpackFrame(encodeMsg(t, m), 4, &v); !errors.Is(err, codec.ErrNotSharded) {
			t.Fatalf("%s: err = %v, want ErrNotSharded", m.Kind(), err)
		}
	}
	if err := codec.UnpackFrame(nil, 4, &v); err == nil || errors.Is(err, codec.ErrNotSharded) {
		t.Fatalf("empty input: err = %v, want a truncation error", err)
	}
}

// TestUnpackFrameHostile: truncated and count-inflated frames fail with
// an error before any large allocation, mirroring the eager decoder.
func TestUnpackFrameHostile(t *testing.T) {
	var v codec.FrameView
	for _, data := range [][]byte{
		{72, 0, 0, 0, 0, 2, 1},                   // sharded, 2 items, truncated
		{74, 0, 0, 0, 0, 255, 255, 255, 255, 15}, // sharded+digest, hostile digest count
		{72, 0, 0, 0, 0, 255, 255, 255, 255, 15}, // sharded, hostile item count
	} {
		if err := codec.UnpackFrame(data, 4, &v); err == nil {
			t.Fatalf("%v: accepted hostile input", data)
		}
	}
	// A valid frame must also unpack after hostile failures reused the view.
	checkUnpacked(t, encodeMsg(t, protocol.NewShardedMsg([]protocol.ShardItem{
		unpackBatch(0, "ok"),
	})), 4, &v)
}

// TestItemViewTags: wire-tag classification without decoding.
func TestItemViewTags(t *testing.T) {
	cost := metrics.Transmission{Messages: 1}
	var v codec.FrameView
	data := encodeMsg(t, protocol.NewShardedMsg([]protocol.ShardItem{
		{Shard: 0, Msg: protocol.NewAckMsg([]uint64{1}, cost)},
		unpackBatch(1, "k"),
	}))
	if err := codec.UnpackFrame(data, 4, &v); err != nil {
		t.Fatalf("UnpackFrame: %v", err)
	}
	groups := v.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if !codec.IsAckTag(groups[0].Items[0].Tag()) {
		t.Fatalf("ack item not classified by tag")
	}
	if codec.IsAckTag(groups[1].Items[0].Tag()) {
		t.Fatalf("delta item classified as ack")
	}
}

// FuzzUnpackFrame differentially fuzzes the single-pass unpacker against
// the eager decoder: on any input, UnpackFrame must never panic, must
// accept exactly the sharded frames DecodeMsg accepts (rejecting other
// accepted kinds with ErrNotSharded), and on acceptance must produce the
// same items, digests, cost and drop count — with every payload view
// decoding to bytes identical to its eager counterpart (alias safety:
// views index the input buffer, decodes copy out of it).
func FuzzUnpackFrame(f *testing.F) {
	cost := metrics.Transmission{Messages: 1}
	seed := func(m protocol.Msg) {
		if d, err := codec.EncodeMsg(m); err == nil {
			f.Add(d)
		}
	}
	batch := protocol.NewBatchMsg([]protocol.ObjectMsg{
		{Key: "obj:1", Inner: protocol.NewDeltaMsg(crdt.NewGSet("a"), cost)},
		{Key: "obj:2", Inner: protocol.NewAckedDeltaMsg(crdt.NewGSet("b"), []uint64{3}, cost)},
	}, cost)
	seed(protocol.NewShardedMsg([]protocol.ShardItem{
		{Shard: 0, Msg: batch},
		{Shard: 7, Msg: protocol.NewAckMsg([]uint64{9}, cost)}, // beyond the fuzz shard count: dropped
	}))
	seed(protocol.NewShardedDigestMsg([]protocol.ShardItem{
		{Shard: 3, Msg: protocol.NewDeltaMsg(crdt.NewGSet("p"), cost)},
		{Shard: 1, Msg: batch}, // out of shard order: counting-sort path
	}, []uint64{0, ^uint64(0), 0xabcdef}))
	seed(protocol.NewDigestMsg([]uint64{0, ^uint64(0)}, []uint32{1, 3},
		protocol.DigestCost([]uint64{0, 1}, []uint32{1, 3})))
	// Standalone drill-down rounds (not sharded) and one embedded in a
	// sharded item, exercising the tree branch of the skip walker.
	seed(protocol.NewTreeMsg(2, 1, []uint32{0, 15}, nil, nil, nil,
		protocol.TreeCost([]uint32{0, 15}, nil, nil, nil)))
	seed(protocol.NewTreeMsg(0, 2, nil, []uint32{9}, []uint64{^uint64(0)}, nil,
		protocol.TreeCost(nil, []uint32{9}, []uint64{0}, nil)))
	seed(protocol.NewShardedMsg([]protocol.ShardItem{
		{Shard: 1, Msg: protocol.NewTreeMsg(1, protocol.TreeDepth, nil, nil, nil,
			[]uint32{5}, protocol.TreeCost(nil, nil, nil, []uint32{5}))},
	}))
	f.Add([]byte{72, 0, 0, 0, 0, 2, 1})                   // sharded, 2 items, truncated
	f.Add([]byte{74, 0, 0, 0, 0, 255, 255, 255, 255, 15}) // sharded+digest, hostile count
	f.Add([]byte{72, 0, 0, 0, 0, 1, 3, 70, 0, 0, 0, 0, 1, 1, 97, 64, 0, 0, 0, 0, 1})
	f.Add([]byte{72, 0, 0, 0, 0, 1, 2, 75, 0, 0, 0, 0, 0, 3, 0, 1, 2, 1, 2, 3}) // embedded tree, truncated pair

	const shards = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		// Work on a copy: the alias-safety check below clobbers the frame
		// buffer, and the fuzz engine owns data.
		buf := append([]byte(nil), data...)
		var v codec.FrameView
		uerr := codec.UnpackFrame(buf, shards, &v)
		m, _, derr := codec.DecodeMsg(data)
		sm, sharded := m.(*protocol.ShardedMsg)
		switch {
		case derr != nil:
			// The eager decoder rejects this input; the unpacker must too
			// (possibly as not-sharded, when the leading tag already rules
			// the frame out).
			if uerr == nil {
				t.Fatalf("unpacker accepted input the decoder rejects: %v", derr)
			}
			return
		case !sharded:
			if !errors.Is(uerr, codec.ErrNotSharded) {
				t.Fatalf("non-sharded %s: err = %v, want ErrNotSharded", m.Kind(), uerr)
			}
			return
		case uerr != nil:
			t.Fatalf("unpacker rejected a decodable sharded frame: %v", uerr)
		}
		// Mutating the input after unpacking must not corrupt decoded
		// messages: Msg() copies out of the buffer. Decode every view
		// first, then clobber, then compare against the eager flattening.
		checkUnpacked(t, buf, shards, &v)
		got := flattenView(t, &v)
		for i := range buf {
			buf[i] = 0xff
		}
		want, _ := flattenEager(t, sm, shards)
		sort.SliceStable(want, func(i, j int) bool { return want[i].shard < want[j].shard })
		for i := range got {
			if got[i].enc != want[i].enc {
				t.Fatalf("decoded item %d changed after buffer reuse", i)
			}
		}
	})
}

// unpackBenchFrame builds a sync-tick frame: one per-shard batch of
// single-element GSet deltas for each of shards shards, objects per
// batch — the same shapes the transport's BenchmarkDeliver uses.
func unpackBenchFrame(tb testing.TB, shards, objectsPerShard int) []byte {
	tb.Helper()
	items := make([]protocol.ShardItem, 0, shards)
	for sh := 0; sh < shards; sh++ {
		oms := make([]protocol.ObjectMsg, 0, objectsPerShard)
		for i := 0; i < objectsPerShard; i++ {
			oms = append(oms, protocol.ObjectMsg{
				Key:   fmt.Sprintf("k%d-%d", sh, i),
				Inner: unpackGSetDelta(sh*100+i, 1),
			})
		}
		items = append(items, protocol.ShardItem{Shard: uint32(sh), Msg: protocol.BatchOf(oms)})
	}
	return encodeMsg(tb, protocol.NewShardedMsg(items))
}

// BenchmarkUnpack measures the codec half of the inbound path: turning
// frame bytes into shard-grouped, lock-routable items. The view path
// walks the frame once into payload views that alias the buffer (item
// decode is deferred to the point of apply, and never happens at all
// for acks and digests); the decode-baseline is what the transport did
// before — materialize the full ShardedMsg tree up front.
func BenchmarkUnpack(b *testing.B) {
	for _, shape := range []struct {
		name            string
		shards, objects int
	}{
		{name: "hot", shards: 4, objects: 1},
		{name: "bulk", shards: 64, objects: 32},
	} {
		frame := unpackBenchFrame(b, shape.shards, shape.objects)
		items := shape.shards * shape.objects
		b.Run(shape.name+"/view", func(b *testing.B) {
			var v codec.FrameView
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := codec.UnpackFrame(frame, shape.shards, &v); err != nil {
					b.Fatalf("UnpackFrame: %v", err)
				}
				if v.NumItems() != items {
					b.Fatalf("items = %d, want %d", v.NumItems(), items)
				}
			}
			b.ReportMetric(float64(items), "items/op")
		})
		b.Run(shape.name+"/decode-baseline", func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, _, err := codec.DecodeMsg(frame)
				if err != nil {
					b.Fatalf("DecodeMsg: %v", err)
				}
				if _, ok := m.(*protocol.ShardedMsg); !ok {
					b.Fatalf("decoded %T", m)
				}
			}
			b.ReportMetric(float64(items), "items/op")
		})
	}
}
