package codec

import (
	"encoding/binary"

	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// Incremental frame assembly. The transport's single-pass frame packer
// builds bounded ShardedMsg frames out of independently encoded pieces:
// each shard item (and, when one shard's batch alone overflows a frame,
// each object message inside it) is encoded exactly once, and frames are
// assembled as header + concatenated pieces. The helpers here expose the
// two things that requires — per-piece encode-to-buffer and exact header
// size accounting — so the packer never re-encodes a piece to learn what
// it would cost. AppendMsg for ShardedMsg/BatchMsg is defined in terms of
// these same helpers, which keeps packed frames byte-identical to what
// EncodeMsg would produce for the equivalent message.

// SizeUvarint returns the encoded length of v as a uvarint.
func SizeUvarint(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// sizeCost returns the encoded length of a transmission accounting record.
func sizeCost(c metrics.Transmission) int {
	return SizeUvarint(uint64(c.Messages)) + SizeUvarint(uint64(c.Elements)) +
		SizeUvarint(uint64(c.PayloadBytes)) + SizeUvarint(uint64(c.MetadataBytes))
}

// AppendShardItem appends one shard item's wire encoding (shard index +
// inner message) — the unit the frame packer accumulates.
func AppendShardItem(b []byte, it protocol.ShardItem) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(it.Shard))
	return appendMsg(b, it.Msg)
}

// AppendObjectMsg appends one object message's wire encoding (key + inner
// message) — the sub-unit used when a single shard's batch must split
// across frames.
func AppendObjectMsg(b []byte, it protocol.ObjectMsg) ([]byte, error) {
	b = appendString(b, it.Key)
	return appendMsg(b, it.Inner)
}

// AppendShardedHeader appends a ShardedMsg frame header: tag, accounting,
// the optional piggybacked digest vector, and the item count. The item
// encodings (AppendShardItem) follow it.
func AppendShardedHeader(b []byte, cost metrics.Transmission, digests []uint64, count int) []byte {
	if digests == nil {
		b = append(b, tagShardedMsg)
		b = appendCost(b, cost)
		return binary.AppendUvarint(b, uint64(count))
	}
	b = append(b, tagShardedDigestMsg)
	b = appendCost(b, cost)
	b = binary.AppendUvarint(b, uint64(len(digests)))
	for _, d := range digests {
		// Fixed 8-byte words, as in DigestMsg: uvarint averages >9 bytes
		// on uniformly random 64-bit hash values.
		b = binary.BigEndian.AppendUint64(b, d)
	}
	return binary.AppendUvarint(b, uint64(count))
}

// ShardedHeaderSize returns the exact encoded length of the header
// AppendShardedHeader would write — what a packer adds to its accumulated
// piece bytes to know a candidate frame's final size.
func ShardedHeaderSize(cost metrics.Transmission, digests []uint64, count int) int {
	n := 1 + sizeCost(cost) + SizeUvarint(uint64(count))
	if digests != nil {
		n += SizeUvarint(uint64(len(digests))) + 8*len(digests)
	}
	return n
}

// AppendBatchHeader appends a BatchMsg header (tag, accounting, item
// count); the item encodings (AppendObjectMsg) follow it.
func AppendBatchHeader(b []byte, cost metrics.Transmission, count int) []byte {
	b = append(b, tagBatchMsg)
	b = appendCost(b, cost)
	return binary.AppendUvarint(b, uint64(count))
}

// BatchHeaderSize returns the exact encoded length of the header
// AppendBatchHeader would write.
func BatchHeaderSize(cost metrics.Transmission, count int) int {
	return 1 + sizeCost(cost) + SizeUvarint(uint64(count))
}

// splitSharded parses an encoded plain ShardedMsg into its accounting,
// item count, and raw item bytes. ok is false for any other encoding
// (including the digest-carrying variant, whose vector must not survive a
// merge — it advertises one instant's shard states, not a range).
func splitSharded(d []byte) (cost metrics.Transmission, count uint64, items []byte, ok bool) {
	if len(d) == 0 || d[0] != tagShardedMsg {
		return cost, 0, nil, false
	}
	c, n, err := readCost(d[1:])
	if err != nil {
		return cost, 0, nil, false
	}
	cnt, m, err := readUvarint(d[1+n:])
	if err != nil {
		return cost, 0, nil, false
	}
	return c, cnt, d[1+n+m:], true
}

// CanMergeSharded reports whether d is a plain ShardedMsg encoding — the
// only kind of frame drain coalescing may merge. It is the exact
// admission predicate of MergeSharded, so a set of frames that each pass
// it always merges.
func CanMergeSharded(d []byte) bool {
	_, _, _, ok := splitSharded(d)
	return ok
}

// MergeSharded concatenates encoded plain ShardedMsg frames into one in a
// single pass, without re-encoding any item: accounting and item counts
// are summed and the item byte regions appended. The peer write pipeline
// uses it to coalesce queued frames to the same peer on drain. The merged
// encoding is never longer than the inputs combined (per-frame tag bytes
// are saved and uvarint(Σx) never exceeds Σ uvarint(x)), so a size check
// on the summed input lengths is a safe admission bound. Returns ok=false
// when any input is not a plain sharded frame (digest-carrying frames,
// heartbeats, and single-object node frames never merge).
func MergeSharded(frames [][]byte) ([]byte, bool) {
	if len(frames) == 0 {
		return nil, false
	}
	var (
		cost  metrics.Transmission
		count uint64
		total int
	)
	parts := make([][]byte, 0, len(frames))
	for _, f := range frames {
		c, n, items, ok := splitSharded(f)
		if !ok {
			return nil, false
		}
		cost.Add(c)
		count += n
		total += len(items)
		parts = append(parts, items)
	}
	out := make([]byte, 0, 1+sizeCost(cost)+SizeUvarint(count)+total)
	out = append(out, tagShardedMsg)
	out = appendCost(out, cost)
	out = binary.AppendUvarint(out, count)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, true
}
