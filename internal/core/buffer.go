package core

import "crdtsync/internal/lattice"

// Entry is one δ-group in a δ-buffer, tagged with the identifier of the
// replica it was received from ("" origin means a local mutation at a
// replica that does not track origins). Origin tags implement the BP
// optimization: at each synchronization step with neighbor j, entries whose
// Origin equals j are filtered out (Algorithm 1, lines 5, 11, 20).
type Entry struct {
	Delta  lattice.State
	Origin string
}

// Buffer is the outbound δ-buffer Bᵢ of Algorithm 1: an ordered collection
// of origin-tagged δ-groups accumulated between synchronization steps.
// The zero value is an empty buffer ready for use.
type Buffer struct {
	entries []Entry
}

// Add appends a δ-group with the given origin. Bottom deltas are ignored:
// they carry no information.
func (b *Buffer) Add(delta lattice.State, origin string) {
	if delta == nil || delta.IsBottom() {
		return
	}
	b.entries = append(b.entries, Entry{Delta: delta, Origin: origin})
}

// Len returns the number of buffered δ-groups.
func (b *Buffer) Len() int { return len(b.entries) }

// Clear empties the buffer. Algorithm 1 clears the buffer after every
// synchronization step (line 13); with lossy channels entries would instead
// be acknowledged per neighbor, which Buffer supports by rebuilding.
func (b *Buffer) Clear() { b.entries = b.entries[:0] }

// GroupAll returns the join of every buffered δ-group, or nil if the buffer
// is empty. This is the classic δ-group d = ⊔Bᵢ (Algorithm 1, line 11).
func (b *Buffer) GroupAll() lattice.State {
	return b.GroupExcluding("")
}

// GroupExcluding returns the join of buffered δ-groups whose origin differs
// from exclude, or nil if no such entry exists. With exclude set to the
// destination neighbor this implements the BP optimization:
// d = ⊔{s | ⟨s, o⟩ ∈ Bᵢ ∧ o ≠ j}.
func (b *Buffer) GroupExcluding(exclude string) lattice.State {
	var acc lattice.State
	for _, e := range b.entries {
		if exclude != "" && e.Origin == exclude {
			continue
		}
		if acc == nil {
			acc = e.Delta.Clone()
		} else {
			acc.Merge(e.Delta)
		}
	}
	return acc
}

// Entries returns the buffered entries; the caller must not mutate them.
func (b *Buffer) Entries() []Entry { return b.entries }

// SizeBytes returns the memory footprint of the buffered δ-groups plus the
// origin tags, used for the paper's memory measurements (Figure 10).
func (b *Buffer) SizeBytes() int {
	n := 0
	for _, e := range b.entries {
		n += e.Delta.SizeBytes() + len(e.Origin)
	}
	return n
}

// ElementCount returns the total number of lattice elements buffered.
func (b *Buffer) ElementCount() int {
	n := 0
	for _, e := range b.entries {
		n += e.Delta.Elements()
	}
	return n
}
