// Package core implements the primary contribution of Enes et al.,
// "Efficient Synchronization of State-based CRDTs" (ICDE 2019):
//
//   - optimal deltas Δ(a, b) derived from irredundant join decompositions
//     (§III-B of the paper);
//   - decomposition validators used by the property-based test suite
//     (Definitions 1–3);
//   - the origin-tagged δ-buffer behind the BP (avoid back-propagation)
//     and RR (remove redundant state) optimizations of Algorithm 1 (§IV).
//
// The synchronization protocols themselves (classic delta-based, BP, RR,
// state-based, Scuttlebutt, op-based) are assembled from these pieces in
// package protocol.
package core

import "crdtsync/internal/lattice"

// Delta returns the minimum state Δ(a, b) = ⊔{y ∈ ⇓a | y ⋢ b} that, joined
// with b, yields a ⊔ b. It is optimal: any c with c ⊔ b = a ⊔ b satisfies
// Δ(a, b) ⊑ c (§III-B of the paper).
//
// The result is freshly allocated and never aliases a or b.
func Delta(a, b lattice.State) lattice.State {
	if a.Leq(b) {
		// Every y ∈ ⇓a satisfies y ⊑ a ⊑ b, so the whole decomposition is
		// redundant and Δ(a, b) = ⊥. This is the steady state of inbound
		// synchronization — a re-delivered δ-group the local state already
		// covers — and the subset check costs no per-irreducible
		// materialization, where the general walk below allocates one
		// singleton per irreducible.
		return a.Bottom()
	}
	d := a.Bottom()
	a.Irreducibles(func(y lattice.State) bool {
		if !y.Leq(b) {
			d.Merge(y)
		}
		return true
	})
	return d
}

// DeltaMutate lifts a standard mutator m into its optimal δ-mutator:
// mδ(x) = Δ(m(x), x). The mutator must be an inflation (x ⊑ m(x)) and must
// not mutate its argument.
func DeltaMutate(m func(lattice.State) lattice.State, x lattice.State) lattice.State {
	return Delta(m(x), x)
}

// IsJoinIrreducible reports whether x is join-irreducible according to its
// own decomposition: non-bottom and with ⇓x = {x}. For the distributive
// DCC lattices in this library this coincides with Definition 1 of the
// paper.
func IsJoinIrreducible(x lattice.State) bool {
	if x.IsBottom() {
		return false
	}
	n := 0
	sole := true
	x.Irreducibles(func(y lattice.State) bool {
		n++
		if n > 1 || !y.Equal(x) {
			sole = false
			return false
		}
		return true
	})
	return n == 1 && sole
}

// IsDecomposition reports whether D is a join decomposition of x:
// all members join-irreducible and ⊔D = x (Definition 2).
func IsDecomposition(d []lattice.State, x lattice.State) bool {
	join := x.Bottom()
	for _, y := range d {
		if !IsJoinIrreducible(y) {
			return false
		}
		join.Merge(y)
	}
	return join.Equal(x)
}

// IsIrredundant reports whether no member of D is redundant: removing any
// single member strictly lowers the join (Definition 3). For decompositions
// into join-irreducibles of a distributive lattice, checking single-element
// removal suffices.
func IsIrredundant(d []lattice.State) bool {
	if len(d) == 0 {
		return true
	}
	proto := d[0]
	for i := range d {
		rest := proto.Bottom()
		for j, y := range d {
			if j != i {
				rest.Merge(y)
			}
		}
		if d[i].Leq(rest) {
			return false
		}
	}
	return true
}

// IsIrredundantDecomposition reports whether D is the irredundant join
// decomposition of x, i.e. both IsDecomposition and IsIrredundant hold.
func IsIrredundantDecomposition(d []lattice.State, x lattice.State) bool {
	return IsDecomposition(d, x) && IsIrredundant(d)
}
