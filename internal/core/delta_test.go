package core_test

import (
	"math/rand"
	"strconv"
	"testing"

	"crdtsync/internal/core"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

// randSet returns a random small set.
func randSet(r *rand.Rand) lattice.State {
	s := lattice.NewSet()
	for i, n := 0, r.Intn(6); i < n; i++ {
		s.Add("e" + strconv.Itoa(r.Intn(8)))
	}
	return s
}

// randGCounter returns a random small counter.
func randGCounter(r *rand.Rand) lattice.State {
	c := crdt.NewGCounter()
	for i, n := 0, r.Intn(4); i < n; i++ {
		c.Inc("r"+strconv.Itoa(r.Intn(4)), uint64(r.Intn(3)+1))
	}
	return c
}

// randMap returns a random small map of chains.
func randMap(r *rand.Rand) lattice.State {
	m := lattice.NewMap()
	for i, n := 0, r.Intn(5); i < n; i++ {
		m.Set("k"+strconv.Itoa(r.Intn(5)), lattice.NewMaxInt(uint64(r.Intn(4))))
	}
	return m
}

func gens() map[string]func(*rand.Rand) lattice.State {
	return map[string]func(*rand.Rand) lattice.State{
		"set":      randSet,
		"gcounter": randGCounter,
		"map":      randMap,
	}
}

// TestDeltaProducesJoin checks the defining property of Δ:
// Δ(a, b) ⊔ b = a ⊔ b.
func TestDeltaProducesJoin(t *testing.T) {
	for name, gen := range gens() {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 500; i++ {
				a, b := gen(r), gen(r)
				d := core.Delta(a, b)
				if !d.Join(b).Equal(a.Join(b)) {
					t.Fatalf("Δ(%v,%v)=%v: Δ⊔b ≠ a⊔b", a, b, d)
				}
			}
		})
	}
}

// TestDeltaMinimal checks optimality: every irreducible of Δ(a, b) is
// strictly new w.r.t. b (no smaller state can produce the same join), and
// Δ(a, b) ⊑ any c with c ⊔ b = a ⊔ b. Candidate c's are built by joining
// Δ with extra random states below a.
func TestDeltaMinimal(t *testing.T) {
	for name, gen := range gens() {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			for i := 0; i < 500; i++ {
				a, b := gen(r), gen(r)
				d := core.Delta(a, b)
				d.Irreducibles(func(y lattice.State) bool {
					if y.Leq(b) {
						t.Fatalf("Δ(%v,%v) contains redundant irreducible %v", a, b, y)
					}
					return true
				})
				// Any c ⊒ Δ built from parts of a still produces a ⊔ b;
				// Δ must be below it.
				c := d.Join(core.Delta(a, d))
				if !c.Join(b).Equal(a.Join(b)) {
					continue // c is not a candidate; skip
				}
				if !d.Leq(c) {
					t.Fatalf("Δ(%v,%v)=%v not minimal vs %v", a, b, d, c)
				}
			}
		})
	}
}

// TestDeltaAgainstBottom checks Δ(a, ⊥) = a.
func TestDeltaAgainstBottom(t *testing.T) {
	for name, gen := range gens() {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(13))
			for i := 0; i < 200; i++ {
				a := gen(r)
				if d := core.Delta(a, a.Bottom()); !d.Equal(a) {
					t.Fatalf("Δ(a,⊥) = %v, want %v", d, a)
				}
				if d := core.Delta(a, a); !d.IsBottom() {
					t.Fatalf("Δ(a,a) = %v, want ⊥", d)
				}
			}
		})
	}
}

// TestDeltaMutate checks mδ(x) = Δ(m(x), x) and m(x) = x ⊔ mδ(x).
func TestDeltaMutate(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		x := randSet(r).(*lattice.Set)
		e := "e" + strconv.Itoa(r.Intn(10))
		m := func(s lattice.State) lattice.State {
			out := s.Clone().(*lattice.Set)
			out.Add(e)
			return out
		}
		d := core.DeltaMutate(m, x)
		if !x.Join(d).Equal(m(x)) {
			t.Fatalf("x ⊔ mδ(x) ≠ m(x) for x=%v e=%s", x, e)
		}
		if x.Contains(e) && !d.IsBottom() {
			t.Fatalf("mδ should be ⊥ for already-present element")
		}
		if !x.Contains(e) && d.Elements() != 1 {
			t.Fatalf("mδ should be a singleton, got %v", d)
		}
	}
}

// TestPaperExample1 checks the join-irreducibility verdicts of the paper's
// Example 1.
func TestPaperExample1(t *testing.T) {
	p1 := crdt.NewGCounter()
	p1.Inc("A", 5)
	p2 := crdt.NewGCounter()
	p2.Inc("B", 6)
	p3 := p1.Join(p2) // {A5,B7}-like two-entry state
	if !core.IsJoinIrreducible(p1) || !core.IsJoinIrreducible(p2) {
		t.Error("single-entry GCounters should be join-irreducible")
	}
	if core.IsJoinIrreducible(p3) {
		t.Error("two-entry GCounter should not be join-irreducible")
	}

	s1 := lattice.NewSet() // ⊥ is never join-irreducible
	s2 := lattice.NewSet("a")
	s3 := lattice.NewSet("a", "b")
	if core.IsJoinIrreducible(s1) {
		t.Error("bottom should not be join-irreducible")
	}
	if !core.IsJoinIrreducible(s2) {
		t.Error("singleton should be join-irreducible")
	}
	if core.IsJoinIrreducible(s3) {
		t.Error("two-element set should not be join-irreducible")
	}
}

// TestPaperExample2 checks the decomposition verdicts of the paper's
// Example 2 for the GSet s = {a,b,c}.
func TestPaperExample2(t *testing.T) {
	s := lattice.NewSet("a", "b", "c")
	sing := func(es ...string) lattice.State { return lattice.NewSet(es...) }

	s1 := []lattice.State{sing("b"), sing("c")}
	if core.IsDecomposition(s1, s) {
		t.Error("S1 joins to {b,c} ≠ s: not a decomposition")
	}
	s2 := []lattice.State{sing("a", "b"), sing("b"), sing("c")}
	if core.IsDecomposition(s2, s) {
		t.Error("S2 contains the reducible element {a,b}")
	}
	s4 := []lattice.State{sing("a"), sing("b"), sing("c")}
	if !core.IsIrredundantDecomposition(s4, s) {
		t.Error("S4 should be the irredundant join decomposition")
	}
	// Redundancy check in isolation: {a},{b},{c},{b} has a duplicate...
	red := []lattice.State{sing("a"), sing("b"), sing("c"), sing("b")}
	if core.IsIrredundant(red) {
		t.Error("decomposition with duplicate {b} should be redundant")
	}
}

// TestPNCounterDecompositionExample checks the PNCounter example closing
// Appendix C: p = {A↦⟨2,3⟩, B↦⟨5,5⟩} decomposes into four single-component
// entries.
func TestPNCounterDecompositionExample(t *testing.T) {
	p := crdt.NewPNCounter()
	p.Inc("A", 2)
	p.Dec("A", 3)
	p.Inc("B", 5)
	p.Dec("B", 5)
	d := lattice.Decompose(p)
	if len(d) != 4 {
		t.Fatalf("⇓p has %d members, want 4", len(d))
	}
	if !core.IsIrredundantDecomposition(d, p) {
		t.Error("PNCounter decomposition is not irredundant")
	}
}
