package core_test

import (
	"testing"

	"crdtsync/internal/core"
	"crdtsync/internal/lattice"
)

func TestBufferGroupAll(t *testing.T) {
	var b core.Buffer
	if g := b.GroupAll(); g != nil {
		t.Fatalf("empty buffer group = %v, want nil", g)
	}
	b.Add(lattice.NewSet("a"), "n1")
	b.Add(lattice.NewSet("b"), "n2")
	g := b.GroupAll()
	if g.Elements() != 2 {
		t.Fatalf("group = %v, want {a,b}", g)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBufferGroupExcludingImplementsBP(t *testing.T) {
	var b core.Buffer
	b.Add(lattice.NewSet("a"), "n1") // came from n1
	b.Add(lattice.NewSet("b"), "n2") // came from n2
	b.Add(lattice.NewSet("c"), "me") // local mutation

	// Sending to n1 must not back-propagate n1's own δ-group.
	g := b.GroupExcluding("n1").(*lattice.Set)
	if g.Contains("a") {
		t.Error("BP violated: δ-group sent back to its origin")
	}
	if !g.Contains("b") || !g.Contains("c") {
		t.Errorf("BP filtered too much: %v", g)
	}

	// A neighbor that contributed everything gets nothing.
	var only core.Buffer
	only.Add(lattice.NewSet("x"), "n1")
	if g := only.GroupExcluding("n1"); g != nil {
		t.Errorf("group = %v, want nil when all entries excluded", g)
	}
}

func TestBufferIgnoresBottom(t *testing.T) {
	var b core.Buffer
	b.Add(lattice.NewSet(), "n1")
	b.Add(nil, "n2")
	if b.Len() != 0 {
		t.Fatalf("bottom/nil deltas buffered: len=%d", b.Len())
	}
}

func TestBufferClear(t *testing.T) {
	var b core.Buffer
	b.Add(lattice.NewSet("a"), "n1")
	b.Clear()
	if b.Len() != 0 || b.GroupAll() != nil {
		t.Fatal("Clear did not empty the buffer")
	}
}

func TestBufferAccounting(t *testing.T) {
	var b core.Buffer
	b.Add(lattice.NewSet("ab"), "n1")
	b.Add(lattice.NewSet("c", "d"), "n2")
	if got := b.ElementCount(); got != 3 {
		t.Errorf("ElementCount = %d, want 3", got)
	}
	// 2 bytes ("ab") + 2 bytes ("c","d") + origin tags 2+2.
	if got := b.SizeBytes(); got != 2+2+2+2 {
		t.Errorf("SizeBytes = %d, want 8", got)
	}
}

func TestBufferEntriesExposed(t *testing.T) {
	var b core.Buffer
	b.Add(lattice.NewSet("a"), "n1")
	es := b.Entries()
	if len(es) != 1 || es[0].Origin != "n1" {
		t.Fatalf("Entries = %+v", es)
	}
}
