package retwis_test

import (
	"strings"
	"testing"

	"crdtsync/internal/crdt"
	"crdtsync/internal/retwis"
	"crdtsync/internal/workload"
)

func TestKeys(t *testing.T) {
	if k := retwis.FollowersKey(7); k != "flw:u000007" {
		t.Errorf("FollowersKey = %q", k)
	}
	if k := retwis.WallKey(7); !strings.HasPrefix(k, "wal:") {
		t.Errorf("WallKey = %q", k)
	}
	if k := retwis.TimelineKey(7); !strings.HasPrefix(k, "tml:") {
		t.Errorf("TimelineKey = %q", k)
	}
}

func TestObjectDatatypeSelection(t *testing.T) {
	if dt := retwis.ObjectDatatype(retwis.FollowersKey(1)); dt.Name() != "retwis-followers" {
		t.Errorf("followers datatype = %s", dt.Name())
	}
	if dt := retwis.ObjectDatatype(retwis.WallKey(1)); dt.Name() != "retwis-tweets" {
		t.Errorf("wall datatype = %s", dt.Name())
	}
	if dt := retwis.ObjectDatatype(retwis.TimelineKey(1)); dt.Name() != "retwis-tweets" {
		t.Errorf("timeline datatype = %s", dt.Name())
	}
}

func TestGenOpMix(t *testing.T) {
	gen := retwis.NewGen(100, 10, 1.0, 1)
	for r := 0; r < 200; r++ {
		gen.Ops(r, "n00", 0, 1)
	}
	s := gen.Stats()
	total := float64(s.TotalOps())
	if total == 0 {
		t.Fatal("no ops generated")
	}
	check := func(name string, n int, want float64) {
		got := float64(n) / total
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("%s share = %.3f, want ≈%.2f", name, got, want)
		}
	}
	check("follow", s.Follows, 0.15)
	check("post", s.Posts, 0.35)
	check("timeline", s.Timelines, 0.50)
}

func TestFollowOpShape(t *testing.T) {
	gen := retwis.NewGen(50, 1, 1.0, 2)
	var follow *workload.Op
	for r := 0; r < 100 && follow == nil; r++ {
		for _, op := range gen.Ops(r, "n00", 0, 1) {
			if op.Kind == workload.KindAdd {
				follow = &op
				break
			}
		}
	}
	if follow == nil {
		t.Fatal("no follow generated in 100 rounds")
	}
	if !strings.HasPrefix(follow.Key, "flw:") {
		t.Errorf("follow targets %q, want a followers object", follow.Key)
	}
	if !strings.HasPrefix(follow.Elem, "u") {
		t.Errorf("follower id %q", follow.Elem)
	}
}

func TestPostFansOutToFollowers(t *testing.T) {
	gen := retwis.NewGen(10, 200, 0.0, 3) // many ops: builds followers fast
	// Warm up so follows accumulate, then inspect a late round.
	var posts, timelineWrites int
	for r := 0; r < 30; r++ {
		for _, op := range gen.Ops(r, "n00", 0, 1) {
			if op.Kind == workload.KindPut && strings.HasPrefix(op.Key, "wal:") {
				posts++
			}
			if op.Kind == workload.KindPut && strings.HasPrefix(op.Key, "tml:") {
				timelineWrites++
			}
		}
	}
	if posts == 0 {
		t.Fatal("no posts generated")
	}
	if timelineWrites == 0 {
		t.Error("posts never fanned out to follower timelines")
	}
	s := gen.Stats()
	if got := float64(s.PostUpdates) / float64(s.Posts); got < 1 {
		t.Errorf("avg updates per post = %.2f, want ≥ 1", got)
	}
}

func TestTweetSizes(t *testing.T) {
	gen := retwis.NewGen(10, 50, 0.0, 4)
	for r := 0; r < 20; r++ {
		for _, op := range gen.Ops(r, "n00", 0, 1) {
			if op.Kind != workload.KindPut {
				continue
			}
			if strings.HasPrefix(op.Key, "wal:") {
				if len(op.Elem) != retwis.TweetIDBytes {
					t.Fatalf("tweet id size = %d, want %d", len(op.Elem), retwis.TweetIDBytes)
				}
				if len(op.Value) != retwis.ContentBytes {
					t.Fatalf("content size = %d, want %d", len(op.Value), retwis.ContentBytes)
				}
			}
			if strings.HasPrefix(op.Key, "tml:") {
				if len(op.Value) != retwis.TweetIDBytes {
					t.Fatalf("timeline value size = %d, want tweet id (%d)", len(op.Value), retwis.TweetIDBytes)
				}
			}
		}
	}
}

func TestStoreTypeDeltas(t *testing.T) {
	st := retwis.StoreType{}
	s := st.New()
	// Follow.
	d := st.Delta(s, "n00", workload.Op{Kind: workload.KindAdd, Key: retwis.FollowersKey(1), Elem: "u000002"})
	s.Merge(d)
	// Tweet.
	d = st.Delta(s, "n00", workload.Op{Kind: workload.KindPut, Key: retwis.WallKey(2), Elem: "t01", Value: "hello"})
	s.Merge(d)
	store := s.(*crdt.GMap)
	followers := store.Get(retwis.FollowersKey(1)).(*crdt.GSet)
	if !followers.Contains("u000002") {
		t.Error("follow not recorded")
	}
	wall := store.Get(retwis.WallKey(2)).(*crdt.GMap)
	if got := wall.Get("t01").(*crdt.LWWRegister).Value(); got != "hello" {
		t.Errorf("wall value = %q", got)
	}
	// Overwriting a tweet bumps the LWW version.
	d = st.Delta(s, "n01", workload.Op{Kind: workload.KindPut, Key: retwis.WallKey(2), Elem: "t01", Value: "edited"})
	s.Merge(d)
	if got := wall.Get("t01").(*crdt.LWWRegister).TS; got != 2 {
		t.Errorf("ts after rewrite = %d, want 2", got)
	}
}

func TestGenValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGen with 1 user should panic")
		}
	}()
	retwis.NewGen(1, 1, 1.0, 1)
}

func TestGenDeterminism(t *testing.T) {
	a := retwis.NewGen(100, 5, 1.0, 9)
	b := retwis.NewGen(100, 5, 1.0, 9)
	for r := 0; r < 20; r++ {
		oa := a.Ops(r, "n00", 0, 1)
		ob := b.Ops(r, "n00", 0, 1)
		if len(oa) != len(ob) {
			t.Fatalf("round %d: op counts differ", r)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("round %d op %d: %+v vs %+v", r, i, oa[i], ob[i])
			}
		}
	}
}
