// Package retwis models the Retwis Twitter-clone application of the
// paper's macro evaluation (§V-C, Table II). Every user owns three CRDT
// objects — a follower GSet, a wall GMap (tweet id → content), and a
// timeline GMap (timestamp key → tweet id) — all stored in one replicated
// keyspace (a grow-only map of objects), and the workload mixes Follow
// (15 %), Post Tweet (35 %) and Timeline reads (50 %), with object choice
// driven by a Zipf distribution whose coefficient sets contention.
//
// Substitution note: the paper runs the real Retwis on a 50-node cluster;
// here the application is modeled in-process with the same object schema,
// op mix, payload sizes (31 B tweet ids, 270 B contents), and Zipf object
// selection, so the synchronization code paths exercised are identical.
package retwis

import (
	"fmt"
	"math/rand"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/workload"
)

// TweetIDBytes is the tweet identifier size reported by the paper (31 B).
const TweetIDBytes = 31

// ContentBytes is the tweet content size reported by the paper (270 B).
const ContentBytes = 270

// Object key prefixes.
const (
	followersPrefix = "flw:"
	wallPrefix      = "wal:"
	timelinePrefix  = "tml:"
)

// FollowersKey returns the object key of user u's follower set.
func FollowersKey(u int) string { return fmt.Sprintf("%su%06d", followersPrefix, u) }

// WallKey returns the object key of user u's wall.
func WallKey(u int) string { return fmt.Sprintf("%su%06d", wallPrefix, u) }

// TimelineKey returns the object key of user u's timeline.
func TimelineKey(u int) string { return fmt.Sprintf("%su%06d", timelinePrefix, u) }

// StoreType adapts the whole Retwis keyspace — a grow-only map from object
// keys to object states — to the protocol engines. Object kinds by key
// prefix: follower sets are GSets (KindAdd ops); walls and timelines are
// maps of LWW registers (KindPut ops with Elem as the inner key).
type StoreType struct{}

// Name implements workload.Datatype.
func (StoreType) Name() string { return "retwis" }

// New implements workload.Datatype.
func (StoreType) New() lattice.State { return crdt.NewGMap() }

// Delta implements workload.Datatype, producing {objectKey ↦ innerDelta}.
func (StoreType) Delta(s lattice.State, replica string, op workload.Op) lattice.State {
	store := s.(*crdt.GMap)
	switch op.Kind {
	case workload.KindAdd: // follow: add Elem to the follower GSet at Key
		var inner *crdt.GSet
		if cur := store.Get(op.Key); cur != nil {
			inner = cur.(*crdt.GSet)
		} else {
			inner = crdt.NewGSet()
		}
		return lattice.NewMapEntry(op.Key, inner.AddDelta(op.Elem))
	case workload.KindPut: // tweet write: wall/timeline LWW put Elem → Value
		var inner *crdt.GMap
		if cur := store.Get(op.Key); cur != nil {
			inner = cur.(*crdt.GMap)
		} else {
			inner = crdt.NewGMap()
		}
		var ts uint64 = 1
		if reg := inner.Get(op.Elem); reg != nil {
			ts = reg.(*crdt.LWWRegister).TS + 1
		}
		entry := lattice.NewMapEntry(op.Elem, &crdt.LWWRegister{TS: ts, Writer: replica, Val: op.Value})
		return lattice.NewMapEntry(op.Key, entry)
	default:
		panic("retwis: unsupported op kind")
	}
}

// OpBytes implements workload.Datatype.
func (StoreType) OpBytes(op workload.Op) int {
	return len(op.Key) + len(op.Elem) + len(op.Value)
}

// followerSetType is the per-object datatype of follower sets: a GSet
// receiving KindAdd ops.
type followerSetType struct{}

func (followerSetType) Name() string               { return "retwis-followers" }
func (followerSetType) New() lattice.State         { return crdt.NewGSet() }
func (followerSetType) OpBytes(op workload.Op) int { return len(op.Elem) }

func (followerSetType) Delta(s lattice.State, _ string, op workload.Op) lattice.State {
	if op.Kind != workload.KindAdd {
		panic("retwis: follower set supports only KindAdd")
	}
	return s.(*crdt.GSet).AddDelta(op.Elem)
}

// tweetMapType is the per-object datatype of walls and timelines: a
// grow-only map of LWW registers receiving KindPut ops (Elem is the inner
// key, Value the payload).
type tweetMapType struct{}

func (tweetMapType) Name() string       { return "retwis-tweets" }
func (tweetMapType) New() lattice.State { return crdt.NewGMap() }
func (tweetMapType) OpBytes(op workload.Op) int {
	return len(op.Elem) + len(op.Value)
}

func (tweetMapType) Delta(s lattice.State, replica string, op workload.Op) lattice.State {
	if op.Kind != workload.KindPut {
		panic("retwis: tweet map supports only KindPut")
	}
	m := s.(*crdt.GMap)
	var ts uint64 = 1
	if reg := m.Get(op.Elem); reg != nil {
		ts = reg.(*crdt.LWWRegister).TS + 1
	}
	return lattice.NewMapEntry(op.Elem, &crdt.LWWRegister{TS: ts, Writer: replica, Val: op.Value})
}

// ObjectDatatype selects the per-object datatype from an object key, for
// use with protocol.NewPerObject: follower sets are GSets; walls and
// timelines are maps of LWW registers.
func ObjectDatatype(key string) workload.Datatype {
	if len(key) >= len(followersPrefix) && key[:len(followersPrefix)] == followersPrefix {
		return followerSetType{}
	}
	return tweetMapType{}
}

// Stats counts the generated workload, reproducing Table II.
type Stats struct {
	Follows   int
	Posts     int
	Timelines int
	// Updates per operation class.
	FollowUpdates int
	PostUpdates   int
}

// TotalOps returns the number of user actions generated.
func (s Stats) TotalOps() int { return s.Follows + s.Posts + s.Timelines }

// Gen generates the Retwis workload. It keeps a model of the social graph
// (who follows whom) so that Post Tweet can fan out to follower timelines,
// mirroring the application logic the paper runs against the real store.
type Gen struct {
	// Users is the number of users (the paper uses 10 000).
	Users int
	// OpsPerRound is the number of user actions each node performs per
	// round.
	OpsPerRound int

	zipf      *workload.Zipf
	rng       *rand.Rand
	followers map[int][]int
	isFollow  map[[2]int]bool
	tweets    int
	content   string
	stats     Stats
}

// NewGen returns a generator over users with the given Zipf coefficient.
func NewGen(users, opsPerRound int, theta float64, seed int64) *Gen {
	if users < 2 {
		panic("retwis: NewGen requires at least 2 users")
	}
	content := make([]byte, ContentBytes)
	for i := range content {
		content[i] = 'a' + byte(i%26)
	}
	return &Gen{
		Users:       users,
		OpsPerRound: opsPerRound,
		zipf:        workload.NewZipf(users, theta, seed),
		rng:         rand.New(rand.NewSource(seed + 1)),
		followers:   make(map[int][]int),
		isFollow:    make(map[[2]int]bool),
		content:     string(content),
	}
}

// Stats returns the workload counts generated so far.
func (g *Gen) Stats() Stats { return g.stats }

// Ops implements workload.Generator: OpsPerRound user actions drawn from
// the 15/35/50 mix of Table II.
func (g *Gen) Ops(_ int, _ string, _, _ int) []workload.Op {
	var ops []workload.Op
	for i := 0; i < g.OpsPerRound; i++ {
		switch p := g.rng.Float64(); {
		case p < 0.15:
			ops = append(ops, g.follow()...)
		case p < 0.50:
			ops = append(ops, g.post()...)
		default:
			g.stats.Timelines++ // timeline read: zero updates
		}
	}
	return ops
}

// follow makes a Zipf-chosen user follow another (1 CRDT update).
func (g *Gen) follow() []workload.Op {
	g.stats.Follows++
	g.stats.FollowUpdates++
	a := g.zipf.Next()
	b := g.zipf.Next()
	if a == b {
		b = (b + 1) % g.Users
	}
	key := [2]int{a, b}
	if !g.isFollow[key] {
		g.isFollow[key] = true
		g.followers[b] = append(g.followers[b], a)
	}
	return []workload.Op{{
		Kind: workload.KindAdd,
		Key:  FollowersKey(b),
		Elem: fmt.Sprintf("u%06d", a),
	}}
}

// post makes a Zipf-chosen user tweet: one wall write plus one timeline
// write per follower (1 + #Followers updates, Table II).
func (g *Gen) post() []workload.Op {
	g.stats.Posts++
	author := g.zipf.Next()
	g.tweets++
	tweetID := fmt.Sprintf("t%0*d", TweetIDBytes-1, g.tweets)
	ops := []workload.Op{{
		Kind:  workload.KindPut,
		Key:   WallKey(author),
		Elem:  tweetID,
		Value: g.content,
	}}
	tsKey := fmt.Sprintf("ts%012d", g.tweets)
	for _, f := range g.followers[author] {
		ops = append(ops, workload.Op{
			Kind:  workload.KindPut,
			Key:   TimelineKey(f),
			Elem:  tsKey,
			Value: tweetID,
		})
	}
	g.stats.PostUpdates += len(ops)
	return ops
}
