package transport_test

import (
	"fmt"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// TestStorePiggybackedDigestsReplaceHeartbeats pins the frame economics
// of digest piggybacking: while a store has data to ship, every digest
// advertisement rides a data frame (PiggybackedDigests) and no standalone
// heartbeat goes out; once the store falls idle, the advertisement falls
// back to the standalone DigestMsg heartbeat (DigestFrames). Before
// piggybacking, the busy phase paid one extra frame per digest tick.
func TestStorePiggybackedDigestsReplaceHeartbeats(t *testing.T) {
	stores, err := transport.LoopbackCluster(2, transport.StoreConfig{
		ID:          "s",
		Shards:      8,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     gcounters,
		SyncEvery:   time.Hour, // ticks driven manually
		DigestEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		st := st
		t.Cleanup(func() { st.Close() })
	}

	// Busy phase: every tick carries fresh data, so every digest
	// advertisement piggybacks and no standalone heartbeat is sent.
	const busyTicks = 10
	for i := 0; i < busyTicks; i++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", i), N: 1})
		stores[0].SyncNow()
	}
	busy := stores[0].Stats()
	if busy.PiggybackedDigests != busyTicks {
		t.Errorf("busy phase piggybacked %d digests, want %d (one per tick)", busy.PiggybackedDigests, busyTicks)
	}
	if busy.DigestFrames != 0 {
		t.Errorf("busy phase sent %d standalone digest frames, want 0: piggybacking should replace them", busy.DigestFrames)
	}
	waitStoresConverged(t, stores, busyTicks, 10*time.Second)

	// Idle phase: nothing to ship, so the advertisement falls back to the
	// standalone heartbeat — exactly one frame per tick, nothing else.
	// (One dirty-revisit tick may still flush residual data first.)
	stores[0].SyncNow()
	base := stores[0].Stats()
	const idleTicks = 10
	for i := 0; i < idleTicks; i++ {
		stores[0].SyncNow()
	}
	idle := stores[0].Stats()
	if got := idle.DigestFrames - base.DigestFrames; got != idleTicks {
		t.Errorf("idle phase sent %d standalone heartbeats, want %d", got, idleTicks)
	}
	if idle.PiggybackedDigests != base.PiggybackedDigests {
		t.Errorf("idle phase piggybacked %d digests, want 0", idle.PiggybackedDigests-base.PiggybackedDigests)
	}
	if got := idle.Frames - base.Frames; got != idleTicks {
		t.Errorf("idle phase sent %d frames, want %d heartbeats only", got, idleTicks)
	}
}

// TestStorePiggybackedDigestRepairsDivergence proves the piggybacked
// vector is a full citizen of the anti-entropy protocol: a receiver
// processes it exactly like a standalone advertisement, requesting and
// repairing diverged shards — here without a single standalone
// advertisement ever being sent by the diverged store.
func TestStorePiggybackedDigestRepairsDivergence(t *testing.T) {
	const keys = 20
	fault := transport.NewFault(17)
	fault.SetDropRate(1) // black hole while loading
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:      8,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     gcounters,
		SyncEvery:   time.Hour, // ticks driven manually
		DigestEvery: 1,
	}, func(i int, id string, cfg *transport.StoreConfig) {
		if id == "s-00" {
			cfg.Dial = fault.Dialer(nil)
		}
	})
	s0, s1 := stores[0], stores[1]

	// Load into the black hole: the plain delta engine clears its
	// δ-buffer after sending, so s1 can only ever learn these keys
	// through digest repair.
	for k := 0; k < keys; k++ {
		s0.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
	}
	s0.SyncNow()
	s0.SyncNow()
	waitQueuesDrained(t, s0, 10*time.Second)
	if got := s1.NumKeys(); got != 0 {
		t.Fatalf("black hole leaked: s1 holds %d keys", got)
	}

	// Heal, then make one fresh update: the single data frame it produces
	// carries the digest vector, and that piggybacked advertisement alone
	// must drive the full repair.
	fault.SetDropRate(0)
	base := s0.Stats()
	s0.Update(workload.Op{Kind: workload.KindInc, Key: "fresh", N: 1})
	s0.SyncNow()
	if err := transport.WaitConverged(stores, keys+1, 30*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	after := s0.Stats()
	if got := after.DigestFrames - base.DigestFrames; got != 0 {
		t.Errorf("repair used %d standalone advertisements, want 0 (piggyback only)", got)
	}
	if got := after.PiggybackedDigests - base.PiggybackedDigests; got == 0 {
		t.Error("healed tick sent no piggybacked digest")
	}
	if got := after.RepairShards - base.RepairShards; got == 0 {
		t.Error("piggybacked advertisement triggered no shard repair")
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		if v := s1.Get(key).(*crdt.GCounter).Value(); v != 1 {
			t.Errorf("%s on s-01 = %d, want 1", key, v)
		}
	}
}
