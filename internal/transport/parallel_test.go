package transport

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// newTickStore builds a store with the given pool width and two
// unreachable peers, so engines have neighbors to emit to but nothing
// ever arrives from the wire; both background loops are pushed out to
// an hour so the tests drive every tick explicitly.
func newTickStore(t testing.TB, workers int, factory protocol.Factory) *Store {
	t.Helper()
	s, err := StartStore(StoreConfig{
		ID:          "n0",
		ListenAddr:  "127.0.0.1:0",
		Peers:       map[string]string{"p1": "127.0.0.1:1", "p2": "127.0.0.1:1"},
		Nodes:       []string{"n0", "p1", "p2"},
		Shards:      64,
		Factory:     factory,
		ObjType:     func(string) workload.Datatype { return workload.GSetType{} },
		SyncEvery:   time.Hour,
		SyncWorkers: workers,
	})
	if err != nil {
		t.Fatalf("StartStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// newPoolStore is a peerless store for pool-stage tests: no write
// pipelines exist, so nothing allocates in the background while a test
// measures.
func newPoolStore(t testing.TB, workers, shards int, snapDir string) *Store {
	t.Helper()
	cfg := StoreConfig{
		ID:          "n0",
		ListenAddr:  "127.0.0.1:0",
		Shards:      shards,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     func(string) workload.Datatype { return workload.GSetType{} },
		SyncEvery:   time.Hour,
		SyncWorkers: workers,
	}
	if snapDir != "" {
		cfg.SnapshotDir = snapDir
		cfg.SnapshotEvery = time.Hour
	}
	s, err := StartStore(cfg)
	if err != nil {
		t.Fatalf("StartStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestParallelTickFramesByteIdentical is the tentpole's determinism
// pin: a pool tick captures emissions per shard (pre-encoding each item
// on the worker) and merges in ascending shard order, so the packed
// frame bytes to every destination must equal a serial tick's exactly —
// including a pure-retransmission round where the acked engines re-emit
// without new updates.
func TestParallelTickFramesByteIdentical(t *testing.T) {
	serial := newTickStore(t, 1, protocol.NewDeltaAcked(true, true))
	parallel := newTickStore(t, 4, protocol.NewDeltaAcked(true, true))
	limit := maxMsgFor(maxFrameBytes, "n0")
	for round := 0; round < 3; round++ {
		if round < 2 { // round 2 ticks with retransmissions only
			for k := 0; k < 300; k++ {
				op := workload.Add(fmt.Sprintf("key-%04d", k), fmt.Sprintf("e%d", round))
				serial.Update(op)
				parallel.Update(op)
			}
		}
		bs, bp := newOutBatch(), newOutBatch()
		if ts := serial.collectTick(bs); ts != nil {
			t.Fatalf("round %d: serial store took the parallel tick path", round)
		}
		tsp := parallel.collectTick(bp)
		if tsp == nil {
			t.Fatalf("round %d: 4-worker store took the serial tick path", round)
		}
		if len(bs.order) == 0 {
			t.Fatalf("round %d produced no emissions", round)
		}
		if !slices.Equal(bs.order, bp.order) {
			t.Fatalf("round %d: destination order %v (serial) vs %v (parallel)", round, bs.order, bp.order)
		}
		for _, to := range bs.order {
			rs, err := packFrames(bs.perDest[to], bs.perEnc[to], nil, limit)
			if err != nil {
				t.Fatalf("pack serial: %v", err)
			}
			rp, err := packFrames(bp.perDest[to], bp.perEnc[to], nil, limit)
			if err != nil {
				t.Fatalf("pack parallel: %v", err)
			}
			if len(rs.frames) != len(rp.frames) {
				t.Fatalf("round %d to %s: %d frames (serial) vs %d (parallel)",
					round, to, len(rs.frames), len(rp.frames))
			}
			for i := range rs.frames {
				if !bytes.Equal(rs.frames[i].data, rp.frames[i].data) {
					t.Fatalf("round %d to %s: frame %d bytes differ between serial and parallel ticks",
						round, to, i)
				}
			}
		}
		parallel.releaseTickScratch(tsp)
	}
	vs, vp := serial.shardDigests(), parallel.shardDigests()
	equal := slices.Equal(vs, vp)
	serial.putDigestVec(vs)
	parallel.putDigestVec(vp)
	if !equal {
		t.Fatal("digest vectors differ between serial and parallel stores")
	}
}

// TestParallelStagesMatchSerial loads identical content into a serial
// and a 4-worker store and checks every pooled read-side stage returns
// the same result: key listing, memory accounting, the root digest, the
// Merkle leaf vector (one shard with enough keys to cross the parallel
// threshold), and the snapshot files on disk.
func TestParallelStagesMatchSerial(t *testing.T) {
	dirS, dirP := t.TempDir(), t.TempDir()
	serial := newPoolStore(t, 1, 1, dirS)
	parallel := newPoolStore(t, 4, 1, dirP)
	const keys = leafParallelMinKeys + 1000
	for k := 0; k < keys; k++ {
		op := workload.Add(fmt.Sprintf("key-%05d", k), "e")
		serial.Update(op)
		parallel.Update(op)
	}
	if got, want := parallel.NumKeys(), serial.NumKeys(); got != want {
		t.Fatalf("NumKeys: %d (parallel) vs %d (serial)", got, want)
	}
	if !slices.Equal(parallel.Keys(), serial.Keys()) {
		t.Fatal("Keys() differs between serial and parallel stores")
	}
	if got, want := parallel.Memory(), serial.Memory(); got != want {
		t.Fatalf("Memory: %+v (parallel) vs %+v (serial)", got, want)
	}
	if got, want := parallel.Digest(), serial.Digest(); got != want {
		t.Fatalf("Digest: %#x (parallel) vs %#x (serial)", got, want)
	}
	leafOf := func(s *Store) []uint64 {
		sh := s.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		s.ensureLeaves(sh)
		return slices.Clone(sh.leaf)
	}
	if !slices.Equal(leafOf(parallel), leafOf(serial)) {
		t.Fatal("Merkle leaf vectors differ between serial and parallel recompute")
	}
	if err := serial.SnapshotNow(); err != nil {
		t.Fatalf("serial SnapshotNow: %v", err)
	}
	if err := parallel.SnapshotNow(); err != nil {
		t.Fatalf("parallel SnapshotNow: %v", err)
	}
	ds, err := os.ReadFile(filepath.Join(dirS, "shard-0000.snap"))
	if err != nil {
		t.Fatalf("read serial snapshot: %v", err)
	}
	dp, err := os.ReadFile(filepath.Join(dirP, "shard-0000.snap"))
	if err != nil {
		t.Fatalf("read parallel snapshot: %v", err)
	}
	if !bytes.Equal(ds, dp) {
		t.Fatal("snapshot bytes differ between serial and parallel encode")
	}
}

// TestRunShardStageCoversAllShards pins the claim loop's contract:
// every shard index is visited exactly once per stage, and the claims
// are accounted against the workers that made them.
func TestRunShardStageCoversAllShards(t *testing.T) {
	s := newPoolStore(t, 4, 64, "")
	before := uint64(0)
	for _, c := range s.Stats().SyncWorkerShards {
		before += c
	}
	var mu sync.Mutex
	counts := make([]int, len(s.shards))
	s.runShardStage(func(_, i int) {
		mu.Lock()
		counts[i]++
		mu.Unlock()
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("shard %d visited %d times, want 1", i, c)
		}
	}
	st := s.Stats()
	if st.SyncWorkers != 4 {
		t.Fatalf("Stats().SyncWorkers = %d, want 4", st.SyncWorkers)
	}
	after := uint64(0)
	for _, c := range st.SyncWorkerShards {
		after += c
	}
	if after-before != uint64(len(s.shards)) {
		t.Fatalf("claim accounting: %d shards recorded, want %d", after-before, len(s.shards))
	}
}

// TestCleanDigestPathNoAllocs pins the idle-store digest tick at zero
// allocations: with every shard's cached digest valid, shardDigests is
// a lock-free fill of a free-listed vector.
func TestCleanDigestPathNoAllocs(t *testing.T) {
	s := newPoolStore(t, 4, 64, "")
	for k := 0; k < 512; k++ {
		s.Update(workload.Add(fmt.Sprintf("key-%04d", k), "e"))
	}
	s.putDigestVec(s.shardDigests()) // compute caches, seed the free list
	allocs := testing.AllocsPerRun(100, func() {
		s.putDigestVec(s.shardDigests())
	})
	if allocs != 0 {
		t.Fatalf("clean-store digest path allocates %.1f per run, want 0", allocs)
	}
}

// TestResolveSyncWorkers pins the pool-width precedence: explicit
// config beats the env knob beats GOMAXPROCS, and a malformed knob is
// ignored.
func TestResolveSyncWorkers(t *testing.T) {
	t.Setenv(syncWorkersEnv, "3")
	if got := resolveSyncWorkers(0); got != 3 {
		t.Fatalf("env knob: got %d, want 3", got)
	}
	if got := resolveSyncWorkers(2); got != 2 {
		t.Fatalf("explicit config: got %d, want 2", got)
	}
	t.Setenv(syncWorkersEnv, "bogus")
	if got, want := resolveSyncWorkers(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("malformed knob: got %d, want GOMAXPROCS (%d)", got, want)
	}
}
