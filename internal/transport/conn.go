package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"crdtsync/internal/codec"
	"crdtsync/internal/protocol"
)

// DialFunc establishes the outbound connection to one peer: id is the
// peer's identifier, addr its listen address. Fault-injection harnesses
// wrap the default TCP dialer through StoreConfig.Dial to drop, duplicate
// or delay frames at the connection layer.
type DialFunc func(id, addr string) (net.Conn, error)

// defaultDial is the production dialer: plain TCP with a bounded timeout.
func defaultDial(_, addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// peerNet owns the connection plumbing shared by Node and Store: the
// listener, outbound connections (dialed lazily, dropped on write error),
// accepted inbound connections, and the accept/read loops that decode
// frames into protocol messages. Owners supply a deliver callback and keep
// their own synchronization loops.
type peerNet struct {
	id       string
	peers    map[string]string
	dial     DialFunc
	ln       net.Listener
	mu       sync.Mutex // guards conns and accepted
	conns    map[string]net.Conn
	accepted map[net.Conn]struct{}
	stopping chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newPeerNet(id string, peers map[string]string, ln net.Listener, dial DialFunc) *peerNet {
	if dial == nil {
		dial = defaultDial
	}
	return &peerNet{
		id:       id,
		peers:    peers,
		dial:     dial,
		ln:       ln,
		conns:    make(map[string]net.Conn),
		accepted: make(map[net.Conn]struct{}),
		stopping: make(chan struct{}),
	}
}

// start launches the accept loop; deliver runs for every decoded inbound
// message, on the connection's read goroutine.
func (p *peerNet) start(deliver func(from string, m protocol.Msg)) {
	p.wg.Add(1)
	go p.acceptLoop(deliver)
}

func (p *peerNet) addr() string { return p.ln.Addr().String() }

// errClosed reports a transmit attempted after close.
var errClosed = errors.New("transport: peer network closed")

// transmit writes one frame, dialing the peer if needed. On write failure
// the connection is dropped and the error returned; callers decide whether
// the protocol resends (acked engines) or the data is lost.
func (p *peerNet) transmit(to string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.stopping:
		// A sync tick racing close() must not dial fresh connections
		// into the already-emptied conn map: they would never be closed.
		return errClosed
	default:
	}
	conn, err := p.dialLocked(to)
	if err != nil {
		return err
	}
	if err := writeFrame(conn, p.id, data); err != nil {
		conn.Close()
		delete(p.conns, to)
		return err
	}
	return nil
}

// dialLocked returns (establishing if needed) the connection to a peer;
// callers hold p.mu.
func (p *peerNet) dialLocked(to string) (net.Conn, error) {
	if c, ok := p.conns[to]; ok {
		return c, nil
	}
	addr, ok := p.peers[to]
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %s", to)
	}
	c, err := p.dial(to, addr)
	if err != nil {
		return nil, err
	}
	p.conns[to] = c
	return c, nil
}

func (p *peerNet) acceptLoop(deliver func(from string, m protocol.Msg)) {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.stopping:
				return
			default:
				continue
			}
		}
		p.mu.Lock()
		p.accepted[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn, deliver)
	}
}

func (p *peerNet) readLoop(conn net.Conn, deliver func(from string, m protocol.Msg)) {
	defer p.wg.Done()
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.accepted, conn)
		p.mu.Unlock()
	}()
	for {
		from, data, err := readFrame(conn)
		if err != nil {
			return
		}
		msg, _, err := codec.DecodeMsg(data)
		if err != nil {
			return // corrupt peer; drop the connection
		}
		deliver(from, msg)
	}
}

// close stops the accept loop and closes every connection. Accepted
// connections park their readLoops in blocking reads; closing them here
// is what lets wg.Wait return. Idempotent.
func (p *peerNet) close() error {
	p.stopOnce.Do(func() { close(p.stopping) })
	err := p.ln.Close()
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = make(map[string]net.Conn)
	for c := range p.accepted {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}
