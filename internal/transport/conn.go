package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"crdtsync/internal/codec"
)

// DialFunc establishes the outbound connection to one peer: id is the
// peer's identifier, addr its listen address. Fault-injection harnesses
// wrap the default TCP dialer through StoreConfig.Dial to drop, duplicate
// or delay frames at the connection layer.
type DialFunc func(id, addr string) (net.Conn, error)

// defaultDial is the production dialer: plain TCP with a bounded timeout.
func defaultDial(_, addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// Write-pipeline tuning. reconnectBase/reconnectMax bound the capped
// exponential backoff between connection attempts to a down peer;
// drainTimeout bounds how long close waits for the per-peer queues to
// flush before force-closing connections and abandoning what remains.
const (
	defaultPeerQueueLen   = 128
	defaultPeerQueueBytes = 8 << 20
	reconnectBase         = 10 * time.Millisecond
	reconnectMax          = 2 * time.Second
	drainTimeout          = time.Second
)

// queueConfig bounds one peer's outbound queue. Frames vary ~100x in
// size (a digest heartbeat vs a full repair batch), so the queue is
// budgeted in bytes as well as frames: eviction fires when either bound
// is crossed. maxMsg, when positive, lets the writer coalesce queued
// frames to the same peer into one frame up to that size on drain.
type queueConfig struct {
	frames int // 0 = defaultPeerQueueLen
	bytes  int // 0 = defaultPeerQueueBytes
	maxMsg int // 0 = no drain coalescing
}

func (q queueConfig) withDefaults() queueConfig {
	if q.frames <= 0 {
		q.frames = defaultPeerQueueLen
	}
	if q.bytes <= 0 {
		q.bytes = defaultPeerQueueBytes
	}
	return q
}

// Per-peer pipeline connection states, reported by PeerStats.State.
const (
	// PeerConnecting: no usable connection yet — either nothing has been
	// sent to this peer or a dial is in progress.
	PeerConnecting = "connecting"
	// PeerUp: the last dial succeeded and no write has failed since.
	PeerUp = "up"
	// PeerBackoff: the last dial or write failed; the writer is waiting
	// out the capped exponential backoff before the next attempt.
	PeerBackoff = "backoff"
)

// PeerStats counts one outbound peer pipeline's work. Counters are
// cumulative since the store started; State, Queued and QueuedBytes are
// a snapshot.
type PeerStats struct {
	// Enqueued counts frames accepted into this peer's bounded queue;
	// EnqueuedBytes their encoded payload bytes.
	Enqueued      int
	EnqueuedBytes int
	// Dropped counts frames lost on the way to this peer: evicted by the
	// drop-oldest overflow policy while the queue exceeded its frame or
	// byte budget, or abandoned after a failed connection attempt or
	// write error. DroppedBytes is the same ledger in bytes. Acked
	// engines retransmit the lost deltas and digest anti-entropy repairs
	// the rest; under the plain delta engine with digests disabled these
	// frames are gone for good.
	Dropped      int
	DroppedBytes int
	// Coalesced counts queued frames merged into an earlier frame to the
	// same peer on drain, incremented only once the merged write lands:
	// their bytes reached the wire minus the saved per-frame headers —
	// only their frame identity disappeared. A coalition whose write
	// fails counts in Dropped instead.
	Coalesced int
	// Reconnects counts successful connection establishments after a
	// failure (the first connect is not a reconnect).
	Reconnects int
	// State is the pipeline's connection state: PeerUp, PeerConnecting
	// or PeerBackoff. Cleared by StoreStats.Add — states from different
	// stores are not additive.
	State string
	// Queued is the queue depth at snapshot time, in frames and bytes.
	Queued      int
	QueuedBytes int
}

// peerConn is one peer's outbound pipeline: a bounded frame queue feeding
// a dedicated writer goroutine that owns the connection, dials it lazily,
// and re-establishes it with capped exponential backoff after failures.
// transmit is a non-blocking enqueue, so a stalled or dead peer can never
// delay frames to healthy peers; when the queue exceeds its frame or byte
// budget the oldest frame is evicted (newest data wins — it subsumes what
// an eventual digest repair would reship anyway).
type peerConn struct {
	id   string
	addr string
	p    *peerNet

	mu         sync.Mutex
	cond       *sync.Cond // signals queue growth and drain start
	queue      [][]byte
	qbytes     int // sum of queued frame lengths
	qcfg       queueConfig
	closed     bool // no further enqueues; writer exits once drained
	conn       net.Conn
	state      string
	backoff    time.Duration
	hadFailure bool // a dial/write failed since the last success
	stats      PeerStats
}

// enqueue appends one frame, evicting oldest queued frames while either
// the frame-count cap or the byte budget is exceeded — except the frame
// just enqueued, so one frame above the byte budget still ships instead
// of wedging the pipeline. It never blocks: overflow is data loss for the
// engines or digest anti-entropy to repair, not backpressure onto the
// sync tick.
func (pc *peerConn) enqueue(data []byte) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return
	}
	pc.stats.Enqueued++
	pc.stats.EnqueuedBytes += len(data)
	pc.queue = append(pc.queue, data)
	pc.qbytes += len(data)
	for len(pc.queue) > 1 && (len(pc.queue) > pc.qcfg.frames || pc.qbytes > pc.qcfg.bytes) {
		old := pc.queue[0]
		pc.queue[0] = nil
		pc.queue = pc.queue[1:]
		pc.qbytes -= len(old)
		pc.stats.Dropped++
		pc.stats.DroppedBytes += len(old)
	}
	pc.cond.Signal()
}

// run is the writer goroutine: it drains the queue — coalescing queued
// frames to this peer into one when they fit the cap — until the pipeline
// is closed and empty, or hard-stopped.
func (pc *peerConn) run() {
	defer pc.p.writers.Done()
	for {
		frame, ok := pc.next()
		if !ok {
			pc.mu.Lock()
			if pc.conn != nil {
				pc.conn.Close()
				pc.conn = nil
			}
			pc.mu.Unlock()
			return
		}
		batch, bytes := pc.coalesceBatch(frame)
		if len(batch) == 1 {
			pc.write(frame, 1, len(frame))
			continue
		}
		if merged, ok := codec.MergeSharded(batch); ok {
			// Coalesced counts only after the write lands: a merged
			// coalition that dies on the way out is Dropped, not both.
			if pc.write(merged, len(batch), bytes) {
				pc.addCoalesced(len(batch) - 1)
			}
			continue
		}
		// Unreachable — every batch member passed CanMergeSharded, the
		// exact predicate MergeSharded applies — but a refusal must ship
		// the popped frames individually, never lose them.
		for _, f := range batch {
			pc.write(f, 1, len(f))
		}
	}
}

// next blocks until a frame is available or the pipeline is done.
func (pc *peerConn) next() ([]byte, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for len(pc.queue) == 0 && !pc.closed {
		pc.cond.Wait()
	}
	if len(pc.queue) == 0 || pc.hardStopped() {
		return nil, false
	}
	f := pc.queue[0]
	pc.queue[0] = nil
	pc.queue = pc.queue[1:]
	pc.qbytes -= len(f)
	return f, true
}

// coalesceBatch pops the run of queued frames that can merge with frame —
// plain sharded data frames whose summed length stays within the frame
// cap — so the caller can splice them into one frame (one header and one
// syscall instead of k). Digest-carrying frames never merge. The actual
// byte splicing happens outside the queue lock: merging is O(bytes) work
// that must not delay a concurrent transmit's enqueue. Coalescing only
// happens on an established connection — against a down peer each attempt
// must keep costing exactly one queued frame, not a whole merged
// coalition per failed dial. bytes is the enqueued length the batch
// represents: a failed write drops the whole coalition from the
// accounting, not one frame of it.
func (pc *peerConn) coalesceBatch(frame []byte) (batch [][]byte, bytes int) {
	batch, bytes = [][]byte{frame}, len(frame)
	if pc.qcfg.maxMsg <= 0 || !codec.CanMergeSharded(frame) {
		return batch, bytes
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		return batch, bytes
	}
	total := len(frame)
	for len(pc.queue) > 0 && total+len(pc.queue[0]) <= pc.qcfg.maxMsg &&
		codec.CanMergeSharded(pc.queue[0]) {
		next := pc.queue[0]
		pc.queue[0] = nil
		pc.queue = pc.queue[1:]
		pc.qbytes -= len(next)
		batch = append(batch, next)
		total += len(next)
		bytes += len(next)
	}
	return batch, bytes
}

func (pc *peerConn) addCoalesced(n int) {
	pc.mu.Lock()
	pc.stats.Coalesced += n
	pc.mu.Unlock()
}

func (pc *peerConn) hardStopped() bool {
	select {
	case <-pc.p.hardStop:
		return true
	default:
		return false
	}
}

// write ships one (possibly coalesced) frame, establishing the connection
// if needed, and reports whether it landed. A failed dial or write drops
// the frame (counted per peer, same as overflow — frames and bytes name
// the enqueued frames it represents) and backs off before the next
// attempt, so a down peer costs one queued frame per attempt instead of
// wedging the writer on the oldest frame while drop-oldest evicts
// everything newer behind it.
func (pc *peerConn) write(frame []byte, frames, bytes int) bool {
	conn := pc.ensureConn()
	if conn == nil {
		pc.dropFrames(frames, bytes)
		return false
	}
	if err := writeFrame(conn, pc.p.id, frame); err != nil {
		pc.disconnect(conn)
		pc.dropFrames(frames, bytes)
		pc.sleepBackoff()
		return false
	}
	pc.markHealthy()
	return true
}

// markHealthy resets the backoff after a successful write — not after a
// successful dial, or a peer whose listener accepts connections that then
// fail every write would redial at the base interval forever and count a
// "reconnect" per attempt.
func (pc *peerConn) markHealthy() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.backoff = 0
	if pc.hadFailure {
		pc.stats.Reconnects++
		pc.hadFailure = false
	}
}

// ensureConn returns the live connection, dialing if there is none. On
// dial failure it sleeps the backoff and returns nil.
func (pc *peerConn) ensureConn() net.Conn {
	pc.mu.Lock()
	if pc.conn != nil {
		c := pc.conn
		pc.mu.Unlock()
		return c
	}
	pc.state = PeerConnecting
	pc.mu.Unlock()
	c, err := pc.p.dial(pc.id, pc.addr)
	if err != nil {
		pc.sleepBackoff()
		return nil
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.hardStopped() {
		c.Close()
		return nil
	}
	pc.conn = c
	pc.state = PeerUp
	return c
}

// disconnect tears the connection down after a write error.
func (pc *peerConn) disconnect(conn net.Conn) {
	conn.Close()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == conn {
		pc.conn = nil
	}
}

func (pc *peerConn) dropFrames(frames, bytes int) {
	pc.mu.Lock()
	pc.stats.Dropped += frames
	pc.stats.DroppedBytes += bytes
	pc.mu.Unlock()
}

// sleepBackoff waits out the capped exponential backoff after a failure,
// returning early on hard stop. The queue keeps accepting (and, when
// full, drop-oldest-evicting) frames throughout.
func (pc *peerConn) sleepBackoff() {
	pc.mu.Lock()
	if pc.backoff == 0 {
		pc.backoff = reconnectBase
	} else if pc.backoff < reconnectMax {
		pc.backoff *= 2
		if pc.backoff > reconnectMax {
			pc.backoff = reconnectMax
		}
	}
	d := pc.backoff
	pc.state = PeerBackoff
	pc.hadFailure = true
	pc.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-pc.p.hardStop:
	}
}

// snapshot returns the pipeline's counters plus current state and depth.
func (pc *peerConn) snapshot() PeerStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	s := pc.stats
	s.State = pc.state
	s.Queued = len(pc.queue)
	s.QueuedBytes = pc.qbytes
	return s
}

// peerNet owns the connection plumbing shared by Node and Store: the
// listener, one outbound write pipeline per peer, accepted inbound
// connections, and the accept/read loops that decode frames into protocol
// messages. Owners supply a deliver callback and keep their own
// synchronization loops.
type peerNet struct {
	id       string
	dial     DialFunc
	ln       net.Listener
	peers    map[string]*peerConn // fixed at construction, read-only after
	mu       sync.Mutex           // guards accepted
	accepted map[net.Conn]struct{}
	stopping chan struct{}
	hardStop chan struct{}
	stopOnce sync.Once
	hardOnce sync.Once
	wg       sync.WaitGroup // accept + read loops
	writers  sync.WaitGroup // peerConn writer goroutines
}

func newPeerNet(id string, peers map[string]string, ln net.Listener, dial DialFunc, qcfg queueConfig) *peerNet {
	if dial == nil {
		dial = defaultDial
	}
	qcfg = qcfg.withDefaults()
	p := &peerNet{
		id:       id,
		dial:     dial,
		ln:       ln,
		peers:    make(map[string]*peerConn, len(peers)),
		accepted: make(map[net.Conn]struct{}),
		stopping: make(chan struct{}),
		hardStop: make(chan struct{}),
	}
	for pid, addr := range peers {
		pc := &peerConn{id: pid, addr: addr, p: p, qcfg: qcfg, state: PeerConnecting}
		pc.cond = sync.NewCond(&pc.mu)
		p.peers[pid] = pc
	}
	return p
}

// start launches the accept loop and one writer goroutine per peer;
// deliver runs for every inbound frame, on the connection's read
// goroutine, with the raw encoded message bytes — owners unpack or decode
// as their hot path requires. The bytes alias the connection's reused
// read buffer and are valid only for the duration of the call; a non-nil
// error drops the connection (a corrupt peer).
func (p *peerNet) start(deliver func(from string, frame []byte) error) {
	p.wg.Add(1)
	go p.acceptLoop(deliver)
	for _, pc := range p.peers {
		p.writers.Add(1)
		go pc.run()
	}
}

func (p *peerNet) addr() string { return p.ln.Addr().String() }

// errClosed reports a transmit attempted after close.
var errClosed = errors.New("transport: peer network closed")

// transmit enqueues one frame onto the peer's write pipeline. It never
// blocks on the network: the dedicated writer goroutine dials and writes,
// so a stalled peer delays only its own queue. When that queue is full
// the oldest queued frame is evicted and counted (PeerStats.Dropped);
// callers decide whether the protocol resends (acked engines) or digest
// anti-entropy repairs the loss.
func (p *peerNet) transmit(to string, data []byte) error {
	select {
	case <-p.stopping:
		// A sync tick racing close() must not enqueue frames the
		// draining writers will never pick up.
		return errClosed
	default:
	}
	pc, ok := p.peers[to]
	if !ok {
		return fmt.Errorf("transport: unknown peer %s", to)
	}
	pc.enqueue(data)
	return nil
}

// peerStats snapshots every peer pipeline's counters and state.
func (p *peerNet) peerStats() map[string]PeerStats {
	out := make(map[string]PeerStats, len(p.peers))
	for id, pc := range p.peers {
		out[id] = pc.snapshot()
	}
	return out
}

func (p *peerNet) acceptLoop(deliver func(from string, frame []byte) error) {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.stopping:
				return
			default:
				continue
			}
		}
		p.mu.Lock()
		p.accepted[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn, deliver)
	}
}

func (p *peerNet) readLoop(conn net.Conn, deliver func(from string, frame []byte) error) {
	defer p.wg.Done()
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.accepted, conn)
		p.mu.Unlock()
	}()
	// One read buffer for the connection's lifetime: deliver is
	// synchronous and the decoders copy whatever outlives the call, so
	// the next frame may safely overwrite the previous one's bytes.
	var buf []byte
	for {
		from, data, err := readFrameInto(conn, &buf)
		if err != nil {
			return
		}
		if err := deliver(from, data); err != nil {
			return // corrupt peer; drop the connection
		}
	}
}

// close stops the accept loop, drains the write pipelines, and closes
// every connection. The drain is graceful but bounded: writers get
// drainTimeout to flush queued frames to reachable peers, then the hard
// stop unblocks any writer stuck dialing, backing off, or writing to a
// stalled peer, and the rest of the queues are abandoned. Accepted
// connections park their readLoops in blocking reads; closing them here
// is what lets wg.Wait return. Idempotent.
func (p *peerNet) close() error {
	p.stopOnce.Do(func() { close(p.stopping) })
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	for _, pc := range p.peers {
		pc.mu.Lock()
		pc.closed = true
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
	drained := make(chan struct{})
	go func() { p.writers.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(drainTimeout):
	}
	p.hardOnce.Do(func() { close(p.hardStop) })
	for _, pc := range p.peers {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close() // unblocks a writer stuck mid-write
		}
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
	p.mu.Lock()
	for c := range p.accepted {
		c.Close()
	}
	p.mu.Unlock()
	// Second bounded wait, not writers.Wait(): a writer can still be
	// parked inside a blocking Dial hook, which no channel of ours can
	// interrupt. Close must not inherit the dialer's timeout — such a
	// writer observes the hard stop as soon as the dial returns, closes
	// whatever it dialed, and exits without touching shared state.
	select {
	case <-drained:
	case <-time.After(drainTimeout):
	}
	p.wg.Wait()
	return err
}
