package transport_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// startStoreCluster boots n fully meshed stores on loopback, all
// replicating per-key GCounters with the given inner factory.
func startStoreCluster(t *testing.T, n, shards int, factory protocol.Factory, syncEvery time.Duration) []*transport.Store {
	t.Helper()
	stores, err := transport.LoopbackCluster(n, transport.StoreConfig{
		ID:        "s",
		Shards:    shards,
		Factory:   factory,
		ObjType:   func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery: syncEvery,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	for _, st := range stores {
		st := st
		t.Cleanup(func() { st.Close() })
	}
	return stores
}

// waitStoresConverged polls digests until all stores agree and hold
// wantKeys keys.
func waitStoresConverged(t *testing.T, stores []*transport.Store, wantKeys int, timeout time.Duration) {
	t.Helper()
	if err := transport.WaitConverged(stores, wantKeys, timeout, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMultiKeyConvergence(t *testing.T) {
	const keys = 300
	stores := startStoreCluster(t, 3, 8, protocol.NewDeltaBPRR(), 20*time.Millisecond)
	// Each store increments a disjoint third of the keyspace.
	for i, st := range stores {
		for k := i; k < keys; k += 3 {
			st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", k), N: uint64(i + 1)})
		}
	}
	waitStoresConverged(t, stores, keys, 10*time.Second)
	// Deep-check a few objects: every store sees the same counter value.
	for _, k := range []int{0, 1, 2, 299} {
		key := fmt.Sprintf("key-%04d", k)
		want := stores[0].Get(key)
		if want == nil {
			t.Fatalf("key %s missing on %s", key, stores[0].ID())
		}
		wantV := want.(*crdt.GCounter).Value()
		if wantV != uint64(k%3+1) {
			t.Errorf("key %s value = %d, want %d", key, wantV, k%3+1)
		}
		for _, st := range stores[1:] {
			got := st.Get(key)
			if got == nil || !got.Equal(want) {
				t.Errorf("key %s differs on %s", key, st.ID())
			}
		}
	}
}

func TestStoreAckedDeltaConvergence(t *testing.T) {
	// The loss-tolerant engine the store examples use: acks flow back
	// through the same batched sharded frames as the deltas.
	const keys = 100
	stores := startStoreCluster(t, 3, 8, protocol.NewDeltaAcked(true, true), 20*time.Millisecond)
	for i, st := range stores {
		for k := i; k < keys; k += 3 {
			st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", k), N: 1})
		}
	}
	waitStoresConverged(t, stores, keys, 10*time.Second)
	// Once every delta is acked, the δ-buffers must drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		drained := true
		for _, st := range stores {
			if st.Memory().BufferBytes != 0 {
				drained = false
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			for _, st := range stores {
				t.Logf("%s: buffer bytes = %d", st.ID(), st.Memory().BufferBytes)
			}
			t.Fatal("δ-buffers did not drain after acks")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStoreConcurrentUpdates(t *testing.T) {
	// Hammer every store from several goroutines on overlapping keys
	// while syncs run; -race must stay silent and the cluster converge.
	const (
		workers   = 4
		perWorker = 200
		keys      = 50
	)
	stores := startStoreCluster(t, 3, 4, protocol.NewDeltaBPRR(), 10*time.Millisecond)
	var wg sync.WaitGroup
	for _, st := range stores {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(st *transport.Store, w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					st.Update(workload.Op{
						Kind: workload.KindInc,
						Key:  fmt.Sprintf("key-%02d", (w*perWorker+i)%keys),
						N:    1,
					})
				}
			}(st, w)
		}
	}
	wg.Wait()
	waitStoresConverged(t, stores, keys, 15*time.Second)
	// Total across all keys must equal every increment applied.
	var total uint64
	for _, key := range stores[0].Keys() {
		total += stores[0].Get(key).(*crdt.GCounter).Value()
	}
	want := uint64(len(stores) * workers * perWorker)
	if total != want {
		t.Errorf("total counter mass = %d, want %d", total, want)
	}
}

func TestStoreBatchesFramesPerTick(t *testing.T) {
	stores := startStoreCluster(t, 2, 8, protocol.NewDeltaBPRR(), time.Hour)
	const keys = 64
	for k := 0; k < keys; k++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
	}
	stores[0].SyncNow()
	waitStoresConverged(t, stores, keys, 5*time.Second)
	st := stores[0].Stats()
	// 64 dirty keys across 8 shards to 1 peer must coalesce into a
	// single TCP frame, not one frame per key or per shard.
	if st.Frames != 1 {
		t.Errorf("frames = %d, want 1 (coalesced)", st.Frames)
	}
	if st.Sent.Elements != keys {
		t.Errorf("elements shipped = %d, want %d", st.Sent.Elements, keys)
	}
	if st.WireBytes == 0 {
		t.Error("wire bytes not recorded")
	}
}

func TestStoreShardKeyIsolation(t *testing.T) {
	// Single store, no peers: updates on distinct keys land in distinct
	// per-key objects, and Get snapshots are isolated from later updates.
	st, err := transport.StartStore(transport.StoreConfig{
		ID:         "solo",
		ListenAddr: "127.0.0.1:0",
		Peers:      map[string]string{},
		Shards:     3, // rounds up to 4
		Factory:    protocol.NewDeltaBPRR(),
		ObjType:    func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.NumShards(); got != 4 {
		t.Errorf("shards = %d, want 4 (next power of two)", got)
	}
	st.Update(workload.Op{Kind: workload.KindInc, Key: "a", N: 5})
	st.Update(workload.Op{Kind: workload.KindInc, Key: "b", N: 7})
	snap := st.Get("a")
	st.Update(workload.Op{Kind: workload.KindInc, Key: "a", N: 1})
	if v := snap.(*crdt.GCounter).Value(); v != 5 {
		t.Errorf("snapshot value = %d, want 5 (isolation broken)", v)
	}
	if v := st.Get("a").(*crdt.GCounter).Value(); v != 6 {
		t.Errorf("a = %d, want 6", v)
	}
	if v := st.Get("b").(*crdt.GCounter).Value(); v != 7 {
		t.Errorf("b = %d, want 7", v)
	}
	if st.Get("missing") != nil {
		t.Error("unknown key should return nil")
	}
}

func TestStoreCloseIsClean(t *testing.T) {
	stores := startStoreCluster(t, 2, 4, protocol.NewDeltaBPRR(), 10*time.Millisecond)
	stores[0].Update(workload.Op{Kind: workload.KindInc, Key: "k", N: 1})
	if err := stores[0].Close(); err != nil && !isUseOfClosed(err) {
		t.Errorf("close: %v", err)
	}
	// Survivor keeps working with its peer down: sends are dropped.
	stores[1].Update(workload.Op{Kind: workload.KindInc, Key: "k", N: 1})
	stores[1].SyncNow()
}
