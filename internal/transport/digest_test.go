package transport_test

import (
	"fmt"
	"testing"
	"time"

	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// TestStoreDigestIdleTrafficBeatsFullShip is the steady-state wire-cost
// guarantee of digest anti-entropy: once two stores have converged, an
// idle tick ships only the per-shard digest vector, which must be at
// least 10x smaller than what shipping the shards themselves costs (the
// behavior a digest-less always-ship anti-entropy scheme would pay every
// tick). Both sides of the comparison are real frames measured by
// Store.Stats(): the full-ship cost is captured from the digest repair of
// a store whose every delta was lost, which ships every shard in full.
func TestStoreDigestIdleTrafficBeatsFullShip(t *testing.T) {
	const keys = 400
	fault := transport.NewFault(3)
	fault.SetDropRate(1) // black hole while loading
	faultFor := func(i int, id string) *transport.Fault {
		if i == 0 {
			return fault
		}
		return nil
	}
	stores := startFaultyCluster(t, 2, transport.StoreConfig{
		Shards:  8,
		Factory: protocol.NewDeltaBPRR(),
		ObjType: func(string) workload.Datatype { return workload.GCounterType{} },
		// Ticks are driven manually so the measurement counts them.
		SyncEvery:   time.Hour,
		DigestEvery: 1,
	}, faultFor)
	s0, s1 := stores[0], stores[1]

	// Load the whole keyspace on s0 and sync twice into the black hole:
	// the plain delta engine clears its δ-buffer after the first send, so
	// the data now exists only in s0's shards — s1 knows nothing and no
	// retransmission will ever happen at the protocol level.
	for k := 0; k < keys; k++ {
		s0.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", k), N: 1})
	}
	s0.SyncNow()
	s0.SyncNow()
	// Writes happen on per-peer writer goroutines: wait for the queues to
	// drain (into the black hole) before healing, or the data frames
	// would leak out after the drop rate resets.
	waitQueuesDrained(t, s0, 10*time.Second)
	if got := s1.NumKeys(); got != 0 {
		t.Fatalf("black hole leaked: s1 holds %d keys", got)
	}

	// Heal and run exactly one tick: the digest advertisement reaches s1,
	// s1 requests every differing shard, s0 serves them in full. All the
	// repair traffic below flows from this single tick — it is what an
	// always-ship scheme would put on the wire every tick.
	fault.SetDropRate(0)
	base := s0.Stats()
	s0.SyncNow()
	if err := transport.WaitConverged(stores, keys, 30*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	repair := s0.Stats()
	fullShipBytes := repair.WireBytes - base.WireBytes
	if repair.RepairShards != s0.NumShards() {
		t.Fatalf("repair served %d shards, want all %d", repair.RepairShards, s0.NumShards())
	}

	// Now both stores are converged and idle: N further ticks must ship
	// nothing but the constant-size digest heartbeat, and s1 must never
	// observe divergence again.
	const idleTicks = 20
	idleBase := s0.Stats()
	s1WantsBase := s1.Stats().WantShards
	for i := 0; i < idleTicks; i++ {
		s0.SyncNow()
	}
	time.Sleep(200 * time.Millisecond) // let any (unexpected) replies land
	idle := s0.Stats()
	if got := s1.Stats().WantShards; got != s1WantsBase {
		t.Errorf("converged idle ticks still triggered %d shard requests", got-s1WantsBase)
	}
	idleFrames := idle.Frames - idleBase.Frames
	if idleFrames != idleTicks {
		t.Errorf("idle ticks sent %d frames, want exactly %d digest heartbeats", idleFrames, idleTicks)
	}
	perTick := (idle.WireBytes - idleBase.WireBytes) / idleTicks
	t.Logf("idle digest tick = %d B, full ship = %d B (%.0fx)",
		perTick, fullShipBytes, float64(fullShipBytes)/float64(perTick))
	if perTick*10 > fullShipBytes {
		t.Errorf("idle tick = %d B is not 10x below full ship = %d B", perTick, fullShipBytes)
	}
}

// TestStoreSkipsCleanShards pins the O(dirty shards) tick: a converged,
// idle store's SyncNow must produce no data frames at all (digests
// disabled here), because every clean shard is skipped outright.
func TestStoreSkipsCleanShards(t *testing.T) {
	stores := startStoreCluster(t, 2, 8, protocol.NewDeltaBPRR(), time.Hour)
	const keys = 64
	for k := 0; k < keys; k++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
	}
	stores[0].SyncNow()
	waitStoresConverged(t, stores, keys, 5*time.Second)
	// Drain the one residual visit that clears the dirty bits.
	stores[0].SyncNow()
	base := stores[0].Stats()
	for i := 0; i < 50; i++ {
		stores[0].SyncNow()
	}
	if got := stores[0].Stats(); got.Frames != base.Frames || got.WireBytes != base.WireBytes {
		t.Errorf("idle ticks sent frames: %+v vs %+v", got, base)
	}
	// A single fresh update re-dirties exactly one shard and flows out.
	stores[0].Update(workload.Op{Kind: workload.KindInc, Key: "key-000", N: 1})
	stores[0].SyncNow()
	if got := stores[0].Stats().Frames; got != base.Frames+1 {
		t.Errorf("dirty shard after idle did not sync: frames = %d, want %d", got, base.Frames+1)
	}
}

// TestStoreAckedIdleTicksAreHeartbeatOnly checks the steady state of the
// production engine configuration (acked deltas + digests): once the
// cluster converges and the δ-buffers drain, ticker-driven ticks must
// ship digest heartbeats and nothing else.
func TestStoreAckedIdleTicksAreHeartbeatOnly(t *testing.T) {
	const keys = 90
	stores, err := transport.LoopbackCluster(3, transport.StoreConfig{
		ID:          "s",
		Shards:      8,
		Factory:     protocol.NewDeltaAcked(true, true),
		ObjType:     func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:   15 * time.Millisecond,
		DigestEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		st := st
		t.Cleanup(func() { st.Close() })
	}
	for i, st := range stores {
		for k := i; k < keys; k += 3 {
			st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
		}
	}
	if err := transport.WaitConverged(stores, keys, 30*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		drained := 0
		for _, st := range stores {
			drained += st.Memory().BufferBytes
		}
		if drained == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("δ-buffers did not drain")
		}
		time.Sleep(15 * time.Millisecond)
	}
	// Let in-flight duplicates settle: a retransmission wave already
	// queued in a socket buffer when the δ-buffers drained still earns
	// one batched ack reply once the receiver works through it —
	// residual delta traffic, not a leak. Wait for a quiet window.
	dataFrames := func(s transport.StoreStats) int { return s.Frames - s.DigestFrames }
	for settle := time.Now().Add(5 * time.Second); time.Now().Before(settle); {
		prev := 0
		for _, st := range stores {
			prev += dataFrames(st.Stats())
		}
		time.Sleep(50 * time.Millisecond)
		cur := 0
		for _, st := range stores {
			cur += dataFrames(st.Stats())
		}
		if cur == prev {
			break
		}
	}
	before := make([]transport.StoreStats, len(stores))
	for i, st := range stores {
		before[i] = st.Stats()
	}
	time.Sleep(300 * time.Millisecond)
	for i, st := range stores {
		a, b := st.Stats(), before[i]
		dataFrames := (a.Frames - a.DigestFrames) - (b.Frames - b.DigestFrames)
		if dataFrames != 0 {
			t.Errorf("%s sent %d data frames while idle (digest frames %d, wire +%d B, wants +%d, repairs +%d)",
				st.ID(), dataFrames, a.DigestFrames-b.DigestFrames,
				a.WireBytes-b.WireBytes, a.WantShards-b.WantShards, a.RepairShards-b.RepairShards)
		}
	}
}
