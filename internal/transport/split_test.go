package transport_test

import (
	"fmt"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// startCappedPair boots two meshed stores with a small frame cap so a
// modest batch overflows it.
func startCappedPair(t *testing.T, maxFrame int) []*transport.Store {
	t.Helper()
	stores, err := transport.LoopbackCluster(2, transport.StoreConfig{
		ID:            "s",
		Shards:        8,
		Factory:       protocol.NewDeltaBPRR(),
		ObjType:       func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:     time.Hour,
		MaxFrameBytes: maxFrame,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	for _, st := range stores {
		st := st
		t.Cleanup(func() { st.Close() })
	}
	return stores
}

// TestStoreSplitsOversizedTickIntoFrames drives a single sync tick whose
// batch far exceeds the frame cap and requires it to arrive as multiple
// bounded frames and still converge — the backpressure path that replaces
// PR 1's behavior of relying on the 64 MiB cap never being hit (where the
// receiver would have rejected the one oversized frame and the tick would
// have been silently lost).
func TestStoreSplitsOversizedTickIntoFrames(t *testing.T) {
	const keys = 300
	stores := startCappedPair(t, 2048)
	for k := 0; k < keys; k++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", k), N: uint64(k + 1)})
	}
	stores[0].SyncNow()
	waitStoresConverged(t, stores, keys, 10*time.Second)
	st := stores[0].Stats()
	if st.Frames < 4 {
		t.Errorf("oversized tick produced %d frames, want several bounded ones", st.Frames)
	}
	if st.SplitFrames != st.Frames {
		t.Errorf("split accounting: %d of %d frames marked split", st.SplitFrames, st.Frames)
	}
	if st.OversizedDropped != 0 {
		t.Errorf("%d messages dropped as oversized; splitting should have bounded them", st.OversizedDropped)
	}
	// Deep-check: values survived the split intact.
	for _, k := range []int{0, 150, 299} {
		key := fmt.Sprintf("key-%04d", k)
		if v := stores[1].Get(key).(*crdt.GCounter).Value(); v != uint64(k+1) {
			t.Errorf("%s = %d on receiver, want %d", key, v, k+1)
		}
	}
}

// TestStoreSplitsWithinASingleShard forces the second splitting level: a
// cap small enough that even one shard's key batch overflows and must be
// divided inside the batch, not just across shard items.
func TestStoreSplitsWithinASingleShard(t *testing.T) {
	const keys = 64
	stores := startCappedPair(t, 512)
	for k := 0; k < keys; k++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", k), N: 1})
	}
	stores[0].SyncNow()
	waitStoresConverged(t, stores, keys, 10*time.Second)
	st := stores[0].Stats()
	// 64 keys over 8 shards = 8 keys per shard; a 512 B cap cannot hold a
	// full shard batch of 8 GCounter deltas plus framing in all cases, so
	// more frames than shards prove intra-batch splitting ran.
	if st.OversizedDropped != 0 {
		t.Errorf("%d oversized drops; single deltas fit 512 B and must never be dropped", st.OversizedDropped)
	}
	if st.Frames <= 1 {
		t.Errorf("frames = %d, want the tick split across many", st.Frames)
	}
}

// TestStoreDropsIrreducibleOversizedMessage pins the only case splitting
// cannot solve: a single object's message alone above the cap. It must be
// dropped and counted — not sent (the receiver would kill the connection
// reading it) and not left to recurse forever.
func TestStoreDropsIrreducibleOversizedMessage(t *testing.T) {
	stores := startCappedPair(t, 24) // msg budget: 24 - 2 - len("s-00") = 18 B
	stores[0].Update(workload.Op{Kind: workload.KindInc, Key: "key-far-too-long-to-fit", N: 1})
	stores[0].SyncNow()
	st := stores[0].Stats()
	if st.OversizedDropped != 1 {
		t.Errorf("oversized dropped = %d, want 1", st.OversizedDropped)
	}
	if st.Frames != 0 {
		t.Errorf("frames = %d, want 0 (nothing sendable)", st.Frames)
	}
}
