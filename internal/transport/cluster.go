package transport

import (
	"fmt"
	"net"
	"time"
)

// LoopbackCluster starts n fully meshed stores on 127.0.0.1, binding every
// listener before any store starts so all peer addresses are known up
// front. The template supplies Shards, Factory, ObjType and SyncEvery; its
// ID is used as the replica-id prefix ("store" → store-00, store-01, …).
// Benchmarks, examples and tests share this bootstrap. On error, stores
// already started are closed.
func LoopbackCluster(n int, template StoreConfig) ([]*Store, error) {
	return LoopbackClusterWith(n, template, nil)
}

// LoopbackClusterWith is LoopbackCluster with a per-store hook: customize
// (when non-nil) runs on each store's finished config just before
// StartStore, with the listener already bound — fault harnesses use it to
// wrap Dial or Listener and to vary queue lengths per store.
func LoopbackClusterWith(n int, template StoreConfig, customize func(i int, id string, cfg *StoreConfig)) ([]*Store, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: cluster needs at least 1 store")
	}
	prefix := template.ID
	if prefix == "" {
		prefix = "store"
	}
	ids := make([]string, n)
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%02d", prefix, i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	stores := make([]*Store, n)
	for i := range stores {
		peers := make(map[string]string)
		for j := range ids {
			if j != i {
				peers[ids[j]] = addrs[j]
			}
		}
		cfg := template
		cfg.ID = ids[i]
		cfg.Listener = listeners[i]
		cfg.ListenAddr = ""
		cfg.Peers = peers
		cfg.Nodes = ids
		if customize != nil {
			customize(i, ids[i], &cfg)
		}
		st, err := StartStore(cfg)
		if err != nil {
			for j := 0; j < i; j++ {
				stores[j].Close()
			}
			for j := i; j < n; j++ {
				listeners[j].Close()
			}
			return nil, err
		}
		stores[i] = st
	}
	return stores, nil
}

// WaitConverged polls until every store holds wantKeys keys and all
// digests agree, or the timeout elapses. Key counts are checked first
// (cheap); full-keyspace digests only once the counts match. progress,
// when non-nil, receives the per-store key counts on every poll.
func WaitConverged(stores []*Store, wantKeys int, timeout time.Duration, progress func(counts []int)) error {
	deadline := time.Now().Add(timeout)
	for {
		counts := make([]int, len(stores))
		agree := true
		for i, st := range stores {
			counts[i] = st.NumKeys()
			if counts[i] != wantKeys {
				agree = false
			}
		}
		if progress != nil {
			progress(counts)
		}
		if agree {
			d0 := stores[0].Digest()
			for _, st := range stores[1:] {
				if st.Digest() != d0 {
					agree = false
					break
				}
			}
		}
		if agree {
			return nil
		}
		if time.Now().After(deadline) {
			// A sick write pipeline is the usual culprit, so the failure
			// names each store's queued/dropped frame totals alongside
			// its digest; a non-zero shard-count mismatch counter means
			// the cluster is misconfigured and anti-entropy can never
			// repair it.
			msg := "transport: cluster did not converge:"
			for _, st := range stores {
				queued, dropped := 0, 0
				stats := st.Stats()
				for _, ps := range stats.Peers {
					queued += ps.Queued
					dropped += ps.Dropped
				}
				msg += fmt.Sprintf(" %s[keys=%d digest=%x queued=%d dropped=%d]",
					st.ID(), st.NumKeys(), st.Digest(), queued, dropped)
				if stats.DigestShardMismatch > 0 {
					msg += fmt.Sprintf(" %s saw %d digest advertisements with a foreign shard count (misconfigured Shards?)",
						st.ID(), stats.DigestShardMismatch)
				}
			}
			return fmt.Errorf("%s", msg)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
