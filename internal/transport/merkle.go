package transport

import (
	"encoding/binary"
	"sync"
	"time"

	"crdtsync/internal/codec"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// This file implements the repair side of digest anti-entropy: the
// per-shard Merkle hash tree that turns a root-digest mismatch into a
// log-depth drill-down (protocol.TreeMsg), and the in-flight repair
// table that keeps a store from re-requesting a shard on every
// heartbeat while its repair is still on the wire.

const (
	// defaultRepairTimeout bounds how long one shard's repair may stay
	// in flight before the next digest mismatch may retrigger it. It is
	// also the retry cadence when repair messages are lost, so it stays
	// close to the scale of a round trip plus a shard ship; re-requesting
	// a repair early only costs a duplicate idempotent merge.
	defaultRepairTimeout = time.Second
	// defaultTreeMinKeys is the local key count below which a diverged
	// shard is pulled whole rather than drilled: under ~a few hundred
	// keys the full ship is smaller than the hash exchange.
	defaultTreeMinKeys = 256
	// treeMaxQuery caps the drill fan-out: when the differing nodes'
	// children would exceed this many indices, most of the shard differs
	// and the drill-down falls back to a full-shard pull — which is then
	// proportional to the divergence by definition.
	treeMaxQuery = 1024
	// maxDrillFails is how many consecutive drill-downs on one shard may
	// time out before repair falls back to the flat full pull. The drill
	// is a multi-round exchange, so under heavy frame loss its completion
	// probability decays with every round; the flat pull is two messages
	// and wins on lossy links even though it ships the whole shard.
	maxDrillFails = 2
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvFold continues an FNV-1a fold over b (allocation-free; hash/fnv's
// hasher escapes through the interface — same reason as fnv32a).
func fnvFold(h uint64, b []byte) uint64 {
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return h
}

// fnvFoldString is fnvFold over a key without the []byte conversion.
func fnvFoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// treeLeafIdx buckets a key into its shard's hash-tree leaf by the top
// bits of the same key hash shard routing uses the bottom bits of, so
// the two partitions stay independent.
func treeLeafIdx(key string) uint32 {
	return fnv32a(key) >> (32 - protocol.TreeFanoutBits*protocol.TreeDepth)
}

// treeBitmap marks tree node/leaf indices; sized for the leaf level, the
// widest, so one stack allocation serves every level.
type treeBitmap [protocol.TreeLeaves / 64]uint64

func (t *treeBitmap) set(i uint32)      { t[i/64] |= 1 << (i % 64) }
func (t *treeBitmap) has(i uint32) bool { return t[i/64]&(1<<(i%64)) != 0 }

// leafKeyHash is one key's contribution to its leaf: an FNV-1a fold
// over (key bytes, canonical encoding). Leaves combine contributions by
// XOR (an empty leaf is 0) — order-independent, so the recompute can
// fan contiguous key ranges across the shard-work pool and merge the
// workers' private vectors with a word-wise XOR, while replicas holding
// equal contents still produce equal leaves regardless of key order.
// Leaf hashes are only ever compared between replicas running the same
// code, so the combining rule is free to change between versions.
func leafKeyHash(k string, enc []byte) uint64 {
	return fnvFold(fnvFoldString(fnvOffset64, k), enc)
}

// ensureLeavesLocked (re)computes the shard's leaf-hash vector if a
// mutation invalidated it, serially. Caller holds sh.mu. Large shards
// go through Store.ensureLeaves, which fans the same computation across
// the shard-work pool.
func (sh *shard) ensureLeavesLocked() {
	if sh.leafOK {
		return
	}
	if sh.leaf == nil {
		sh.leaf = make([]uint64, protocol.TreeLeaves)
	} else {
		clear(sh.leaf)
	}
	scratch := getEncodeBuf()
	for _, k := range sh.engine.Keys() {
		scratch = codec.AppendState(scratch[:0], sh.engine.ObjectState(k))
		sh.leaf[treeLeafIdx(k)] ^= leafKeyHash(k, scratch)
	}
	putEncodeBuf(scratch)
	sh.leafOK = true
}

// leafParallelMinKeys is the shard key count from which the leaf
// recompute fans key ranges across the pool; below it the split and
// merge overhead outweighs the hashing saved.
const leafParallelMinKeys = 4096

// ensureLeaves (re)computes sh's leaf vector if invalid, using the
// shard-work pool for large shards. Caller holds sh.mu; the workers
// only read the engine (Keys returns the live slice, ObjectState is a
// map lookup), which the held lock keeps stable. Each worker folds a
// contiguous key range into a private pooled vector and the merge XORs
// them — identical to the serial result because XOR commutes.
func (s *Store) ensureLeaves(sh *shard) {
	if sh.leafOK {
		return
	}
	keys := sh.engine.Keys()
	if s.workers <= 1 || len(keys) < leafParallelMinKeys {
		sh.ensureLeavesLocked()
		return
	}
	if sh.leaf == nil {
		sh.leaf = make([]uint64, protocol.TreeLeaves)
	} else {
		clear(sh.leaf)
	}
	n := s.workers
	chunk := (len(keys) + n - 1) / n
	parts := make([][]uint64, n)
	s.runWorkers(n, func(worker int) {
		lo := worker * chunk
		hi := min(lo+chunk, len(keys))
		if lo >= hi {
			return
		}
		vec := s.getLeafVec()
		scratch := getEncodeBuf()
		for _, k := range keys[lo:hi] {
			scratch = codec.AppendState(scratch[:0], sh.engine.ObjectState(k))
			vec[treeLeafIdx(k)] ^= leafKeyHash(k, scratch)
		}
		putEncodeBuf(scratch)
		parts[worker] = vec
	})
	for _, part := range parts {
		if part == nil {
			continue
		}
		for j, v := range part {
			sh.leaf[j] ^= v
		}
		s.putLeafVec(part)
	}
	sh.leafOK = true
}

// treeNodeHash folds a node's leaf range into one interior hash:
// FNV-1a over the big-endian words of its leaves. At the leaf level the
// range has one element and the hash is the leaf itself.
func treeNodeHash(leaves []uint64) uint64 {
	if len(leaves) == 1 {
		return leaves[0]
	}
	h := uint64(fnvOffset64)
	var w [8]byte
	for _, l := range leaves {
		binary.BigEndian.PutUint64(w[:], l)
		h = fnvFold(h, w[:])
	}
	return h
}

// treeNodeHashes appends the shard's hashes for the given node indices
// at level (indices already validated against the level's node count).
func (s *Store) treeNodeHashes(sh *shard, level int, nodes []uint32, out []uint64) []uint64 {
	span := protocol.TreeLeafSpan(level)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.ensureLeaves(sh)
	for _, idx := range nodes {
		lo := idx * span
		out = append(out, treeNodeHash(sh.leaf[lo:lo+span]))
	}
	return out
}

// repairEntry tracks one shard's in-flight repair: which peer it was
// requested from, when the request expires if no repair data lands,
// whether the data request (flat or leaf-level Want) has gone out yet,
// and how many consecutive attempts have timed out.
type repairEntry struct {
	active   bool
	wantSent bool
	fails    uint8
	peer     string
	expires  time.Time
}

// repairTable is the Want-storm gate: at most one outstanding repair
// request (flat Want or tree drill-down) per shard, cleared when repair
// data arrives from the peer it was requested from, when the shard's
// digests re-match, or on timeout.
type repairTable struct {
	mu      sync.Mutex
	timeout time.Duration
	entries []repairEntry
}

// tryStart claims the shard's repair slot, returning ok=false while an
// unexpired repair is already in flight (the deduped-Want case). When it
// claims a slot whose previous repair timed out, the consecutive-failure
// count carries over (and is returned), so the caller can stop drilling
// and fall back to the flat pull on a link that keeps eating rounds.
func (r *repairTable) tryStart(shard int, peer string, now time.Time) (fails int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &r.entries[shard]
	if e.active && now.Before(e.expires) {
		return 0, false
	}
	f := uint8(0)
	if e.active { // the previous attempt expired unrepaired
		if f = e.fails; f < maxDrillFails {
			f++
		}
	}
	*e = repairEntry{active: true, fails: f, peer: peer, expires: now.Add(r.timeout)}
	return int(f), true
}

// refresh reports whether the shard's in-flight repair is with peer and,
// when it is, extends its deadline — a drill-down answer is progress.
func (r *repairTable) refresh(shard int, peer string, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &r.entries[shard]
	if !e.active || e.peer != peer || !now.Before(e.expires) {
		return false
	}
	e.expires = now.Add(r.timeout)
	return true
}

// markWant records that the shard's repair has asked peer for data (a
// flat Want or a leaf-level tree Want), arming clearFrom.
func (r *repairTable) markWant(shard int, peer string) {
	r.mu.Lock()
	if e := &r.entries[shard]; e.active && e.peer == peer {
		e.wantSent = true
	}
	r.mu.Unlock()
}

// clearFrom releases the shard's repair slot if it is held against peer
// and has asked it for data — called on every sharded data delivery, so
// the wantSent gate is what keeps ordinary delta traffic from the same
// peer from aborting a drill-down mid-flight.
func (r *repairTable) clearFrom(shard int, peer string) {
	r.mu.Lock()
	if e := &r.entries[shard]; e.active && e.wantSent && e.peer == peer {
		*e = repairEntry{}
	}
	r.mu.Unlock()
}

// clear releases the shard's repair slot unconditionally — called when
// the shard's digests match again, however that happened.
func (r *repairTable) clear(shard int) {
	r.mu.Lock()
	r.entries[shard] = repairEntry{}
	r.mu.Unlock()
}

// handleDigests compares a peer's digest advertisement against the
// local shards and starts a repair for whichever differ — unless one is
// already in flight for that shard (the Want-storm dedup). Large shards
// repair by Merkle drill-down; small ones are pulled whole, as before.
func (s *Store) handleDigests(from string, digests []uint64) {
	if len(digests) == 0 {
		return
	}
	if len(digests) != len(s.shards) {
		// Shard-count mismatch: the vectors are not comparable and
		// anti-entropy cannot repair anything — count it so a
		// misconfigured cluster says why it never converges.
		s.statsMu.Lock()
		s.stats.DigestShardMismatch++
		s.statsMu.Unlock()
		return
	}
	now := time.Now()
	var flat []uint32
	deduped := 0
	for i, sh := range s.shards {
		if s.shardDigest(sh) == digests[i] {
			s.repair.clear(i)
			continue
		}
		fails, ok := s.repair.tryStart(i, from, now)
		if !ok {
			deduped++
			continue
		}
		if fails < maxDrillFails && s.treeEligible(sh) {
			s.sendTreeQuery(from, uint32(i), 1, treeLevelOneQuery)
		} else {
			s.repair.markWant(i, from)
			flat = append(flat, uint32(i))
		}
	}
	if deduped > 0 {
		s.statsMu.Lock()
		s.stats.DedupedWants += deduped
		s.statsMu.Unlock()
	}
	if len(flat) > 0 {
		s.statsMu.Lock()
		s.stats.WantShards += len(flat)
		s.statsMu.Unlock()
		m := protocol.NewDigestMsg(nil, flat, protocol.DigestCost(nil, flat))
		s.transmitMsg(from, m, frameDigest)
	}
}

// treeLevelOneQuery is the first drill-down step, the same for every
// repair: all of level 1.
var treeLevelOneQuery = func() []uint32 {
	q := make([]uint32, protocol.TreeFanout)
	for i := range q {
		q[i] = uint32(i)
	}
	return q
}()

// treeEligible reports whether a diverged shard should repair by
// drill-down rather than a full pull: enough local keys that the hash
// exchange is cheaper than shipping everything.
func (s *Store) treeEligible(sh *shard) bool {
	if s.cfg.NoTreeRepair {
		return false
	}
	sh.mu.Lock()
	n := len(sh.engine.Keys())
	sh.mu.Unlock()
	return n >= s.cfg.TreeRepairMinKeys
}

// sendTreeQuery ships one drill-down query round and counts it.
func (s *Store) sendTreeQuery(to string, shard uint32, level int, query []uint32) {
	s.statsMu.Lock()
	s.stats.TreeRounds++
	s.statsMu.Unlock()
	m := protocol.NewTreeMsg(shard, uint8(level), query, nil, nil, nil,
		protocol.TreeCost(query, nil, nil, nil))
	s.transmitMsg(to, m, frameDigest)
}

// transmitMsg encodes one control message and hands it to the peer's
// write pipeline. Encoding a message the store itself built can only
// fail on a programming error.
func (s *Store) transmitMsg(to string, m protocol.Msg, kind frameKind) {
	data, err := codec.EncodeMsg(m)
	if err != nil {
		panic(err)
	}
	s.transmit(to, data, m.Cost(), kind)
}

// handleTree dispatches one drill-down step by which role the message
// plays: a Query is answered with hashes, an answer's Nodes/Hashes are
// compared to continue the drill, a Want is served with range data.
// The decoder bounds Shard only against uint32 (shard counts are not
// wire-negotiated), so the shard-map skew check happens here.
func (s *Store) handleTree(from string, tm *protocol.TreeMsg, b *outBatch) {
	if int(tm.Shard) >= len(s.shards) {
		return // shard-map skew; the digests were never comparable
	}
	level := int(tm.Level)
	if level < 1 || level > protocol.TreeDepth {
		return // decoder enforces this; kept for directly built messages
	}
	if len(tm.Query) > 0 {
		s.serveTreeQuery(from, tm.Shard, level, tm.Query)
	}
	if len(tm.Nodes) > 0 {
		s.continueDrill(from, tm.Shard, level, tm.Nodes, tm.Hashes)
	}
	if len(tm.Want) > 0 {
		s.serveTreeWant(from, tm.Shard, level, tm.Want, b)
	}
}

// serveTreeQuery answers a drill-down query with this store's hashes of
// the queried nodes. Duplicate or out-of-range indices are dropped: the
// reply is sized by the tree geometry, never by the request length.
func (s *Store) serveTreeQuery(to string, shardIdx uint32, level int, query []uint32) {
	maxNode := uint32(protocol.TreeNodesAt(level))
	var seen treeBitmap
	nodes := make([]uint32, 0, len(query))
	for _, q := range query {
		if q >= maxNode || seen.has(q) {
			continue
		}
		seen.set(q)
		nodes = append(nodes, q)
	}
	if len(nodes) == 0 {
		return
	}
	hashes := s.treeNodeHashes(s.shards[shardIdx], level, nodes, make([]uint64, 0, len(nodes)))
	m := protocol.NewTreeMsg(shardIdx, uint8(level), nil, nodes, hashes, nil,
		protocol.TreeCost(nil, nodes, hashes, nil))
	s.transmitMsg(to, m, frameDigest)
}

// continueDrill compares an answer's hashes against this store's own
// and takes the next step: query the differing nodes' children, send
// the leaf-level Want, or — when the divergence turns out wider than
// drilling pays for — fall back to the flat full-shard pull.
func (s *Store) continueDrill(from string, shardIdx uint32, level int, nodes []uint32, hashes []uint64) {
	if len(hashes) != len(nodes) {
		return // decoder enforces this; kept for directly built messages
	}
	if !s.repair.refresh(int(shardIdx), from, time.Now()) {
		return // stale or foreign answer: not the repair in flight here
	}
	// Validate and dedup the answer's indices BEFORE hashing, honoring
	// treeNodeHashes' "indices already validated" contract (the same
	// ordering serveTreeQuery uses): an out-of-range index would slice
	// past the leaf vector and panic the store on a hand-built message —
	// the wire decoder bounds indices, but this path must not rely on it.
	maxNode := uint32(protocol.TreeNodesAt(level))
	var seen treeBitmap
	valid := make([]uint32, 0, len(nodes))
	theirs := make([]uint64, 0, len(nodes))
	for i, idx := range nodes {
		if idx >= maxNode || seen.has(idx) {
			continue
		}
		seen.set(idx)
		valid = append(valid, idx)
		theirs = append(theirs, hashes[i])
	}
	if len(valid) == 0 {
		return // nothing comparable in the answer
	}
	mine := s.treeNodeHashes(s.shards[shardIdx], level, valid, make([]uint64, 0, len(valid)))
	var diff []uint32
	for i, idx := range valid {
		if mine[i] != theirs[i] {
			diff = append(diff, idx)
		}
	}
	if len(diff) == 0 {
		// The root digests differed but no queried node does: either
		// repair already landed through another path, or the peer holds
		// keys this store lacks entirely (its advertisement to the peer
		// repairs that direction). Let the next heartbeat re-evaluate.
		s.repair.clear(int(shardIdx))
		return
	}
	if level == protocol.TreeDepth {
		s.statsMu.Lock()
		s.stats.TreeRounds++
		s.statsMu.Unlock()
		s.repair.markWant(int(shardIdx), from)
		m := protocol.NewTreeMsg(shardIdx, uint8(level), nil, nil, nil, diff,
			protocol.TreeCost(nil, nil, nil, diff))
		s.transmitMsg(from, m, frameDigest)
		return
	}
	if len(diff)*protocol.TreeFanout > treeMaxQuery {
		s.statsMu.Lock()
		s.stats.WantShards++
		s.statsMu.Unlock()
		s.repair.markWant(int(shardIdx), from)
		want := []uint32{shardIdx}
		m := protocol.NewDigestMsg(nil, want, protocol.DigestCost(nil, want))
		s.transmitMsg(from, m, frameDigest)
		return
	}
	next := make([]uint32, 0, len(diff)*protocol.TreeFanout)
	for _, idx := range diff {
		base := idx << protocol.TreeFanoutBits
		for c := uint32(0); c < protocol.TreeFanout; c++ {
			next = append(next, base+c)
		}
	}
	s.sendTreeQuery(from, shardIdx, level+1, next)
}

// serveTreeWant ships the requested node ranges' keys in full — the
// range-limited form of the full-shard repair ship.
func (s *Store) serveTreeWant(from string, shardIdx uint32, level int, want []uint32, b *outBatch) {
	batch, ranges, bytes, ok := s.rangeBatch(shardIdx, level, want)
	if !ok {
		return
	}
	b.sender(shardIdx)(from, batch)
	s.statsMu.Lock()
	s.stats.RepairRanges += ranges
	s.stats.RepairBytes += bytes
	s.statsMu.Unlock()
}

// rangeBatch builds a BatchMsg of per-key δ-groups carrying the whole
// states of the keys whose leaf index falls inside the wanted nodes'
// ranges — fullShardBatch restricted to diverged ranges. Duplicate and
// out-of-range want indices are served once or not at all, so the work
// is bounded by the shard, never the request.
func (s *Store) rangeBatch(shardIdx uint32, level int, want []uint32) (protocol.Msg, int, int, bool) {
	maxNode := uint32(protocol.TreeNodesAt(level))
	span := protocol.TreeLeafSpan(level)
	var leaves treeBitmap
	ranges := 0
	for _, w := range want {
		if w >= maxNode {
			continue
		}
		lo := w * span
		if leaves.has(lo) {
			continue
		}
		ranges++
		for l := lo; l < lo+span; l++ {
			leaves.set(l)
		}
	}
	if ranges == 0 {
		return nil, 0, 0, false
	}
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var items []protocol.ObjectMsg
	bytes := 0
	for _, k := range sh.engine.Keys() {
		if !leaves.has(treeLeafIdx(k)) {
			continue
		}
		st := sh.engine.ObjectState(k).Clone()
		bytes += len(k) + st.SizeBytes()
		items = append(items, protocol.ObjectMsg{
			Key: k,
			Inner: protocol.NewDeltaMsg(st, metrics.Transmission{
				Messages:     1,
				Elements:     st.Elements(),
				PayloadBytes: st.SizeBytes(),
			}),
		})
	}
	if len(items) == 0 {
		// Nothing local in those ranges: the divergence is keys this
		// store lacks, repaired in the opposite direction by its own
		// advertisements. No delivery will clear the peer's repair slot,
		// so it expires by timeout.
		return nil, 0, 0, false
	}
	return protocol.BatchOf(items), ranges, bytes, true
}
