package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// startSoloStore builds one peerless store for direct inbound-path tests:
// frames are handed to s.deliver by hand, replies to the unknown sender
// are dropped by the peer net exactly as they would be for a vanished
// neighbor.
func startSoloStore(t testing.TB, shards int) *Store {
	return startSoloStoreWith(t, shards, protocol.NewDeltaBPRR())
}

// startSoloStoreWith is startSoloStore with a caller-chosen engine
// factory (the receive benchmark baselines against a pre-refactor
// engine replica).
func startSoloStoreWith(t testing.TB, shards int, factory protocol.Factory) *Store {
	t.Helper()
	s, err := StartStore(StoreConfig{
		ID:         "n0",
		ListenAddr: "127.0.0.1:0",
		Shards:     shards,
		Factory:    factory,
		ObjType:    func(string) workload.Datatype { return workload.GSetType{} },
	})
	if err != nil {
		t.Fatalf("StartStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// keysOnShard generates n distinct keys that hash-route to the given
// shard under the store's mask, so test frames carry the same shard
// assignment a real sender would and Get finds the objects afterwards.
func keysOnShard(mask uint32, shard uint32, n int) []string {
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if fnv32a(k)&mask == shard {
			keys = append(keys, k)
		}
	}
	return keys
}

// shardBatch builds one shard's per-object batch of small GSet deltas.
func shardBatch(shard uint32, keys ...string) protocol.ShardItem {
	oms := make([]protocol.ObjectMsg, 0, len(keys))
	for i, k := range keys {
		oms = append(oms, protocol.ObjectMsg{Key: k, Inner: gsetDelta(int(shard)*100+i, 2)})
	}
	return protocol.ShardItem{Shard: shard, Msg: protocol.BatchOf(oms)}
}

func encodeFrame(t testing.TB, m protocol.Msg) []byte {
	t.Helper()
	data, err := codec.EncodeMsg(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// TestDeliverLocksOncePerShard pins the single-pass path's lock
// discipline: one shard-lock acquisition per touched shard per frame,
// however many items the frame carries for that shard — the eager path
// took one per item.
func TestDeliverLocksOncePerShard(t *testing.T) {
	s := startSoloStore(t, 4)
	sh0 := keysOnShard(s.mask, 0, 2)
	sh1 := keysOnShard(s.mask, 1, 2)
	sh3 := keysOnShard(s.mask, 3, 3)
	frame := encodeFrame(t, protocol.NewShardedMsg([]protocol.ShardItem{
		shardBatch(0, sh0...),
		shardBatch(1, sh1[0]),
		shardBatch(1, sh1[1]), // same shard again: still one lock hold
		shardBatch(3, sh3...),
	}))
	if err := s.deliver("peer", frame); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if got := s.deliverLocks.Load(); got != 3 {
		t.Fatalf("deliverLocks = %d after one frame touching 3 shards, want 3", got)
	}
	if err := s.deliver("peer", frame); err != nil {
		t.Fatalf("redeliver: %v", err)
	}
	if got := s.deliverLocks.Load(); got != 6 {
		t.Fatalf("deliverLocks = %d after two frames, want 6", got)
	}
	// Control frames take no shard locks on the delivery path.
	dig := encodeFrame(t, protocol.NewDigestMsg(nil, []uint32{1},
		protocol.DigestCost(nil, []uint32{1})))
	if err := s.deliver("peer", dig); err != nil {
		t.Fatalf("deliver digest: %v", err)
	}
	if got := s.deliverLocks.Load(); got != 6 {
		t.Fatalf("deliverLocks = %d after a digest frame, want 6", got)
	}
	// The frame's objects actually applied.
	if st := s.Get(sh0[0]); st == nil || st.IsBottom() {
		t.Fatalf("object %q missing after delivery", sh0[0])
	}
}

// TestDeliverDroppedItems pins the shard-skew observability satellite:
// items routed beyond the local shard count are counted in Stats, and
// in-range items on the same frame still apply.
func TestDeliverDroppedItems(t *testing.T) {
	s := startSoloStore(t, 4)
	keep := keysOnShard(s.mask, 2, 1)[0]
	frame := encodeFrame(t, protocol.NewShardedMsg([]protocol.ShardItem{
		shardBatch(2, keep),
		shardBatch(9, "skew1"),
		shardBatch(63, "skew2"),
	}))
	if err := s.deliver("peer", frame); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if got := s.Stats().DroppedItems; got != 2 {
		t.Fatalf("DroppedItems = %d, want 2", got)
	}
	if st := s.Get(keep); st == nil || st.IsBottom() {
		t.Fatalf("in-range object did not apply")
	}
	if st := s.Get("skew1"); st != nil {
		t.Fatalf("out-of-range object applied: %v", st)
	}
}

// TestDeliverCorruptFrame: undecodable bytes error out (dropping the
// connection in the read loop) instead of being silently ignored.
func TestDeliverCorruptFrame(t *testing.T) {
	s := startSoloStore(t, 4)
	for _, frame := range [][]byte{
		{},
		{72, 0, 0, 0, 0, 2, 1},                   // sharded, 2 items, truncated
		{74, 0, 0, 0, 0, 255, 255, 255, 255, 15}, // hostile digest count
		{255, 1, 2, 3},                           // unknown tag
	} {
		if err := s.deliver("peer", frame); err == nil {
			t.Fatalf("deliver accepted corrupt frame %v", frame)
		} else if errors.Is(err, codec.ErrNotSharded) {
			t.Fatalf("ErrNotSharded escaped deliver for %v", frame)
		}
	}
	// Well-formed non-store traffic is tolerated, as before.
	if err := s.deliver("peer", encodeFrame(t, gsetDelta(1, 2))); err != nil {
		t.Fatalf("deliver rejected a well-formed non-store frame: %v", err)
	}
}

// TestPackUnpackRoundTrip closes the wire loop: every frame the packer
// emits unpacks into exactly the units that went in, grouped by shard
// with per-shard order preserved — the receive-side mirror of
// TestPackFramesRoundTrip.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const shards = 64
	var v codec.FrameView
	for round := 0; round < 50; round++ {
		items := randomItems(rng)
		var digests []uint64
		if rng.Intn(2) == 0 {
			digests = make([]uint64, shards)
			for i := range digests {
				digests[i] = rng.Uint64()
			}
		}
		limit := 256 + rng.Intn(4096)
		res, err := packFrames(items, nil, digests, limit)
		if err != nil {
			t.Fatalf("pack: %v", err)
		}
		var got []unit
		for _, f := range res.frames {
			if err := codec.UnpackFrame(f.data, shards, &v); err != nil {
				t.Fatalf("unpack packed frame: %v", err)
			}
			if v.Dropped != 0 {
				t.Fatalf("packer emitted %d out-of-range items", v.Dropped)
			}
			// Flatten this frame's groups back into units; within a frame
			// the packer already emits shards in index order, so group
			// order is frame order.
			for _, g := range v.Groups() {
				for i := range g.Items {
					iv := &g.Items[i]
					got = append(got, unit{shard: g.Shard, key: string(iv.Key), enc: string(iv.Payload)})
				}
			}
		}
		// The packer preserves the input unit order on the wire; the
		// unpacker regroups each frame by shard. Compare as multisets
		// (mirroring checkPacked, which only does the exact-order check):
		// counts always honor the oversized drops, and with nothing
		// dropped the unit multisets must match exactly.
		want := unitsOf(t, items)
		if len(got)+res.oversized != len(want) {
			t.Fatalf("round %d: %d units in, %d out + %d oversized",
				round, len(want), len(got), res.oversized)
		}
		if res.oversized > 0 {
			continue
		}
		sortUnits(got)
		sortUnits(want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: unit %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
	}
}

// TestDeliverShardedErrorStillFlushesAndCounts is the regression test
// for the mid-frame decode-error path: deliverSharded used to return
// the moment an item failed to decode, before flushing the replies the
// already-applied shard groups had coalesced (discarding real acks the
// peer was owed) and before counting the frame's dropped items. An
// error must still flush and still count — only the failed group's
// remainder and the frame's piggybacked digests are abandoned.
func TestDeliverShardedErrorStillFlushesAndCounts(t *testing.T) {
	// A configured-but-unreachable peer: transmit enqueues onto its
	// pipeline (counting the frame) and the dial fails lazily later.
	s, err := StartStore(StoreConfig{
		ID:         "n0",
		ListenAddr: "127.0.0.1:0",
		Peers:      map[string]string{"peer": "127.0.0.1:1"},
		Shards:     2,
		Factory:    protocol.NewDeltaAcked(true, true),
		ObjType:    func(string) workload.Datatype { return workload.GSetType{} },
	})
	if err != nil {
		t.Fatalf("StartStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	k0 := keysOnShard(s.mask, 0, 1)[0]
	k1 := keysOnShard(s.mask, 1, 1)[0]
	gs := crdt.NewGSet("a", "b")
	acked := protocol.NewAckedDeltaMsg(gs, []uint64{1}, metrics.Transmission{
		Messages: 1, Elements: gs.Elements(), PayloadBytes: gs.SizeBytes(),
	})
	frame := encodeFrame(t, protocol.NewShardedMsg([]protocol.ShardItem{
		// Shard 0 applies and owes the sender an AckMsg reply.
		{Shard: 0, Msg: protocol.BatchOf([]protocol.ObjectMsg{{Key: k0, Inner: acked}})},
		shardBatch(1, k1),
		shardBatch(9, "skew"), // beyond the shard count: dropped at unpack
	}))
	var v codec.FrameView
	if err := codec.UnpackFrame(frame, len(s.shards), &v); err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if len(v.Groups()) != 2 || v.Dropped != 1 {
		t.Fatalf("unpacked %d groups, %d dropped; want 2 groups, 1 dropped",
			len(v.Groups()), v.Dropped)
	}
	// Corrupt the shard-1 item to an unknown tag after the skip walk
	// accepted it: Msg() now fails mid-frame, the condition the eager
	// return used to take.
	v.Groups()[1].Items[0].Payload[0] = 0xff
	if err := s.deliverSharded("peer", &v); err == nil {
		t.Fatal("mid-frame decode corruption must surface an error")
	}
	if st := s.Get(k0); st == nil || st.IsBottom() {
		t.Fatal("shard-0 group did not apply before the error")
	}
	stats := s.Stats()
	if stats.DroppedItems != 1 {
		t.Fatalf("DroppedItems = %d despite the error, want 1", stats.DroppedItems)
	}
	if stats.Frames == 0 {
		t.Fatal("shard-0's ack reply was not flushed after the error")
	}
}

// sortUnits orders units for multiset comparison.
func sortUnits(us []unit) {
	sort.Slice(us, func(i, j int) bool {
		if us[i].shard != us[j].shard {
			return us[i].shard < us[j].shard
		}
		if us[i].key != us[j].key {
			return us[i].key < us[j].key
		}
		return us[i].enc < us[j].enc
	})
}
