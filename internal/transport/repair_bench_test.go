package transport

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"time"

	"crdtsync/internal/workload"
)

// repairMeasurement is one measured repair of a single diverged key in
// an n-key shard: the total wire bytes both stores put on the network
// from the healing heartbeat to digest-checked convergence.
type repairMeasurement struct {
	Keys       int `json:"keys"`
	WireBytes  int `json:"wire_bytes"`
	TreeRounds int `json:"tree_rounds"`
	// RepairPayloadBytes is the key+state payload the advertiser served
	// (RepairBytes for the drill-down, the full-shard equivalent for the
	// flat baseline).
	RepairPayloadBytes int `json:"repair_payload_bytes"`
}

// measureRepair stages two stores that agree on keys single-shard
// GSet objects, diverges exactly one key on the first through a black
// hole, heals, and measures the wire cost of repairing it — with the
// Merkle drill-down or (noTree) the flat full-shard pull it replaces.
func measureRepair(t *testing.T, keys int, noTree bool) repairMeasurement {
	t.Helper()
	f0, f1 := NewFault(11), NewFault(12)
	f0.SetDropRate(1)
	f1.SetDropRate(1)
	cfg := repairPairConfig()
	cfg.NoTreeRepair = noTree
	stores := startFaultyPair(t, cfg, [2]*Fault{f0, f1})
	s0, s1 := stores[0], stores[1]

	loadIdentical(stores, keys)
	drainInto(t, s0)
	drainInto(t, s1)
	s0.Update(workload.Add("k-diverged", "v"))
	drainInto(t, s0)
	if got := s1.NumKeys(); got != keys {
		t.Fatalf("black hole leaked: s1 holds %d keys, want %d", got, keys)
	}

	f0.SetDropRate(0)
	f1.SetDropRate(0)
	base0, base1 := s0.Stats(), s1.Stats()
	s0.SyncNow()
	waitPairConverged(t, stores, keys+1, 5*time.Minute)
	st0, st1 := s0.Stats(), s1.Stats()
	return repairMeasurement{
		Keys:               keys,
		WireBytes:          (st0.WireBytes - base0.WireBytes) + (st1.WireBytes - base1.WireBytes),
		TreeRounds:         st1.TreeRounds - base1.TreeRounds,
		RepairPayloadBytes: st0.RepairBytes - base0.RepairBytes,
	}
}

// TestRepairBytesProportionalToDivergence is the pinned guarantee of
// the Merkle drill-down: repairing one diverged key in a large shard
// costs O(log n) hash exchange plus one key's payload, at least 100x
// below the flat anti-entropy's full-shard ship. The shard here is kept
// to tens of thousands of keys so the pin runs in the ordinary test
// suite; the BENCH_repair.json artifact measures the 1M-key point.
func TestRepairBytesProportionalToDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("repair ratio pin stages ~50k-key stores; skipped under -short")
	}
	const keys = 40000
	tree := measureRepair(t, keys, false)
	flat := measureRepair(t, keys, true)
	ratio := float64(flat.WireBytes) / float64(tree.WireBytes)
	t.Logf("1 diverged key in %d: drill-down = %d B (%d rounds, %d payload), full ship = %d B (%.0fx)",
		keys, tree.WireBytes, tree.TreeRounds, tree.RepairPayloadBytes, flat.WireBytes, ratio)
	if ratio < 100 {
		t.Errorf("drill-down repair = %d B is not 100x below full ship = %d B (%.1fx)",
			tree.WireBytes, flat.WireBytes, ratio)
	}
	// The drill is log-depth: level queries down the tree plus the want.
	if tree.TreeRounds < 2 || tree.TreeRounds > 10 {
		t.Errorf("TreeRounds = %d, want a log-depth handful", tree.TreeRounds)
	}
}

// repairBenchArtifact is the BENCH_repair.json schema: the measured
// tree and flat repairs of one diverged key plus their ratio.
type repairBenchArtifact struct {
	Tree  repairMeasurement `json:"tree"`
	Flat  repairMeasurement `json:"flat"`
	Ratio float64           `json:"flat_over_tree_x"`
}

// TestWriteRepairBenchArtifact emits BENCH_repair.json, the
// machine-readable repair-path numbers at scale (default one diverged
// key in a 1M-key shard; BENCH_REPAIR_KEYS overrides for smoke runs).
// Gated behind BENCH_REPAIR_OUT so the ordinary test run never pays for
// benchmarking; CI sets it and uploads the artifact.
func TestWriteRepairBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_REPAIR_OUT")
	if out == "" {
		t.Skip("set BENCH_REPAIR_OUT=<path> to write the repair benchmark artifact")
	}
	keys := 1_000_000
	if env := os.Getenv("BENCH_REPAIR_KEYS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1000 {
			t.Fatalf("BENCH_REPAIR_KEYS = %q: need an integer >= 1000", env)
		}
		keys = n
	}
	art := repairBenchArtifact{
		Tree: measureRepair(t, keys, false),
		Flat: measureRepair(t, keys, true),
	}
	art.Ratio = float64(art.Flat.WireBytes) / float64(art.Tree.WireBytes)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	t.Logf("1 diverged key in %d: drill-down = %d B, full ship = %d B (%.0fx)",
		keys, art.Tree.WireBytes, art.Flat.WireBytes, art.Ratio)
}
