package transport

import (
	"encoding/json"
	"os"
	"sort"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// benchRecvFrame builds one encoded inbound frame shaped like a sender's
// sync tick: objectsPerShard small GSet deltas batched per shard, for
// every shard in [0, shards), keys hash-routed so the frame is exactly
// what a real peer of a shards-wide store would emit.
func benchRecvFrame(tb testing.TB, shards, objectsPerShard int) []byte {
	tb.Helper()
	mask := uint32(shards - 1)
	items := make([]protocol.ShardItem, 0, shards)
	for sh := 0; sh < shards; sh++ {
		keys := keysOnShard(mask, uint32(sh), objectsPerShard)
		oms := make([]protocol.ObjectMsg, 0, len(keys))
		for i, k := range keys {
			// One element per δ-group: the steady-state tick ships what
			// changed since the last one, typically a single op per key.
			oms = append(oms, protocol.ObjectMsg{Key: k, Inner: gsetDelta(sh*100+i, 1)})
		}
		items = append(items, protocol.ShardItem{Shard: uint32(sh), Msg: protocol.BatchOf(oms)})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Shard < items[j].Shard })
	return encodeFrame(tb, protocol.NewShardedMsg(items))
}

// deliverEager replicates the pre-refactor inbound path for baseline
// comparison: decode the whole frame eagerly (the caller does that part),
// then lock each item's shard separately and deliver through the
// batch-materializing engine entry point, flushing any replies on a fresh
// goroutine. Kept test-local so the production path cannot regress into
// it silently — BenchmarkDeliver measures both.
func deliverEager(s *Store, from string, msg protocol.Msg) {
	b := newOutBatch()
	var reply *protocol.DigestMsg
	switch m := msg.(type) {
	case *protocol.ShardedMsg:
		for _, it := range m.Items {
			idx := int(it.Shard)
			if idx >= len(s.shards) {
				continue
			}
			sh := s.shards[idx]
			sh.mu.Lock()
			sh.engine.Deliver(from, it.Msg, b.sender(it.Shard))
			sh.markDirty()
			sh.mu.Unlock()
		}
		if s.hasWatchers() {
			for _, it := range m.Items {
				bm, ok := it.Msg.(*protocol.BatchMsg)
				if !ok {
					continue
				}
				for _, om := range bm.Items {
					switch om.Inner.Kind() {
					case "ack", "sb-digest":
						continue
					}
					s.notifyWatchers(om.Key)
				}
			}
		}
		reply = eagerCompareDigests(s, m.Digests)
	case *protocol.DigestMsg:
		// The pre-refactor serveWants allocated its dedup scratch fresh
		// per request; the baseline keeps doing so.
		s.serveWants(from, m.Want, make([]bool, len(s.shards)))
		reply = eagerCompareDigests(s, m.Digests)
	default:
		return
	}
	if len(b.order) == 0 && reply == nil {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if reply != nil {
			data, err := codec.EncodeMsg(reply)
			if err != nil {
				panic(err)
			}
			s.transmit(from, data, reply.Cost(), frameDigest)
		}
		s.flush(b, nil)
	}()
}

// eagerCompareDigests replicates the pre-refactor flat digest
// comparison for the baseline: every differing shard is re-requested on
// every advertisement, with no in-flight dedup and no drill-down.
func eagerCompareDigests(s *Store, digests []uint64) *protocol.DigestMsg {
	if len(digests) != len(s.shards) {
		return nil
	}
	var want []uint32
	for i, sh := range s.shards {
		if s.shardDigest(sh) != digests[i] {
			want = append(want, uint32(i))
		}
	}
	if len(want) == 0 {
		return nil
	}
	return protocol.NewDigestMsg(nil, want, protocol.DigestCost(nil, want))
}

// preRefactorRR replicates the pre-refactor BP+RR engine's Deliver for
// the baseline: Δ(d, x) was computed unconditionally, so every redundant
// re-delivery — the steady state this benchmark measures — paid a fresh
// bottom plus one materialized singleton per irreducible before
// discovering there was nothing to keep. The production engine now
// short-circuits on d ⊑ x; the baseline store must not inherit that, or
// the comparison stops being against the pre-refactor path.
type preRefactorRR struct {
	cfg protocol.Config
	x   lattice.State
}

func newPreRefactorRR(cfg protocol.Config) protocol.Engine {
	return &preRefactorRR{cfg: cfg, x: cfg.Datatype.New()}
}

func (e *preRefactorRR) ID() string             { return e.cfg.ID }
func (e *preRefactorRR) State() lattice.State   { return e.x }
func (e *preRefactorRR) LocalOp(op workload.Op) {}
func (e *preRefactorRR) Sync(protocol.Sender)   {}

func (e *preRefactorRR) Deliver(from string, m protocol.Msg, _ protocol.Sender) {
	dm, ok := m.(*protocol.DeltaMsg)
	if !ok {
		return
	}
	d := dm.Delta.Bottom()
	dm.Delta.Irreducibles(func(y lattice.State) bool {
		if !y.Leq(e.x) {
			d.Merge(y)
		}
		return true
	})
	if d.IsBottom() {
		return
	}
	e.x.Merge(d)
}

func (e *preRefactorRR) Memory() metrics.Memory { return metrics.Memory{} }

// recvShape is one benchmarked frame shape.
type recvShape struct {
	name            string
	shards          int // store and frame width
	objectsPerShard int
}

// recvShapes are the two inbound shapes the README quotes: "hot" is the
// steady-state sync tick (a few objects across a few shards — the shape a
// replica receives every interval), "bulk" a backlog-sized frame (64
// shards × 32 objects, the packer benchmark's shape).
var recvShapes = []recvShape{
	{name: "hot", shards: 4, objectsPerShard: 1},
	{name: "bulk", shards: 64, objectsPerShard: 32},
}

// BenchmarkDeliver measures the inbound frame path end to end — frame
// bytes to applied shard engines — for the single-pass view path against
// the eager decode-then-lock-per-item baseline it replaced. Deliveries
// are steady-state: the frame's deltas are already applied, so the inner
// engines drop them as redundant and the measurement isolates the wire
// path (unpack, locking, routing) rather than first-contact state growth.
func BenchmarkDeliver(b *testing.B) {
	for _, shape := range recvShapes {
		frame := benchRecvFrame(b, shape.shards, shape.objectsPerShard)
		items := shape.shards * shape.objectsPerShard
		b.Run(shape.name+"/view", func(b *testing.B) {
			s := startSoloStore(b, shape.shards)
			if err := s.deliver("peer", frame); err != nil { // warmup: create the objects
				b.Fatalf("deliver: %v", err)
			}
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.deliver("peer", frame); err != nil {
					b.Fatalf("deliver: %v", err)
				}
			}
			b.ReportMetric(float64(items), "items/op")
		})
		b.Run(shape.name+"/eager-baseline", func(b *testing.B) {
			s := startSoloStoreWith(b, shape.shards, newPreRefactorRR)
			if err := s.deliver("peer", frame); err != nil {
				b.Fatalf("deliver: %v", err)
			}
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The pre-refactor readFrame allocated a fresh buffer and
				// sender string per frame; charge the baseline for both.
				buf := make([]byte, len(frame))
				copy(buf, frame)
				from := string([]byte("peer"))
				msg, _, err := codec.DecodeMsg(buf)
				if err != nil {
					b.Fatalf("decode: %v", err)
				}
				deliverEager(s, from, msg)
			}
			b.ReportMetric(float64(items), "items/op")
		})
	}
}

// recvBenchEntry is one measured configuration in BENCH_recv.json.
type recvBenchEntry struct {
	Shape         string  `json:"shape"`
	Path          string  `json:"path"`
	ItemsPerFrame int     `json:"items_per_frame"`
	FrameBytes    int     `json:"frame_bytes"`
	NsPerOp       float64 `json:"ns_per_op"`
	MBPerSec      float64 `json:"mb_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	AllocsPerItem float64 `json:"allocs_per_item"`
	BytesAllocOp  int64   `json:"bytes_alloc_per_op"`
}

// recvBenchArtifact is the BENCH_recv.json schema: the measured entries
// plus the view-vs-baseline ratios per shape.
type recvBenchArtifact struct {
	Entries []recvBenchEntry   `json:"entries"`
	Ratios  map[string]float64 `json:"ratios"`
}

// TestWriteRecvBenchArtifact emits BENCH_recv.json, the machine-readable
// receive-path numbers (throughput and allocations for both shapes and
// both paths, with speedup ratios). Gated behind BENCH_RECV_OUT so the
// ordinary test run never pays for benchmarking; CI sets it and uploads
// the artifact.
func TestWriteRecvBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_RECV_OUT")
	if out == "" {
		t.Skip("set BENCH_RECV_OUT=<path> to write the receive-path benchmark artifact")
	}
	art := recvBenchArtifact{Ratios: make(map[string]float64)}
	for _, shape := range recvShapes {
		frame := benchRecvFrame(t, shape.shards, shape.objectsPerShard)
		items := shape.shards * shape.objectsPerShard
		measure := func(path string, factory protocol.Factory, loop func(s *Store, b *testing.B)) recvBenchEntry {
			var s *Store
			res := testing.Benchmark(func(b *testing.B) {
				if s == nil {
					s = startSoloStoreWith(b, shape.shards, factory)
					if err := s.deliver("peer", frame); err != nil {
						b.Fatalf("warmup: %v", err)
					}
				}
				b.SetBytes(int64(len(frame)))
				b.ReportAllocs()
				b.ResetTimer()
				loop(s, b)
			})
			e := recvBenchEntry{
				Shape:         shape.name,
				Path:          path,
				ItemsPerFrame: items,
				FrameBytes:    len(frame),
				NsPerOp:       float64(res.NsPerOp()),
				MBPerSec:      float64(len(frame)) * 1e3 / float64(res.NsPerOp()),
				AllocsPerOp:   res.AllocsPerOp(),
				AllocsPerItem: float64(res.AllocsPerOp()) / float64(items),
				BytesAllocOp:  res.AllocedBytesPerOp(),
			}
			art.Entries = append(art.Entries, e)
			return e
		}
		view := measure("view", protocol.NewDeltaBPRR(), func(s *Store, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.deliver("peer", frame); err != nil {
					b.Fatalf("deliver: %v", err)
				}
			}
		})
		eager := measure("eager-baseline", newPreRefactorRR, func(s *Store, b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf := make([]byte, len(frame))
				copy(buf, frame)
				from := string([]byte("peer"))
				msg, _, err := codec.DecodeMsg(buf)
				if err != nil {
					b.Fatalf("decode: %v", err)
				}
				deliverEager(s, from, msg)
			}
		})
		art.Ratios[shape.name+"_throughput_x"] = eager.NsPerOp / view.NsPerOp
		art.Ratios[shape.name+"_allocs_per_item_x"] = eager.AllocsPerItem / view.AllocsPerItem

		// The codec layer in isolation: frame bytes to shard-grouped,
		// lock-routable items (BenchmarkUnpack's comparison), without the
		// per-item CRDT decode+join both deliver paths share.
		codecMeasure := func(path string, loop func(b *testing.B)) recvBenchEntry {
			res := testing.Benchmark(func(b *testing.B) {
				b.SetBytes(int64(len(frame)))
				b.ReportAllocs()
				loop(b)
			})
			e := recvBenchEntry{
				Shape:         shape.name,
				Path:          path,
				ItemsPerFrame: items,
				FrameBytes:    len(frame),
				NsPerOp:       float64(res.NsPerOp()),
				MBPerSec:      float64(len(frame)) * 1e3 / float64(res.NsPerOp()),
				AllocsPerOp:   res.AllocsPerOp(),
				AllocsPerItem: float64(res.AllocsPerOp()) / float64(items),
				BytesAllocOp:  res.AllocedBytesPerOp(),
			}
			art.Entries = append(art.Entries, e)
			return e
		}
		uview := codecMeasure("unpack-view", func(b *testing.B) {
			var v codec.FrameView
			for i := 0; i < b.N; i++ {
				if err := codec.UnpackFrame(frame, shape.shards, &v); err != nil {
					b.Fatalf("UnpackFrame: %v", err)
				}
			}
		})
		udec := codecMeasure("unpack-decode-baseline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := codec.DecodeMsg(frame); err != nil {
					b.Fatalf("DecodeMsg: %v", err)
				}
			}
		})
		art.Ratios[shape.name+"_unpack_throughput_x"] = udec.NsPerOp / uview.NsPerOp
		// The view path's steady state allocates nothing, which would make
		// the literal ratio infinite (and unrepresentable in JSON); floor
		// the denominator at one allocation per op.
		va := uview.AllocsPerOp
		if va < 1 {
			va = 1
		}
		art.Ratios[shape.name+"_unpack_allocs_per_item_x"] = float64(udec.AllocsPerOp) / float64(va)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	for k, v := range art.Ratios {
		t.Logf("%s = %.2f", k, v)
	}
}
