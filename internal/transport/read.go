package transport

import (
	"sort"
	"strings"

	"crdtsync/internal/lattice"
)

// Query visits every object of one shard under that shard's lock, in
// sorted key order, without cloning: fn receives each object's live state.
// It is the zero-allocation bulk read — Get clones a whole object per
// call, Query hands out len(shard) states for free — at the price of a
// narrower contract: fn must not mutate the state, must not retain it
// past the callback, and must not call back into the store (the shard
// lock is held). Returning false stops the visit. Out-of-range shard
// indices visit nothing; NumShards bounds the valid range.
func (s *Store) Query(shard int, fn func(key string, st lattice.State) bool) {
	if shard < 0 || shard >= len(s.shards) {
		return
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, k := range sh.engine.Keys() {
		st := sh.engine.ObjectState(k)
		if st == nil {
			continue
		}
		if !fn(k, st) {
			return
		}
	}
}

// View runs fn on one object's live state under its shard lock and
// reports whether the key exists. It is the single-key form of Query,
// with the same zero-clone contract: fn must not mutate or retain the
// state and must not call back into the store.
func (s *Store) View(key string, fn func(st lattice.State)) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.engine.ObjectState(key)
	if st == nil {
		return false
	}
	fn(st)
	return true
}

// Scan visits every object whose key starts with prefix, across all
// shards, in globally sorted key order — deterministic regardless of the
// shard count or hash layout. The matching keys are collected first with
// a bounded lock hold per shard (each shard's sorted key slice is
// range-searched, not walked), then each object is visited under its own
// shard lock, so no lock is held across fn calls on different shards and
// a long scan never freezes a shard for its whole duration. Consequently
// Scan is not a snapshot: objects mutated between collection and visit
// are seen in their newer state, and fn observes live states under the
// same zero-clone contract as Query. Returning false stops the scan.
func (s *Store) Scan(prefix string, fn func(key string, st lattice.State) bool) {
	var keys []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		all := sh.engine.Keys() // sorted within the shard
		lo := sort.SearchStrings(all, prefix)
		hi := lo
		for hi < len(all) && strings.HasPrefix(all[hi], prefix) {
			hi++
		}
		keys = append(keys, all[lo:hi]...)
		sh.mu.Unlock()
	}
	sort.Strings(keys)
	for _, k := range keys {
		sh := s.shardOf(k)
		sh.mu.Lock()
		st := sh.engine.ObjectState(k)
		ok := true
		if st != nil {
			ok = fn(k, st)
		}
		sh.mu.Unlock()
		if !ok {
			return
		}
	}
}
