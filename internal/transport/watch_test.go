package transport_test

import (
	"fmt"
	"testing"
	"time"

	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// TestWatchDeliversCoalesced checks the basic contract: a watcher sees
// every locally updated key under its prefix exactly via (coalesced)
// events, other prefixes stay invisible, and Close ends the stream.
func TestWatchDeliversCoalesced(t *testing.T) {
	st := startSoloStore(t, 8)
	w := st.Watch("user/", 0)

	st.Update(workload.Op{Kind: workload.KindInc, Key: "user/alice", N: 1})
	st.Update(workload.Op{Kind: workload.KindInc, Key: "item/sword", N: 1}) // wrong prefix
	st.Update(workload.Op{Kind: workload.KindInc, Key: "user/bob", N: 1})
	st.Update(workload.Op{Kind: workload.KindInc, Key: "user/alice", N: 1}) // may coalesce

	seen := map[string]int{}
	deadline := time.After(5 * time.Second)
	for len(seen) < 2 {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatal("Events closed early")
			}
			if ev.Lagged {
				t.Fatalf("unexpected Lagged mark on %q", ev.Key)
			}
			seen[ev.Key]++
		case <-deadline:
			t.Fatalf("timed out waiting for events, saw %v", seen)
		}
	}
	if seen["user/alice"] == 0 || seen["user/bob"] == 0 || seen["item/sword"] != 0 {
		t.Fatalf("wrong event set: %v", seen)
	}
	w.Close()
	if _, ok := <-w.Events(); ok {
		// Draining any residual events until close is fine; just insist
		// the channel closes.
		for range w.Events() {
		}
	}
}

// TestWatchAcrossReplicas checks that remote changes arriving through
// frame delivery notify watchers too: a watcher on replica B sees keys
// updated on replica A.
func TestWatchAcrossReplicas(t *testing.T) {
	stores := startStoreCluster(t, 2, 8, protocol.NewDeltaBPRR(), 10*time.Millisecond)
	w := stores[1].Watch("key-", 0)
	const n = 20
	for i := 0; i < n; i++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", i), N: 1})
	}
	seen := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(seen) < n {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatal("Events closed early")
			}
			seen[ev.Key] = true
		case <-deadline:
			t.Fatalf("timed out: watcher saw %d/%d remote keys", len(seen), n)
		}
	}
}

// TestWatchLaggedAndBounded is the churn battery: a watcher that never
// reads while updates hammer the store (1) never stalls updates or sync
// ticks, (2) drops notifications once its bounded buffer fills and counts
// them in Stats, and (3) delivers the Lagged mark on the first event the
// revived consumer reads.
func TestWatchLaggedAndBounded(t *testing.T) {
	st := startSoloStore(t, 8)
	const buf = 16
	w := st.Watch("", buf)

	// Stall the pump: fill the Events channel (cap 16) plus the batch the
	// pump is blocked sending, then keep writing distinct keys until the
	// pending set must overflow. Nobody reads w.Events() yet.
	const keys = 512
	start := time.Now()
	for i := 0; i < keys; i++ {
		st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("churn-%04d", i), N: 1})
	}
	updateDur := time.Since(start)

	// Updates against a wedged watcher must stay fast: the offer path is
	// a non-blocking map insert. 512 updates in multiple seconds would
	// mean the watcher is applying backpressure to the write path.
	if updateDur > 2*time.Second {
		t.Fatalf("512 updates took %s against a stalled watcher", updateDur)
	}

	// The sync loop must also stay responsive while the watcher is
	// wedged: a manual tick is bounded.
	tickStart := time.Now()
	st.SyncNow()
	if d := time.Since(tickStart); d > 2*time.Second {
		t.Fatalf("SyncNow took %s against a stalled watcher", d)
	}

	// With 512 distinct keys against a 16-key pending buffer (+16 channel
	// slots and one in-flight batch), notifications must have been
	// dropped and counted.
	waitFor(t, 5*time.Second, func() bool { return st.Stats().WatchDropped > 0 })
	dropped := st.Stats().WatchDropped
	if dropped == 0 {
		t.Fatal("no WatchDropped counted despite overflow")
	}

	// Revive the consumer: drain everything currently flowing. The
	// watcher must surface the drop as a Lagged mark, and the total
	// delivered+dropped must stay bounded (coalescing means "delivered"
	// counts distinct keys, not updates).
	sawLagged := false
	delivered := 0
	deadline := time.After(10 * time.Second)
drain:
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				break drain
			}
			delivered++
			if ev.Lagged {
				sawLagged = true
			}
			if sawLagged && delivered > buf {
				break drain // lagged mark seen and stream keeps flowing; enough
			}
		case <-deadline:
			break drain
		}
	}
	if !sawLagged {
		t.Fatalf("consumer never saw Lagged mark (delivered %d events, %d dropped)", delivered, dropped)
	}
	if delivered == 0 {
		t.Fatal("no events delivered after revival")
	}
	w.Close()
}

// TestWatchAfterClose pins the shutdown contract: Watch on a closed
// store returns an already-closed watcher (Events closed, no leaked
// pump), and Watch racing Close never hangs Close.
func TestWatchAfterClose(t *testing.T) {
	st := startSoloStore(t, 4)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	w := st.Watch("", 0)
	select {
	case _, ok := <-w.Events():
		if ok {
			t.Fatal("event from a watcher on a closed store")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Events of a post-Close watcher not closed")
	}
	w.Close() // must stay idempotent on the dead watcher

	// Race Close against a storm of Watch calls: Close must return and
	// every watcher's Events channel must end up closed.
	st2 := startSoloStore(t, 4)
	watchers := make(chan *transport.Watcher, 4096)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				close(watchers)
				return
			default:
				watchers <- st2.Watch("", 4)
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- st2.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung while racing Watch")
	}
	close(stop)
	for w := range watchers {
		deadline := time.After(5 * time.Second)
		for open := true; open; {
			select {
			case _, ok := <-w.Events():
				open = ok // drain pre-close events; channel must close
			case <-deadline:
				t.Fatal("a raced watcher's Events never closed")
			}
		}
	}
}

// waitFor polls cond until it holds or the timeout elapses.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchChurnRace runs watchers, updates, scans and closes
// concurrently; its assertions are the race detector's.
func TestWatchChurnRace(t *testing.T) {
	st := startSoloStore(t, 8)
	stop := make(chan struct{})
	done := make(chan struct{}, 4)

	// Writer: hammers a rotating key window.
	go func() {
		defer func() { done <- struct{}{} }()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("race-%03d", i%100), N: 1})
			i++
		}
	}()
	// Reader: consumes one watcher.
	w := st.Watch("race-", 8)
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			select {
			case <-stop:
				return
			case _, ok := <-w.Events():
				if !ok {
					return
				}
			}
		}
	}()
	// Churner: opens and closes short-lived watchers.
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ww := st.Watch("race-0", 4)
			time.Sleep(time.Millisecond)
			ww.Close()
		}
	}()
	// Ticker: keeps the sync loop churning manually too.
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.SyncNow()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	for i := 0; i < 4; i++ {
		<-done
	}
	w.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
