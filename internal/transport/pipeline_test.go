package transport_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// gcounters is the per-key datatype every pipeline test replicates.
func gcounters(string) workload.Datatype { return workload.GCounterType{} }

// startStoreClusterWith boots n fully meshed stores on loopback ("s-00",
// "s-01", …), letting customize adjust each store's config (Dial
// wrappers, Listener wrappers, queue lengths) after the common fields are
// filled in.
func startStoreClusterWith(t *testing.T, n int, template transport.StoreConfig, customize func(i int, id string, cfg *transport.StoreConfig)) []*transport.Store {
	t.Helper()
	template.ID = "s"
	stores, err := transport.LoopbackClusterWith(n, template, customize)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	for _, st := range stores {
		st := st
		t.Cleanup(func() { st.Close() })
	}
	return stores
}

// waitQueuesDrained polls until every peer pipeline of st has an empty
// queue — every enqueued frame has been written or dropped.
func waitQueuesDrained(t *testing.T, st *transport.Store, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		queued := 0
		for _, ps := range st.Stats().Peers {
			queued += ps.Queued
		}
		if queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d frames still queued after %s", st.ID(), queued, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stallConn delays every Write by delay while stalled, modeling a peer
// whose link is up but pathologically slow. Healing (closing the healed
// channel) releases in-flight and future writes immediately.
type stallConn struct {
	net.Conn
	stalled *atomic.Bool
	healed  chan struct{}
	delay   time.Duration
}

func (c *stallConn) Write(p []byte) (int, error) {
	if c.stalled.Load() {
		timer := time.NewTimer(c.delay)
		select {
		case <-timer.C:
		case <-c.healed:
			timer.Stop()
		}
	}
	return c.Conn.Write(p)
}

// TestStoreSlowPeerIsolation is the head-of-line-blocking guarantee of
// the per-peer write pipeline: with one peer's writes stalled well past a
// second, frames between the two healthy replicas must keep flowing at
// tick latency, the stalled link's bounded queue must overflow (drops
// counted against that peer only), and after the stall heals the cluster
// must fully converge via queue drain plus digest repair. Under the old
// lock-held synchronous transmit this test deadlines: every tick's write
// to the sick peer held the connection mutex for the stall duration,
// delaying the healthy peer's frames behind it.
func TestStoreSlowPeerIsolation(t *testing.T) {
	const sickDelay = 1500 * time.Millisecond
	var sick atomic.Bool
	sick.Store(true)
	healed := make(chan struct{})
	// Healthy stores dial s-02 through a stalling wrapper; their link to
	// each other stays clean.
	slowDial := func(id, addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		if id == "s-02" {
			return &stallConn{Conn: c, stalled: &sick, healed: healed, delay: sickDelay}, nil
		}
		return c, nil
	}
	stores := startStoreClusterWith(t, 3, transport.StoreConfig{
		Shards:  8,
		Factory: protocol.NewDeltaBPRR(),
		ObjType: gcounters,
		// Plain deltas are cleared after send, so every frame the stall
		// queue evicts is protocol-level loss: convergence after heal
		// proves the digest path repairs what drop-oldest discarded.
		DigestEvery:  2,
		SyncEvery:    15 * time.Millisecond,
		PeerQueueLen: 4,
	}, func(i int, id string, cfg *transport.StoreConfig) {
		if id != "s-02" {
			cfg.Dial = slowDial
		}
	})

	// Background writes keep every tick shipping frames to both peers,
	// so the sick link's 4-deep queue overflows while the stall holds.
	stopLoad := make(chan struct{})
	var loadWg sync.WaitGroup
	loadWg.Add(1)
	go func() {
		defer loadWg.Done()
		for k := 0; ; k++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("bg-%03d", k%40), N: 1})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Healthy-path latency: markers written on s-00 must reach s-01 at
	// tick latency, never gated on the 1.5s-per-frame link to s-02.
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("marker-%d", i)
		start := time.Now()
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: key, N: 1})
		for stores[1].Get(key) == nil {
			if time.Since(start) > time.Second {
				t.Fatalf("healthy peer s-01 waited >1s for %s: head-of-line blocking on the stalled link", key)
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Logf("marker %d: s-00 -> s-01 in %s with s-02 stalled at %s/frame",
			i, time.Since(start).Round(time.Millisecond), sickDelay)
	}

	// Keep loading until both healthy stores' sick links have demonstrably
	// overflowed, then stop the writers. (Both, not just s-00: with digest
	// piggybacking the healthy stores no longer pad their queues with
	// standalone heartbeat frames, so s-01's slower relay traffic needs a
	// few more ticks than s-00's direct writes to fill a 4-deep queue.)
	for deadline := time.Now().Add(20 * time.Second); ; {
		if stores[0].Stats().Peers["s-02"].Dropped > 0 && stores[1].Stats().Peers["s-02"].Dropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled link never overflowed its queue")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stopLoad)
	loadWg.Wait()

	// Drops are confined to the sick link: each healthy store dropped
	// toward s-02 and toward no one else, and s-02's own outbound
	// pipelines (whose connections are clean) dropped nothing.
	for _, st := range stores[:2] {
		peers := st.Stats().Peers
		if peers["s-02"].Dropped == 0 {
			t.Errorf("%s: no queue drops toward stalled s-02 (enqueued %d)", st.ID(), peers["s-02"].Enqueued)
		}
		for id, ps := range peers {
			if id != "s-02" && ps.Dropped != 0 {
				t.Errorf("%s dropped %d frames toward healthy %s, want 0", st.ID(), ps.Dropped, id)
			}
		}
	}
	for id, ps := range stores[2].Stats().Peers {
		if ps.Dropped != 0 {
			t.Errorf("s-02 dropped %d frames toward %s, want 0 (its own links are clean)", ps.Dropped, id)
		}
	}

	// Heal. The sick queues drain (newest frames survived drop-oldest)
	// and digest anti-entropy repairs everything that was evicted.
	sick.Store(false)
	close(healed)
	wantKeys := stores[0].NumKeys() // every write targeted s-00
	if err := transport.WaitConverged(stores, wantKeys, 60*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	repairs := 0
	for _, st := range stores {
		repairs += st.Stats().RepairShards
	}
	if repairs == 0 {
		t.Error("convergence after heal never used digest repair, yet frames were dropped")
	}
}

// TestStoreQueueOverflowReconnectAndRepair pins the bounded-queue
// arithmetic and the reconnect path: against an unreachable peer the
// pipeline must keep at most PeerQueueLen+1 frames alive (everything else
// drop-oldest-evicted and counted), report backoff state, and — once the
// peer heals — reconnect, drain, and let digest anti-entropy repair the
// dropped frames to exact convergence.
func TestStoreQueueOverflowReconnectAndRepair(t *testing.T) {
	const (
		keys     = 60
		queueLen = 4
	)
	var down atomic.Bool
	down.Store(true)
	failDial := func(id, addr string) (net.Conn, error) {
		if down.Load() {
			return nil, fmt.Errorf("injected: %s unreachable", id)
		}
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:       8,
		Factory:      protocol.NewDeltaBPRR(),
		ObjType:      gcounters,
		DigestEvery:  2,
		SyncEvery:    10 * time.Millisecond,
		PeerQueueLen: queueLen,
	}, func(i int, id string, cfg *transport.StoreConfig) {
		if id == "s-00" {
			cfg.Dial = failDial
		}
	})

	// Load over many ticks so plenty of distinct frames hit the dead
	// pipeline (one data frame per dirty tick, digests every other tick).
	for k := 0; k < keys; k++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
		if k%6 == 5 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	var ps transport.PeerStats
	for deadline := time.Now().Add(20 * time.Second); ; {
		ps = stores[0].Stats().Peers["s-01"]
		if ps.Dropped > 0 && ps.Enqueued > queueLen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never overflowed: %+v", ps)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Bounded-queue invariant: every enqueued frame is queued, in flight
	// (at most one), or dropped. A gap means uncounted loss or an
	// unbounded queue.
	if alive := ps.Enqueued - ps.Dropped; alive > queueLen+1 {
		t.Errorf("queue accounting leak: %d frames unaccounted for (enqueued %d, dropped %d, cap %d)",
			alive, ps.Enqueued, ps.Dropped, queueLen)
	}
	if ps.Reconnects != 0 {
		t.Errorf("reconnects = %d while peer is down, want 0 (never connected)", ps.Reconnects)
	}
	// The pipeline must be reporting its failure, not pretending health.
	if ps.State != transport.PeerBackoff && ps.State != transport.PeerConnecting {
		t.Errorf("pipeline state = %q while peer unreachable, want backoff/connecting", ps.State)
	}

	// Heal: the next attempt reconnects, the queue drains, and the
	// digest heartbeat repairs every dropped frame's keys.
	down.Store(false)
	if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	ps = stores[0].Stats().Peers["s-01"]
	if ps.Reconnects == 0 {
		t.Error("healed pipeline never counted a reconnect")
	}
	if ps.State != transport.PeerUp {
		t.Errorf("healed pipeline state = %q, want %q", ps.State, transport.PeerUp)
	}
	if repairs := stores[0].Stats().RepairShards; repairs == 0 {
		t.Error("digest repair never served a shard, yet frames were dropped")
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		for _, st := range stores {
			got := st.Get(key)
			if got == nil {
				t.Fatalf("%s missing on %s", key, st.ID())
			}
			if v := got.(*crdt.GCounter).Value(); v != 1 {
				t.Errorf("%s on %s = %d, want 1", key, st.ID(), v)
			}
		}
	}
}

// TestStoreByteBudgetedQueueInvariant pins the byte half of the bounded
// queue: frames vary ~100x in size, so against an unreachable peer the
// pipeline must keep at most PeerQueueBytes + one frame of enqueued bytes
// alive (everything older evicted by bytes and counted in DroppedBytes),
// whatever the frame count says — and once the peer heals, drain plus
// digest repair still reach exact convergence.
func TestStoreByteBudgetedQueueInvariant(t *testing.T) {
	const (
		keys     = 80
		budget   = 4 << 10
		maxFrame = 1 << 10
	)
	var down atomic.Bool
	down.Store(true)
	failDial := func(id, addr string) (net.Conn, error) {
		if down.Load() {
			return nil, fmt.Errorf("injected: %s unreachable", id)
		}
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:         8,
		Factory:        protocol.NewDeltaBPRR(),
		ObjType:        gcounters,
		DigestEvery:    2,
		SyncEvery:      10 * time.Millisecond,
		MaxFrameBytes:  maxFrame,
		PeerQueueBytes: budget,
	}, func(i int, id string, cfg *transport.StoreConfig) {
		if id == "s-00" {
			cfg.Dial = failDial
		}
	})

	// Load over many ticks so plenty of frames of real size hit the dead
	// pipeline, then watch the ledger: the byte budget must bind long
	// before the 128-frame count cap does.
	checkInvariant := func(ps transport.PeerStats) {
		t.Helper()
		if alive := ps.EnqueuedBytes - ps.DroppedBytes; alive > budget+maxFrame {
			t.Fatalf("byte accounting leak: %d bytes alive (enqueued %d, dropped %d, budget %d + frame %d)",
				alive, ps.EnqueuedBytes, ps.DroppedBytes, budget, maxFrame)
		}
		if ps.QueuedBytes > budget+maxFrame {
			t.Fatalf("queue holds %d bytes, budget %d + frame %d", ps.QueuedBytes, budget, maxFrame)
		}
	}
	for k := 0; k < keys; k++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
		if k%8 == 7 {
			time.Sleep(10 * time.Millisecond)
			checkInvariant(stores[0].Stats().Peers["s-01"])
		}
	}
	var ps transport.PeerStats
	for deadline := time.Now().Add(20 * time.Second); ; {
		ps = stores[0].Stats().Peers["s-01"]
		checkInvariant(ps)
		if ps.DroppedBytes > 0 && ps.EnqueuedBytes > budget {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("byte budget never bound: %+v", ps)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ps.Dropped >= ps.Enqueued {
		t.Fatalf("every frame dropped (%d of %d): eviction must spare the newest", ps.Dropped, ps.Enqueued)
	}

	// Heal: drain, digest repair, exact convergence.
	down.Store(false)
	if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		if v := stores[1].Get(key).(*crdt.GCounter).Value(); v != 1 {
			t.Errorf("%s on s-01 = %d, want 1", key, v)
		}
	}
}

// gateConn blocks every write until the gate channel is closed, modeling
// a peer that accepts the connection but does not make progress; frames
// pile up in the sender's queue behind the blocked one.
type gateConn struct {
	net.Conn
	gate <-chan struct{}
}

func (c *gateConn) Write(p []byte) (int, error) {
	<-c.gate
	return c.Conn.Write(p)
}

// TestStoreDrainCoalescesQueuedFrames pins drain coalescing: data frames
// that piled up behind a blocked write go out merged into fewer, larger
// frames once the link unblocks (counted per peer in Coalesced), and the
// receiver decodes the merged frame into exactly the original updates.
func TestStoreDrainCoalescesQueuedFrames(t *testing.T) {
	const ticks = 6
	gate := make(chan struct{})
	gatedDial := func(id, addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		return &gateConn{Conn: c, gate: gate}, nil
	}
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:    8,
		Factory:   protocol.NewDeltaBPRR(),
		ObjType:   gcounters,
		SyncEvery: time.Hour, // ticks driven manually
	}, func(i int, id string, cfg *transport.StoreConfig) {
		if id == "s-00" {
			cfg.Dial = gatedDial
		}
	})

	// Each tick enqueues one data frame; the writer blocks on the first,
	// so the rest are queued when the gate opens.
	for i := 0; i < ticks; i++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", i), N: 1})
		stores[0].SyncNow()
	}
	close(gate)
	waitStoresConverged(t, stores, ticks, 10*time.Second)
	ps := stores[0].Stats().Peers["s-01"]
	if ps.Coalesced == 0 {
		t.Errorf("drain coalesced no frames (enqueued %d): the backlog went out frame by frame", ps.Enqueued)
	}
	if ps.Dropped != 0 {
		t.Errorf("coalescing dropped %d frames, want 0: merging must be lossless", ps.Dropped)
	}
	for i := 0; i < ticks; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if v := stores[1].Get(key).(*crdt.GCounter).Value(); v != 1 {
			t.Errorf("%s on s-01 = %d, want 1", key, v)
		}
	}
}

// TestStoreCloseDrainsQueuedFrames pins the graceful-drain half of Close:
// frames enqueued by a final SyncNow must reach a healthy peer even
// though Close runs immediately after — the pipelines flush before the
// connections come down.
func TestStoreCloseDrainsQueuedFrames(t *testing.T) {
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:    4,
		Factory:   protocol.NewDeltaBPRR(),
		ObjType:   gcounters,
		SyncEvery: time.Hour, // ticks driven manually
	}, nil)
	stores[0].Update(workload.Op{Kind: workload.KindInc, Key: "parting-shot", N: 1})
	stores[0].SyncNow()
	if err := stores[0].Close(); err != nil && !isUseOfClosed(err) {
		t.Fatalf("close: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for stores[1].Get("parting-shot") == nil {
		if time.Now().After(deadline) {
			t.Fatal("frame enqueued before Close never arrived: drain is not graceful")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
