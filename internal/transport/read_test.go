package transport_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// startSoloStore boots one peerless store for read-path tests: no sync
// traffic, just the sharded keyspace.
func startSoloStore(t *testing.T, shards int) *transport.Store {
	t.Helper()
	st, err := transport.StartStore(transport.StoreConfig{
		ID:         "solo",
		ListenAddr: "127.0.0.1:0",
		Peers:      map[string]string{},
		Shards:     shards,
		Factory:    protocol.NewDeltaBPRR(),
		ObjType:    func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:  time.Hour, // ticks never fire during the test
	})
	if err != nil {
		t.Fatalf("start store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestKeysSortedAcrossShards pins Store.Keys' contract: globally sorted
// key order, independent of how the hash scattered keys over shards, so
// example output and test diffs are deterministic.
func TestKeysSortedAcrossShards(t *testing.T) {
	st := startSoloStore(t, 8)
	const n = 200
	want := make([]string, 0, n)
	for i := n - 1; i >= 0; i-- { // inserted in reverse order on purpose
		k := fmt.Sprintf("key-%04d", i)
		want = append(want, k)
		st.Update(workload.Op{Kind: workload.KindInc, Key: k, N: 1})
	}
	sort.Strings(want)
	got := st.Keys()
	if len(got) != n {
		t.Fatalf("Keys returned %d keys, want %d", len(got), n)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Keys not sorted: %v...", got[:10])
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestGetCloneIsolation pins the contract Query deliberately relaxes:
// mutating the state returned by Get must never corrupt the store.
func TestGetCloneIsolation(t *testing.T) {
	st := startSoloStore(t, 4)
	st.Update(workload.Op{Kind: workload.KindInc, Key: "hits", N: 7})

	got := st.Get("hits").(*crdt.GCounter)
	if got.Value() != 7 {
		t.Fatalf("Get value = %d, want 7", got.Value())
	}
	// Scribble all over the returned snapshot.
	got.Inc("attacker", 1000)
	got.Merge(crdt.NewGCounter().Inc("other", 5000))

	if v := st.Get("hits").(*crdt.GCounter).Value(); v != 7 {
		t.Fatalf("store corrupted through Get snapshot: value = %d, want 7", v)
	}
	st.View("hits", func(live lattice.State) {
		if v := live.(*crdt.GCounter).Value(); v != 7 {
			t.Fatalf("live state corrupted through Get snapshot: value = %d, want 7", v)
		}
	})
}

// TestQueryVisitsShardSorted checks Query's contract: exactly the one
// shard's live objects, in sorted key order, and early stop on false.
func TestQueryVisitsShardSorted(t *testing.T) {
	st := startSoloStore(t, 8)
	const n = 64
	for i := 0; i < n; i++ {
		st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", i), N: uint64(i + 1)})
	}
	seen := map[string]uint64{}
	for shard := 0; shard < st.NumShards(); shard++ {
		var prev string
		st.Query(shard, func(key string, s lattice.State) bool {
			if key <= prev && prev != "" {
				t.Fatalf("shard %d visited %q after %q (not sorted)", shard, key, prev)
			}
			prev = key
			if _, dup := seen[key]; dup {
				t.Fatalf("key %q visited by two shards", key)
			}
			seen[key] = s.(*crdt.GCounter).Value()
			return true
		})
	}
	if len(seen) != n {
		t.Fatalf("Query visited %d keys across shards, want %d", len(seen), n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if seen[k] != uint64(i+1) {
			t.Fatalf("key %q value %d, want %d", k, seen[k], i+1)
		}
	}
	// Early stop: at most one visit.
	visits := 0
	st.Query(0, func(string, lattice.State) bool { visits++; return false })
	if visits > 1 {
		t.Fatalf("Query kept visiting after false: %d visits", visits)
	}
	// Out-of-range shards visit nothing rather than panic.
	st.Query(-1, func(string, lattice.State) bool { t.Fatal("visited shard -1"); return false })
	st.Query(st.NumShards(), func(string, lattice.State) bool { t.Fatal("visited shard N"); return false })
}

// TestQueryAllocFree pins the acceptance criterion: Query must not
// allocate per visited object (Get, by contrast, clones every state).
func TestQueryAllocFree(t *testing.T) {
	st := startSoloStore(t, 1) // one shard: every key in shard 0
	const n = 512
	for i := 0; i < n; i++ {
		st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%04d", i), N: 1})
	}
	var sum uint64
	visit := func(key string, s lattice.State) bool {
		sum += s.(*crdt.GCounter).Value()
		return true
	}
	allocs := testing.AllocsPerRun(20, func() {
		st.Query(0, visit)
	})
	if sum == 0 {
		t.Fatal("Query visited nothing")
	}
	// Zero allocations for the whole 512-object visit — i.e. strictly
	// allocation-free per object, not merely cheap.
	if allocs != 0 {
		t.Fatalf("Query allocated %.1f times per 512-object visit, want 0", allocs)
	}
}

// TestScanPrefixSortedAcrossShards checks Scan's determinism: globally
// sorted key order regardless of shard layout, exact prefix filtering,
// and early stop.
func TestScanPrefixSortedAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		st := startSoloStore(t, shards)
		var wantUsers []string
		for i := 0; i < 50; i++ {
			u := fmt.Sprintf("user/%04d", i)
			wantUsers = append(wantUsers, u)
			st.Update(workload.Op{Kind: workload.KindInc, Key: u, N: 1})
			st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("item/%04d", i), N: 1})
		}
		sort.Strings(wantUsers)
		var got []string
		st.Scan("user/", func(key string, s lattice.State) bool {
			if !strings.HasPrefix(key, "user/") {
				t.Fatalf("shards=%d: Scan(user/) visited %q", shards, key)
			}
			if s == nil || s.(*crdt.GCounter).Value() != 1 {
				t.Fatalf("shards=%d: Scan visited %q with wrong state %v", shards, key, s)
			}
			got = append(got, key)
			return true
		})
		if len(got) != len(wantUsers) {
			t.Fatalf("shards=%d: Scan visited %d keys, want %d", shards, len(got), len(wantUsers))
		}
		for i := range got {
			if got[i] != wantUsers[i] {
				t.Fatalf("shards=%d: Scan[%d] = %q, want %q (order must be global, not per-shard)",
					shards, i, got[i], wantUsers[i])
			}
		}
		// Early stop.
		visits := 0
		st.Scan("user/", func(string, lattice.State) bool { visits++; return false })
		if visits != 1 {
			t.Fatalf("shards=%d: Scan kept visiting after false: %d visits", shards, visits)
		}
		// A prefix matching nothing visits nothing.
		st.Scan("nope/", func(k string, _ lattice.State) bool { t.Fatalf("visited %q", k); return false })
	}
}

// TestViewZeroCloneSingleKey checks View finds live state and reports
// missing keys.
func TestViewZeroCloneSingleKey(t *testing.T) {
	st := startSoloStore(t, 4)
	st.Update(workload.Op{Kind: workload.KindInc, Key: "hits", N: 3})
	found := st.View("hits", func(s lattice.State) {
		if v := s.(*crdt.GCounter).Value(); v != 3 {
			t.Fatalf("View value = %d, want 3", v)
		}
	})
	if !found {
		t.Fatal("View did not find existing key")
	}
	if st.View("missing", func(lattice.State) { t.Fatal("fn called for missing key") }) {
		t.Fatal("View claimed a missing key exists")
	}
}
