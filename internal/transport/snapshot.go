package transport

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"crdtsync/internal/codec"
	"crdtsync/internal/lattice"
	"crdtsync/internal/protocol"
)

// This file is the durability layer: a background snapshotter that
// serializes each shard's objects through the canonical codec to one
// atomic-rename file per shard, and the restore path StartStore runs
// before joining the mesh. Recovery needs no new protocol — a replica
// restored from a stale snapshot is exactly the divergence digest
// anti-entropy and the Merkle drill-down already repair, so repair cost
// after a crash is proportional to snapshot staleness, not keyspace
// size.

// defaultSnapshotEvery is the snapshot period when SnapshotDir is set
// without an explicit cadence.
const defaultSnapshotEvery = 10 * time.Second

// snapshotPath names one shard's snapshot file.
func snapshotPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.snap", shard))
}

// snapshotLoop writes a snapshot pass every SnapshotEvery until Close.
func (s *Store) snapshotLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SnapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopping:
			return
		case <-ticker.C:
			s.SnapshotNow() // an I/O error retries next tick
		}
	}
}

// SnapshotNow runs one snapshot pass: each shard whose content digest
// moved since its last snapshot is serialized under its own lock and
// written to a temp file renamed into place. Encoding fans out across
// the shard-work pool (each worker still holds only the shard it is
// encoding), while all I/O stays on this one goroutine, draining
// encodings as they complete — the sync loop and inbound deliveries
// only ever wait on a shard currently being encoded, never on I/O.
// Returns the first write error; the pass still visits every shard.
// Note Close does not snapshot: an explicit SnapshotNow before a
// planned shutdown is what makes the restart lossless, a crash restores
// the last periodic pass and repairs the gap.
func (s *Store) SnapshotNow() error {
	if s.cfg.SnapshotDir == "" {
		return errors.New("transport: store has no SnapshotDir")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	var firstErr error
	written, bytes := 0, 0
	write := func(i int, data []byte, digest uint64) {
		if err := writeFileAtomic(snapshotPath(s.cfg.SnapshotDir, i), data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		s.snapLast[i] = digest
		written++
		bytes += len(data)
	}
	if s.workers > 1 {
		type encoded struct {
			idx    int
			data   []byte
			digest uint64
		}
		// The channel's capacity bounds the finished-but-unwritten
		// encodings held in memory to roughly one per worker; the
		// channel receive also orders each shard's snapLast read (in
		// encodeShardSnapshot) before its write below.
		results := make(chan encoded, s.workers)
		go func() {
			defer close(results)
			s.runShardStage(func(_, i int) {
				if data, digest, changed := s.encodeShardSnapshot(i, s.shards[i]); changed {
					results <- encoded{i, data, digest}
				}
			})
		}()
		for r := range results {
			write(r.idx, r.data, r.digest)
		}
	} else {
		for i, sh := range s.shards {
			if data, digest, changed := s.encodeShardSnapshot(i, sh); changed {
				write(i, data, digest)
			}
		}
	}
	if written > 0 {
		s.statsMu.Lock()
		s.stats.SnapshotsWritten += written
		s.stats.SnapshotBytes += bytes
		s.statsMu.Unlock()
	}
	return firstErr
}

// encodeShardSnapshot serializes one shard under a single lock hold, so
// the digest recorded against snapLast and the contents on disk are the
// same cut. changed is false when the shard's digest equals its last
// written snapshot's — nothing to do. A zero digest on a never-written
// shard is indistinguishable from "no snapshot yet" only if the shard's
// actual digest is zero too, in which case its contents are what the
// empty file would restore anyway (the FNV basis of an empty shard is
// nonzero, so in practice every shard writes once).
func (s *Store) encodeShardSnapshot(i int, sh *shard) (data []byte, digest uint64, changed bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d := sh.digestLocked()
	if d == s.snapLast[i] {
		return nil, d, false
	}
	keys := sh.engine.Keys()
	w := codec.NewSnapshotWriter(i, len(s.shards), len(keys))
	for _, k := range keys {
		w.Add(k, sh.engine.ObjectState(k))
	}
	return w.Bytes(), d, true
}

// writeFileAtomic writes data to a sibling temp file, syncs it, and
// renames it over path, so a crash mid-write leaves either the old
// snapshot or the new one — never a torn file (and a torn rename target
// would still be caught by the per-frame checksums on restore).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// restoreSnapshots loads every readable, valid snapshot file from
// SnapshotDir into the engines. Called from StartStore before the
// listener starts delivering, so no locks are contended and the first
// digest advertisement already describes the restored keyspace.
//
// Each file is two-phase: fully decoded (every frame checksummed, the
// record count checked against the manifest) into memory first, applied
// only if the whole file is valid — a corrupt or truncated file
// contributes nothing, exactly as if that shard had never been
// snapshotted, and never panics or partially applies. Keys are re-routed
// by hash rather than trusting the file's recorded shard index, so a
// store restarted with a different shard count still restores everything.
func (s *Store) restoreSnapshots() {
	entries, err := os.ReadDir(s.cfg.SnapshotDir)
	if err != nil {
		return // fresh directory; MkdirAll just created it
	}
	type record struct {
		key string
		st  lattice.State
	}
	restored, corrupt := 0, 0
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || filepath.Ext(name) != ".snap" {
			continue // temp files and strangers are not snapshots
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.SnapshotDir, name))
		if err != nil {
			corrupt++
			continue
		}
		var recs []record
		if _, err := codec.DecodeSnapshot(data, func(key string, st lattice.State) error {
			recs = append(recs, record{key, st})
			return nil
		}); err != nil {
			corrupt++
			continue
		}
		for _, r := range recs {
			sh := s.shardOf(r.key)
			if or, ok := sh.engine.(protocol.ObjectRestorer); ok {
				sh.mu.Lock()
				or.RestoreObject(r.key, r.st)
				sh.markDirty()
				sh.mu.Unlock()
			}
		}
		restored += len(recs)
	}
	if restored > 0 || corrupt > 0 {
		s.statsMu.Lock()
		s.stats.SnapshotRestoredKeys += restored
		s.stats.SnapshotRestoreErrors += corrupt
		s.statsMu.Unlock()
	}
}
