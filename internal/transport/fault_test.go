package transport_test

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// startFaultyCluster mirrors transport.LoopbackCluster but wires one
// fault injector per store (faultFor may return nil for a clean store),
// so tests can cut or degrade individual links and directions.
func startFaultyCluster(t *testing.T, n int, template transport.StoreConfig, faultFor func(i int, id string) *transport.Fault) []*transport.Store {
	t.Helper()
	ids := make([]string, n)
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("s-%02d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	stores := make([]*transport.Store, n)
	for i := range stores {
		peers := make(map[string]string)
		for j := range ids {
			if j != i {
				peers[ids[j]] = addrs[j]
			}
		}
		cfg := template
		cfg.ID = ids[i]
		cfg.Listener = listeners[i]
		cfg.Peers = peers
		cfg.Nodes = ids
		if f := faultFor(i, ids[i]); f != nil {
			cfg.Dial = f.Dialer(nil)
		}
		st, err := transport.StartStore(cfg)
		if err != nil {
			t.Fatalf("start %s: %v", ids[i], err)
		}
		stores[i] = st
		t.Cleanup(func() { st.Close() })
	}
	return stores
}

// TestStoreConvergesUnderFrameLoss drops 20% of all frames on every link
// and demands digest-checked convergence anyway. The plain delta engine
// clears its δ-buffer after each send, so a dropped frame is gone for
// good at the protocol level — only the store's digest anti-entropy can
// observe and repair the divergence. The acked engine additionally
// retransmits, so both repair paths are exercised.
func TestStoreConvergesUnderFrameLoss(t *testing.T) {
	for _, tc := range []struct {
		name        string
		factory     protocol.Factory
		digestEvery int
	}{
		{"digest-repairs-plain-delta", protocol.NewDeltaBPRR(), 1},
		{"acked-retransmits", protocol.NewDeltaAcked(true, true), 0},
		{"acked-plus-digest", protocol.NewDeltaAcked(true, true), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const keys = 90
			fault := transport.NewFault(1)
			fault.SetDropRate(0.2)
			shared := func(int, string) *transport.Fault { return fault }
			stores := startFaultyCluster(t, 3, transport.StoreConfig{
				Shards:      8,
				Factory:     tc.factory,
				ObjType:     func(string) workload.Datatype { return workload.GCounterType{} },
				SyncEvery:   15 * time.Millisecond,
				DigestEvery: tc.digestEvery,
			}, shared)
			// Spread the load over many sync ticks so plenty of distinct
			// frames hit the 20% loss, instead of one giant first batch.
			for k := 0; k < keys; k++ {
				stores[k%3].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
				if k%10 == 9 {
					time.Sleep(5 * time.Millisecond)
				}
			}
			if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
				t.Fatal(err)
			}
			// Convergence must be exact, not just digest-equal: every key
			// carries exactly its one increment, loss notwithstanding.
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%03d", k)
				for _, st := range stores {
					got := st.Get(key)
					if got == nil {
						t.Fatalf("%s missing on %s", key, st.ID())
					}
					if v := got.(*crdt.GCounter).Value(); v != 1 {
						t.Errorf("%s on %s = %d, want 1", key, st.ID(), v)
					}
				}
			}
		})
	}
}

// TestStorePartitionHealsToConvergence cuts one store off from the other
// two, lets both sides write, and demands convergence after the partition
// heals. With the plain delta engine every frame sent into the partition
// is cleared from the δ-buffers and lost, so healing relies entirely on
// the digest exchange noticing that shard digests differ and pulling the
// missing shards in full.
func TestStorePartitionHealsToConvergence(t *testing.T) {
	const keys = 60
	var partitioned atomic.Bool
	partitioned.Store(true)
	side := map[string]int{"s-00": 0, "s-01": 1, "s-02": 1}
	faultFor := func(i int, id string) *transport.Fault {
		f := transport.NewFault(int64(i))
		f.SetSever(func(peer string) bool {
			return partitioned.Load() && side[id] != side[peer]
		})
		return f
	}
	stores := startFaultyCluster(t, 3, transport.StoreConfig{
		Shards:      8,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:   15 * time.Millisecond,
		DigestEvery: 1,
	}, faultFor)
	// Both sides of the partition write disjoint keys.
	for k := 0; k < keys; k++ {
		stores[k%3].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
	}
	// The majority side converges among itself while the minority is cut
	// off: s-01 and s-02 learn each other's keys but never s-00's extra
	// third, and s-00 learns nothing.
	pair := []*transport.Store{stores[1], stores[2]}
	if err := transport.WaitConverged(pair, keys-(keys+2)/3, 30*time.Second, nil); err != nil {
		t.Fatalf("majority side did not converge during partition: %v", err)
	}
	if got := stores[0].NumKeys(); got != (keys+2)/3 {
		t.Fatalf("partitioned store holds %d keys, want only its own %d", got, (keys+2)/3)
	}
	// Heal. Existing connections notice on their next frame; nothing is
	// redialed.
	partitioned.Store(false)
	if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		want := stores[0].Get(key)
		for _, st := range stores[1:] {
			if got := st.Get(key); got == nil || !got.Equal(want) {
				t.Errorf("%s differs on %s after heal", key, st.ID())
			}
		}
	}
	// The digest path must actually have fired: somebody observed
	// divergence and somebody served full shards.
	wants, repairs := 0, 0
	for _, st := range stores {
		s := st.Stats()
		wants += s.WantShards
		repairs += s.RepairShards
	}
	if wants == 0 || repairs == 0 {
		t.Errorf("digest repair never fired: wants=%d repairs=%d", wants, repairs)
	}
}

// TestFaultReorderOnlyIsLossless pins the reorder-only mode: half of all
// outbound frames are held back 5ms (so later frames overtake them), on
// top of a 1ms receive-side delay on every store. The cluster runs the
// plain delta engine with digests DISABLED — an engine with no repair
// path whatsoever — so exact convergence is only possible if reorder mode
// truly never drops or duplicates a frame.
func TestFaultReorderOnlyIsLossless(t *testing.T) {
	const keys = 80
	fault := transport.NewFault(11)
	fault.SetReorder(0.5, 5*time.Millisecond)
	fault.SetRecvDelay(time.Millisecond)
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:      8,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     gcounters,
		SyncEvery:   10 * time.Millisecond,
		DigestEvery: 0, // no repair path: loss would be permanent divergence
	}, func(i int, id string, cfg *transport.StoreConfig) {
		cfg.Dial = fault.Dialer(nil)
		cfg.Listener = fault.Listener(cfg.Listener)
	})
	for k := 0; k < keys; k++ {
		stores[k%2].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 2})
		if k%8 == 7 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
		t.Fatalf("reorder-only faults lost or duplicated a frame: %v", err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		for _, st := range stores {
			if v := st.Get(key).(*crdt.GCounter).Value(); v != 2 {
				t.Errorf("%s on %s = %d, want 2", key, st.ID(), v)
			}
		}
	}
}

// TestFaultRecvReorderOnlyIsLossless pins receive-side reorder: half of
// all inbound frames are parked for 5ms while the frames behind them are
// delivered first — reordering on the receive path, which SetReorder
// (send-only) could not produce and SetRecvDelay cannot either (it holds
// the whole stream back, preserving order). The cluster runs the plain
// delta engine with digests DISABLED — no repair path whatsoever — so
// exact convergence is only possible if recv reorder truly never drops or
// duplicates a frame.
func TestFaultRecvReorderOnlyIsLossless(t *testing.T) {
	const keys = 80
	fault := transport.NewFault(13)
	fault.SetRecvReorder(0.5, 5*time.Millisecond)
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:      8,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     gcounters,
		SyncEvery:   10 * time.Millisecond,
		DigestEvery: 0, // no repair path: loss would be permanent divergence
	}, func(i int, id string, cfg *transport.StoreConfig) {
		cfg.Listener = fault.Listener(cfg.Listener)
	})
	for k := 0; k < keys; k++ {
		stores[k%2].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 2})
		if k%8 == 7 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
		t.Fatalf("recv-reorder faults lost or duplicated a frame: %v", err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		for _, st := range stores {
			if v := st.Get(key).(*crdt.GCounter).Value(); v != 2 {
				t.Errorf("%s on %s = %d, want 2", key, st.ID(), v)
			}
		}
	}
}

// TestFaultPerPeerOverrideBlackholesOnePeer drives ForPeer end to end:
// with only the override (global rates untouched) blackholing s-00's
// frames to s-01, nothing s-00 says arrives — the plain delta engine
// clears its buffers, so only digest repair could ever recover — and
// clearing the override through the same handle heals the link live.
func TestFaultPerPeerOverrideBlackholesOnePeer(t *testing.T) {
	const keys = 30
	fault := transport.NewFault(19)
	fault.ForPeer("s-01").SetDropRate(1)
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:      8,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     gcounters,
		SyncEvery:   10 * time.Millisecond,
		DigestEvery: 2,
	}, func(i int, id string, cfg *transport.StoreConfig) {
		if id == "s-00" {
			cfg.Dial = fault.Dialer(nil)
		}
	})
	for k := 0; k < keys; k++ {
		stores[0].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 1})
	}
	// The override must hold: s-01 hears nothing, despite its own digest
	// advertisements making s-00 ask for every shard (the Want replies
	// are s-00 frames too, and die on the same override).
	time.Sleep(300 * time.Millisecond)
	if got := stores[1].NumKeys(); got != 0 {
		t.Fatalf("per-peer blackhole leaked: s-01 holds %d keys", got)
	}
	fault.ForPeer("s-01").SetDropRate(0)
	if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		if v := stores[1].Get(key).(*crdt.GCounter).Value(); v != 1 {
			t.Errorf("%s on s-01 = %d, want 1", key, v)
		}
	}
}

// TestFaultRecvDropIsPerDirection proves send and receive policies are
// independent: with s-00's receive side a total blackhole, everything
// s-00 says still reaches s-01, while s-00 itself learns nothing — and
// once the receive side heals, the acked engine retransmits its way to
// exact convergence.
func TestFaultRecvDropIsPerDirection(t *testing.T) {
	fault := transport.NewFault(5)
	fault.SetRecvDropRate(1)
	stores := startStoreClusterWith(t, 2, transport.StoreConfig{
		Shards:      8,
		Factory:     protocol.NewDeltaAcked(true, true),
		ObjType:     gcounters,
		SyncEvery:   10 * time.Millisecond,
		DigestEvery: 2,
	}, func(i int, id string, cfg *transport.StoreConfig) {
		if id == "s-00" {
			cfg.Listener = fault.Listener(cfg.Listener)
		}
	})
	stores[0].Update(workload.Op{Kind: workload.KindInc, Key: "from-zero", N: 1})
	stores[1].Update(workload.Op{Kind: workload.KindInc, Key: "from-one", N: 1})
	// Send direction unaffected: s-01 learns s-00's key.
	deadline := time.Now().Add(10 * time.Second)
	for stores[1].Get("from-zero") == nil {
		if time.Now().After(deadline) {
			t.Fatal("s-00's sends blocked by its receive-side faults")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Receive direction blackholed: s-00 must still know only itself,
	// despite s-01 retransmitting at it the whole time.
	time.Sleep(200 * time.Millisecond)
	if got := stores[0].NumKeys(); got != 1 {
		t.Fatalf("receive blackhole leaked: s-00 holds %d keys, want 1", got)
	}
	fault.SetRecvDropRate(0)
	if err := transport.WaitConverged(stores, 2, 30*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"from-zero", "from-one"} {
		for _, st := range stores {
			if v := st.Get(key).(*crdt.GCounter).Value(); v != 1 {
				t.Errorf("%s on %s = %d, want 1", key, st.ID(), v)
			}
		}
	}
}

// TestStoreConvergesUnderDupAndDelay duplicates 30% of frames and delays
// every frame by a few milliseconds (which also reorders them relative to
// replies). Merges are idempotent and acks tolerate replay, so every
// counter must still end at exactly its written value.
func TestStoreConvergesUnderDupAndDelay(t *testing.T) {
	const keys = 60
	fault := transport.NewFault(7)
	fault.SetDupRate(0.3)
	fault.SetDelay(3 * time.Millisecond)
	shared := func(int, string) *transport.Fault { return fault }
	stores := startFaultyCluster(t, 3, transport.StoreConfig{
		Shards:      8,
		Factory:     protocol.NewDeltaAcked(true, true),
		ObjType:     func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:   15 * time.Millisecond,
		DigestEvery: 2,
	}, shared)
	for k := 0; k < keys; k++ {
		stores[k%3].Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("key-%03d", k), N: 3})
	}
	if err := transport.WaitConverged(stores, keys, 60*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		for _, st := range stores {
			if v := st.Get(key).(*crdt.GCounter).Value(); v != 3 {
				t.Errorf("%s on %s = %d, want 3 (duplication double-counted?)", key, st.ID(), v)
			}
		}
	}
}
