package transport

import (
	"sort"
	"strings"
	"sync"
)

// defaultWatchBuffer is the per-watcher pending-key bound used when
// Watch is called with buf <= 0.
const defaultWatchBuffer = 256

// WatchEvent is one change notification: the named object was (possibly)
// modified since the previous event for that key. Notifications are
// conservative — a delivery that turns out to be redundant still
// notifies — and coalesced: any number of changes to one key between two
// reads collapse into a single event.
type WatchEvent struct {
	// Key names the changed object.
	Key string
	// Lagged marks the first event delivered after the watcher's pending
	// buffer overflowed: at least one change notification was dropped
	// since the previous event, so the consumer may have missed keys and
	// should rescan its prefix (Scan) if it needs completeness. Dropped
	// notifications are also counted in StoreStats.WatchDropped.
	Lagged bool
}

// Watcher delivers change notifications for one key prefix, decoupled
// from the store's hot paths by a bounded, per-key-coalescing buffer:
// Update and frame delivery only flip a key in the watcher's pending set
// (O(1), never blocking), and a dedicated pump goroutine turns pending
// keys into WatchEvents on the Events channel in sorted-key batches. A
// consumer that stops reading therefore can never stall the sync loop —
// once its pending set is full, further notifications are dropped,
// counted, and surfaced as a Lagged mark on the next event it does read.
type Watcher struct {
	store  *Store
	prefix string
	cap    int

	mu      sync.Mutex
	pending map[string]struct{}
	lagged  bool

	notify    chan struct{} // capacity 1: "pending is non-empty"
	done      chan struct{}
	out       chan WatchEvent
	closeOnce sync.Once
}

// Watch registers a watcher for every key starting with prefix (the empty
// prefix watches the whole keyspace). buf bounds the number of distinct
// keys the watcher can hold pending between reads (<= 0 means the default
// of 256); a change arriving while the buffer is full is dropped and the
// next delivered event carries the Lagged mark. Close the watcher to
// release it; the store's Close closes every remaining watcher, which
// closes their Events channels. Watch on a closed (or closing) store
// returns an already-closed watcher: its Events channel is closed, so a
// consumer ranging over it stops immediately.
func (s *Store) Watch(prefix string, buf int) *Watcher {
	if buf <= 0 {
		buf = defaultWatchBuffer
	}
	w := &Watcher{
		store:   s,
		prefix:  prefix,
		cap:     buf,
		pending: make(map[string]struct{}),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
		out:     make(chan WatchEvent, 16),
	}
	// Registration and the stopping check share the critical section that
	// Close's closeWatchers snapshot uses, so every watcher is either in
	// that snapshot (and gets closed by it) or observes stopping closed
	// here — a pump goroutine can never outlive Close's wg.Wait, and
	// wg.Add never races a Wait that could have seen a zero counter.
	s.watchMu.Lock()
	select {
	case <-s.stopping:
		s.watchMu.Unlock()
		w.closeOnce.Do(func() { close(w.done) })
		close(w.out) // the pump, which normally closes out, never starts
		return w
	default:
	}
	s.watchers = append(s.watchers, w)
	s.watcherCount.Store(int32(len(s.watchers)))
	s.wg.Add(1)
	s.watchMu.Unlock()
	go w.pump()
	return w
}

// Events returns the channel the watcher's notifications arrive on. It is
// closed when the watcher (or its store) is closed.
func (w *Watcher) Events() <-chan WatchEvent { return w.out }

// Close unregisters the watcher and closes its Events channel. It is
// idempotent and safe to call concurrently with deliveries.
func (w *Watcher) Close() {
	w.closeOnce.Do(func() {
		s := w.store
		s.watchMu.Lock()
		for i, o := range s.watchers {
			if o == w {
				s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
				break
			}
		}
		s.watcherCount.Store(int32(len(s.watchers)))
		s.watchMu.Unlock()
		close(w.done)
	})
}

// offer records one change notification: coalesced if the key is already
// pending, dropped (and marked lagged) if the pending set is full. It
// runs on update and delivery paths and never blocks.
func (w *Watcher) offer(key string) {
	if !strings.HasPrefix(key, w.prefix) {
		return
	}
	dropped := false
	w.mu.Lock()
	if _, ok := w.pending[key]; !ok {
		if len(w.pending) >= w.cap {
			w.lagged = true
			dropped = true
		} else {
			w.pending[key] = struct{}{}
		}
	}
	w.mu.Unlock()
	if dropped {
		w.store.statsMu.Lock()
		w.store.stats.WatchDropped++
		w.store.statsMu.Unlock()
		return
	}
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// pump drains the pending set into the Events channel, batch by batch,
// in sorted key order. Blocking on a slow consumer is its job — the
// pending set keeps absorbing (and eventually dropping) notifications
// upstream while it waits.
func (w *Watcher) pump() {
	defer w.store.wg.Done()
	defer close(w.out)
	for {
		select {
		case <-w.done:
			return
		case <-w.notify:
		}
		for {
			w.mu.Lock()
			if len(w.pending) == 0 {
				w.mu.Unlock()
				break
			}
			keys := make([]string, 0, len(w.pending))
			for k := range w.pending {
				keys = append(keys, k)
			}
			w.pending = make(map[string]struct{})
			lagged := w.lagged
			w.lagged = false
			w.mu.Unlock()
			sort.Strings(keys)
			for _, k := range keys {
				select {
				case w.out <- WatchEvent{Key: k, Lagged: lagged}:
					lagged = false
				case <-w.done:
					return
				}
			}
		}
	}
}

// hasWatchers reports whether any watcher is registered. It is a single
// atomic load — the hot delivery and update paths check it before doing
// any notification work (in particular before materializing item keys
// as strings), so a store nobody watches pays nothing per item.
func (s *Store) hasWatchers() bool {
	return s.watcherCount.Load() > 0
}

// notifyWatchers offers one changed key to every registered watcher.
func (s *Store) notifyWatchers(key string) {
	s.watchMu.RLock()
	for _, w := range s.watchers {
		w.offer(key)
	}
	s.watchMu.RUnlock()
}

// closeWatchers closes every watcher still registered (Store.Close).
func (s *Store) closeWatchers() {
	s.watchMu.RLock()
	open := append([]*Watcher(nil), s.watchers...)
	s.watchMu.RUnlock()
	for _, w := range open {
		w.Close()
	}
}
