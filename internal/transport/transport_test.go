package transport_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// startCluster boots n nodes on loopback with the given edges (pairs of
// node indexes), all running the given factory over GSets.
func startCluster(t *testing.T, n int, edges [][2]int, factory protocol.Factory) []*transport.Node {
	t.Helper()
	ids := make([]string, n)
	nodes := make([]*transport.Node, n)
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	// Bind all listeners first so every address is known before any
	// engine is constructed with its neighbor set.
	for i := range ids {
		ids[i] = fmt.Sprintf("t%02d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	peersOf := make([]map[string]string, n)
	for i := range peersOf {
		peersOf[i] = make(map[string]string)
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		peersOf[a][ids[b]] = addrs[b]
		peersOf[b][ids[a]] = addrs[a]
	}
	for i := 0; i < n; i++ {
		cfg := transport.Config{
			ID:        ids[i],
			Listener:  listeners[i],
			Peers:     peersOf[i],
			Nodes:     ids,
			Datatype:  workload.GSetType{},
			Factory:   factory,
			SyncEvery: 20 * time.Millisecond,
		}
		node, err := transport.Start(cfg)
		if err != nil {
			t.Fatalf("start %s: %v", ids[i], err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	return nodes
}

// waitConverged polls until every node's state equals want.
func waitConverged(t *testing.T, nodes []*transport.Node, want lattice.State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		allEqual := true
		for _, n := range nodes {
			n.Query(func(s lattice.State) {
				if !s.Equal(want) {
					allEqual = false
				}
			})
		}
		if allEqual {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				n.Query(func(s lattice.State) { t.Logf("%s: %v", n.ID(), s) })
			}
			t.Fatal("cluster did not converge in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTwoNodesOverTCP(t *testing.T) {
	nodes := startCluster(t, 2, [][2]int{{0, 1}}, protocol.NewDeltaBPRR())
	nodes[0].Update(workload.Op{Kind: workload.KindAdd, Elem: "from-zero"})
	nodes[1].Update(workload.Op{Kind: workload.KindAdd, Elem: "from-one"})
	want := crdt.NewGSet("from-zero", "from-one")
	waitConverged(t, nodes, want, 5*time.Second)
}

func TestLineClusterMultiHop(t *testing.T) {
	// t00 — t01 — t02: updates must relay through the middle node.
	nodes := startCluster(t, 3, [][2]int{{0, 1}, {1, 2}}, protocol.NewDeltaBPRR())
	nodes[0].Update(workload.Op{Kind: workload.KindAdd, Elem: "end-to-end"})
	want := crdt.NewGSet("end-to-end")
	waitConverged(t, nodes, want, 5*time.Second)
}

func TestRingClusterAllProtocolsOverTCP(t *testing.T) {
	factories := map[string]protocol.Factory{
		"state":       protocol.NewStateBased(),
		"delta-bp+rr": protocol.NewDeltaBPRR(),
		"delta-acked": protocol.NewDeltaAcked(true, true),
		"scuttlebutt": protocol.NewScuttlebutt(),
		"op-based":    protocol.NewOpBased(),
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
			nodes := startCluster(t, 4, edges, f)
			want := crdt.NewGSet()
			for i, n := range nodes {
				e := fmt.Sprintf("elem-%d", i)
				n.Update(workload.Op{Kind: workload.KindAdd, Elem: e})
				want.Add(e)
			}
			waitConverged(t, nodes, want, 10*time.Second)
		})
	}
}

func TestSyncNowImmediate(t *testing.T) {
	nodes := startCluster(t, 2, [][2]int{{0, 1}}, protocol.NewDeltaBPRR())
	nodes[0].Update(workload.Op{Kind: workload.KindAdd, Elem: "now"})
	nodes[0].SyncNow()
	want := crdt.NewGSet("now")
	waitConverged(t, nodes, want, 2*time.Second)
}

func TestQuerySnapshotIsolation(t *testing.T) {
	nodes := startCluster(t, 2, [][2]int{{0, 1}}, protocol.NewDeltaBPRR())
	nodes[0].Update(workload.Op{Kind: workload.KindAdd, Elem: "a"})
	var snapshot lattice.State
	nodes[0].Query(func(s lattice.State) { snapshot = s })
	// Mutating after the query must not affect the snapshot.
	nodes[0].Update(workload.Op{Kind: workload.KindAdd, Elem: "b"})
	if snapshot.Elements() != 1 {
		t.Errorf("snapshot has %d elements, want 1 (isolation broken)", snapshot.Elements())
	}
}

func TestCloseIsClean(t *testing.T) {
	nodes := startCluster(t, 2, [][2]int{{0, 1}}, protocol.NewDeltaBPRR())
	if err := nodes[0].Close(); err != nil && !isUseOfClosed(err) {
		t.Errorf("close: %v", err)
	}
	// Closing twice-adjacent node still works; remaining node survives
	// its peer being down (sends are dropped, no panic).
	nodes[1].Update(workload.Op{Kind: workload.KindAdd, Elem: "alone"})
	nodes[1].SyncNow()
}

func isUseOfClosed(err error) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte("use of closed"))
}
