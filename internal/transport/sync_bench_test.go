package transport

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// benchTickStore builds the tentpole's pinned workload: a 64-shard
// store, every shard dirty each iteration, with one unreachable peer so
// engines emit into a 1-frame write queue (constant-cost eviction, no
// I/O on the timed path).
func benchTickStore(b *testing.B, workers int) (*Store, []string) {
	b.Helper()
	s, err := StartStore(StoreConfig{
		ID:           "n0",
		ListenAddr:   "127.0.0.1:0",
		Peers:        map[string]string{"sink": "127.0.0.1:1"},
		Nodes:        []string{"n0", "sink"},
		Shards:       64,
		Factory:      protocol.NewDeltaBPRR(),
		ObjType:      func(string) workload.Datatype { return workload.GSetType{} },
		SyncEvery:    time.Hour,
		SyncWorkers:  workers,
		PeerQueueLen: 1,
	})
	if err != nil {
		b.Fatalf("StartStore: %v", err)
	}
	b.Cleanup(func() { s.Close() })
	keys := make([]string, 64*32)
	for k := range keys {
		keys[k] = fmt.Sprintf("key-%05d", k)
	}
	return s, keys
}

// BenchmarkSyncTick measures one all-dirty 64-shard sync tick — the
// dirty scan, engine.Sync per shard, item encoding, frame packing and
// enqueue — serial versus fanned across the shard-work pool. Run with
// -cpu 1,2,4,8 for the scaling curve; "pool" sizes itself from
// GOMAXPROCS, so at -cpu 1 the two sub-benchmarks coincide (the pool
// runs inline on the caller).
func BenchmarkSyncTick(b *testing.B) {
	run := func(workers func() int) func(*testing.B) {
		return func(b *testing.B) {
			s, keys := benchTickStore(b, workers())
			for _, k := range keys {
				s.Update(workload.Add(k, "e0"))
			}
			s.SyncNow() // drain the initial state; steady-state deltas follow
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				elem := fmt.Sprintf("e%d", i+1)
				for _, k := range keys {
					s.Update(workload.Add(k, elem))
				}
				b.StartTimer()
				s.SyncNow()
			}
		}
	}
	b.Run("serial", run(func() int { return 1 }))
	b.Run("pool", run(func() int { return runtime.GOMAXPROCS(0) }))
}

// BenchmarkDigestVector measures a full 64-shard digest vector
// recompute (every cached digest invalidated each iteration), serial
// versus pooled. Run with -cpu 1,2,4,8.
func BenchmarkDigestVector(b *testing.B) {
	run := func(workers func() int) func(*testing.B) {
		return func(b *testing.B) {
			s, keys := benchTickStore(b, workers())
			for _, k := range keys {
				s.Update(workload.Add(k, "e0"))
			}
			s.putDigestVec(s.shardDigests()) // warm caches and free list
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, sh := range s.shards {
					sh.digestOK.Store(false)
				}
				b.StartTimer()
				s.putDigestVec(s.shardDigests())
			}
		}
	}
	b.Run("serial", run(func() int { return 1 }))
	b.Run("pool", run(func() int { return runtime.GOMAXPROCS(0) }))
}
