package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, "node-7", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	from, msg, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != "node-7" || string(msg) != "payload" {
		t.Errorf("got (%q, %q)", from, msg)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrameBytes+1)
	_, _, err := readFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	// Header promises 100 bytes; only 10 arrive.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.Write(make([]byte, 10))
	if _, _, err := readFrame(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadFrameBadSenderLength(t *testing.T) {
	// Body too short to hold the declared sender id length.
	for _, body := range [][]byte{
		{},            // no sender-length prefix at all
		{0},           // truncated prefix
		{0, 5, 'a'},   // claims 5 sender bytes, has 1
		{255, 255, 0}, // absurd sender length
	} {
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		buf.Write(hdr[:])
		buf.Write(body)
		if _, _, err := readFrame(&buf); err == nil {
			t.Errorf("body %v: want error, got nil", body)
		}
	}
}

func TestTransmitToUnknownPeerIsDropped(t *testing.T) {
	// Transmitting to a peer id that is not configured must fail cleanly
	// rather than panicking or blocking; Node and Store drop the frame.
	// There is no write pipeline for an unknown peer — pipelines are
	// fixed at construction.
	p := newPeerNet("a", map[string]string{}, nil, nil, queueConfig{})
	if err := p.transmit("stranger", []byte("x")); err == nil {
		t.Error("transmit to unknown peer should fail")
	}
	if got := len(p.peerStats()); got != 0 {
		t.Errorf("peer pipelines = %d, want 0", got)
	}
}
