package transport_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// TestParallelWorkersConvergeUnderFaults runs the full fault battery
// against stores ticking with a 4-wide shard-work pool: 20% frame loss
// and reordering on every link, plus a partition that isolates one
// store while updates land on both sides, healed mid-run. Exact
// convergence afterwards shows the pool's concurrency changes nothing
// the protocol can observe; under -race (CI) it also sweeps the
// worker/coordinator handoffs for data races.
func TestParallelWorkersConvergeUnderFaults(t *testing.T) {
	const keys = 120
	var partitioned atomic.Bool
	partitioned.Store(true)
	side := map[string]int{"s-00": 0, "s-01": 1, "s-02": 1}
	faultFor := func(i int, id string) *transport.Fault {
		f := transport.NewFault(int64(100 + i))
		f.SetDropRate(0.2)
		f.SetReorder(0.3, 3*time.Millisecond)
		f.SetSever(func(peer string) bool {
			return partitioned.Load() && side[id] != side[peer]
		})
		return f
	}
	stores := startFaultyCluster(t, 3, transport.StoreConfig{
		Shards:      16,
		Factory:     protocol.NewDeltaAcked(true, true),
		ObjType:     func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:   15 * time.Millisecond,
		DigestEvery: 2,
		SyncWorkers: 4,
	}, faultFor)
	for k := 0; k < keys; k++ {
		stores[k%3].Update(workload.Inc(fmt.Sprintf("key-%03d", k), 1))
		if k%12 == 11 {
			time.Sleep(5 * time.Millisecond) // let ticks run mid-load
		}
	}
	partitioned.Store(false)
	if err := transport.WaitConverged(stores, keys, 90*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		for _, st := range stores {
			got := st.Get(key)
			if got == nil {
				t.Fatalf("%s missing on %s", key, st.ID())
			}
			if v := got.(*crdt.GCounter).Value(); v != 1 {
				t.Errorf("%s on %s = %d, want 1", key, st.ID(), v)
			}
		}
	}
	for _, st := range stores {
		stats := st.Stats()
		if stats.SyncWorkers != 4 {
			t.Fatalf("%s: SyncWorkers = %d, want 4", st.ID(), stats.SyncWorkers)
		}
		claimed := uint64(0)
		for _, c := range stats.SyncWorkerShards {
			claimed += c
		}
		if claimed == 0 {
			t.Errorf("%s: pool never claimed a shard", st.ID())
		}
	}
}
