package transport

import (
	"encoding/binary"

	"crdtsync/internal/codec"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// The single-pass frame packer. One sync tick's shard items for one peer
// must go out as frames no larger than the configured cap; the packer
// encodes each item exactly once (and, when one shard's batch alone
// overflows a frame, each object message inside it exactly once) and
// greedily accumulates the encoded pieces into frames, so an oversized
// tick costs O(batch) encoding work. Its predecessor re-encoded the
// remaining batch at every binary-split level — O(batch · log frames) —
// which is exactly the kind of outbound-path waste the paper's
// cost-proportional-to-divergence argument forbids.
//
// Frame sizes are computed exactly, not estimated: codec exposes the
// header size for any (accounting, digest vector, item count) combination,
// so a candidate frame is admitted or flushed on its true encoded length.

// packedFrame is one ready-to-ship frame: the encoded ShardedMsg bytes
// plus the accounting the store records at enqueue time.
type packedFrame struct {
	data []byte
	cost metrics.Transmission
	// digests reports that this frame carries the piggybacked vector.
	digests bool
}

// packResult is everything one packFrames call produced.
type packResult struct {
	frames []packedFrame
	// oversized counts irreducible pieces dropped because even alone in a
	// frame they exceed the cap (a single object's message larger than
	// MaxFrameBytes); shipping them could never succeed.
	oversized int
	// encodes counts encoded pieces consumed: exactly one per shard item
	// — whether the packer encoded it here or a pool worker captured it
	// pre-encoded — plus one per object message of each batch that had
	// to split. BenchmarkPack pins this as the no-re-encoding invariant.
	encodes int
	// digestsAttached reports that the digest vector rode one of the
	// frames; when false the caller falls back to a standalone heartbeat.
	digestsAttached bool
}

// shardItemCost is one item's contribution to its frame's accounting:
// the inner message's elements/payload/metadata plus 4 bytes of shard
// routing metadata (matching protocol.NewShardedMsg).
func shardItemCost(it protocol.ShardItem) metrics.Transmission {
	ic := it.Msg.Cost()
	return metrics.Transmission{
		Elements:      ic.Elements,
		PayloadBytes:  ic.PayloadBytes,
		MetadataBytes: ic.MetadataBytes + 4,
	}
}

// framePacker accumulates encoded pieces into one pending frame.
type framePacker struct {
	limit int
	res   packResult
	vec   []uint64 // digest vector still waiting for a frame to ride

	body    []byte // concatenated encoded pieces of the pending frame
	cost    metrics.Transmission
	count   int
	withVec bool // pending frame carries vec
}

// frameCost returns the pending frame's full accounting: the accumulated
// item contributions, one wire message, and — when the digest vector rides
// along — 8 bytes of metadata per digest word.
func (p *framePacker) frameCost(withVec bool) metrics.Transmission {
	c := p.cost
	c.Messages = 1
	if withVec {
		c.MetadataBytes += 8 * len(p.vec)
	}
	return c
}

// tryAdd admits piece into the pending frame if the frame's exact encoded
// size stays within the cap. The digest vector is not considered here: it
// attaches to the flush's final frame (see packFrames), so a receiver has
// merged the whole tick before it compares digests — a vector on an early
// frame of a split tick would advertise state the remaining frames are
// still carrying and provoke spurious shard requests.
func (p *framePacker) tryAdd(piece []byte, c metrics.Transmission) bool {
	nc := p.cost
	nc.Add(c)
	fc := nc
	fc.Messages = 1
	size := codec.ShardedHeaderSize(fc, nil, p.count+1) + len(p.body) + len(piece)
	if size > p.limit {
		return false
	}
	p.body = append(p.body, piece...)
	p.cost = nc
	p.count++
	return true
}

// flush assembles the pending frame (if any) and resets the accumulator.
func (p *framePacker) flush() {
	if p.count == 0 {
		return
	}
	var dv []uint64
	if p.withVec {
		dv = p.vec
	}
	fc := p.frameCost(p.withVec)
	data := make([]byte, 0, codec.ShardedHeaderSize(fc, dv, p.count)+len(p.body))
	data = codec.AppendShardedHeader(data, fc, dv, p.count)
	data = append(data, p.body...)
	p.res.frames = append(p.res.frames, packedFrame{data: data, cost: fc, digests: p.withVec})
	if p.withVec {
		p.res.digestsAttached = true
		p.vec = nil
	}
	p.body = p.body[:0]
	p.cost = metrics.Transmission{}
	p.count = 0
	p.withVec = false
}

// packFrames encodes items once each and packs them greedily into frames
// whose encoded ShardedMsg size never exceeds limit. encs, when non-nil,
// runs parallel to items: a non-nil entry is that item's ShardItem bytes
// already encoded by a tick worker, shipped verbatim (the bytes are
// identical — both paths run the same canonical codec), so the packer
// only encodes items captured without bytes. digests, when non-nil, is
// piggybacked onto the flush's final frame when it has room — after
// every data piece, so the receiver's digest comparison sees the fully
// merged tick — and left unattached (for the caller's standalone
// heartbeat fallback, which likewise follows the data) when it does not.
// Items are emitted in order; an item whose encoding alone overflows an
// empty frame is split at the object level when it is a multi-object
// batch, and dropped (counted) when irreducible.
func packFrames(items []protocol.ShardItem, encs [][]byte, digests []uint64, limit int) (packResult, error) {
	p := &framePacker{limit: limit, vec: digests}
	var scratch []byte
	for idx, it := range items {
		var piece []byte
		if idx < len(encs) {
			piece = encs[idx]
		}
		if piece == nil {
			scratch = scratch[:0]
			var err error
			scratch, err = codec.AppendShardItem(scratch, it)
			if err != nil {
				return p.res, err
			}
			piece = scratch
		}
		p.res.encodes++
		c := shardItemCost(it)
		if p.tryAdd(piece, c) {
			continue
		}
		p.flush()
		if p.tryAdd(piece, c) {
			continue
		}
		// Alone it exceeds the cap: split inside the shard's batch, or
		// drop an irreducible message.
		if bm, ok := it.Msg.(*protocol.BatchMsg); ok && len(bm.Items) > 1 {
			if err := p.packBatch(it.Shard, bm); err != nil {
				return p.res, err
			}
		} else {
			p.res.oversized++
		}
	}
	// The vector rides the final frame when it fits there.
	if p.vec != nil && p.count > 0 {
		if codec.ShardedHeaderSize(p.frameCost(true), p.vec, p.count)+len(p.body) <= p.limit {
			p.withVec = true
		}
	}
	p.flush()
	return p.res, nil
}

// packBatch splits one shard's oversized batch across frames: each object
// message is encoded once and packed greedily into frames carrying a
// single shard item (a partial batch for the same shard). Called with the
// pending frame empty.
func (p *framePacker) packBatch(shard uint32, bm *protocol.BatchMsg) error {
	var (
		scratch []byte
		body    []byte
		count   int
		acc     metrics.Transmission // partial batch accounting sans base
	)
	// batchCost mirrors protocol.BatchOf: one message, 8 bytes of sequence
	// metadata plus the keys, inner elements/payload summed (the inner
	// per-message metadata is replaced by the batch's).
	batchCost := func(a metrics.Transmission) metrics.Transmission {
		return metrics.Transmission{
			Messages:      1,
			Elements:      a.Elements,
			PayloadBytes:  a.PayloadBytes,
			MetadataBytes: 8 + a.MetadataBytes,
		}
	}
	// wrapCost mirrors protocol.NewShardedMsg over one item.
	wrapCost := func(bc metrics.Transmission) metrics.Transmission {
		return metrics.Transmission{
			Messages:      1,
			Elements:      bc.Elements,
			PayloadBytes:  bc.PayloadBytes,
			MetadataBytes: bc.MetadataBytes + 4,
		}
	}
	size := func(bc, fc metrics.Transmission, count, bodyLen int) int {
		return codec.ShardedHeaderSize(fc, nil, 1) +
			codec.SizeUvarint(uint64(shard)) +
			codec.BatchHeaderSize(bc, count) + bodyLen
	}
	flush := func() {
		if count == 0 {
			return
		}
		bc := batchCost(acc)
		fc := wrapCost(bc)
		data := make([]byte, 0, size(bc, fc, count, len(body)))
		data = codec.AppendShardedHeader(data, fc, nil, 1)
		data = binary.AppendUvarint(data, uint64(shard))
		data = codec.AppendBatchHeader(data, bc, count)
		data = append(data, body...)
		p.res.frames = append(p.res.frames, packedFrame{data: data, cost: fc})
		body = body[:0]
		count = 0
		acc = metrics.Transmission{}
	}
	for _, om := range bm.Items {
		scratch = scratch[:0]
		var err error
		scratch, err = codec.AppendObjectMsg(scratch, om)
		if err != nil {
			return err
		}
		p.res.encodes++
		ic := om.Inner.Cost()
		contrib := metrics.Transmission{
			Elements:      ic.Elements,
			PayloadBytes:  ic.PayloadBytes,
			MetadataBytes: len(om.Key),
		}
		admitted := false
		for try := 0; try < 2 && !admitted; try++ {
			na := acc
			na.Add(contrib)
			bc := batchCost(na)
			if size(bc, wrapCost(bc), count+1, len(body)+len(scratch)) <= p.limit {
				body = append(body, scratch...)
				acc = na
				count++
				admitted = true
			} else if count > 0 {
				flush()
			} else {
				p.res.oversized++
				break
			}
		}
	}
	flush()
	return nil
}
