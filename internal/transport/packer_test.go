package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"crdtsync/internal/codec"
	"crdtsync/internal/crdt"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
)

// unit is the indivisible piece of a packed tick for comparison purposes:
// a non-batch shard message, or one object message of a batch (batches
// are the only messages the packer may split). key is empty for non-batch
// units; enc is the canonical encoding of the inner message.
type unit struct {
	shard uint32
	key   string
	enc   string
}

// unitsOf flattens shard items into comparison units.
func unitsOf(t testing.TB, items []protocol.ShardItem) []unit {
	t.Helper()
	var out []unit
	for _, it := range items {
		if bm, ok := it.Msg.(*protocol.BatchMsg); ok {
			for _, om := range bm.Items {
				enc, err := codec.EncodeMsg(om.Inner)
				if err != nil {
					t.Fatalf("encode inner: %v", err)
				}
				out = append(out, unit{shard: it.Shard, key: om.Key, enc: string(enc)})
			}
			continue
		}
		enc, err := codec.EncodeMsg(it.Msg)
		if err != nil {
			t.Fatalf("encode msg: %v", err)
		}
		out = append(out, unit{shard: it.Shard, enc: string(enc)})
	}
	return out
}

// decodeFrames decodes every packed frame (checking the size cap) and
// flattens the carried items back into units; it also returns any digest
// vector found and on which frame.
func decodeFrames(t testing.TB, frames []packedFrame, limit int) (units []unit, digests []uint64, digestFrames int) {
	t.Helper()
	for i, f := range frames {
		if len(f.data) > limit {
			t.Fatalf("frame %d is %d bytes, cap %d", i, len(f.data), limit)
		}
		m, n, err := codec.DecodeMsg(f.data)
		if err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
		if n != len(f.data) {
			t.Fatalf("frame %d: decoded %d of %d bytes", i, n, len(f.data))
		}
		sm, ok := m.(*protocol.ShardedMsg)
		if !ok {
			t.Fatalf("frame %d decoded to %T, want *ShardedMsg", i, m)
		}
		if got := sm.Digests != nil; got != f.digests {
			t.Fatalf("frame %d: digest presence %v, packer said %v", i, got, f.digests)
		}
		if sm.Digests != nil {
			digestFrames++
			digests = sm.Digests
		}
		// Re-encoding the decoded frame must reproduce the packed bytes:
		// the packer writes the same canonical encoding EncodeMsg would.
		re, err := codec.EncodeMsg(sm)
		if err != nil {
			t.Fatalf("frame %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(re, f.data) {
			t.Fatalf("frame %d: packed bytes are not the canonical encoding", i)
		}
		units = append(units, unitsOf(t, sm.Items)...)
	}
	return units, digests, digestFrames
}

// gsetDelta builds a DeltaMsg over a GSet with n elements derived from
// seed — its encoded size grows with n, giving the tests pieces of very
// different sizes.
func gsetDelta(seed, n int) protocol.Msg {
	els := make([]string, n)
	for i := range els {
		els[i] = fmt.Sprintf("el-%d-%d", seed, i)
	}
	s := crdt.NewGSet(els...)
	return protocol.NewDeltaMsg(s, metrics.Transmission{
		Messages: 1, Elements: s.Elements(), PayloadBytes: s.SizeBytes(),
	})
}

// randomItems builds a mixed tick: plain delta messages and multi-object
// batches across shards, sizes spanning roughly two orders of magnitude.
func randomItems(rng *rand.Rand) []protocol.ShardItem {
	n := 1 + rng.Intn(12)
	items := make([]protocol.ShardItem, 0, n)
	for i := 0; i < n; i++ {
		shard := uint32(rng.Intn(64))
		if rng.Intn(2) == 0 {
			items = append(items, protocol.ShardItem{Shard: shard, Msg: gsetDelta(i, 1+rng.Intn(40))})
			continue
		}
		k := 1 + rng.Intn(10)
		oms := make([]protocol.ObjectMsg, 0, k)
		for j := 0; j < k; j++ {
			oms = append(oms, protocol.ObjectMsg{
				Key:   fmt.Sprintf("obj-%d-%d", i, j),
				Inner: gsetDelta(i*100+j, 1+rng.Intn(20)),
			})
		}
		items = append(items, protocol.ShardItem{Shard: shard, Msg: protocol.BatchOf(oms)})
	}
	return items
}

// checkPacked runs the packer over items and verifies the packing
// invariants: every frame within the cap and canonically encoded, and the
// decoded units exactly the input units minus the counted oversized drops
// (exactly equal, in order, when nothing was dropped).
func checkPacked(t testing.TB, items []protocol.ShardItem, digests []uint64, limit int) packResult {
	t.Helper()
	res, err := packFrames(items, nil, digests, limit)
	if err != nil {
		t.Fatalf("packFrames: %v", err)
	}
	got, gotVec, digestFrames := decodeFrames(t, res.frames, limit)
	want := unitsOf(t, items)
	if len(got)+res.oversized != len(want) {
		t.Fatalf("%d units in, %d out + %d oversized", len(want), len(got), res.oversized)
	}
	if res.oversized == 0 {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("unit %d changed: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
	if digestFrames > 1 {
		t.Fatalf("digest vector rode %d frames, want at most 1", digestFrames)
	}
	if res.digestsAttached != (digestFrames == 1) {
		t.Fatalf("digestsAttached = %v but %d digest frames decoded", res.digestsAttached, digestFrames)
	}
	if res.digestsAttached {
		if len(gotVec) != len(digests) {
			t.Fatalf("digest vector arrived with %d words, want %d", len(gotVec), len(digests))
		}
		for i := range digests {
			if gotVec[i] != digests[i] {
				t.Fatalf("digest word %d changed", i)
			}
		}
	}
	return res
}

// TestPackFramesRoundTrip is the packer's property test: across random
// mixed ticks and frame caps, packed frames always decode to exactly the
// input batch (order preserved, batches split only at object boundaries)
// with every frame within the cap.
func TestPackFramesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		items := randomItems(rng)
		limit := 128 + rng.Intn(8192)
		var vec []uint64
		if rng.Intn(2) == 0 {
			vec = make([]uint64, 1+rng.Intn(64))
			for i := range vec {
				vec[i] = rng.Uint64()
			}
		}
		checkPacked(t, items, vec, limit)
	}
}

// TestPackFramesHugeLimitIsOneFrame pins the common case: when everything
// fits, the tick is exactly one frame and the digest vector rides it.
func TestPackFramesHugeLimitIsOneFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := randomItems(rng)
	res := checkPacked(t, items, []uint64{1, 2, 3}, maxFrameBytes)
	if len(res.frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(res.frames))
	}
	if !res.digestsAttached {
		t.Fatal("digest vector did not ride the single frame")
	}
	if res.encodes != len(items) {
		t.Fatalf("encodes = %d, want one per item (%d)", res.encodes, len(items))
	}
}

// TestPackEncodesEachItemOnce pins the single-pass invariant the packer
// exists for: splitting a batch across many frames costs one encoding
// call per object, not one per object per split level. The predecessor's
// recursive halving re-encoded the remaining batch at every level —
// O(B log k) — and this counter is what keeps that from coming back.
func TestPackEncodesEachItemOnce(t *testing.T) {
	const objects = 100
	oms := make([]protocol.ObjectMsg, 0, objects)
	for j := 0; j < objects; j++ {
		oms = append(oms, protocol.ObjectMsg{
			Key:   fmt.Sprintf("obj-%03d", j),
			Inner: gsetDelta(j, 4),
		})
	}
	items := []protocol.ShardItem{{Shard: 3, Msg: protocol.BatchOf(oms)}}
	res := checkPacked(t, items, nil, 512)
	if len(res.frames) < 10 {
		t.Fatalf("cap did not force a split: %d frames", len(res.frames))
	}
	// One encode for the whole batch (discovering it cannot fit), then
	// exactly one per object message.
	if want := 1 + objects; res.encodes != want {
		t.Fatalf("encodes = %d, want %d: the packer re-encoded on split", res.encodes, want)
	}
	if res.oversized != 0 {
		t.Fatalf("%d oversized drops, want 0", res.oversized)
	}
}

// TestPackDropsIrreducibleOversized pins the only unpackable case: a
// single message that alone exceeds the cap is dropped and counted, and
// everything around it still ships.
func TestPackDropsIrreducibleOversized(t *testing.T) {
	items := []protocol.ShardItem{
		{Shard: 0, Msg: gsetDelta(1, 1)},
		{Shard: 1, Msg: gsetDelta(2, 500)}, // far beyond the cap
		{Shard: 2, Msg: gsetDelta(3, 1)},
	}
	res, err := packFrames(items, nil, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.oversized != 1 {
		t.Fatalf("oversized = %d, want 1", res.oversized)
	}
	units, _, _ := decodeFrames(t, res.frames, 128)
	if len(units) != 2 {
		t.Fatalf("%d units survived, want the 2 small ones", len(units))
	}
}

// FuzzPackFrames drives the packer over fuzz-chosen tick shapes and caps:
// whatever the mix, every emitted frame must stay within the cap, decode
// canonically, and account for every input unit as delivered or counted
// oversized.
func FuzzPackFrames(f *testing.F) {
	f.Add(int64(1), uint16(256), false)
	f.Add(int64(2), uint16(64), true)
	f.Add(int64(3), uint16(8192), true)
	f.Add(int64(4), uint16(16), false)
	f.Fuzz(func(t *testing.T, seed int64, cap16 uint16, withDigests bool) {
		rng := rand.New(rand.NewSource(seed))
		items := randomItems(rng)
		var vec []uint64
		if withDigests {
			vec = make([]uint64, 1+rng.Intn(32))
			for i := range vec {
				vec[i] = rng.Uint64()
			}
		}
		// Floor of 16: caps below the smallest possible frame header are
		// legal but degenerate (everything oversized), which the
		// count-accounting check still covers.
		checkPacked(t, items, vec, 16+int(cap16))
	})
}

// benchItems builds a heavy tick: 64 shards, each a batch of 32 small
// per-key deltas — 2048 object messages, the shape of a busy store that
// overflowed its frame cap.
func benchItems() []protocol.ShardItem {
	items := make([]protocol.ShardItem, 0, 64)
	for sh := 0; sh < 64; sh++ {
		oms := make([]protocol.ObjectMsg, 0, 32)
		for j := 0; j < 32; j++ {
			oms = append(oms, protocol.ObjectMsg{
				Key:   fmt.Sprintf("obj:%02d-%02d", sh, j),
				Inner: gsetDelta(sh*32+j, 3),
			})
		}
		items = append(items, protocol.ShardItem{Shard: uint32(sh), Msg: protocol.BatchOf(oms)})
	}
	return items
}

// resplitFrames is the predecessor algorithm, kept here as the benchmark
// baseline: recursively halve the batch, re-encoding the remainder at
// every level, exactly as Store.sendSharded did before the single-pass
// packer replaced it.
func resplitFrames(items []protocol.ShardItem, limit int) (frames [][]byte, oversized int) {
	if len(items) == 0 {
		return nil, 0
	}
	data, err := codec.EncodeMsg(protocol.NewShardedMsg(items))
	if err != nil {
		panic(err)
	}
	if len(data) <= limit {
		return [][]byte{data}, 0
	}
	if len(items) > 1 {
		mid := len(items) / 2
		a, oa := resplitFrames(items[:mid], limit)
		b, ob := resplitFrames(items[mid:], limit)
		return append(a, b...), oa + ob
	}
	if bm, ok := items[0].Msg.(*protocol.BatchMsg); ok && len(bm.Items) > 1 {
		mid := len(bm.Items) / 2
		var out [][]byte
		for _, half := range [][]protocol.ObjectMsg{bm.Items[:mid], bm.Items[mid:]} {
			fs, o := resplitFrames([]protocol.ShardItem{
				{Shard: items[0].Shard, Msg: protocol.BatchOf(half)},
			}, limit)
			out = append(out, fs...)
			oversized += o
		}
		return out, oversized
	}
	return nil, 1
}

// BenchmarkPack pins the packer's one-encode-per-item invariant under the
// benchmark harness and measures it against the recursive re-splitting
// baseline it replaced. Run with -benchmem: the allocation gap is the
// re-encoding work the old algorithm burned per split level.
func BenchmarkPack(b *testing.B) {
	items := benchItems()
	units := 0
	for _, it := range items {
		units += len(it.Msg.(*protocol.BatchMsg).Items)
	}
	// Low enough that every shard's ~1.5 KiB batch must split across
	// frames — the case the two algorithms differ on.
	const limit = 1024
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := packFrames(items, nil, nil, limit)
			if err != nil {
				b.Fatal(err)
			}
			// The invariant, enforced every iteration: every batch had to
			// split (one probe encode per item), then one encode per
			// object message — never one per object per split level.
			if res.encodes != len(items)+units {
				b.Fatalf("encodes = %d, want %d", res.encodes, len(items)+units)
			}
			if res.oversized != 0 {
				b.Fatalf("oversized = %d", res.oversized)
			}
		}
	})
	b.Run("resplit-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frames, oversized := resplitFrames(items, limit)
			if len(frames) == 0 || oversized != 0 {
				b.Fatalf("frames=%d oversized=%d", len(frames), oversized)
			}
		}
	})
}
