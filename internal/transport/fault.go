package transport

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault is a netsim-style fault injector for the TCP transport. Wrapped
// around a store's dialer (StoreConfig.Dial) it intercepts every outbound
// frame; wrapped around its listener (StoreConfig.Listener) it intercepts
// every inbound frame. Each direction has its own drop / duplicate /
// delay / reorder policy, severing links entirely simulates partitions,
// and ForPeer scopes any of the knobs to a single peer, overriding the
// injector-wide rates for that peer only. Faults act on whole frames —
// both wrappers reassemble the length-prefixed framing — so injected loss
// looks like a lost message, never a torn byte stream that would
// desynchronize the receiver's framing and kill the connection.
//
// All knobs are safe to change while connections are live: each frame
// consults the current policy, so a partition heals on existing
// connections without redialing.
type Fault struct {
	mu          sync.Mutex
	rng         *rand.Rand
	send, recv  faultPolicy
	sendReorder reorderPolicy
	recvReorder reorderPolicy
	perPeer     map[string]*peerOverride
	sever       func(peer string) bool
}

// faultPolicy is one direction's frame-fate knobs.
type faultPolicy struct {
	dropRate float64
	dupRate  float64
	delay    time.Duration
}

// reorderPolicy is one direction's reorder-only knobs: with probability
// rate a frame is held for window while later frames pass it.
type reorderPolicy struct {
	rate   float64
	window time.Duration
}

// knobOverride holds one peer's one-direction overrides; nil fields fall
// back to the injector-wide policy, so scoping one knob to a peer leaves
// its other knobs shared.
type knobOverride struct {
	dropRate      *float64
	dupRate       *float64
	delay         *time.Duration
	reorderRate   *float64
	reorderWindow *time.Duration
}

// peerOverride is one peer's two-direction overrides.
type peerOverride struct {
	send, recv knobOverride
}

// faultDir is the direction of a frame relative to the store whose
// injector saw it.
type faultDir int

const (
	dirSend faultDir = iota
	dirRecv
)

// NewFault returns a fault injector seeded for reproducible fate rates
// and no faults enabled. The per-frame fate sequence is only fully
// deterministic when one goroutine writes at a time: with the per-peer
// write pipelines, writers to different peers interleave their rolls in
// scheduler order, so the seed fixes the statistics, not which exact
// frame is hit.
func NewFault(seed int64) *Fault {
	return &Fault{rng: rand.New(rand.NewSource(seed))}
}

// SetDropRate makes each outbound frame independently vanish with
// probability r.
func (f *Fault) SetDropRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.send.dropRate = r
}

// SetDupRate makes each surviving outbound frame arrive twice with
// probability r.
func (f *Fault) SetDupRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.send.dupRate = r
}

// SetDelay holds every surviving outbound frame for d before writing it,
// which also reorders frames relative to later undelayed ones.
func (f *Fault) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.send.delay = d
}

// SetRecvDropRate makes each inbound frame independently vanish with
// probability r, on connections accepted through Listener. Send and
// receive rates are independent: a store can lose everything it is told
// while everything it says still gets out.
func (f *Fault) SetRecvDropRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recv.dropRate = r
}

// SetRecvDupRate makes each surviving inbound frame arrive twice with
// probability r.
func (f *Fault) SetRecvDupRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recv.dupRate = r
}

// SetRecvDelay holds each surviving inbound frame for d before delivering
// it. The hold happens on the connection's read stream, so frames behind
// the held one are delayed with it.
func (f *Fault) SetRecvDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recv.delay = d
}

// SetReorder enables reorder-only mode on the send side: each outbound
// frame is, with probability r, held for window (on top of any uniform
// SetDelay) before being written, so later frames overtake it. Unlike
// SetDropRate/SetDupRate nothing is lost or duplicated while the
// connection lives — convergence under reorder alone must hold even for
// engines that assume reliable (but unordered) channels. A held frame
// whose connection closes before the window elapses is lost like any
// other in-flight bytes, so drive final ticks to quiescence before
// closing when the engine has no repair path.
func (f *Fault) SetReorder(r float64, window time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sendReorder = reorderPolicy{rate: r, window: window}
}

// SetRecvReorder enables reorder-only mode on the receive side: each
// surviving inbound frame is, with probability r, held aside for window
// while frames behind it are delivered first. Unlike SetRecvDelay the
// rest of the stream is not delayed with the held frame, so later frames
// genuinely overtake it; like SetReorder, nothing is lost or duplicated
// while the connection lives.
func (f *Fault) SetRecvReorder(r float64, window time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recvReorder = reorderPolicy{rate: r, window: window}
}

// SetSever installs a per-peer blackhole: while fn returns true for a
// peer, every frame to or from it is dropped. Partition tests flip this
// to cut a store off and later heal it.
func (f *Fault) SetSever(fn func(peer string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sever = fn
}

// ForPeer returns a handle whose setters scope fault knobs to the one
// peer, overriding the injector-wide rates for that peer only: a harness
// can blackhole frames to a single neighbor of a wrapped store while its
// other links stay clean, instead of every peer sharing one policy. Knobs
// never set through the handle keep following the injector-wide values.
func (f *Fault) ForPeer(id string) *PeerFault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.perPeer == nil {
		f.perPeer = make(map[string]*peerOverride)
	}
	o := f.perPeer[id]
	if o == nil {
		o = &peerOverride{}
		f.perPeer[id] = o
	}
	return &PeerFault{f: f, o: o}
}

// PeerFault scopes fault knobs to one peer of the Fault it came from; the
// setters mirror Fault's. Obtain one with ForPeer.
type PeerFault struct {
	f *Fault
	o *peerOverride
}

func (pf *PeerFault) set(fn func(o *peerOverride)) {
	pf.f.mu.Lock()
	defer pf.f.mu.Unlock()
	fn(pf.o)
}

// SetDropRate drops outbound frames to this peer with probability r.
func (pf *PeerFault) SetDropRate(r float64) {
	pf.set(func(o *peerOverride) { o.send.dropRate = &r })
}

// SetDupRate duplicates surviving outbound frames to this peer with
// probability r.
func (pf *PeerFault) SetDupRate(r float64) {
	pf.set(func(o *peerOverride) { o.send.dupRate = &r })
}

// SetDelay holds surviving outbound frames to this peer for d.
func (pf *PeerFault) SetDelay(d time.Duration) {
	pf.set(func(o *peerOverride) { o.send.delay = &d })
}

// SetReorder holds outbound frames to this peer for window with
// probability r while later frames pass.
func (pf *PeerFault) SetReorder(r float64, window time.Duration) {
	pf.set(func(o *peerOverride) { o.send.reorderRate = &r; o.send.reorderWindow = &window })
}

// SetRecvDropRate drops inbound frames from this peer with probability r.
func (pf *PeerFault) SetRecvDropRate(r float64) {
	pf.set(func(o *peerOverride) { o.recv.dropRate = &r })
}

// SetRecvDupRate duplicates surviving inbound frames from this peer with
// probability r.
func (pf *PeerFault) SetRecvDupRate(r float64) {
	pf.set(func(o *peerOverride) { o.recv.dupRate = &r })
}

// SetRecvDelay holds surviving inbound frames from this peer for d.
func (pf *PeerFault) SetRecvDelay(d time.Duration) {
	pf.set(func(o *peerOverride) { o.recv.delay = &d })
}

// SetRecvReorder holds inbound frames from this peer aside for window
// with probability r while frames behind them are delivered first.
func (pf *PeerFault) SetRecvReorder(r float64, window time.Duration) {
	pf.set(func(o *peerOverride) { o.recv.reorderRate = &r; o.recv.reorderWindow = &window })
}

// decide rolls the fate of one frame to or from peer: whether it is
// dropped or duplicated, how long its whole stream is delayed, and how
// long it alone is held aside for reorder.
func (f *Fault) decide(dir faultDir, peer string) (drop, dup bool, delay, hold time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sever != nil && f.sever(peer) {
		return true, false, 0, 0
	}
	pol, ro := f.send, f.sendReorder
	if dir == dirRecv {
		pol, ro = f.recv, f.recvReorder
	}
	if o := f.perPeer[peer]; o != nil {
		k := &o.send
		if dir == dirRecv {
			k = &o.recv
		}
		if k.dropRate != nil {
			pol.dropRate = *k.dropRate
		}
		if k.dupRate != nil {
			pol.dupRate = *k.dupRate
		}
		if k.delay != nil {
			pol.delay = *k.delay
		}
		if k.reorderRate != nil {
			ro.rate = *k.reorderRate
		}
		if k.reorderWindow != nil {
			ro.window = *k.reorderWindow
		}
	}
	drop = pol.dropRate > 0 && f.rng.Float64() < pol.dropRate
	if !drop {
		dup = pol.dupRate > 0 && f.rng.Float64() < pol.dupRate
	}
	delay = pol.delay
	if !drop && ro.rate > 0 && f.rng.Float64() < ro.rate {
		hold = ro.window
	}
	return drop, dup, delay, hold
}

// Dialer wraps base (nil for the default TCP dialer) so every connection
// it establishes passes outbound frames through this injector's
// send-direction policy.
func (f *Fault) Dialer(base DialFunc) DialFunc {
	if base == nil {
		base = defaultDial
	}
	return func(id, addr string) (net.Conn, error) {
		c, err := base(id, addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: c, fault: f, peer: id}, nil
	}
}

// Listener wraps ln so every connection it accepts passes inbound frames
// through this injector's receive-direction policy. Use it as
// StoreConfig.Listener to fault what a store hears independently of what
// it says.
func (f *Fault) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, fault: f}
}

// faultConn applies the send-direction policy frame by frame on the write
// side. Reads pass through untouched: each direction of a link is its own
// TCP connection, and inbound faults are the accepting side's business
// (see Listener).
type faultConn struct {
	net.Conn
	fault *Fault
	peer  string
	mu    sync.Mutex // guards buf and serializes underlying writes
	buf   []byte
}

// Write buffers until whole frames (4-byte length prefix + body) are
// assembled, then decides each frame's fate. The caller always sees a
// full successful write: a dropped frame is loss on the wire, not a send
// error, exactly like the simulator's lossy channels.
func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf = append(c.buf, p...)
	var frames [][]byte
	for {
		if len(c.buf) < 4 {
			break
		}
		total := int(binary.BigEndian.Uint32(c.buf[:4]))
		if total > maxFrameBytes || len(c.buf) < 4+total {
			break
		}
		frame := make([]byte, 4+total)
		copy(frame, c.buf[:4+total])
		c.buf = c.buf[4+total:]
		frames = append(frames, frame)
	}
	c.mu.Unlock()
	for _, frame := range frames {
		if err := c.writeFrame(frame); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

// writeFrame rolls one frame's fate and performs the surviving writes. A
// reorder hold behaves exactly like an extra delay here: delayed frames
// are written from a timer goroutine, so later undelayed frames overtake
// them.
func (c *faultConn) writeFrame(frame []byte) error {
	drop, dup, delay, hold := c.fault.decide(dirSend, c.peer)
	if drop {
		return nil
	}
	delay += hold
	copies := 1
	if dup {
		copies = 2
	}
	if delay > 0 {
		// Delayed frames are written from a timer goroutine; write
		// errors there are indistinguishable from frames lost in flight.
		time.AfterFunc(delay, func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			for i := 0; i < copies; i++ {
				c.Conn.Write(frame)
			}
		})
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < copies; i++ {
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// faultListener wraps accepted connections with the receive-side filter.
type faultListener struct {
	net.Listener
	fault *Fault
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	rc := &recvFaultConn{Conn: c, fault: l.fault}
	rc.cond = sync.NewCond(&rc.mu)
	return rc, nil
}

// recvFaultConn applies the receive-direction policy frame by frame on
// the read side. A pump goroutine (started on the first Read) reassembles
// whole frames from the underlying stream, rolls each frame's fate, and
// appends the survivors to an output buffer the caller's Reads drain: a
// dropped frame looks exactly like one the sender never wrote, a delayed
// frame holds the stream behind it, and a reorder-held frame is parked on
// a timer while the pump keeps delivering the frames behind it — which is
// what lets later frames genuinely overtake it on the receive side. The
// sender id is peeked from each frame for per-peer policies and severing.
// A frame with a hostile length prefix switches the connection to raw
// pass-through — the receiver's own bounds check is about to kill it, and
// the injector must not hide that.
type recvFaultConn struct {
	net.Conn
	fault *Fault

	mu      sync.Mutex
	cond    *sync.Cond
	out     []byte // surviving bytes awaiting delivery to Read
	err     error  // terminal pump error, delivered after out drains
	closed  bool
	started bool
}

// recvFaultBufCap is the soft bound on bytes buffered between the pump
// and the caller's Reads: the pump stops reading the socket while the
// consumer is more than this far behind, restoring the TCP backpressure
// a pull-based reader would exert. Reorder-held frames released by their
// timers may exceed it briefly (a timer cannot block), bounded by what
// the windows hold.
const recvFaultBufCap = 1 << 20

func (c *recvFaultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		c.started = true
		go c.pump()
	}
	for len(c.out) == 0 && c.err == nil {
		c.cond.Wait()
	}
	if len(c.out) == 0 {
		return 0, c.err
	}
	n := copy(p, c.out)
	c.out = c.out[n:]
	// The drain may have opened room for a pump parked at the cap.
	c.cond.Broadcast()
	return n, nil
}

// Close tears the connection down and wakes both the pump (possibly
// parked waiting for buffer room) and any waiting Read.
func (c *recvFaultConn) Close() error {
	err := c.Conn.Close()
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return err
}

// push appends bytes to the output buffer and wakes a waiting Read.
func (c *recvFaultConn) push(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = append(c.out, b...)
	c.cond.Broadcast()
}

// waitRoom parks the pump while the consumer is recvFaultBufCap behind.
func (c *recvFaultConn) waitRoom() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.out) > recvFaultBufCap && c.err == nil && !c.closed {
		c.cond.Wait()
	}
}

// fail records the pump's terminal error and wakes waiting Reads. Frames
// still parked on reorder timers may land after it; a Read drains
// whatever arrived before returning the error, and anything later is
// in-flight loss at connection teardown — the same caveat as send-side
// reorder.
func (c *recvFaultConn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
}

// pump reads frames off the underlying connection and decides their fate
// until the stream ends.
func (c *recvFaultConn) pump() {
	for {
		c.waitRoom()
		var hdr [4]byte
		if _, err := io.ReadFull(c.Conn, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		total := binary.BigEndian.Uint32(hdr[:])
		if total > maxFrameBytes {
			// Hostile length prefix: stop interpreting the stream and
			// pass the rest through raw.
			c.push(hdr[:])
			buf := make([]byte, 32<<10)
			for {
				c.waitRoom()
				n, err := c.Conn.Read(buf)
				if n > 0 {
					c.push(buf[:n])
				}
				if err != nil {
					c.fail(err)
					return
				}
			}
		}
		body := make([]byte, total)
		if _, err := io.ReadFull(c.Conn, body); err != nil {
			c.fail(err)
			return
		}
		drop, dup, delay, hold := c.fault.decide(dirRecv, peerFromFrame(body))
		if drop {
			continue
		}
		if delay > 0 {
			// The hold happens on this connection's read stream, so
			// frames behind the held one arrive late with it.
			time.Sleep(delay)
		}
		copies := 1
		if dup {
			copies = 2
		}
		frame := make([]byte, 0, copies*(4+len(body)))
		for i := 0; i < copies; i++ {
			frame = append(frame, hdr[:]...)
			frame = append(frame, body...)
		}
		if hold > 0 {
			// Parked aside while the pump keeps going: the frames behind
			// this one overtake it.
			time.AfterFunc(hold, func() { c.push(frame) })
			continue
		}
		c.push(frame)
	}
}

// peerFromFrame extracts the sender id from a frame body (2-byte length
// prefix + id); unparseable bodies report an empty peer.
func peerFromFrame(body []byte) string {
	if len(body) < 2 {
		return ""
	}
	n := int(body[0])<<8 | int(body[1])
	if len(body) < 2+n {
		return ""
	}
	return string(body[2 : 2+n])
}
