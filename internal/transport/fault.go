package transport

import (
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault is a netsim-style fault injector for the TCP transport: wrapped
// around a store's dialer (StoreConfig.Dial), it intercepts every
// outbound frame and applies a seeded drop / duplicate / delay policy, or
// severs links entirely to simulate partitions. Faults act on whole
// frames — the wrapper reassembles the length-prefixed framing on the
// write side — so injected loss looks like a lost message, never a torn
// byte stream that would desynchronize the receiver's framing and kill
// the connection.
//
// All knobs are safe to change while connections are live: each frame
// consults the current policy, so a partition heals on existing
// connections without redialing.
type Fault struct {
	mu       sync.Mutex
	rng      *rand.Rand
	dropRate float64
	dupRate  float64
	delay    time.Duration
	sever    func(peer string) bool
}

// NewFault returns a fault injector with a deterministic frame-fate
// sequence derived from seed and no faults enabled.
func NewFault(seed int64) *Fault {
	return &Fault{rng: rand.New(rand.NewSource(seed))}
}

// SetDropRate makes each frame independently vanish with probability r.
func (f *Fault) SetDropRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropRate = r
}

// SetDupRate makes each surviving frame arrive twice with probability r.
func (f *Fault) SetDupRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dupRate = r
}

// SetDelay holds every surviving frame for d before writing it, which
// also reorders frames relative to later undelayed ones.
func (f *Fault) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// SetSever installs a per-peer blackhole: while fn returns true for a
// peer, every frame to it is dropped. Partition tests flip this to cut a
// store off and later heal it.
func (f *Fault) SetSever(fn func(peer string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sever = fn
}

// decide rolls the fate of one frame to peer.
func (f *Fault) decide(peer string) (drop, dup bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sever != nil && f.sever(peer) {
		return true, false, 0
	}
	drop = f.dropRate > 0 && f.rng.Float64() < f.dropRate
	if !drop {
		dup = f.dupRate > 0 && f.rng.Float64() < f.dupRate
	}
	return drop, dup, f.delay
}

// Dialer wraps base (nil for the default TCP dialer) so every connection
// it establishes passes outbound frames through this injector.
func (f *Fault) Dialer(base DialFunc) DialFunc {
	if base == nil {
		base = defaultDial
	}
	return func(id, addr string) (net.Conn, error) {
		c, err := base(id, addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: c, fault: f, peer: id}, nil
	}
}

// faultConn applies the fault policy frame by frame on the write side.
// Reads pass through untouched: faults injected by the writing end of
// each direction cover every link of a mesh when all stores dial through
// the same (or a per-store) injector.
type faultConn struct {
	net.Conn
	fault *Fault
	peer  string
	mu    sync.Mutex // guards buf and serializes underlying writes
	buf   []byte
}

// Write buffers until whole frames (4-byte length prefix + body) are
// assembled, then decides each frame's fate. The caller always sees a
// full successful write: a dropped frame is loss on the wire, not a send
// error, exactly like the simulator's lossy channels.
func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf = append(c.buf, p...)
	var frames [][]byte
	for {
		if len(c.buf) < 4 {
			break
		}
		total := int(binary.BigEndian.Uint32(c.buf[:4]))
		if total > maxFrameBytes || len(c.buf) < 4+total {
			break
		}
		frame := make([]byte, 4+total)
		copy(frame, c.buf[:4+total])
		c.buf = c.buf[4+total:]
		frames = append(frames, frame)
	}
	c.mu.Unlock()
	for _, frame := range frames {
		if err := c.writeFrame(frame); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

// writeFrame rolls one frame's fate and performs the surviving writes.
func (c *faultConn) writeFrame(frame []byte) error {
	drop, dup, delay := c.fault.decide(c.peer)
	if drop {
		return nil
	}
	copies := 1
	if dup {
		copies = 2
	}
	if delay > 0 {
		// Delayed frames are written from a timer goroutine; write
		// errors there are indistinguishable from frames lost in flight.
		time.AfterFunc(delay, func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			for i := 0; i < copies; i++ {
				c.Conn.Write(frame)
			}
		})
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < copies; i++ {
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
	}
	return nil
}
