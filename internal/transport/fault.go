package transport

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault is a netsim-style fault injector for the TCP transport. Wrapped
// around a store's dialer (StoreConfig.Dial) it intercepts every outbound
// frame; wrapped around its listener (StoreConfig.Listener) it intercepts
// every inbound frame. Each direction has its own drop / duplicate /
// delay policy, severing links entirely simulates partitions, and a
// reorder-only mode shuffles frame order without ever losing one. Faults
// act on whole frames — both wrappers reassemble the length-prefixed
// framing — so injected loss looks like a lost message, never a torn byte
// stream that would desynchronize the receiver's framing and kill the
// connection.
//
// All knobs are safe to change while connections are live: each frame
// consults the current policy, so a partition heals on existing
// connections without redialing.
type Fault struct {
	mu            sync.Mutex
	rng           *rand.Rand
	send, recv    faultPolicy
	reorderRate   float64
	reorderWindow time.Duration
	sever         func(peer string) bool
}

// faultPolicy is one direction's frame-fate knobs.
type faultPolicy struct {
	dropRate float64
	dupRate  float64
	delay    time.Duration
}

// faultDir is the direction of a frame relative to the store whose
// injector saw it.
type faultDir int

const (
	dirSend faultDir = iota
	dirRecv
)

// NewFault returns a fault injector seeded for reproducible fate rates
// and no faults enabled. The per-frame fate sequence is only fully
// deterministic when one goroutine writes at a time: with the per-peer
// write pipelines, writers to different peers interleave their rolls in
// scheduler order, so the seed fixes the statistics, not which exact
// frame is hit.
func NewFault(seed int64) *Fault {
	return &Fault{rng: rand.New(rand.NewSource(seed))}
}

// SetDropRate makes each outbound frame independently vanish with
// probability r.
func (f *Fault) SetDropRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.send.dropRate = r
}

// SetDupRate makes each surviving outbound frame arrive twice with
// probability r.
func (f *Fault) SetDupRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.send.dupRate = r
}

// SetDelay holds every surviving outbound frame for d before writing it,
// which also reorders frames relative to later undelayed ones.
func (f *Fault) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.send.delay = d
}

// SetRecvDropRate makes each inbound frame independently vanish with
// probability r, on connections accepted through Listener. Send and
// receive rates are independent: a store can lose everything it is told
// while everything it says still gets out.
func (f *Fault) SetRecvDropRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recv.dropRate = r
}

// SetRecvDupRate makes each surviving inbound frame arrive twice with
// probability r.
func (f *Fault) SetRecvDupRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recv.dupRate = r
}

// SetRecvDelay holds each surviving inbound frame for d before delivering
// it. The hold happens on the connection's read stream, so frames behind
// the held one are delayed with it.
func (f *Fault) SetRecvDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recv.delay = d
}

// SetReorder enables reorder-only mode on the send side: each outbound
// frame is, with probability r, held for window (on top of any uniform
// SetDelay) before being written, so later frames overtake it. Unlike
// SetDropRate/SetDupRate nothing is lost or duplicated while the
// connection lives — convergence under reorder alone must hold even for
// engines that assume reliable (but unordered) channels. A held frame
// whose connection closes before the window elapses is lost like any
// other in-flight bytes, so drive final ticks to quiescence before
// closing when the engine has no repair path.
func (f *Fault) SetReorder(r float64, window time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reorderRate = r
	f.reorderWindow = window
}

// SetSever installs a per-peer blackhole: while fn returns true for a
// peer, every frame to or from it is dropped. Partition tests flip this
// to cut a store off and later heal it.
func (f *Fault) SetSever(fn func(peer string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sever = fn
}

// decide rolls the fate of one frame to or from peer.
func (f *Fault) decide(dir faultDir, peer string) (drop, dup bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sever != nil && f.sever(peer) {
		return true, false, 0
	}
	pol := f.send
	if dir == dirRecv {
		pol = f.recv
	}
	drop = pol.dropRate > 0 && f.rng.Float64() < pol.dropRate
	if !drop {
		dup = pol.dupRate > 0 && f.rng.Float64() < pol.dupRate
	}
	delay = pol.delay
	if dir == dirSend && !drop &&
		f.reorderRate > 0 && f.rng.Float64() < f.reorderRate {
		delay += f.reorderWindow
	}
	return drop, dup, delay
}

// Dialer wraps base (nil for the default TCP dialer) so every connection
// it establishes passes outbound frames through this injector's
// send-direction policy.
func (f *Fault) Dialer(base DialFunc) DialFunc {
	if base == nil {
		base = defaultDial
	}
	return func(id, addr string) (net.Conn, error) {
		c, err := base(id, addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: c, fault: f, peer: id}, nil
	}
}

// Listener wraps ln so every connection it accepts passes inbound frames
// through this injector's receive-direction policy. Use it as
// StoreConfig.Listener to fault what a store hears independently of what
// it says.
func (f *Fault) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, fault: f}
}

// faultConn applies the send-direction policy frame by frame on the write
// side. Reads pass through untouched: each direction of a link is its own
// TCP connection, and inbound faults are the accepting side's business
// (see Listener).
type faultConn struct {
	net.Conn
	fault *Fault
	peer  string
	mu    sync.Mutex // guards buf and serializes underlying writes
	buf   []byte
}

// Write buffers until whole frames (4-byte length prefix + body) are
// assembled, then decides each frame's fate. The caller always sees a
// full successful write: a dropped frame is loss on the wire, not a send
// error, exactly like the simulator's lossy channels.
func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf = append(c.buf, p...)
	var frames [][]byte
	for {
		if len(c.buf) < 4 {
			break
		}
		total := int(binary.BigEndian.Uint32(c.buf[:4]))
		if total > maxFrameBytes || len(c.buf) < 4+total {
			break
		}
		frame := make([]byte, 4+total)
		copy(frame, c.buf[:4+total])
		c.buf = c.buf[4+total:]
		frames = append(frames, frame)
	}
	c.mu.Unlock()
	for _, frame := range frames {
		if err := c.writeFrame(frame); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

// writeFrame rolls one frame's fate and performs the surviving writes.
func (c *faultConn) writeFrame(frame []byte) error {
	drop, dup, delay := c.fault.decide(dirSend, c.peer)
	if drop {
		return nil
	}
	copies := 1
	if dup {
		copies = 2
	}
	if delay > 0 {
		// Delayed frames are written from a timer goroutine; write
		// errors there are indistinguishable from frames lost in flight.
		time.AfterFunc(delay, func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			for i := 0; i < copies; i++ {
				c.Conn.Write(frame)
			}
		})
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < copies; i++ {
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// faultListener wraps accepted connections with the receive-side filter.
type faultListener struct {
	net.Listener
	fault *Fault
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &recvFaultConn{Conn: c, fault: l.fault}, nil
}

// recvFaultConn applies the receive-direction policy frame by frame on
// the read side: whole frames are reassembled from the underlying stream
// and only the survivors are re-emitted to the caller, so a dropped frame
// looks exactly like one the sender never wrote. The sender id is peeked
// from each frame for per-peer severing. A frame with a hostile length
// prefix switches the connection to raw pass-through — the receiver's own
// bounds check is about to kill it, and the injector must not hide that.
type recvFaultConn struct {
	net.Conn
	fault *Fault
	buf   []byte // surviving bytes awaiting delivery
	raw   bool
}

func (c *recvFaultConn) Read(p []byte) (int, error) {
	if c.raw && len(c.buf) == 0 {
		return c.Conn.Read(p)
	}
	for len(c.buf) == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(c.Conn, hdr[:]); err != nil {
			return 0, err
		}
		total := binary.BigEndian.Uint32(hdr[:])
		if total > maxFrameBytes {
			c.raw = true
			c.buf = append(c.buf, hdr[:]...)
			break
		}
		body := make([]byte, total)
		if _, err := io.ReadFull(c.Conn, body); err != nil {
			return 0, err
		}
		drop, dup, delay := c.fault.decide(dirRecv, peerFromFrame(body))
		if drop {
			continue
		}
		if delay > 0 {
			// The hold happens on this connection's read stream, so
			// frames behind the held one arrive late with it.
			time.Sleep(delay)
		}
		copies := 1
		if dup {
			copies = 2
		}
		for i := 0; i < copies; i++ {
			c.buf = append(c.buf, hdr[:]...)
			c.buf = append(c.buf, body...)
		}
	}
	n := copy(p, c.buf)
	c.buf = c.buf[n:]
	return n, nil
}

// peerFromFrame extracts the sender id from a frame body (2-byte length
// prefix + id); unparseable bodies report an empty peer.
func peerFromFrame(body []byte) string {
	if len(body) < 2 {
		return ""
	}
	n := int(body[0])<<8 | int(body[1])
	if len(body) < 2+n {
		return ""
	}
	return string(body[2 : 2+n])
}
