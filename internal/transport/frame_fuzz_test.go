package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hammers the frame parser — the first code hostile bytes
// hit on every connection, and the same framing the fault injector
// reassembles on both the write and read sides — with arbitrary input.
// Any frame it accepts must survive a write/read round trip unchanged.
func FuzzReadFrame(f *testing.F) {
	seed := func(from string, msg []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, from, msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed("node-7", []byte("payload"))
	seed("", nil)
	seed("s-00", bytes.Repeat([]byte{0xab}, 300))
	f.Add([]byte{0, 0, 0, 3, 0, 1, 'a'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})     // length far beyond the cap
	f.Add([]byte{0, 0, 0, 5, 0, 9, 'x', 'y'}) // sender length past the body
	f.Fuzz(func(t *testing.T, data []byte) {
		from, msg, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the interesting part is not crashing
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, from, msg); err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		from2, msg2, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-reading a re-encoded frame failed: %v", err)
		}
		if from2 != from || !bytes.Equal(msg2, msg) {
			t.Fatalf("round trip changed the frame: (%q, %x) != (%q, %x)", from2, msg2, from, msg)
		}
	})
}
