package transport

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crdtsync/internal/protocol"
)

// This file is the shard-work pool: the bounded set of workers the
// CPU-heavy per-shard stages — the sync tick, digest vector recompute,
// Merkle leaf recompute, and snapshot encoding — fan out across. Shards
// were designed as independent lock domains precisely so these stages
// parallelize: nothing crosses shards until frames are packed per
// destination or files are written, so workers claim shards off a
// shared cursor, do each shard's work under that shard's own lock, and
// a single coordinator merges the results in shard order wherever
// ordering is observable (frame bytes, file writes). One worker means
// every stage runs inline on the calling goroutine — the pre-pool
// serial behavior, byte for byte.

// syncWorkersEnv overrides the default pool width when
// StoreConfig.SyncWorkers is unset — a test-harness knob (CI runs the
// transport race battery with it >1) that never overrides an explicit
// configuration.
const syncWorkersEnv = "CRDTSYNC_SYNC_WORKERS"

// resolveSyncWorkers turns the configured worker count into the
// effective one: explicit config wins, then the env knob, then
// GOMAXPROCS.
func resolveSyncWorkers(configured int) int {
	if configured > 0 {
		return configured
	}
	if v := os.Getenv(syncWorkersEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// runWorkers runs fn(worker) on up to n of the store's workers
// concurrently, the calling goroutine serving as worker 0 — so a
// one-worker store spawns no goroutines and a stage never costs more
// than its serial form plus two clock reads. Each worker's busy time
// accumulates into the per-worker stats, where skew between workers is
// visible.
func (s *Store) runWorkers(n int, fn func(worker int)) {
	if n > s.workers {
		n = s.workers
	}
	if n <= 1 {
		start := time.Now()
		fn(0)
		s.workerBusy[0].Add(int64(time.Since(start)))
		return
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for w := 1; w < n; w++ {
		go func(worker int) {
			defer wg.Done()
			start := time.Now()
			fn(worker)
			s.workerBusy[worker].Add(int64(time.Since(start)))
		}(w)
	}
	start := time.Now()
	fn(0)
	s.workerBusy[0].Add(int64(time.Since(start)))
	wg.Wait()
}

// runShardStage fans fn(worker, shard) over the whole shard index space:
// workers claim indices off a shared atomic cursor, so load balances
// dynamically — a worker stuck on one huge shard never strands the
// shards behind it. Per-worker claim counts feed the skew stats.
func (s *Store) runShardStage(fn func(worker, shard int)) {
	n := len(s.shards)
	var cursor atomic.Int64
	s.runWorkers(n, func(worker int) {
		claimed := uint64(0)
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				break
			}
			fn(worker, i)
			claimed++
		}
		if claimed > 0 {
			s.workerShards[worker].Add(claimed)
		}
	})
}

// tickEmit is one engine emission captured during a parallel tick,
// replayed in ascending shard order by the merge so per-destination
// item sequences — and therefore packed frame bytes — stay identical
// to a serial tick's. enc is the emission's ShardItem encoding,
// produced by the capturing worker (pointing into its shard's arena in
// tickScratch.bufs) so the packer ships it verbatim instead of
// re-encoding on the coordinator; nil means the packer encodes.
type tickEmit struct {
	to  string
	m   protocol.Msg
	enc []byte
}

// tickScratch is the pooled per-tick capture: one emission slice and
// one encode arena per shard, filled without locks by whichever worker
// claims the shard (indices are disjoint), drained by the merge. The
// scratch stays checked out until flush has packed the pre-encoded
// bytes into frames (releaseTickScratch), and release clears every
// entry so pooled scratch never pins message memory between ticks.
type tickScratch struct {
	emits [][]tickEmit
	bufs  [][]byte
}

// releaseTickScratch clears a tick capture and returns it to the pool.
// Callers must be past flush: tickEmit.enc slices point into bufs, and
// a recycled scratch overwrites them.
func (s *Store) releaseTickScratch(ts *tickScratch) {
	for i := range ts.emits {
		if len(ts.emits[i]) == 0 {
			continue
		}
		clear(ts.emits[i])
		ts.emits[i] = ts.emits[i][:0]
		ts.bufs[i] = ts.bufs[i][:0]
	}
	s.tickPool.Put(ts)
}

// getDigestVec hands out a per-shard digest vector from the store's
// free list. The free list is a typed channel rather than a sync.Pool
// so that a Get/Put cycle is allocation-free (boxing a slice in an
// interface allocates) — the clean-store digest path is pinned at zero
// allocations.
func (s *Store) getDigestVec() []uint64 {
	select {
	case v := <-s.digestVecs:
		return v
	default:
		return make([]uint64, len(s.shards))
	}
}

// putDigestVec returns a vector once nothing can reference it — frame
// packing copies the digest vector into frame bytes synchronously, so
// after flush returns the vector is free.
func (s *Store) putDigestVec(v []uint64) {
	select {
	case s.digestVecs <- v:
	default:
	}
}

// getLeafVec hands out a zeroed leaf-hash vector (protocol.TreeLeaves
// words) for one worker's private XOR accumulation during a parallel
// leaf recompute.
func (s *Store) getLeafVec() []uint64 {
	select {
	case v := <-s.leafVecs:
		clear(v)
		return v
	default:
		return make([]uint64, protocol.TreeLeaves)
	}
}

func (s *Store) putLeafVec(v []uint64) {
	select {
	case s.leafVecs <- v:
	default:
	}
}

// encodeScratch recycles the per-shard state-encode buffers the digest
// and Merkle-leaf recomputes reuse across keys. A bounded global free
// list: a burst of concurrent recomputes across many stores can pin at
// most this many buffers.
var encodeScratch = make(chan []byte, 16)

func getEncodeBuf() []byte {
	select {
	case b := <-encodeScratch:
		return b
	default:
		return nil
	}
}

func putEncodeBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case encodeScratch <- b[:0]:
	default:
	}
}
