package transport

import (
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"time"

	"crdtsync/internal/codec"
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// StoreConfig describes one replica of a sharded multi-object store.
type StoreConfig struct {
	// ID is this replica's identifier.
	ID string
	// ListenAddr is the TCP address to accept neighbor frames on.
	ListenAddr string
	// Listener, when non-nil, is used instead of binding ListenAddr.
	Listener net.Listener
	// Peers maps neighbor ids to their listen addresses.
	Peers map[string]string
	// Nodes is the full membership (sorted); defaults to ID + peers.
	Nodes []string
	// Shards is the shard count, rounded up to a power of two
	// (default 16). Every replica in a cluster must use the same value:
	// the shard index is frame routing metadata.
	Shards int
	// Factory builds the inner per-object protocol engine
	// (e.g. protocol.NewDeltaBPRR()).
	Factory protocol.Factory
	// ObjType chooses the datatype of each object from its key.
	ObjType func(key string) workload.Datatype
	// SyncEvery is the synchronization period (default 1s).
	SyncEvery time.Duration
}

// StoreStats counts what a store has put on the wire.
type StoreStats struct {
	// Frames is the number of TCP frames written.
	Frames int
	// WireBytes is the total bytes written, including frame headers.
	WireBytes int
	// Sent is the aggregated protocol-level transmission accounting.
	Sent metrics.Transmission
}

// shard is one lock domain: a per-object engine (a keyspace partition)
// plus the mutex that serializes access to it. Updates and syncs on keys
// hashing to different shards never contend.
type shard struct {
	mu     sync.Mutex
	engine protocol.KeyedEngine
}

// Store is a live replica of a sharded multi-object keyspace: N shards,
// each holding a map of named CRDT objects with its own engine instance,
// mutex, and δ-buffers. Keys are routed to shards by hash; per-shard
// outgoing deltas are coalesced into one batched frame per neighbor on
// each sync tick, so a tick costs one TCP frame per peer regardless of
// how many objects changed.
//
// Store generalizes Node (one engine, one object, one mutex) to the
// deployment model of the paper's Retwis evaluation: many independent
// objects, each with its own δ-buffer, synchronized together.
type Store struct {
	cfg      StoreConfig
	net      *peerNet
	shards   []*shard
	mask     uint32
	statsMu  sync.Mutex
	stats    StoreStats
	stopping chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup // syncLoop
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// StartStore binds the listener, builds one per-object engine per shard,
// and launches the accept and synchronization loops.
func StartStore(cfg StoreConfig) (*Store, error) {
	if cfg.Factory == nil || cfg.ObjType == nil {
		return nil, fmt.Errorf("transport: StoreConfig needs Factory and ObjType")
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = time.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	cfg.Shards = nextPow2(cfg.Shards)
	neighbors := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		neighbors = append(neighbors, id)
	}
	sort.Strings(neighbors)
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = append([]string{cfg.ID}, neighbors...)
		sort.Strings(nodes)
	}
	factory := protocol.NewPerObject(cfg.Factory, cfg.ObjType)
	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		eng := factory(protocol.Config{
			ID:        cfg.ID,
			Neighbors: neighbors,
			Nodes:     nodes,
		})
		keyed, ok := eng.(protocol.KeyedEngine)
		if !ok {
			return nil, fmt.Errorf("transport: per-object engine does not implement KeyedEngine")
		}
		shards[i] = &shard{engine: keyed}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
		}
	}
	s := &Store{
		cfg:      cfg,
		net:      newPeerNet(cfg.ID, cfg.Peers, ln),
		shards:   shards,
		mask:     uint32(cfg.Shards - 1),
		stopping: make(chan struct{}),
	}
	s.net.start(s.deliver)
	s.wg.Add(1)
	go s.syncLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Store) Addr() string { return s.net.addr() }

// ID returns the replica identifier.
func (s *Store) ID() string { return s.cfg.ID }

// NumShards returns the effective (power-of-two) shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// fnv32a is an allocation-free FNV-1a over a key (hash/fnv's hasher
// escapes through the interface and would allocate on every Update/Get).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// shardOf routes a key to its shard by FNV-1a hash.
func (s *Store) shardOf(key string) *shard {
	return s.shards[fnv32a(key)&s.mask]
}

// Update applies one local operation to the object named by op.Key.
// Only that key's shard is locked; updates on different shards proceed
// concurrently.
func (s *Store) Update(op workload.Op) {
	sh := s.shardOf(op.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.engine.LocalOp(op)
}

// Get returns a snapshot of one object's state, or nil if the key is
// unknown.
func (s *Store) Get(key string) lattice.State {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.engine.ObjectState(key)
	if st == nil {
		return nil
	}
	return st.Clone()
}

// NumKeys returns the number of distinct objects across all shards.
func (s *Store) NumKeys() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.engine.Keys())
		sh.mu.Unlock()
	}
	return total
}

// Keys returns all object keys, sorted.
func (s *Store) Keys() []string {
	var all []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		all = append(all, sh.engine.Keys()...)
		sh.mu.Unlock()
	}
	sort.Strings(all)
	return all
}

// Digest hashes every object's key and canonical encoding into one
// 64-bit value. Two stores with the same shard count that hold the same
// keyspace in the same states produce equal digests, making convergence
// checks O(state) without shipping states around. (The codec is
// canonical: equal states encode to equal bytes.)
func (s *Store) Digest() uint64 {
	h := fnv.New64a()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, k := range sh.engine.Keys() {
			h.Write([]byte(k))
			h.Write(codec.Encode(sh.engine.ObjectState(k)))
		}
		sh.mu.Unlock()
	}
	return h.Sum64()
}

// Memory aggregates the memory footprint across shards.
func (s *Store) Memory() metrics.Memory {
	var total metrics.Memory
	for _, sh := range s.shards {
		sh.mu.Lock()
		m := sh.engine.Memory()
		sh.mu.Unlock()
		total.CRDTBytes += m.CRDTBytes
		total.BufferBytes += m.BufferBytes
		total.MetadataBytes += m.MetadataBytes
	}
	return total
}

// Stats returns a snapshot of the wire accounting.
func (s *Store) Stats() StoreStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// outBatch accumulates per-destination shard items in first-send order.
type outBatch struct {
	perDest map[string][]protocol.ShardItem
	order   []string
}

func newOutBatch() *outBatch {
	return &outBatch{perDest: make(map[string][]protocol.ShardItem)}
}

// sender adapts a shard's engine sends into tagged shard items.
func (b *outBatch) sender(shardIdx uint32) protocol.Sender {
	return func(to string, m protocol.Msg) {
		if _, ok := b.perDest[to]; !ok {
			b.order = append(b.order, to)
		}
		b.perDest[to] = append(b.perDest[to], protocol.ShardItem{Shard: shardIdx, Msg: m})
	}
}

// SyncNow runs one synchronization step on every shard and flushes one
// coalesced frame per destination.
func (s *Store) SyncNow() {
	b := newOutBatch()
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.engine.Sync(b.sender(uint32(i)))
		sh.mu.Unlock()
	}
	s.flush(b)
}

// flush encodes one ShardedMsg per destination and transmits it.
// Callers must not hold any shard lock: a slow peer can then never block
// updates or inbound handling on other connections.
func (s *Store) flush(b *outBatch) {
	for _, to := range b.order {
		m := protocol.NewShardedMsg(b.perDest[to])
		data, err := codec.EncodeMsg(m)
		if err != nil {
			// Engines produced an unencodable message: a programming
			// error in the engine/codec pairing.
			panic(err)
		}
		s.transmit(to, data, m.Cost())
	}
}

// transmit writes one frame and records wire stats on success. A send
// failure drops the frame: a neighbor that is down catches up on a later
// tick when the inner engines resend (acked engines retransmit until
// acknowledged; plain delta-based assumes reliable channels, so pair it
// with this transport only where TCP-level loss is acceptable).
func (s *Store) transmit(to string, data []byte, cost metrics.Transmission) {
	if err := s.net.transmit(to, data); err != nil {
		return // neighbor down or unknown; inner engines resend
	}
	s.statsMu.Lock()
	s.stats.Frames++
	s.stats.WireBytes += 4 + 2 + len(s.cfg.ID) + len(data)
	s.stats.Sent.Add(cost)
	s.statsMu.Unlock()
}

// deliver routes one inbound frame's items to their shards, coalescing
// any replies (acks, Scuttlebutt pulls) the same way syncs are. Replies
// are flushed on their own goroutine: the read goroutine must never block
// on an outbound TCP write, or two nodes with mutually full send buffers
// would stop draining their sockets and deadlock each other.
func (s *Store) deliver(from string, msg protocol.Msg) {
	sm, ok := msg.(*protocol.ShardedMsg)
	if !ok {
		return // stores speak only sharded frames; ignore others
	}
	b := newOutBatch()
	for _, it := range sm.Items {
		idx := int(it.Shard)
		if idx >= len(s.shards) {
			continue // shard-count mismatch; drop the item
		}
		sh := s.shards[idx]
		sh.mu.Lock()
		sh.engine.Deliver(from, it.Msg, b.sender(it.Shard))
		sh.mu.Unlock()
	}
	if len(b.order) == 0 {
		return
	}
	// Deliver runs on a peerNet read goroutine, all of which finish
	// before Close's wg.Wait starts, so this Add cannot race it.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.flush(b)
	}()
}

func (s *Store) syncLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopping:
			return
		case <-ticker.C:
			s.SyncNow()
		}
	}
}

// Close stops the loops and closes every connection. It is idempotent.
func (s *Store) Close() error {
	s.stopOnce.Do(func() { close(s.stopping) })
	err := s.net.close()
	s.wg.Wait()
	return err
}
