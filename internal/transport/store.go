package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crdtsync/internal/codec"
	"crdtsync/internal/lattice"
	"crdtsync/internal/metrics"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// StoreConfig describes one replica of a sharded multi-object store.
type StoreConfig struct {
	// ID is this replica's identifier.
	ID string
	// ListenAddr is the TCP address to accept neighbor frames on.
	ListenAddr string
	// Listener, when non-nil, is used instead of binding ListenAddr.
	Listener net.Listener
	// Dial, when non-nil, replaces the default TCP dialer for outbound
	// connections; fault-injection harnesses wrap it to drop, duplicate
	// or delay frames.
	Dial DialFunc
	// Peers maps neighbor ids to their listen addresses.
	Peers map[string]string
	// Nodes is the full membership (sorted); defaults to ID + peers.
	Nodes []string
	// Shards is the shard count, rounded up to a power of two
	// (default 16). Every replica in a cluster must use the same value:
	// the shard index is frame routing metadata.
	Shards int
	// Factory builds the inner per-object protocol engine
	// (e.g. protocol.NewDeltaBPRR()).
	Factory protocol.Factory
	// ObjType chooses the datatype of each object from its key.
	ObjType func(key string) workload.Datatype
	// SyncEvery is the synchronization period (default 1s).
	SyncEvery time.Duration
	// PeerQueueLen bounds each peer's outbound queue by frame count
	// (default 128). transmit is a non-blocking enqueue onto a per-peer
	// writer goroutine, so a stalled peer delays only its own frames;
	// when a queue exceeds either bound, the oldest queued frame is
	// evicted (drop-oldest) and counted in Stats().Peers — acked engines
	// retransmit the loss and digest anti-entropy repairs the rest.
	PeerQueueLen int
	// PeerQueueBytes bounds each peer's outbound queue by encoded bytes
	// (default 8 MiB). Frames vary ~100x in size, so a count bound alone
	// budgets almost nothing: 128 heartbeats are a few KiB while 128 full
	// batches can be GiBs. Eviction keeps the queue within whichever
	// bound it crosses first, always sparing the newest frame so an
	// over-budget frame is still shipped rather than wedged.
	PeerQueueBytes int
	// DigestEvery enables digest anti-entropy: every DigestEvery-th sync
	// tick the store also ships its per-shard digest vector to every
	// peer; a peer whose digests differ requests those shards in full.
	// This repairs divergence the inner engines cannot see (lost frames
	// under clear-after-send engines, healed partitions) at a
	// near-constant per-tick cost of 8 bytes per shard once converged.
	// 0 disables digests (delta traffic only).
	DigestEvery int
	// MaxFrameBytes caps the encoded size of one data frame; a sync tick
	// whose batch exceeds it is packed into multiple bounded frames. 0 or
	// anything above the transport-wide maximum means the 64 MiB
	// transport cap. Tests lower it to exercise packing cheaply.
	MaxFrameBytes int
	// NoDigestPiggyback disables merging the digest advertisement into
	// outgoing data frames: every advertisement rides its own DigestMsg
	// frame, as it did before piggybacking existed. A measurement knob
	// (syncbench -no-piggyback compares the two), not a production
	// setting.
	NoDigestPiggyback bool
	// RepairTimeout bounds how long one shard's repair request (flat
	// Want or tree drill-down) stays in flight before a digest mismatch
	// may retrigger it (default 1s). While a repair is in flight further
	// mismatching heartbeats for that shard are deduplicated rather than
	// re-requested — the Want-storm fix. It doubles as the retry cadence
	// when repair messages are lost; after two consecutive drill-downs
	// time out on a shard, repair falls back to the flat full pull, whose
	// two-message exchange survives lossy links the multi-round drill
	// cannot.
	RepairTimeout time.Duration
	// TreeRepairMinKeys is the local key count from which a diverged
	// shard repairs by Merkle drill-down instead of a full-shard pull
	// (default 256). Below it, shipping the shard whole is cheaper than
	// the hash exchange.
	TreeRepairMinKeys int
	// NoTreeRepair disables the Merkle drill-down: every diverged shard
	// is pulled whole, as before. A measurement knob (the repair
	// benchmark compares the two), not a production setting.
	NoTreeRepair bool
	// SnapshotDir, when set, enables crash-restart durability: a
	// background snapshotter periodically serializes each shard's objects
	// through the canonical codec to an atomic-rename file per shard in
	// this directory, and StartStore restores from those files before
	// joining the mesh. A restored replica is as stale as its last
	// snapshot; ordinary digest anti-entropy repairs the gap, so recovery
	// cost is proportional to staleness, not keyspace size. Empty
	// disables snapshots entirely (the prior, memory-only behavior).
	SnapshotDir string
	// SnapshotEvery is the snapshot period (default 10s when SnapshotDir
	// is set). Each pass serializes one shard at a time under its lock,
	// skipping shards whose content digest has not moved since their
	// last snapshot, so a quiescent store's pass costs a few atomic
	// loads and no I/O.
	SnapshotEvery time.Duration
	// SyncWorkers bounds the shard-work pool: the workers the CPU-heavy
	// per-shard stages (the sync tick, digest vector recompute, Merkle
	// leaf recompute, snapshot encoding) fan out across. 1 pins every
	// stage to the calling goroutine — the pre-pool serial behavior.
	// 0 (the default) uses the CRDTSYNC_SYNC_WORKERS environment
	// variable if set, else GOMAXPROCS. Frame contents are byte-identical
	// at any setting: workers capture per-shard output and the tick
	// merges it in shard order before packing.
	SyncWorkers int
}

// StoreStats counts what a store has put on the wire.
type StoreStats struct {
	// Frames is the number of TCP frames written (data and digests).
	Frames int
	// WireBytes is the total bytes written, including frame headers.
	WireBytes int
	// DigestFrames counts the standalone digest frames within Frames —
	// advertisement heartbeats that found no data frame to ride and
	// shard-request replies; the rest carry data.
	DigestFrames int
	// PiggybackedDigests counts data frames that additionally carried the
	// per-shard digest vector: advertisements that would each have been a
	// standalone DigestFrame without piggybacking.
	PiggybackedDigests int
	// SplitFrames counts the frames that are pieces of a split batch:
	// a tick whose batch overflowed the cap and went out as k bounded
	// frames adds k here (0 when every batch fit in one frame).
	SplitFrames int
	// OversizedDropped counts irreducible messages larger than the frame
	// cap that had to be dropped (a single object's state exceeding
	// MaxFrameBytes). With digest anti-entropy enabled, a steadily
	// growing value means an unshippable object is permanently blocking
	// its shard's convergence — peers will keep requesting the shard
	// every heartbeat; raise MaxFrameBytes or shrink the object.
	OversizedDropped int
	// WantShards counts shards this store requested from peers in full
	// after a digest mismatch — small shards, drill-downs that found
	// most of a shard diverged, and tree repair disabled.
	WantShards int
	// RepairShards counts full shards this store served to peers that
	// requested them.
	RepairShards int
	// DedupedWants counts digest mismatches that did not issue a repair
	// request because one was already in flight for that shard — the
	// Want storms the repair table absorbed.
	DedupedWants int
	// TreeRounds counts Merkle drill-down rounds this store initiated
	// (level queries and leaf Wants). A single-key repair costs
	// TreeDepth query rounds plus one Want.
	TreeRounds int
	// RepairRanges counts leaf/node ranges this store served in full to
	// drilling peers — the range-limited counterpart of RepairShards.
	RepairRanges int
	// RepairBytes totals the key+state payload bytes of the range
	// repairs served, the measure the drill-down keeps proportional to
	// divergence rather than shard size.
	RepairBytes int
	// DigestShardMismatch counts digest advertisements dropped because
	// their shard count differs from this store's — a misconfigured
	// cluster whose divergence anti-entropy cannot repair.
	DigestShardMismatch int
	// DroppedItems counts inbound shard items discarded because their
	// shard index was outside this store's shard range — shard-map skew
	// between sender and receiver (the shard index is frame routing
	// metadata, so every replica in a cluster must run the same count).
	// A steadily growing value means misconfiguration: that data never
	// applies here, and digest vectors of mismatched length are likewise
	// incomparable, so anti-entropy cannot repair it either.
	DroppedItems int
	// SnapshotsWritten counts shard snapshot files written (shards whose
	// digest had not moved since their last snapshot are skipped and not
	// counted).
	SnapshotsWritten int
	// SnapshotBytes totals the encoded size of the snapshot files
	// written.
	SnapshotBytes int
	// SnapshotRestoredKeys counts objects restored from snapshot files
	// at startup.
	SnapshotRestoredKeys int
	// SnapshotRestoreErrors counts snapshot files skipped at startup
	// because they were unreadable or failed validation (bad checksum,
	// truncation). Each such file contributes nothing — the store falls
	// back to whatever the remaining files and anti-entropy provide —
	// and the store never fails to start over a damaged snapshot.
	SnapshotRestoreErrors int
	// WatchDropped counts change notifications dropped because a
	// watcher's pending buffer was full — a consumer reading its Events
	// channel too slowly. The watcher itself learns the same fact from
	// the Lagged mark on its next event.
	WatchDropped int
	// SyncWorkers is the effective shard-work pool width (resolved from
	// StoreConfig.SyncWorkers / CRDTSYNC_SYNC_WORKERS / GOMAXPROCS).
	SyncWorkers int
	// SyncWorkerShards counts, per pool worker, the shards that worker
	// claimed across all parallel stages — skew between entries means
	// shard work is unevenly sized (one hot shard dominating a tick).
	SyncWorkerShards []uint64
	// SyncWorkerBusyNs totals, per pool worker, the nanoseconds spent
	// inside parallel stages. The ratio of max to min entry is the
	// pool's load imbalance.
	SyncWorkerBusyNs []int64
	// Sent is the aggregated protocol-level transmission accounting.
	Sent metrics.Transmission
	// Peers holds the per-peer write-pipeline accounting: frames and
	// bytes enqueued toward each peer, frames and bytes dropped (queue
	// overflow or failed sends), frames coalesced on drain, reconnects,
	// and the pipeline's connection state. Frames/WireBytes above count
	// at enqueue time: frames later dropped by a sick pipeline, and the
	// per-frame headers saved when a drained backlog is coalesced, never
	// reach the wire even though they are counted here — Peers is where
	// both corrections are visible (Dropped/DroppedBytes, Coalesced).
	Peers map[string]PeerStats
}

// Add accumulates another snapshot into s, field by field; benchmarks and
// examples use it to aggregate cluster-wide totals without hand-summing
// (and silently missing) fields.
func (s *StoreStats) Add(o StoreStats) {
	s.Frames += o.Frames
	s.WireBytes += o.WireBytes
	s.DigestFrames += o.DigestFrames
	s.PiggybackedDigests += o.PiggybackedDigests
	s.SplitFrames += o.SplitFrames
	s.OversizedDropped += o.OversizedDropped
	s.WantShards += o.WantShards
	s.RepairShards += o.RepairShards
	s.DedupedWants += o.DedupedWants
	s.TreeRounds += o.TreeRounds
	s.RepairRanges += o.RepairRanges
	s.RepairBytes += o.RepairBytes
	s.DigestShardMismatch += o.DigestShardMismatch
	s.DroppedItems += o.DroppedItems
	s.SnapshotsWritten += o.SnapshotsWritten
	s.SnapshotBytes += o.SnapshotBytes
	s.SnapshotRestoredKeys += o.SnapshotRestoredKeys
	s.SnapshotRestoreErrors += o.SnapshotRestoreErrors
	s.WatchDropped += o.WatchDropped
	if o.SyncWorkers > s.SyncWorkers {
		s.SyncWorkers = o.SyncWorkers // pool widths are not additive
	}
	for i, v := range o.SyncWorkerShards {
		if i < len(s.SyncWorkerShards) {
			s.SyncWorkerShards[i] += v
		} else {
			s.SyncWorkerShards = append(s.SyncWorkerShards, v)
		}
	}
	for i, v := range o.SyncWorkerBusyNs {
		if i < len(s.SyncWorkerBusyNs) {
			s.SyncWorkerBusyNs[i] += v
		} else {
			s.SyncWorkerBusyNs = append(s.SyncWorkerBusyNs, v)
		}
	}
	s.Sent.Add(o.Sent)
	for id, ps := range o.Peers {
		if s.Peers == nil {
			s.Peers = make(map[string]PeerStats)
		}
		cur := s.Peers[id]
		cur.Enqueued += ps.Enqueued
		cur.EnqueuedBytes += ps.EnqueuedBytes
		cur.Dropped += ps.Dropped
		cur.DroppedBytes += ps.DroppedBytes
		cur.Coalesced += ps.Coalesced
		cur.Reconnects += ps.Reconnects
		cur.Queued += ps.Queued
		cur.QueuedBytes += ps.QueuedBytes
		cur.State = "" // connection states from different stores are not additive
		s.Peers[id] = cur
	}
}

// shard is one lock domain: a per-object engine (a keyspace partition)
// plus the mutex that serializes access to it. Updates and syncs on keys
// hashing to different shards never contend.
//
// dirty and the digest cache are read without the mutex (atomically), so
// the sync loop and digest heartbeat skip clean shards without taking
// their locks; both are only written while holding mu, which keeps the
// flags coherent with the engine state they describe.
type shard struct {
	mu     sync.Mutex
	engine protocol.KeyedEngine
	// od is the same engine through its per-object delivery interface,
	// asserted once at construction for the frame-delivery hot path.
	od protocol.ObjectDeliverer
	// dirty marks a shard that needs a Sync visit: touched by a local
	// update or an inbound delivery since its last visit, or still
	// emitting (e.g. unacked retransmissions) on that visit.
	dirty atomic.Bool
	// digest caches this shard's content digest; valid while digestOK.
	// Any mutation (LocalOp, Deliver) invalidates it.
	digest   atomic.Uint64
	digestOK atomic.Bool
	// leaf caches the Merkle leaf-hash vector repair drill-downs read;
	// valid while leafOK. Unlike the digest cache it is only touched
	// under mu, so plain fields suffice.
	leaf   []uint64
	leafOK bool
}

// markDirty flags the shard for the next sync visit and invalidates its
// digest and leaf-hash caches; callers hold sh.mu having just mutated
// the engine.
func (sh *shard) markDirty() {
	sh.dirty.Store(true)
	sh.digestOK.Store(false)
	sh.leafOK = false
}

// Store is a live replica of a sharded multi-object keyspace: N shards,
// each holding a map of named CRDT objects with its own engine instance,
// mutex, and δ-buffers. Keys are routed to shards by hash; per-shard
// outgoing deltas are coalesced into bounded batched frames per neighbor
// on each sync tick. A per-shard dirty bitmap makes the steady-state tick
// O(dirty shards), not O(shards): clean shards are skipped without taking
// their locks. With DigestEvery set, replicas additionally exchange
// per-shard digest vectors and pull full shards only on mismatch, so even
// divergence invisible to the inner engines is repaired while a converged
// idle cluster exchanges only constant-size heartbeats.
//
// Store generalizes Node (one engine, one object, one mutex) to the
// deployment model of the paper's Retwis evaluation: many independent
// objects, each with its own δ-buffer, synchronized together.
type Store struct {
	cfg       StoreConfig
	net       *peerNet
	shards    []*shard
	mask      uint32
	neighbors []string // sorted peer ids
	ticks     atomic.Uint64
	// deliverLocks counts the shard-lock acquisitions of the inbound
	// delivery path — one per touched shard per frame, an invariant an
	// instrumented test pins (the eager path took one per item).
	deliverLocks atomic.Uint64
	statsMu      sync.Mutex
	stats        StoreStats
	repair       repairTable
	// snapMu serializes snapshot passes (the ticker loop and explicit
	// SnapshotNow calls); snapLast holds each shard's content digest at
	// its last written snapshot, so unchanged shards are skipped. Both
	// are only used when cfg.SnapshotDir is set.
	snapMu   sync.Mutex
	snapLast []uint64
	// workers is the effective shard-work pool width; workerShards and
	// workerBusy are its per-worker claim and busy-time counters (skew
	// diagnostics, surfaced through Stats).
	workers      int
	workerShards []atomic.Uint64
	workerBusy   []atomic.Int64
	// tickPool recycles the parallel tick's per-shard emission capture;
	// digestVecs and leafVecs are typed free lists (channels, so a
	// Get/Put cycle never allocates) for digest vectors and the workers'
	// private Merkle leaf accumulators.
	tickPool   sync.Pool
	digestVecs chan []uint64
	leafVecs   chan []uint64
	stopping   chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup // syncLoop + watcher pumps
	watchMu    sync.RWMutex
	watchers   []*Watcher
	// watcherCount mirrors len(watchers) for the lock-free hasWatchers
	// check on the delivery and update hot paths; written under watchMu.
	watcherCount atomic.Int32
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// StartStore binds the listener, builds one per-object engine per shard,
// and launches the accept and synchronization loops.
func StartStore(cfg StoreConfig) (*Store, error) {
	if cfg.Factory == nil || cfg.ObjType == nil {
		return nil, fmt.Errorf("transport: StoreConfig needs Factory and ObjType")
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = time.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	cfg.Shards = nextPow2(cfg.Shards)
	if cfg.MaxFrameBytes <= 0 || cfg.MaxFrameBytes > maxFrameBytes {
		cfg.MaxFrameBytes = maxFrameBytes
	}
	if cfg.RepairTimeout <= 0 {
		cfg.RepairTimeout = defaultRepairTimeout
	}
	if cfg.TreeRepairMinKeys <= 0 {
		cfg.TreeRepairMinKeys = defaultTreeMinKeys
	}
	if cfg.SnapshotDir != "" && cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = defaultSnapshotEvery
	}
	neighbors := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		neighbors = append(neighbors, id)
	}
	sort.Strings(neighbors)
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = append([]string{cfg.ID}, neighbors...)
		sort.Strings(nodes)
	}
	factory := protocol.NewPerObject(cfg.Factory, cfg.ObjType)
	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		eng := factory(protocol.Config{
			ID:        cfg.ID,
			Neighbors: neighbors,
			Nodes:     nodes,
		})
		keyed, ok := eng.(protocol.KeyedEngine)
		if !ok {
			return nil, fmt.Errorf("transport: per-object engine does not implement KeyedEngine")
		}
		od, ok := eng.(protocol.ObjectDeliverer)
		if !ok {
			return nil, fmt.Errorf("transport: per-object engine does not implement ObjectDeliverer")
		}
		shards[i] = &shard{engine: keyed, od: od}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
		}
	}
	if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: snapshot dir: %w", err)
		}
	}
	s := &Store{
		cfg: cfg,
		net: newPeerNet(cfg.ID, cfg.Peers, ln, cfg.Dial, queueConfig{
			frames: cfg.PeerQueueLen,
			bytes:  cfg.PeerQueueBytes,
			// Drain-time coalescing must never assemble a frame the
			// packer would have refused to emit: both budgets come from
			// the same formula.
			maxMsg: maxMsgFor(cfg.MaxFrameBytes, cfg.ID),
		}),
		shards:    shards,
		mask:      uint32(cfg.Shards - 1),
		neighbors: neighbors,
		stopping:  make(chan struct{}),
	}
	s.workers = resolveSyncWorkers(cfg.SyncWorkers)
	s.workerShards = make([]atomic.Uint64, s.workers)
	s.workerBusy = make([]atomic.Int64, s.workers)
	s.tickPool.New = func() any {
		return &tickScratch{
			emits: make([][]tickEmit, len(s.shards)),
			bufs:  make([][]byte, len(s.shards)),
		}
	}
	s.digestVecs = make(chan []uint64, 4)
	s.leafVecs = make(chan []uint64, s.workers)
	s.repair = repairTable{
		timeout: cfg.RepairTimeout,
		entries: make([]repairEntry, cfg.Shards),
	}
	if cfg.SnapshotDir != "" {
		// Restore strictly before joining the mesh: the first digest
		// advertisement must describe the restored keyspace, so peers
		// repair only the staleness gap, not the whole keyspace.
		s.snapLast = make([]uint64, cfg.Shards)
		s.restoreSnapshots()
	}
	s.net.start(s.deliver)
	s.wg.Add(1)
	go s.syncLoop()
	if cfg.SnapshotDir != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Store) Addr() string { return s.net.addr() }

// ID returns the replica identifier.
func (s *Store) ID() string { return s.cfg.ID }

// NumShards returns the effective (power-of-two) shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// fnv32a is an allocation-free FNV-1a over a key (hash/fnv's hasher
// escapes through the interface and would allocate on every Update/Get).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// shardOf routes a key to its shard by FNV-1a hash.
func (s *Store) shardOf(key string) *shard {
	return s.shards[fnv32a(key)&s.mask]
}

// Update applies one local operation to the object named by op.Key.
// Only that key's shard is locked; updates on different shards proceed
// concurrently.
func (s *Store) Update(op workload.Op) {
	sh := s.shardOf(op.Key)
	sh.mu.Lock()
	sh.engine.LocalOp(op)
	sh.markDirty()
	sh.mu.Unlock()
	if s.hasWatchers() {
		s.notifyWatchers(op.Key)
	}
}

// Get returns a snapshot of one object's state, or nil if the key is
// unknown.
func (s *Store) Get(key string) lattice.State {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.engine.ObjectState(key)
	if st == nil {
		return nil
	}
	return st.Clone()
}

// NumKeys returns the number of distinct objects across all shards.
func (s *Store) NumKeys() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.engine.Keys())
		sh.mu.Unlock()
	}
	return total
}

// Keys returns all object keys, sorted. The per-shard walks fan out
// across the shard-work pool, so a scrape of a huge store does not
// stall the caller for the full serial lock-by-lock walk.
func (s *Store) Keys() []string {
	perShard := make([][]string, len(s.shards))
	s.runShardStage(func(_, i int) {
		sh := s.shards[i]
		sh.mu.Lock()
		if ks := sh.engine.Keys(); len(ks) > 0 {
			perShard[i] = append([]string(nil), ks...)
		}
		sh.mu.Unlock()
	})
	total := 0
	for _, ks := range perShard {
		total += len(ks)
	}
	all := make([]string, 0, total)
	for _, ks := range perShard {
		all = append(all, ks...)
	}
	sort.Strings(all)
	return all
}

// shardDigest returns one shard's content digest, from the cache when the
// shard has not been mutated since the last computation — the common case
// on an idle keyspace, served without taking the shard lock.
func (s *Store) shardDigest(sh *shard) uint64 {
	if sh.digestOK.Load() {
		return sh.digest.Load()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.digestLocked()
}

// digestLocked computes (and caches) the shard's content digest under an
// already-held sh.mu — the snapshotter uses it directly so the digest it
// records and the contents it serializes come from one lock hold. The
// inline FNV-1a fold produces the exact values hash/fnv did, without its
// per-call hasher allocation, and the encode scratch buffer is reused
// across keys (and pooled across calls) instead of allocated per key.
func (sh *shard) digestLocked() uint64 {
	if sh.digestOK.Load() {
		return sh.digest.Load()
	}
	h := uint64(fnvOffset64)
	scratch := getEncodeBuf()
	for _, k := range sh.engine.Keys() {
		h = fnvFoldString(h, k)
		scratch = codec.AppendState(scratch[:0], sh.engine.ObjectState(k))
		h = fnvFold(h, scratch)
	}
	putEncodeBuf(scratch)
	sh.digest.Store(h)
	sh.digestOK.Store(true)
	return h
}

// shardDigests returns the per-shard digest vector in a pooled slice;
// callers hand it back with putDigestVec once no frame can reference it
// (packing copies the vector into frame bytes synchronously). Clean
// shards — all of them, on an idle store — are served from the
// lock-free digest cache inline, allocation-free; the pool only fans
// out when at least two shards need recomputation.
func (s *Store) shardDigests() []uint64 {
	vec := s.getDigestVec()
	stale := 0
	for _, sh := range s.shards {
		if !sh.digestOK.Load() {
			stale++
		}
	}
	if stale < 2 || s.workers <= 1 {
		for i, sh := range s.shards {
			vec[i] = s.shardDigest(sh)
		}
		return vec
	}
	s.runShardStage(func(_, i int) {
		vec[i] = s.shardDigest(s.shards[i])
	})
	return vec
}

// Digest combines the per-shard digests into one 64-bit value. Two stores
// with the same shard count that hold the same keyspace in the same
// states produce equal digests, making convergence checks O(state)
// without shipping states around — and O(1) on idle stores, since clean
// shards serve their digests from cache. (The codec is canonical: equal
// states encode to equal bytes.)
func (s *Store) Digest() uint64 {
	h := uint64(fnvOffset64)
	var word [8]byte
	for _, sh := range s.shards {
		binary.BigEndian.PutUint64(word[:], s.shardDigest(sh))
		h = fnvFold(h, word[:])
	}
	return h
}

// Memory aggregates the memory footprint across shards, fanning the
// per-shard walks across the shard-work pool.
func (s *Store) Memory() metrics.Memory {
	partial := make([]metrics.Memory, s.workers)
	s.runShardStage(func(w, i int) {
		sh := s.shards[i]
		sh.mu.Lock()
		m := sh.engine.Memory()
		sh.mu.Unlock()
		partial[w].CRDTBytes += m.CRDTBytes
		partial[w].BufferBytes += m.BufferBytes
		partial[w].MetadataBytes += m.MetadataBytes
	})
	var total metrics.Memory
	for _, m := range partial {
		total.CRDTBytes += m.CRDTBytes
		total.BufferBytes += m.BufferBytes
		total.MetadataBytes += m.MetadataBytes
	}
	return total
}

// Stats returns a snapshot of the wire accounting, including the
// per-peer write-pipeline counters and connection states.
func (s *Store) Stats() StoreStats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	st.Peers = s.net.peerStats()
	st.SyncWorkers = s.workers
	st.SyncWorkerShards = make([]uint64, s.workers)
	st.SyncWorkerBusyNs = make([]int64, s.workers)
	for i := range st.SyncWorkerShards {
		st.SyncWorkerShards[i] = s.workerShards[i].Load()
		st.SyncWorkerBusyNs[i] = s.workerBusy[i].Load()
	}
	return st
}

// Ticks returns how many synchronization steps this store has run.
func (s *Store) Ticks() uint64 { return s.ticks.Load() }

// outBatch accumulates per-destination shard items in first-send order.
// perEnc runs parallel to perDest: entry i is item i's pre-encoded
// ShardItem bytes when a pool worker encoded it at capture time (the
// packer ships those verbatim), nil when the packer encodes the item
// itself — the serial tick and every inbound reply path.
type outBatch struct {
	perDest map[string][]protocol.ShardItem
	perEnc  map[string][][]byte
	order   []string
}

func newOutBatch() *outBatch {
	return &outBatch{
		perDest: make(map[string][]protocol.ShardItem),
		perEnc:  make(map[string][][]byte),
	}
}

// add appends one emission, with its pre-encoded bytes when the capture
// already paid for the encode (enc nil otherwise).
func (b *outBatch) add(shardIdx uint32, to string, m protocol.Msg, enc []byte) {
	if len(b.perDest[to]) == 0 {
		b.order = append(b.order, to)
	}
	b.perDest[to] = append(b.perDest[to], protocol.ShardItem{Shard: shardIdx, Msg: m})
	b.perEnc[to] = append(b.perEnc[to], enc)
}

// sender adapts a shard's engine sends into tagged shard items.
func (b *outBatch) sender(shardIdx uint32) protocol.Sender {
	return func(to string, m protocol.Msg) {
		b.add(shardIdx, to, m, nil)
	}
}

// reset clears the batch for reuse, keeping the per-destination slice
// capacity (the items themselves are zeroed so pooled batches do not pin
// message or encode-arena memory between frames).
func (b *outBatch) reset() {
	for _, to := range b.order {
		items := b.perDest[to]
		clear(items)
		b.perDest[to] = items[:0]
		encs := b.perEnc[to]
		clear(encs)
		b.perEnc[to] = encs[:0]
	}
	b.order = b.order[:0]
}

// frameViews pools the unpacked-frame views the inbound path fills per
// frame; a connection at steady state recycles one view (and its item
// slices) across every frame it receives.
var frameViews = sync.Pool{New: func() any { return new(codec.FrameView) }}

// deliverState bundles the per-frame delivery scratch — the outbound
// reply batch, the per-object reply sink, and the Sender method value
// bound to it — so one pool Get covers all three and the method-value
// allocation happens once per pooled instance, not once per frame.
type deliverState struct {
	b    *outBatch
	sink replySink
	send protocol.Sender
	// seen is serveWants' shard-dedup scratch, pooled so hostile or
	// chatty peers don't drive a per-frame allocation.
	seen []bool
}

// seenShards returns the dedup scratch cleared and sized to n shards.
func (d *deliverState) seenShards(n int) []bool {
	if cap(d.seen) < n {
		d.seen = make([]bool, n)
	}
	d.seen = d.seen[:n]
	clear(d.seen)
	return d.seen
}

var deliverStates = sync.Pool{New: func() any {
	d := &deliverState{b: newOutBatch()}
	d.send = d.sink.send
	return d
}}

func getDeliverState() *deliverState { return deliverStates.Get().(*deliverState) }

func (d *deliverState) release() {
	d.b.reset()
	d.sink.key = nil // never pin a frame buffer across frames
	deliverStates.Put(d)
}

// replySink collects the replies (acks, Scuttlebutt pulls) the engines
// emit while a shard group is being applied, keyed by destination, and
// flushes them as one BatchMsg per destination per shard group — the
// receive-side mirror of the per-object batcher, without allocating when
// a frame produces no replies (the common delta-based case).
type replySink struct {
	shard   uint32
	key     []byte
	pending map[string][]protocol.ObjectMsg
	order   []string
}

func (d *replySink) send(to string, m protocol.Msg) {
	if d.pending == nil {
		d.pending = make(map[string][]protocol.ObjectMsg)
	}
	if len(d.pending[to]) == 0 {
		d.order = append(d.order, to)
	}
	d.pending[to] = append(d.pending[to], protocol.ObjectMsg{Key: string(d.key), Inner: m})
}

// flush wraps the pending replies into per-destination batches on b. The
// accumulated slices are handed to BatchOf and must not be reused, so the
// map entries are reset to nil rather than truncated.
func (d *replySink) flush(b *outBatch) {
	for _, to := range d.order {
		items := d.pending[to]
		d.pending[to] = nil // BatchOf keeps the slice; never reuse it
		b.sender(d.shard)(to, protocol.BatchOf(items))
	}
	d.order = d.order[:0]
}

// SyncNow runs one synchronization step over the dirty shards and flushes
// the coalesced frames. Clean shards — the steady state of an idle
// keyspace — are skipped without taking their locks, so the tick is
// O(dirty shards). The per-shard work — engine.Sync plus item capture,
// and the digest recompute — fans out across the shard-work pool
// (StoreConfig.SyncWorkers) with frame bytes unchanged. Every
// DigestEvery ticks the per-shard digest vector goes out with the same
// flush: piggybacked on a data frame to each peer that is getting one
// anyway, as a standalone heartbeat only to peers the tick has nothing
// else to say to (every peer, on an idle tick).
func (s *Store) SyncNow() {
	d := getDeliverState()
	defer d.release()
	b := d.b
	if ts := s.collectTick(b); ts != nil {
		// The batch's pre-encoded bytes point into the scratch arenas;
		// release only after flush below has packed them into frames.
		defer s.releaseTickScratch(ts)
	}
	tick := s.ticks.Add(1)
	var vec []uint64
	if every := uint64(s.cfg.DigestEvery); every > 0 && tick%every == 0 {
		vec = s.shardDigests()
		defer s.putDigestVec(vec)
	}
	piggyback := vec
	if s.cfg.NoDigestPiggyback {
		piggyback = nil
	}
	covered := s.flush(b, piggyback)
	if vec == nil {
		return
	}
	// The heartbeat fallback: peers whose data frames this tick did not
	// carry the vector still get the advertisement, standalone.
	m := protocol.NewDigestMsg(vec, nil, protocol.DigestCost(vec, nil))
	data, err := codec.EncodeMsg(m)
	if err != nil {
		panic(err)
	}
	for _, to := range s.neighbors {
		if _, ok := covered[to]; !ok {
			s.transmit(to, data, m.Cost(), frameDigest)
		}
	}
}

// collectTick runs the per-shard sync stage, accumulating every engine
// emission on b in ascending shard order. With one worker (or fewer
// than two dirty shards) it is the plain serial walk; otherwise workers
// claim dirty shards off the shared cursor, run engine.Sync under each
// shard's lock capturing emissions privately — encoding each emission
// into the shard's arena as it is captured, so the per-item codec work
// rides the pool too — and the merge replays them in shard order. Per-
// destination item sequences, and therefore packed frame bytes, are
// identical to a serial tick's (pinned by the determinism test).
//
// The returned scratch is non-nil exactly when the parallel path ran;
// the caller must hand it to releaseTickScratch only after flush has
// consumed b (the pre-encoded bytes live in the scratch arenas).
func (s *Store) collectTick(b *outBatch) *tickScratch {
	dirty := 0
	for _, sh := range s.shards {
		if sh.dirty.Load() {
			dirty++
		}
	}
	if dirty == 0 {
		return nil
	}
	if s.workers <= 1 || dirty < 2 {
		for i, sh := range s.shards {
			if !sh.dirty.Load() {
				continue
			}
			sh.mu.Lock()
			sh.dirty.Store(false)
			emitted := false
			send := b.sender(uint32(i))
			sh.engine.Sync(func(to string, m protocol.Msg) {
				emitted = true
				send(to, m)
			})
			if emitted {
				// The engine may need to emit again (unacked
				// retransmissions, Scuttlebutt digests): revisit next tick.
				sh.dirty.Store(true)
			}
			sh.mu.Unlock()
		}
		return nil
	}
	ts := s.tickPool.Get().(*tickScratch)
	s.runShardStage(func(_, i int) {
		sh := s.shards[i]
		if !sh.dirty.Load() {
			return
		}
		out := ts.emits[i][:0]
		buf := ts.bufs[i][:0]
		sh.mu.Lock()
		sh.dirty.Store(false)
		emitted := false
		sh.engine.Sync(func(to string, m protocol.Msg) {
			emitted = true
			start := len(buf)
			var err error
			buf, err = codec.AppendShardItem(buf, protocol.ShardItem{Shard: uint32(i), Msg: m})
			if err != nil {
				// Unencodable message: capture without bytes so the
				// packer's own encode surfaces the same error the
				// serial path would (flush panics on it).
				buf = buf[:start]
				out = append(out, tickEmit{to: to, m: m})
				return
			}
			out = append(out, tickEmit{to: to, m: m, enc: buf[start:]})
		})
		if emitted {
			sh.dirty.Store(true) // more to emit next tick (see serial path)
		}
		sh.mu.Unlock()
		ts.emits[i] = out
		ts.bufs[i] = buf
	})
	for i, out := range ts.emits {
		for _, e := range out {
			b.add(uint32(i), e.to, e.m, e.enc)
		}
	}
	return ts
}

// flush packs the accumulated items into bounded frames per destination
// and transmits them; vec, when non-nil, is piggybacked onto one frame
// per destination when it fits, and the returned set names the peers it
// reached. Callers must not hold any shard lock: a slow peer can then
// never block updates or inbound handling on other connections.
func (s *Store) flush(b *outBatch, vec []uint64) map[string]struct{} {
	var covered map[string]struct{}
	for _, to := range b.order {
		res, err := packFrames(b.perDest[to], b.perEnc[to], vec, s.maxMsgBytes())
		if err != nil {
			// Engines produced an unencodable message: a programming
			// error in the engine/codec pairing.
			panic(err)
		}
		s.statsMu.Lock()
		if len(res.frames) > 1 {
			s.stats.SplitFrames += len(res.frames)
		}
		s.stats.OversizedDropped += res.oversized
		s.statsMu.Unlock()
		for _, f := range res.frames {
			kind := frameData
			if f.digests {
				kind = framePiggyback
			}
			s.transmit(to, f.data, f.cost, kind)
		}
		if res.digestsAttached {
			if covered == nil {
				covered = make(map[string]struct{})
			}
			covered[to] = struct{}{}
		}
	}
	return covered
}

// maxMsgFor is the largest encoded message that still fits one frame
// under the given cap once the frame header (2-byte sender length plus
// the sender id; the 4-byte length prefix is not counted against the cap
// by receivers) is accounted for. Both the packer's frame budget and the
// write pipeline's coalescing budget derive from it.
func maxMsgFor(maxFrame int, id string) int {
	return maxFrame - 2 - len(id)
}

func (s *Store) maxMsgBytes() int {
	return maxMsgFor(s.cfg.MaxFrameBytes, s.cfg.ID)
}

// frameKind classifies a frame for the wire accounting.
type frameKind int

const (
	// frameData carries shard items only.
	frameData frameKind = iota
	// frameDigest is a standalone DigestMsg (heartbeat or shard request).
	frameDigest
	// framePiggyback carries shard items plus the digest vector.
	framePiggyback
)

// transmit enqueues one frame onto the peer's write pipeline and records
// wire stats at enqueue time (a dedicated writer goroutine performs the
// actual dial and write, so stats here count frames handed to the
// pipeline). A frame lost downstream — queue overflow, failed dial or
// write — shows up in Stats().Peers[to].Dropped; the neighbor catches up
// on a later tick when the inner engines resend (acked engines retransmit
// until acknowledged) or when digest anti-entropy observes the
// divergence. Pair plain delta-based without digests with this transport
// only where loss is acceptable.
func (s *Store) transmit(to string, data []byte, cost metrics.Transmission, kind frameKind) {
	if err := s.net.transmit(to, data); err != nil {
		return // neighbor down or unknown; repaired on a later tick
	}
	s.statsMu.Lock()
	s.stats.Frames++
	s.stats.WireBytes += 4 + 2 + len(s.cfg.ID) + len(data)
	switch kind {
	case frameDigest:
		s.stats.DigestFrames++
	case framePiggyback:
		s.stats.PiggybackedDigests++
	}
	s.stats.Sent.Add(cost)
	s.statsMu.Unlock()
}

// deliver routes one inbound frame to its handler: sharded data frames
// through the single-pass unpacker straight to their shards, anything
// else (standalone digest frames) through the eager decoder. The frame
// bytes alias the connection's read buffer and are only valid during the
// call, so the view is reset before it returns to the pool. A non-nil
// error drops the connection (corrupt peer).
func (s *Store) deliver(from string, frame []byte) error {
	v := frameViews.Get().(*codec.FrameView)
	err := codec.UnpackFrame(frame, len(s.shards), v)
	switch {
	case err == nil:
		err = s.deliverSharded(from, v)
	case errors.Is(err, codec.ErrNotSharded):
		err = s.deliverControl(from, frame)
	}
	v.Reset() // drop references to the read buffer before pooling
	frameViews.Put(v)
	return err
}

// deliverSharded applies one unpacked data frame. Each touched shard's
// lock is taken exactly once per frame — the whole group of that shard's
// items (across every batch in the frame) is decoded and applied under
// the single hold — instead of once per item as the eager path did, and
// replies are coalesced per shard group just as syncs are. Replies flush
// inline on the read goroutine: transmit is a non-blocking enqueue onto
// the per-peer write pipelines, so no TCP write happens here and two
// nodes with mutually full send buffers cannot deadlock each other — the
// hazard that used to force a goroutine per inbound frame.
func (s *Store) deliverSharded(from string, v *codec.FrameView) error {
	d := getDeliverState()
	defer d.release()
	watched := s.hasWatchers()
	var derr error
	for _, g := range v.Groups() {
		sh := s.shards[g.Shard]
		d.sink.shard = g.Shard
		sh.mu.Lock()
		s.deliverLocks.Add(1)
		for i := range g.Items {
			iv := &g.Items[i]
			m, err := iv.Msg()
			if err != nil {
				// The skip walker accepted what the decoder rejects: a
				// codec bug, surfaced loudly by dropping the connection.
				// The partial application is harmless — deliveries are
				// idempotent joins and the peer resends on reconnect.
				derr = err
				break
			}
			if iv.Key == nil {
				// A keyless (non-batch) item: hand it to the engine whole,
				// exactly as the eager path did (perObject ignores it).
				sh.engine.Deliver(from, m, d.b.sender(g.Shard))
				continue
			}
			d.sink.key = iv.Key
			sh.od.DeliverObject(from, iv.Key, m, d.send)
		}
		sh.markDirty()
		sh.mu.Unlock()
		d.sink.flush(d.b)
		// Data from the peer a repair was requested from completes that
		// repair (the inner engines may also clear it incidentally with
		// ordinary deltas; the next heartbeat then re-evaluates).
		s.repair.clearFrom(int(g.Shard), from)
		if derr != nil {
			break
		}
		if watched {
			s.notifyGroup(g)
		}
	}
	if v.Dropped > 0 {
		s.statsMu.Lock()
		s.stats.DroppedItems += v.Dropped
		s.statsMu.Unlock()
	}
	if derr == nil {
		// A piggybacked digest vector is an advertisement like any other,
		// compared after the frame's own items have been merged (they are
		// part of the state the digests describe). A frame that failed
		// mid-decode gets no such trust: its digests are skipped.
		s.handleDigests(from, v.Digests)
	}
	// Flush even on error: the replies coalesced here belong to shard
	// groups that were fully applied — dropping them would discard real
	// acks and pull replies the peers are owed.
	if len(d.b.order) > 0 {
		s.flush(d.b, nil)
	}
	return derr
}

// notifyGroup offers the keys one shard group's items touched to the
// registered watchers. Pure acknowledgements and anti-entropy digests
// carry no state, so their items are skipped — classified by wire tag,
// without decoding; everything else notifies conservatively — a delivery
// the engine found redundant still counts as a (coalesced) change.
func (s *Store) notifyGroup(g codec.ItemGroup) {
	for i := range g.Items {
		iv := &g.Items[i]
		if iv.Key == nil || codec.IsAckTag(iv.Tag()) {
			continue
		}
		s.notifyWatchers(string(iv.Key))
	}
}

// deliverControl handles the non-sharded frames a store speaks: the
// standalone DigestMsg (advertisement heartbeat or shard request) and
// the TreeMsg drill-down steps. Anything else well-formed is ignored,
// preserving the eager path's tolerance; undecodable bytes drop the
// connection.
func (s *Store) deliverControl(from string, frame []byte) error {
	msg, _, err := codec.DecodeMsg(frame)
	if err != nil {
		return err
	}
	d := getDeliverState()
	defer d.release()
	switch m := msg.(type) {
	case *protocol.DigestMsg:
		s.serveWants(from, m.Want, d.seenShards(len(s.shards)))
		s.handleDigests(from, m.Digests)
	case *protocol.TreeMsg:
		s.handleTree(from, m, d.b)
	default:
		return nil // stores speak only sharded, digest and tree frames
	}
	if len(d.b.order) > 0 {
		s.flush(d.b, nil)
	}
	return nil
}

// serveWants answers a peer's shard requests: each validly requested
// shard is streamed once, in full. seen is the caller's pooled dedup
// scratch, sized by the shard count and never by the attacker-controlled
// request length: a hostile Want list of millions of duplicate indices
// must not amplify into allocation or work.
func (s *Store) serveWants(from string, want []uint32, seen []bool) {
	served := 0
	bytes := 0
	for _, idx := range want {
		if int(idx) >= len(s.shards) || seen[idx] {
			continue // hostile or stale request; serve each shard once
		}
		seen[idx] = true
		if n, ok := s.serveShard(from, idx); ok {
			served++
			bytes += n
		}
	}
	if served > 0 {
		s.statsMu.Lock()
		s.stats.RepairShards += served
		s.stats.RepairBytes += bytes
		s.statsMu.Unlock()
	}
}

// repairChunkBytes caps the key+state payload cloned and shipped per
// chunk when serving a full-shard pull. A wide-divergence repair on a
// large shard — restoring a peer from a stale snapshot is exactly this
// workload — used to materialize the entire shard as one monolithic
// batch and lean on the packer to split it; chunking bounds the clone
// held in memory and the shard-lock hold time to one chunk at a time.
const repairChunkBytes = 1 << 20

// serveShard streams one shard's full contents to a peer as a sequence
// of bounded BatchMsgs of per-key δ-groups carrying whole object states.
// A full state is a valid δ-group, so the receiver merges each chunk
// through the ordinary per-object delivery path (RR extracts exactly the
// missing part) and propagates anything new onwards. The key list is
// copied once up front; the shard lock is released between chunks (the
// keyspace is grow-only, and a state mutated meanwhile ships its newer
// value — anti-entropy never needs a point-in-time cut). Returns the
// key+state payload bytes shipped and whether anything was.
func (s *Store) serveShard(to string, idx uint32) (int, bool) {
	sh := s.shards[idx]
	sh.mu.Lock()
	keys := append([]string(nil), sh.engine.Keys()...)
	sh.mu.Unlock()
	if len(keys) == 0 {
		return 0, false
	}
	budget := min(s.maxMsgBytes()/2, repairChunkBytes)
	total := 0
	for i := 0; i < len(keys); {
		var items []protocol.ObjectMsg
		bytes := 0
		sh.mu.Lock()
		for i < len(keys) {
			st := sh.engine.ObjectState(keys[i])
			if st == nil {
				i++ // unreachable today (grow-only keyspace); skip defensively
				continue
			}
			sz := len(keys[i]) + st.SizeBytes()
			if len(items) > 0 && bytes+sz > budget {
				break // chunk full; an oversized single object still ships alone
			}
			st = st.Clone() // the message outlives the lock
			bytes += sz
			items = append(items, protocol.ObjectMsg{
				Key: keys[i],
				Inner: protocol.NewDeltaMsg(st, metrics.Transmission{
					Messages:     1,
					Elements:     st.Elements(),
					PayloadBytes: st.SizeBytes(),
				}),
			})
			i++
		}
		sh.mu.Unlock()
		if len(items) == 0 {
			continue
		}
		// Flush each chunk immediately on its own batch — accumulating
		// chunks in one outBatch would defeat the point of chunking.
		// flush must not run under the shard lock.
		b := newOutBatch()
		b.sender(idx)(to, protocol.BatchOf(items))
		s.flush(b, nil)
		total += bytes
	}
	return total, total > 0
}

func (s *Store) syncLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopping:
			return
		case <-ticker.C:
			s.SyncNow()
		}
	}
}

// Close stops the loops, closes every watcher (their Events channels
// close) and every connection. It is idempotent.
func (s *Store) Close() error {
	s.stopOnce.Do(func() { close(s.stopping) })
	s.closeWatchers()
	err := s.net.close()
	s.wg.Wait()
	return err
}
