package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"crdtsync/internal/codec"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// startFaultyPair starts two real stores wired through per-store fault
// injectors (either may be nil), with manual ticks and per-tick digest
// advertisements — the repair tests' standard rig. The returned stores
// are s[0] ("r-00") and s[1] ("r-01").
func startFaultyPair(t *testing.T, template StoreConfig, faults [2]*Fault) [2]*Store {
	t.Helper()
	ids := [2]string{"r-00", "r-01"}
	var addrs [2]string
	var listeners [2]net.Listener
	for i := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var stores [2]*Store
	for i := range stores {
		cfg := template
		cfg.ID = ids[i]
		cfg.Listener = listeners[i]
		cfg.Peers = map[string]string{ids[1-i]: addrs[1-i]}
		cfg.Nodes = ids[:]
		if faults[i] != nil {
			cfg.Dial = faults[i].Dialer(nil)
		}
		st, err := StartStore(cfg)
		if err != nil {
			t.Fatalf("start %s: %v", ids[i], err)
		}
		stores[i] = st
		t.Cleanup(func() { st.Close() })
	}
	return stores
}

// repairPairConfig is the template the repair tests share: one shard so
// every key is in the diverged shard, manual ticks, digests every tick.
func repairPairConfig() StoreConfig {
	return StoreConfig{
		Shards:      1,
		Factory:     protocol.NewDeltaBPRR(),
		ObjType:     func(string) workload.Datatype { return workload.GSetType{} },
		SyncEvery:   time.Hour, // ticks driven manually
		DigestEvery: 1,
	}
}

// loadIdentical applies the same GSet adds to both stores directly, so
// their states — and digests — are identical without any wire traffic.
// Keys are generated in sorted order (the per-object engine's sorted
// insert is amortized O(1) only then).
func loadIdentical(stores [2]*Store, n int) {
	for k := 0; k < n; k++ {
		op := workload.Add(fmt.Sprintf("k%07d", k), "v")
		stores[0].Update(op)
		stores[1].Update(op)
	}
}

// drainInto flushes a store's δ-buffers into the (black-holed) wire:
// two manual ticks clear the loss-intolerant plain-delta buffers, then
// the per-peer queues are drained so nothing leaks out after healing.
func drainInto(t *testing.T, s *Store) {
	t.Helper()
	s.SyncNow()
	s.SyncNow()
	deadline := time.Now().Add(10 * time.Second)
	for {
		queued := 0
		for _, ps := range s.Stats().Peers {
			queued += ps.Queued
		}
		if queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d frames still queued", s.ID(), queued)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitPairConverged polls until both stores hold wantKeys keys with
// equal digests.
func waitPairConverged(t *testing.T, stores [2]*Store, wantKeys int, timeout time.Duration) {
	t.Helper()
	if err := WaitConverged(stores[:], wantKeys, timeout, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWantStormDedup is the Want-storm regression test: a store
// receiving digest heartbeats faster than repair completes must issue
// exactly one outstanding repair request per diverged shard, dedup the
// rest, and still deliver each diverged range exactly once when the
// repair finally completes. Run under -race in CI, it also exercises
// the repair table's locking against concurrent heartbeats.
func TestWantStormDedup(t *testing.T) {
	const (
		sharedKeys = 600 // ≥ TreeRepairMinKeys: drill-down eligible
		storm      = 15
	)
	// Both directions black-holed while state is staged; r-01's outbound
	// stays dark through the storm so its drill-down query is lost and
	// the repair stays in flight.
	f0, f1 := NewFault(1), NewFault(2)
	f0.SetDropRate(1)
	f1.SetDropRate(1)
	cfg := repairPairConfig()
	cfg.RepairTimeout = 500 * time.Millisecond
	stores := startFaultyPair(t, cfg, [2]*Fault{f0, f1})
	s0, s1 := stores[0], stores[1]

	loadIdentical(stores, sharedKeys)
	drainInto(t, s0)
	drainInto(t, s1)
	// Diverge: one key exists only on s0, its deltas lost to the black
	// hole — only digest anti-entropy can see it.
	s0.Update(workload.Add("k-diverged", "v"))
	drainInto(t, s0)
	if got := s1.NumKeys(); got != sharedKeys {
		t.Fatalf("black hole leaked: s1 holds %d keys, want %d", got, sharedKeys)
	}

	// Heal s0's outbound only and storm heartbeats: each tick ships one
	// digest advertisement to s1, whose repair request cannot get out.
	f0.SetDropRate(0)
	for i := 0; i < storm; i++ {
		s0.SyncNow()
		// Wait for this heartbeat to be processed before the next, so
		// each is a distinct observation of the in-flight repair.
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := s1.Stats()
			if st.TreeRounds+st.DedupedWants >= i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("heartbeat %d never processed: %+v", i, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	storStats := s1.Stats()
	if storStats.TreeRounds != 1 {
		t.Errorf("storm started %d drill-downs, want exactly 1", storStats.TreeRounds)
	}
	if storStats.DedupedWants != storm-1 {
		t.Errorf("DedupedWants = %d, want %d", storStats.DedupedWants, storm-1)
	}
	if storStats.WantShards != 0 {
		t.Errorf("storm issued %d flat shard wants, want 0", storStats.WantShards)
	}

	// Heal r-01, let the in-flight (lost) repair expire, and tick once
	// more: the retriggered drill-down now completes end to end.
	f1.SetDropRate(0)
	time.Sleep(600 * time.Millisecond) // > RepairTimeout
	s0.SyncNow()
	waitPairConverged(t, stores, sharedKeys+1, 30*time.Second)

	final0 := s0.Stats()
	if final0.RepairShards != 0 {
		t.Errorf("repair shipped %d full shards, want 0 (range repair only)", final0.RepairShards)
	}
	// One diverged key lives in exactly one leaf range, and that range
	// must have been delivered exactly once.
	if final0.RepairRanges != 1 {
		t.Errorf("RepairRanges = %d, want exactly 1 delivery for 1 diverged range", final0.RepairRanges)
	}
	if final0.RepairBytes <= 0 {
		t.Errorf("RepairBytes = %d, want > 0", final0.RepairBytes)
	}
}

// TestTreeRepairConvergence drills multiple diverged keys end to end:
// every diverged key reaches the peer, nothing ships as a full shard,
// and the served ranges match the diverged keys' distinct leaves.
func TestTreeRepairConvergence(t *testing.T) {
	const (
		sharedKeys   = 400
		divergedKeys = 5
	)
	f0, f1 := NewFault(3), NewFault(4)
	f0.SetDropRate(1)
	f1.SetDropRate(1)
	stores := startFaultyPair(t, repairPairConfig(), [2]*Fault{f0, f1})
	s0, s1 := stores[0], stores[1]

	loadIdentical(stores, sharedKeys)
	drainInto(t, s0)
	drainInto(t, s1)
	leaves := make(map[uint32]bool)
	for i := 0; i < divergedKeys; i++ {
		k := fmt.Sprintf("k-diverged-%d", i)
		leaves[treeLeafIdx(k)] = true
		s0.Update(workload.Add(k, "v"))
	}
	drainInto(t, s0)

	f0.SetDropRate(0)
	f1.SetDropRate(0)
	s0.SyncNow()
	waitPairConverged(t, stores, sharedKeys+divergedKeys, 30*time.Second)

	st0, st1 := s0.Stats(), s1.Stats()
	if st0.RepairShards != 0 {
		t.Errorf("repair shipped %d full shards, want 0", st0.RepairShards)
	}
	if st0.RepairRanges != len(leaves) {
		t.Errorf("RepairRanges = %d, want %d (one per diverged leaf)", st0.RepairRanges, len(leaves))
	}
	// The drill is log-depth: one query round per level plus the leaf
	// want, all initiated by the comparing store.
	if st1.TreeRounds < protocol.TreeDepth+1 {
		t.Errorf("TreeRounds = %d, want >= %d (levels + want)", st1.TreeRounds, protocol.TreeDepth+1)
	}
	for i := 0; i < divergedKeys; i++ {
		k := fmt.Sprintf("k-diverged-%d", i)
		if st := s1.Get(k); st == nil || st.IsBottom() {
			t.Errorf("diverged key %q missing on s1 after repair", k)
		}
	}
}

// TestSmallShardFlatRepair: below TreeRepairMinKeys a diverged shard is
// pulled whole — the drill-down's hash exchange would cost more than
// the shard. The repair table still dedups the flat Wants.
func TestSmallShardFlatRepair(t *testing.T) {
	s := startSoloStore(t, 1)
	for i := 0; i < 10; i++ {
		s.Update(workload.Add(fmt.Sprintf("k%d", i), "v"))
	}
	// A differing advertisement from an unknown peer: the reply is
	// dropped by the peer net, so the repair stays in flight.
	adv := encodeFrame(t, protocol.NewDigestMsg([]uint64{12345}, nil,
		protocol.DigestCost([]uint64{12345}, nil)))
	for i := 0; i < 3; i++ {
		if err := s.deliver("peer", adv); err != nil {
			t.Fatalf("deliver: %v", err)
		}
	}
	st := s.Stats()
	if st.WantShards != 1 {
		t.Errorf("WantShards = %d, want 1 (flat pull, deduped)", st.WantShards)
	}
	if st.TreeRounds != 0 {
		t.Errorf("TreeRounds = %d, want 0 below TreeRepairMinKeys", st.TreeRounds)
	}
	if st.DedupedWants != 2 {
		t.Errorf("DedupedWants = %d, want 2", st.DedupedWants)
	}
}

// TestNoTreeRepairKnob: with the drill-down disabled, a large diverged
// shard falls back to the flat full pull.
func TestNoTreeRepairKnob(t *testing.T) {
	s, err := StartStore(StoreConfig{
		ID:           "n0",
		ListenAddr:   "127.0.0.1:0",
		Shards:       1,
		Factory:      protocol.NewDeltaBPRR(),
		ObjType:      func(string) workload.Datatype { return workload.GSetType{} },
		NoTreeRepair: true,
	})
	if err != nil {
		t.Fatalf("StartStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < 600; i++ {
		s.Update(workload.Add(fmt.Sprintf("k%06d", i), "v"))
	}
	adv := encodeFrame(t, protocol.NewDigestMsg([]uint64{12345}, nil,
		protocol.DigestCost([]uint64{12345}, nil)))
	if err := s.deliver("peer", adv); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	st := s.Stats()
	if st.WantShards != 1 || st.TreeRounds != 0 {
		t.Errorf("WantShards = %d TreeRounds = %d, want flat pull only", st.WantShards, st.TreeRounds)
	}
}

// TestDigestShardMismatchCounted pins the misconfiguration satellite: a
// digest advertisement of foreign width is not comparable, must repair
// nothing, and must say so in Stats.
func TestDigestShardMismatchCounted(t *testing.T) {
	s := startSoloStore(t, 4)
	adv := encodeFrame(t, protocol.NewDigestMsg(make([]uint64, 8), nil,
		protocol.DigestCost(make([]uint64, 8), nil)))
	for i := 0; i < 2; i++ {
		if err := s.deliver("peer", adv); err != nil {
			t.Fatalf("deliver: %v", err)
		}
	}
	st := s.Stats()
	if st.DigestShardMismatch != 2 {
		t.Errorf("DigestShardMismatch = %d, want 2", st.DigestShardMismatch)
	}
	if st.WantShards != 0 || st.TreeRounds != 0 {
		t.Errorf("mismatched advertisement triggered repair: %+v", st)
	}
}

// TestServeWantsHostileNoAllocs extends the hostile-Want defense to the
// allocation budget: a Want list of duplicate and out-of-range indices
// must be served (with nothing to ship) without a single allocation —
// the dedup scratch comes from the pooled deliverState.
func TestServeWantsHostileNoAllocs(t *testing.T) {
	s := startSoloStore(t, 4) // empty shards: nothing ships
	want := []uint32{0, 0, 0, 1, 1, 9, 99, 4294967295, 2, 2, 2}
	d := getDeliverState()
	defer d.release()
	allocs := testing.AllocsPerRun(100, func() {
		s.serveWants("peer", want, d.seenShards(len(s.shards)))
	})
	if allocs != 0 {
		t.Errorf("serveWants allocated %.1f times per hostile request, want 0", allocs)
	}
}

// TestNotifyGroupNoWatcherAllocs pins the no-watcher deliver path's
// notification step: gated on the lock-free watcher count, it must cost
// nothing — in particular never materialize an item's key as a string —
// when nobody watches. (The rest of the deliver path pays inherent
// per-item decode allocations either way; the notification step is what
// the gate saves.)
func TestNotifyGroupNoWatcherAllocs(t *testing.T) {
	s := startSoloStore(t, 4)
	keys := keysOnShard(s.mask, 1, 3)
	frame := encodeFrame(t, protocol.NewShardedMsg([]protocol.ShardItem{
		shardBatch(1, keys...),
	}))
	var v codec.FrameView
	if err := codec.UnpackFrame(frame, len(s.shards), &v); err != nil {
		t.Fatalf("unpack: %v", err)
	}
	g := v.Groups()[0]
	allocs := testing.AllocsPerRun(100, func() {
		// Exactly what deliverSharded runs per group when no one watches.
		if s.hasWatchers() {
			s.notifyGroup(g)
		}
	})
	if allocs != 0 {
		t.Errorf("no-watcher notification step allocated %.1f times per group, want 0", allocs)
	}
	// With a watcher registered the same frame does notify.
	w := s.Watch("", 16)
	defer w.Close()
	if err := s.deliver("peer", frame); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	select {
	case ev := <-w.Events():
		if ev.Key == "" {
			t.Error("empty watch event key")
		}
	case <-time.After(5 * time.Second):
		t.Error("watcher saw no event after delivery")
	}
}

// TestRepairTableSemantics covers the in-flight gate directly: claim,
// dedup, foreign answers, the want gate on delivery clears, timeout
// expiry, and the consecutive-failure carry-over that demotes a lossy
// link from drill-down to flat pull.
func TestRepairTableSemantics(t *testing.T) {
	r := repairTable{timeout: time.Second, entries: make([]repairEntry, 2)}
	t0 := time.Unix(1000, 0)
	if _, ok := r.tryStart(0, "a", t0); !ok {
		t.Fatal("fresh slot refused")
	}
	if _, ok := r.tryStart(0, "b", t0.Add(time.Millisecond)); ok {
		t.Error("in-flight slot re-claimed")
	}
	if _, ok := r.tryStart(1, "b", t0); !ok {
		t.Error("independent shard blocked")
	}
	if r.refresh(0, "b", t0.Add(time.Millisecond)) {
		t.Error("foreign peer refreshed the repair")
	}
	if !r.refresh(0, "a", t0.Add(time.Millisecond)) {
		t.Error("owner could not refresh")
	}
	// Delivery only clears once the repair has actually asked for data:
	// ordinary delta traffic from the owner must not abort a drill.
	r.clearFrom(0, "a")
	if _, ok := r.tryStart(0, "c", t0.Add(2*time.Millisecond)); ok {
		t.Error("delivery before the want was sent released the slot")
	}
	r.markWant(0, "a")
	r.clearFrom(0, "b")
	if _, ok := r.tryStart(0, "c", t0.Add(2*time.Millisecond)); ok {
		t.Error("clearFrom with foreign peer released the slot")
	}
	r.clearFrom(0, "a")
	if fails, ok := r.tryStart(0, "c", t0.Add(3*time.Millisecond)); !ok || fails != 0 {
		t.Errorf("slot after owner delivery: fails=%d ok=%v, want 0 true", fails, ok)
	}
	// Timeout: an expired repair no longer dedups, and each expiry
	// carries a failure over until maxDrillFails is reached.
	if fails, ok := r.tryStart(1, "d", t0.Add(2*time.Second)); !ok || fails != 1 {
		t.Errorf("first expiry: fails=%d ok=%v, want 1 true", fails, ok)
	}
	if fails, ok := r.tryStart(1, "d", t0.Add(4*time.Second)); !ok || fails != maxDrillFails {
		t.Errorf("second expiry: fails=%d ok=%v, want %d true", fails, ok, maxDrillFails)
	}
	if fails, ok := r.tryStart(1, "d", t0.Add(6*time.Second)); !ok || fails != maxDrillFails {
		t.Errorf("failure count past max: fails=%d ok=%v, want %d true", fails, ok, maxDrillFails)
	}
	// A match-clear resets the failure streak.
	r.clear(1)
	if fails, ok := r.tryStart(1, "e", t0.Add(8*time.Second)); !ok || fails != 0 {
		t.Errorf("slot after clear: fails=%d ok=%v, want 0 true", fails, ok)
	}
}

// TestTreeLeafHashesMatchAcrossReplicas pins the canonical-hash
// discipline the drill-down depends on: two stores holding the same
// keys in the same states compute identical leaf vectors, and a
// one-key difference shows up in exactly that key's leaf.
func TestTreeLeafHashesMatchAcrossReplicas(t *testing.T) {
	a := startSoloStore(t, 1)
	b := startSoloStore(t, 1)
	for i := 0; i < 300; i++ {
		op := workload.Add(fmt.Sprintf("k%04d", i), "v")
		a.Update(op)
		b.Update(op)
	}
	leavesOf := func(s *Store) []uint64 {
		sh := s.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.ensureLeavesLocked()
		return append([]uint64(nil), sh.leaf...)
	}
	la, lb := leavesOf(a), leavesOf(b)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("leaf %d differs on identical stores", i)
		}
	}
	b.Update(workload.Add("extra", "v"))
	lb2 := leavesOf(b)
	want := treeLeafIdx("extra")
	for i := range lb2 {
		if (lb2[i] != lb[i]) != (uint32(i) == want) {
			t.Fatalf("one-key change altered leaf %d (expected only %d)", i, want)
		}
	}
}

// TestHandleTreeHostileInputs throws malformed drill-down steps built
// directly (bypassing the decoder's bounds checks) at the handlers:
// nothing may panic, and hostile duplicate Wants must not double-serve.
func TestHandleTreeHostileInputs(t *testing.T) {
	s := startSoloStore(t, 2)
	for i := 0; i < 20; i++ {
		s.Update(workload.Add(fmt.Sprintf("k%d", i), "v"))
	}
	d := getDeliverState()
	defer d.release()
	cost := protocol.TreeCost(nil, nil, nil, nil)
	hostile := []*protocol.TreeMsg{
		protocol.NewTreeMsg(99, 1, []uint32{0}, nil, nil, nil, cost), // shard skew
		protocol.NewTreeMsg(0, 0, []uint32{0}, nil, nil, nil, cost),  // level 0
		protocol.NewTreeMsg(0, 9, []uint32{0}, nil, nil, nil, cost),  // level past depth
		protocol.NewTreeMsg(0, 1, []uint32{999999}, nil, nil, nil, cost),
		protocol.NewTreeMsg(0, 1, nil, []uint32{1, 2}, []uint64{7}, nil, cost), // mismatched answer
		protocol.NewTreeMsg(0, 3, nil, nil, nil, []uint32{protocol.TreeLeaves + 5}, cost),
	}
	for _, m := range hostile {
		s.handleTree("peer", m, d.b)
	}
	// A duplicated Want serves each range once.
	wantAll := make([]uint32, 0, 2*protocol.TreeFanout)
	for c := uint32(0); c < protocol.TreeFanout; c++ {
		wantAll = append(wantAll, c, c) // every level-1 node, twice
	}
	s.handleTree("peer", protocol.NewTreeMsg(0, 1, nil, nil, nil, wantAll, cost), d.b)
	if got := s.Stats().RepairRanges; got != protocol.TreeFanout {
		t.Errorf("duplicated Want served %d ranges, want %d", got, protocol.TreeFanout)
	}
}

// TestContinueDrillHostileAnswer is the regression test for the
// out-of-range answer panic: continueDrill used to hand a hand-built
// answer's node indices to treeNodeHashes before validating them, and
// an index past the level's node count sliced past the leaf vector and
// panicked the store. The hostile answer must land on an armed repair
// (a fresh one is ignored before it ever reaches the hashing), be
// dropped harmlessly, and a mixed answer must still drill on its valid
// indices alone.
func TestContinueDrillHostileAnswer(t *testing.T) {
	s := startSoloStore(t, 1)
	for i := 0; i < 20; i++ {
		s.Update(workload.Add(fmt.Sprintf("k%d", i), "v"))
	}
	d := getDeliverState()
	defer d.release()
	// Arm an in-flight repair toward the hostile peer so the answer
	// passes the freshness gate — the state a real drill is in when an
	// answer arrives.
	if _, ok := s.repair.tryStart(0, "peer", time.Now()); !ok {
		t.Fatal("tryStart refused a fresh repair slot")
	}
	cost := protocol.TreeCost(nil, nil, nil, nil)
	maxNode := uint32(protocol.TreeNodesAt(1))
	// Every index out of range for level 1: pre-fix this panicked.
	s.handleTree("peer", protocol.NewTreeMsg(0, 1, nil,
		[]uint32{maxNode, 1 << 30}, []uint64{0, 0}, nil, cost), d.b)
	// The unusable answer must not have cleared the repair: a mixed
	// answer on the same slot still drills into its one valid index.
	rounds := s.Stats().TreeRounds
	s.handleTree("peer", protocol.NewTreeMsg(0, 1, nil,
		[]uint32{3, maxNode}, []uint64{0xdeadbeef, 0}, nil, cost), d.b)
	if got := s.Stats().TreeRounds; got != rounds+1 {
		t.Errorf("mixed answer drilled %d new rounds, want 1 (valid index alone)", got-rounds)
	}
}
