package transport

import (
	"testing"
	"time"
)

// TestFaultForPeerScopesKnobs pins the override semantics of ForPeer
// deterministically, at the decide level: a per-peer knob binds that peer
// in that direction only, every unset knob keeps following the
// injector-wide policy, and injector-wide changes keep applying to peers
// that never had the knob overridden.
func TestFaultForPeerScopesKnobs(t *testing.T) {
	f := NewFault(1)
	f.ForPeer("p1").SetDropRate(1)
	for i := 0; i < 50; i++ {
		if drop, _, _, _ := f.decide(dirSend, "p1"); !drop {
			t.Fatal("p1 send override: frame survived a 100% drop rate")
		}
		if drop, _, _, _ := f.decide(dirSend, "p2"); drop {
			t.Fatal("p1's override leaked onto p2")
		}
		if drop, _, _, _ := f.decide(dirRecv, "p1"); drop {
			t.Fatal("p1's send override leaked onto its receive direction")
		}
	}

	// Injector-wide rate with a per-peer exemption: the exempt peer never
	// drops, everyone else always does.
	f.SetDropRate(1)
	f.ForPeer("p2").SetDropRate(0)
	for i := 0; i < 50; i++ {
		if drop, _, _, _ := f.decide(dirSend, "p2"); drop {
			t.Fatal("p2's exemption did not override the global rate")
		}
		if drop, _, _, _ := f.decide(dirSend, "p3"); !drop {
			t.Fatal("global rate stopped applying to unoverridden p3")
		}
	}
	f.SetDropRate(0)

	// Unset knobs fall through: p1's delay was never overridden, so a
	// global delay change reaches it even though its drop rate is pinned.
	f.ForPeer("p1").SetDropRate(0)
	f.SetDelay(3 * time.Millisecond)
	if _, _, delay, _ := f.decide(dirSend, "p1"); delay != 3*time.Millisecond {
		t.Fatalf("p1 delay = %v, want the global 3ms (knob was never overridden)", delay)
	}

	// Reorder override on the receive side only.
	f.ForPeer("p1").SetRecvReorder(1, 7*time.Millisecond)
	if _, _, _, hold := f.decide(dirRecv, "p1"); hold != 7*time.Millisecond {
		t.Fatalf("p1 recv hold = %v, want 7ms", hold)
	}
	if _, _, _, hold := f.decide(dirRecv, "p2"); hold != 0 {
		t.Fatalf("p2 recv hold = %v, want 0", hold)
	}
	if _, _, _, hold := f.decide(dirSend, "p1"); hold != 0 {
		t.Fatalf("p1 send hold = %v, want 0 (override is recv-scoped)", hold)
	}

	// Severing trumps every override.
	f.SetSever(func(peer string) bool { return peer == "p2" })
	if drop, _, _, _ := f.decide(dirSend, "p2"); !drop {
		t.Fatal("sever did not trump p2's drop-rate exemption")
	}
}
