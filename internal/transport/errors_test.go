package transport_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

// dialNode opens a raw TCP connection to a node's listener.
func dialNode(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return conn
}

// expectDrop asserts the server closes the connection (read returns an
// error once our bytes are processed).
func expectDrop(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Error("server kept the connection open, want drop")
	}
}

func TestNodeDropsOversizedFrame(t *testing.T) {
	nodes := startCluster(t, 2, [][2]int{{0, 1}}, protocol.NewDeltaBPRR())
	conn := dialNode(t, nodes[0].Addr())
	defer conn.Close()
	// A length prefix beyond the 64 MiB cap must get the connection
	// dropped without the node allocating the claimed buffer.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	expectDrop(t, conn)
	// The node is still healthy: real traffic converges.
	nodes[1].Update(workload.Op{Kind: workload.KindAdd, Elem: "alive"})
	waitConverged(t, nodes, crdt.NewGSet("alive"), 5*time.Second)
}

func TestNodeDropsCorruptFrame(t *testing.T) {
	nodes := startCluster(t, 2, [][2]int{{0, 1}}, protocol.NewDeltaBPRR())
	conn := dialNode(t, nodes[0].Addr())
	defer conn.Close()
	// Well-framed garbage: valid length and sender id, unparseable
	// message body (unknown codec tag).
	body := []byte{0, 2, 'z', 'z', 250, 1, 2, 3}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	conn.Write(hdr[:])
	conn.Write(body)
	expectDrop(t, conn)
	nodes[0].Update(workload.Op{Kind: workload.KindAdd, Elem: "still-up"})
	waitConverged(t, nodes, crdt.NewGSet("still-up"), 5*time.Second)
}

func TestNodeCloseWhilePeerMidFrame(t *testing.T) {
	nodes := startCluster(t, 1, nil, protocol.NewDeltaBPRR())
	conn := dialNode(t, nodes[0].Addr())
	defer conn.Close()
	// Send only a header promising 100 bytes: the node's readLoop parks
	// in io.ReadFull. Close must still return promptly.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the readLoop pick up the conn
	done := make(chan error, 1)
	go func() { done <- nodes[0].Close() }()
	select {
	case err := <-done:
		if err != nil && !isUseOfClosed(err) {
			t.Errorf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a peer stuck mid-frame")
	}
}

func TestStoreCloseWhilePeerMidFrame(t *testing.T) {
	st, err := transport.StartStore(transport.StoreConfig{
		ID:         "solo",
		ListenAddr: "127.0.0.1:0",
		Peers:      map[string]string{},
		Factory:    protocol.NewDeltaBPRR(),
		ObjType:    func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialNode(t, st.Addr())
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- st.Close() }()
	select {
	case err := <-done:
		if err != nil && !isUseOfClosed(err) {
			t.Errorf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Store.Close hung on a peer stuck mid-frame")
	}
}

func TestStoreIgnoresNonShardedFrames(t *testing.T) {
	// A store receiving a frame that decodes to a non-sharded message
	// (e.g. from a plain Node misconfigured to peer with it) ignores the
	// message and keeps the connection.
	stores := startStoreCluster(t, 2, 4, protocol.NewDeltaBPRR(), 20*time.Millisecond)
	node, err := transport.Start(transport.Config{
		ID:         "legacy",
		ListenAddr: "127.0.0.1:0",
		Peers:      map[string]string{stores[0].ID(): stores[0].Addr()},
		Datatype:   workload.GSetType{},
		Factory:    protocol.NewDeltaBPRR(),
		SyncEvery:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Update(workload.Op{Kind: workload.KindAdd, Elem: "x"})
	node.SyncNow() // delivers a DeltaMsg frame to the store
	// The store must stay healthy and keep syncing its own keyspace.
	stores[0].Update(workload.Op{Kind: workload.KindInc, Key: "k", N: 1})
	waitStoresConverged(t, stores, 1, 5*time.Second)
}
