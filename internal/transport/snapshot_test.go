package transport

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// startSnapStore builds one peerless store persisting to dir, with the
// periodic snapshotter parked (SnapshotEvery one hour) so the tests
// drive SnapshotNow explicitly. Close is idempotent, so tests that
// stop and restart stores may Close them by hand as well.
func startSnapStore(t testing.TB, shards int, dir string) *Store {
	t.Helper()
	s, err := StartStore(StoreConfig{
		ID:            "n0",
		ListenAddr:    "127.0.0.1:0",
		Shards:        shards,
		Factory:       protocol.NewDeltaBPRR(),
		ObjType:       func(string) workload.Datatype { return workload.GSetType{} },
		SnapshotDir:   dir,
		SnapshotEvery: time.Hour,
	})
	if err != nil {
		t.Fatalf("StartStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// listenOn rebinds a listener on the exact address a closed store used,
// retrying briefly so a restart can reclaim its old identity.
func listenOn(t *testing.T, addr string) net.Listener {
	t.Helper()
	var lastErr error
	for i := 0; i < 200; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("re-listen %s: %v", addr, lastErr)
	return nil
}

// TestSnapshotRestoreRoundTrip pins the durability contract: a store
// snapshotted and restarted over the same directory comes back with the
// same keyspace, the same per-object states, and the same digest — with
// the restored keys counted in Stats and nothing re-shipped.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := startSnapStore(t, 4, dir)
	const n = 200
	for k := 0; k < n; k++ {
		s.Update(workload.Add(fmt.Sprintf("k%07d", k), "v"))
	}
	// A second element on one key: restore must reproduce the merged
	// state, not just the key's existence.
	s.Update(workload.Add("k0000000", "w"))
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	st := s.Stats()
	if st.SnapshotsWritten != 4 {
		t.Fatalf("SnapshotsWritten = %d, want 4 (one per shard)", st.SnapshotsWritten)
	}
	if st.SnapshotBytes <= 0 {
		t.Fatalf("SnapshotBytes = %d, want > 0", st.SnapshotBytes)
	}
	digest := s.Digest()
	merged := s.Get("k0000000")
	s.Close()

	s2 := startSnapStore(t, 4, dir)
	if got := s2.NumKeys(); got != n {
		t.Fatalf("restored NumKeys = %d, want %d", got, n)
	}
	if got := s2.Digest(); got != digest {
		t.Fatalf("restored digest %x != original %x", got, digest)
	}
	if got := s2.Get("k0000000"); got == nil || !got.Equal(merged) {
		t.Fatalf("restored state %v != original %v", got, merged)
	}
	st2 := s2.Stats()
	if st2.SnapshotRestoredKeys != n {
		t.Fatalf("SnapshotRestoredKeys = %d, want %d", st2.SnapshotRestoredKeys, n)
	}
	if st2.SnapshotRestoreErrors != 0 {
		t.Fatalf("SnapshotRestoreErrors = %d, want 0", st2.SnapshotRestoreErrors)
	}
	// Restored keys are quiescent: nothing sits in δ-buffers waiting to
	// re-ship the whole keyspace at the first peer contact.
	if m := s2.Memory(); m.BufferBytes != 0 {
		t.Fatalf("restored store holds %d buffered δ bytes, want 0", m.BufferBytes)
	}
}

// TestSnapshotSkipsCleanShards pins the incremental pass: a shard whose
// content digest has not moved since its last snapshot is not re-encoded
// or rewritten, and a single update dirties exactly one shard.
func TestSnapshotSkipsCleanShards(t *testing.T) {
	dir := t.TempDir()
	s := startSnapStore(t, 4, dir)
	for k := 0; k < 64; k++ {
		s.Update(workload.Add(fmt.Sprintf("k%07d", k), "v"))
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if got := s.Stats().SnapshotsWritten; got != 4 {
		t.Fatalf("first pass wrote %d shards, want 4", got)
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if got := s.Stats().SnapshotsWritten; got != 4 {
		t.Fatalf("clean pass rewrote shards: SnapshotsWritten = %d, want still 4", got)
	}
	s.Update(workload.Add("k0000000", "w"))
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if got := s.Stats().SnapshotsWritten; got != 5 {
		t.Fatalf("one-key pass wrote %d total, want 5 (exactly one shard dirty)", got)
	}
}

// TestSnapshotRestoreShardCountChange pins the re-routing contract: keys
// are restored by hashing, not by trusting the file's recorded shard
// index, so a store restarted with a different shard count still
// restores everything.
func TestSnapshotRestoreShardCountChange(t *testing.T) {
	dir := t.TempDir()
	s := startSnapStore(t, 4, dir)
	const n = 100
	for k := 0; k < n; k++ {
		s.Update(workload.Add(fmt.Sprintf("k%07d", k), "v"))
	}
	want := s.Get("k0000042")
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	s.Close()

	s2 := startSnapStore(t, 2, dir)
	if got := s2.NumKeys(); got != n {
		t.Fatalf("restored NumKeys = %d with 2 shards, want %d", got, n)
	}
	if got := s2.Get("k0000042"); got == nil || !got.Equal(want) {
		t.Fatalf("restored state %v != original %v", got, want)
	}
}

// TestSnapshotCorruptRestoreFallback pins the hostile-disk contract: a
// corrupt or truncated snapshot file never panics and never partially
// applies — it contributes nothing, the error is counted, and every
// other shard's file restores normally.
func TestSnapshotCorruptRestoreFallback(t *testing.T) {
	dir := t.TempDir()
	s := startSnapStore(t, 4, dir)
	const per = 25
	var perShard [4][]string
	for i := range perShard {
		perShard[i] = keysOnShard(s.mask, uint32(i), per)
		for _, k := range perShard[i] {
			s.Update(workload.Add(k, "v"))
		}
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	s.Close()

	// Shard 0: one byte flipped mid-file (CRC catches it). Shard 1:
	// truncated mid-frame. A stray junk .snap rides along; a .tmp
	// leftover must be ignored entirely.
	p0 := snapshotPath(dir, 0)
	data, err := os.ReadFile(p0)
	if err != nil {
		t.Fatalf("read %s: %v", p0, err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(p0, data, 0o644); err != nil {
		t.Fatalf("corrupt %s: %v", p0, err)
	}
	p1 := snapshotPath(dir, 1)
	if err := os.Truncate(p1, 9); err != nil {
		t.Fatalf("truncate %s: %v", p1, err)
	}
	junk := filepath.Join(dir, "zz-junk.snap")
	if err := os.WriteFile(junk, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatalf("write junk: %v", err)
	}
	tmp := filepath.Join(dir, "shard-0002.snap.tmp")
	if err := os.WriteFile(tmp, []byte("torn write leftovers"), 0o644); err != nil {
		t.Fatalf("write tmp: %v", err)
	}

	s2 := startSnapStore(t, 4, dir)
	if got, want := s2.NumKeys(), 2*per; got != want {
		t.Fatalf("restored NumKeys = %d, want %d (shards 2 and 3 only)", got, want)
	}
	for _, k := range perShard[2] {
		if st := s2.Get(k); st == nil || st.IsBottom() {
			t.Fatalf("intact shard's key %q missing after restore", k)
		}
	}
	for _, k := range perShard[0] {
		if st := s2.Get(k); st != nil && !st.IsBottom() {
			t.Fatalf("corrupt shard's key %q partially applied", k)
		}
	}
	st2 := s2.Stats()
	if st2.SnapshotRestoreErrors != 3 {
		t.Fatalf("SnapshotRestoreErrors = %d, want 3 (flipped, truncated, junk)", st2.SnapshotRestoreErrors)
	}
	if st2.SnapshotRestoredKeys != 2*per {
		t.Fatalf("SnapshotRestoredKeys = %d, want %d", st2.SnapshotRestoredKeys, 2*per)
	}
}

// TestKillRestartUnderTraffic is the crash-restart fault battery (run
// under -race in CI): a live pair under continuous writes has one
// replica killed mid-traffic and restarted from its last snapshot on the
// same identity and address; the cluster must reconverge on the full
// keyspace, with the restart seeded from disk rather than empty.
func TestKillRestartUnderTraffic(t *testing.T) {
	ids := [2]string{"p-00", "p-01"}
	var addrs [2]string
	var listeners [2]net.Listener
	for i := range ids {
		listeners[i] = listenOn(t, "127.0.0.1:0")
		addrs[i] = listeners[i].Addr().String()
	}
	dir := t.TempDir()
	start := func(i int, ln net.Listener) *Store {
		cfg := StoreConfig{
			ID:        ids[i],
			Listener:  ln,
			Peers:     map[string]string{ids[1-i]: addrs[1-i]},
			Nodes:     ids[:],
			Shards:    4,
			Factory:   protocol.NewDeltaAcked(true, true),
			ObjType:   func(string) workload.Datatype { return workload.GSetType{} },
			SyncEvery: 5 * time.Millisecond,
			// Digest anti-entropy is what repairs the restart's snapshot
			// gap: keys the dead incarnation had acknowledged are out of
			// the peer's retransmission buffer for good.
			DigestEvery: 2,
		}
		if i == 1 {
			cfg.SnapshotDir = dir
			cfg.SnapshotEvery = time.Hour // SnapshotNow driven by the test
		}
		st, err := StartStore(cfg)
		if err != nil {
			t.Fatalf("start %s: %v", ids[i], err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	s0, s1 := start(0, listeners[0]), start(1, listeners[1])

	key := func(k int) string { return fmt.Sprintf("k%07d", k) }
	const before, total = 300, 900
	for k := 0; k < before; k++ {
		s0.Update(workload.Add(key(k), "v"))
	}
	deadline := time.Now().Add(20 * time.Second)
	for s1.NumKeys() < before {
		if time.Now().After(deadline) {
			t.Fatalf("pre-kill sync stalled: s1 holds %d/%d keys", s1.NumKeys(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s1.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}

	// Kill s1 while a writer keeps hammering s0, restart it mid-stream.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := before; k < total; k++ {
			s0.Update(workload.Add(key(k), "v"))
			if k%25 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	s1.Close()
	time.Sleep(30 * time.Millisecond) // traffic keeps flowing into the dead peer
	s1b := start(1, listenOn(t, addrs[1]))
	if got := s1b.Stats().SnapshotRestoredKeys; got < before {
		t.Fatalf("restart restored %d keys, want >= %d from the snapshot", got, before)
	}
	<-done

	if err := WaitConverged([]*Store{s0, s1b}, total, 30*time.Second, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRepairScalesWithSnapshotStaleness is the recovery-cost pin from
// the durability change: a replica restored from a snapshot S keys
// stale must be repaired by shipping an amount of data that grows with
// S and stays far below re-shipping the keyspace. Measured on the
// serving side (the healthy replica's RepairBytes), with the δ-path
// black-holed so every repaired byte went through digest anti-entropy
// and the Merkle drill-down.
func TestRepairScalesWithSnapshotStaleness(t *testing.T) {
	small, fullSmall := measureStaleRepair(t, 5)
	large, fullLarge := measureStaleRepair(t, 50)
	if small <= 0 {
		t.Fatalf("repair served %d bytes for a stale restart, want > 0", small)
	}
	if large <= small {
		t.Fatalf("repair bytes did not grow with staleness: %d (S=50) vs %d (S=5)", large, small)
	}
	if small*8 >= fullSmall {
		t.Fatalf("S=5 repair shipped %d bytes, want far below the %d-byte keyspace", small, fullSmall)
	}
	if large*4 >= fullLarge {
		t.Fatalf("S=50 repair shipped %d bytes, want far below the %d-byte keyspace", large, fullLarge)
	}
}

// measureStaleRepair stages two replicas with identical keyspaces,
// snapshots one, makes the snapshot stale by applying `stale` more keys
// to the other replica only (their deltas drained into a black hole),
// then kills and restarts the snapshotted replica on its old identity
// and address, heals the network, and drives manual ticks until the
// pair reconverges. It returns the healthy replica's served repair
// bytes and the total keyspace payload size for comparison.
func measureStaleRepair(t *testing.T, stale int) (repairBytes, fullBytes int) {
	t.Helper()
	const shared = 600 // ≥ TreeRepairMinKeys: drill-down eligible
	f0, f1 := NewFault(1), NewFault(2)
	f0.SetDropRate(1)
	f1.SetDropRate(1)
	faults := [2]*Fault{f0, f1}
	ids := [2]string{"r-00", "r-01"}
	var addrs [2]string
	var listeners [2]net.Listener
	for i := range ids {
		listeners[i] = listenOn(t, "127.0.0.1:0")
		addrs[i] = listeners[i].Addr().String()
	}
	dir := t.TempDir()
	start := func(i int, ln net.Listener) *Store {
		cfg := repairPairConfig()
		cfg.ID = ids[i]
		cfg.Listener = ln
		cfg.Peers = map[string]string{ids[1-i]: addrs[1-i]}
		cfg.Nodes = ids[:]
		cfg.Dial = faults[i].Dialer(nil)
		if i == 1 {
			cfg.SnapshotDir = dir
			cfg.SnapshotEvery = time.Hour
		}
		st, err := StartStore(cfg)
		if err != nil {
			t.Fatalf("start %s: %v", ids[i], err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	s0, s1 := start(0, listeners[0]), start(1, listeners[1])

	loadIdentical([2]*Store{s0, s1}, shared)
	drainInto(t, s0)
	drainInto(t, s1)
	if err := s1.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	// The snapshot goes stale: these keys exist only on s0, their deltas
	// lost to the black hole.
	for k := shared; k < shared+stale; k++ {
		s0.Update(workload.Add(fmt.Sprintf("k%07d", k), "v"))
	}
	drainInto(t, s0)

	s1.Close()
	s1 = start(1, listenOn(t, addrs[1]))
	if got := s1.NumKeys(); got != shared {
		t.Fatalf("restart restored %d keys, want %d", got, shared)
	}
	f0.SetDropRate(0)
	f1.SetDropRate(0)

	base := s0.Stats().RepairBytes
	want := shared + stale
	deadline := time.Now().Add(20 * time.Second)
	for {
		s0.SyncNow()
		s1.SyncNow()
		if s0.NumKeys() == want && s1.NumKeys() == want && s0.Digest() == s1.Digest() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale restart did not reconverge: s1 holds %d/%d keys", s1.NumKeys(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, k := range s0.Keys() {
		fullBytes += len(k) + s0.Get(k).SizeBytes()
	}
	return s0.Stats().RepairBytes - base, fullBytes
}
