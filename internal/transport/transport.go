// Package transport runs protocol engines over real TCP connections,
// turning the library into a deployable replica: each Node owns one engine,
// listens for frames from its neighbors, and drives the engine's periodic
// synchronization on a ticker. Frames are length-prefixed: a 4-byte
// big-endian length, the sender id (length-prefixed), and one
// codec-encoded protocol message.
//
// The simulator (package netsim) remains the measurement substrate — this
// package is the production path, exercised by loopback integration tests
// and the tcpcluster example.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"crdtsync/internal/codec"
	"crdtsync/internal/lattice"
	"crdtsync/internal/protocol"
	"crdtsync/internal/workload"
)

// maxFrameBytes bounds a single frame (64 MiB) to fail fast on corrupt
// length prefixes.
const maxFrameBytes = 64 << 20

// ErrFrameTooLarge reports a frame exceeding maxFrameBytes.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// Config describes one replica process.
type Config struct {
	// ID is this replica's identifier.
	ID string
	// ListenAddr is the TCP address to accept neighbor frames on.
	ListenAddr string
	// Listener, when non-nil, is used instead of binding ListenAddr —
	// callers that need every address known before wiring the peer maps
	// bind first and pass the listeners in.
	Listener net.Listener
	// Peers maps neighbor ids to their listen addresses.
	Peers map[string]string
	// Nodes is the full membership (sorted); defaults to ID + peers.
	Nodes []string
	// Datatype adapts the replicated CRDT.
	Datatype workload.Datatype
	// Factory builds the protocol engine (e.g. protocol.NewDeltaBPRR()).
	Factory protocol.Factory
	// SyncEvery is the synchronization period (default 1s, the paper's
	// interval).
	SyncEvery time.Duration
}

// Node is a live replica: an engine plus its network plumbing.
// All engine access is serialized by an internal mutex; Update and Query
// are safe for concurrent use. Network writes happen outside the engine
// lock (outbound frames are buffered while the engine runs, then flushed),
// so a slow peer can never deadlock message handling.
type Node struct {
	cfg      Config
	net      *peerNet
	engine   protocol.Engine
	mu       sync.Mutex // guards engine
	stopping chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup // syncLoop
}

// outFrame is a frame captured under the engine lock, flushed after it is
// released.
type outFrame struct {
	to   string
	data []byte
}

// Start builds the engine, binds the listener, and launches the accept
// and synchronization loops.
func Start(cfg Config) (*Node, error) {
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = time.Second
	}
	neighbors := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		neighbors = append(neighbors, id)
	}
	sort.Strings(neighbors)
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = append([]string{cfg.ID}, neighbors...)
		sort.Strings(nodes)
	}
	engine := cfg.Factory(protocol.Config{
		ID:        cfg.ID,
		Neighbors: neighbors,
		Nodes:     nodes,
		Datatype:  cfg.Datatype,
	})
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
		}
	}
	n := &Node{
		cfg:      cfg,
		net:      newPeerNet(cfg.ID, cfg.Peers, ln, nil, queueConfig{}),
		engine:   engine,
		stopping: make(chan struct{}),
	}
	n.net.start(func(from string, frame []byte) error {
		msg, _, err := codec.DecodeMsg(frame)
		if err != nil {
			return err // corrupt peer; the read loop drops the connection
		}
		// Replies flush inline on the read goroutine: transmitAll is a
		// non-blocking enqueue onto the per-peer write pipelines, so no
		// TCP write ever happens here and two nodes with mutually full
		// send buffers can no longer deadlock each other — the hazard
		// that used to force a goroutine per inbound frame.
		n.transmitAll(n.collect(func(send protocol.Sender) {
			n.engine.Deliver(from, msg, send)
		}))
		return nil
	})
	n.wg.Add(1)
	go n.syncLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *Node) Addr() string { return n.net.addr() }

// ID returns the replica identifier.
func (n *Node) ID() string { return n.cfg.ID }

// collect runs fn under the engine lock, returning the outbound frames it
// produced for the caller to transmit after the lock is released.
func (n *Node) collect(fn func(send protocol.Sender)) []outFrame {
	var out []outFrame
	n.mu.Lock()
	fn(func(to string, m protocol.Msg) {
		data, err := codec.EncodeMsg(m)
		if err != nil {
			// Engine produced an unencodable message: a programming
			// error in the engine/codec pairing.
			panic(err)
		}
		out = append(out, outFrame{to: to, data: data})
	})
	n.mu.Unlock()
	return out
}

// transmitAll writes the collected frames. Send failures are dropped: a
// neighbor that is down catches up on a later tick (acked engines resend;
// plain delta-based assumes reliable channels).
func (n *Node) transmitAll(out []outFrame) {
	for _, f := range out {
		n.net.transmit(f.to, f.data)
	}
}

// withEngine runs fn under the engine lock and flushes the messages it
// sent over TCP after the lock is released.
func (n *Node) withEngine(fn func(send protocol.Sender)) {
	n.transmitAll(n.collect(fn))
}

// Update applies one local operation.
func (n *Node) Update(op workload.Op) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.engine.LocalOp(op)
}

// Query runs fn against a snapshot of the local state.
func (n *Node) Query(fn func(s lattice.State)) {
	n.mu.Lock()
	snapshot := n.engine.State().Clone()
	n.mu.Unlock()
	fn(snapshot)
}

// SyncNow forces one synchronization step outside the ticker.
func (n *Node) SyncNow() {
	n.withEngine(func(send protocol.Sender) { n.engine.Sync(send) })
}

// Close stops the loops and closes every connection. It is idempotent.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stopping) })
	err := n.net.close()
	n.wg.Wait()
	return err
}

func (n *Node) syncLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopping:
			return
		case <-ticker.C:
			n.SyncNow()
		}
	}
}

// writeFrame emits [len][from][msg] with a 4-byte big-endian total length.
func writeFrame(w io.Writer, from string, msg []byte) error {
	body := make([]byte, 0, 2+len(from)+len(msg))
	body = append(body, byte(len(from)>>8), byte(len(from)))
	body = append(body, from...)
	body = append(body, msg...)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame parses one frame into a fresh buffer.
func readFrame(r io.Reader) (from string, msg []byte, err error) {
	var buf []byte
	return readFrameInto(r, &buf)
}

// readFrameInto parses one frame into *buf, growing it only when a frame
// exceeds its capacity, so a connection's read loop amortizes one buffer
// across every frame it ever receives. The returned msg aliases *buf and
// is valid only until the next call with the same buffer — the deliver
// path must be done with the bytes (or have copied what it keeps, which
// the codec's decoders always do) before the loop reads the next frame.
func readFrameInto(r io.Reader, buf *[]byte) (from string, msg []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, err
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total > maxFrameBytes {
		return "", nil, ErrFrameTooLarge
	}
	if uint32(cap(*buf)) < total {
		*buf = make([]byte, total)
	}
	body := (*buf)[:total]
	if _, err = io.ReadFull(r, body); err != nil {
		return "", nil, err
	}
	if len(body) < 2 {
		return "", nil, io.ErrUnexpectedEOF
	}
	fromLen := int(body[0])<<8 | int(body[1])
	if len(body) < 2+fromLen {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(body[2 : 2+fromLen]), body[2+fromLen:], nil
}
