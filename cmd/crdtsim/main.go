// Command crdtsim runs one ad-hoc synchronization simulation and reports
// transmission, memory and convergence statistics. It is the exploratory
// counterpart to syncbench's fixed experiments.
//
// With -store it instead drives a live sharded store cluster over TCP on
// loopback through the public crdtsync API: -keys per-key counters are
// loaded through typed handles, anti-entropy converges the cluster, and
// the zero-clone read layer (Query/Scan) plus a Watch subscription are
// exercised against it.
//
// Usage:
//
//	crdtsim -protocol delta-bp+rr -topology mesh -nodes 15 -datatype gset -rounds 100
//	crdtsim -store -nodes 3 -keys 20000 -engine acked
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crdtsync"
	"crdtsync/internal/exp"
	"crdtsync/internal/netsim"
	"crdtsync/internal/protocol"
	"crdtsync/internal/topology"
)

func main() {
	proto := flag.String("protocol", "delta-bp+rr", "state-based, delta-classic, delta-bp, delta-rr, delta-bp+rr, scuttlebutt, scuttlebutt-gc, op-based")
	topo := flag.String("topology", "mesh", "mesh, tree, ring, line, full, star")
	nodes := flag.Int("nodes", 15, "cluster size")
	degree := flag.Int("degree", 4, "mesh degree / tree children")
	datatype := flag.String("datatype", "gset", "gset, gcounter, gmap10, gmap30, gmap60, gmap100")
	rounds := flag.Int("rounds", 100, "update rounds (events per replica)")
	keys := flag.Int("keys", 1000, "gmap key-space size; -store: counters to load")
	seed := flag.Int64("seed", 42, "random seed")
	dup := flag.Float64("duplicate", 0, "message duplication probability")
	reorder := flag.Bool("reorder", false, "shuffle delivery order")
	store := flag.Bool("store", false, "drive a live TCP store cluster (public crdtsync API) instead of the simulator")
	shards := flag.Int("shards", 32, "-store: shards per replica")
	syncEvery := flag.Duration("sync-every", 50*time.Millisecond, "-store: synchronization period")
	engine := flag.String("engine", "acked", "-store: per-object engine (acked or delta)")
	digestEvery := flag.Int("digest-every", 4, "-store: digest heartbeat period in ticks (0 disables)")
	flag.Parse()

	if *store {
		runStore(*nodes, *keys, *shards, *syncEvery, *engine, *digestEvery)
		return
	}

	var factory protocol.Factory
	found := false
	for _, p := range exp.Roster() {
		if p.Name == *proto {
			factory, found = p.Factory, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	var g *topology.Graph
	switch *topo {
	case "mesh":
		g = topology.PartialMesh(*nodes, *degree, *seed)
	case "tree":
		g = topology.Tree(*nodes, *degree/2)
	case "ring":
		g = topology.Ring(*nodes)
	case "line":
		g = topology.Line(*nodes)
	case "full":
		g = topology.Full(*nodes)
	case "star":
		g = topology.Star(*nodes)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}

	dt, gen, err := exp.WorkloadByName(*datatype, *keys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sim := netsim.New(g, factory, dt, netsim.Options{
		Seed:          *seed,
		DuplicateProb: *dup,
		Reorder:       *reorder,
		MeasureCPU:    true,
	})
	sim.Run(*rounds, gen)
	quiet, converged := sim.RunQuiet(10 * *rounds)

	col := sim.Collector()
	sent := col.TotalSent()
	fmt.Printf("protocol      %s\n", *proto)
	fmt.Printf("topology      %s (%d nodes, %d edges, cycles=%t)\n", *topo, g.NumNodes(), g.NumEdges(), !g.IsAcyclic())
	fmt.Printf("datatype      %s, %d update rounds\n", dt.Name(), *rounds)
	fmt.Printf("converged     %t (after %d quiet rounds)\n", converged, quiet)
	fmt.Printf("messages      %d\n", sent.Messages)
	fmt.Printf("elements      %d\n", sent.Elements)
	fmt.Printf("payload       %d B\n", sent.PayloadBytes)
	fmt.Printf("metadata      %d B (%.1f%% of total)\n", sent.MetadataBytes,
		100*float64(sent.MetadataBytes)/float64(max(1, sent.TotalBytes())))
	fmt.Printf("avg mem/node  %.0f B (sync overhead %.0f B)\n", col.AvgMemoryPerNode(), col.AvgSyncMemoryPerNode())
	fmt.Printf("cpu           %s\n", col.TotalCPU())
	st := sim.Engine(sim.Nodes()[0]).State()
	fmt.Printf("final state   %d elements, %d B\n", st.Elements(), st.SizeBytes())
}

// runStore is crdtsim's live path: a loopback TCP cluster driven
// entirely through the public crdtsync API.
func runStore(nodes, keys, shards int, syncEvery time.Duration, engineName string, digestEvery int) {
	eng, err := crdtsync.ParseEngine(engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stores, err := crdtsync.Cluster(nodes,
		crdtsync.WithID("sim"),
		crdtsync.WithShards(shards),
		crdtsync.WithEngine(eng),
		crdtsync.WithSyncEvery(syncEvery),
		crdtsync.WithDigestEvery(digestEvery),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	fmt.Printf("store cluster  %d replicas (full mesh), %d shards each, %s engine, sync every %s\n",
		nodes, stores[0].NumShards(), engineName, syncEvery)

	// A watcher on the last replica counts distinct keys it learns about
	// while the cluster loads and converges.
	w := stores[len(stores)-1].Watch(crdtsync.CounterPrefix)
	watched := make(chan int)
	go func() {
		seen := map[string]bool{}
		for ev := range w.Events() {
			seen[ev.Key] = true
		}
		watched <- len(seen)
	}()

	start := time.Now()
	for k := 0; k < keys; k++ {
		stores[k%nodes].Counter(fmt.Sprintf("key:%07d", k)).Inc(1)
	}
	if err := crdtsync.WaitConverged(stores, keys, 5*time.Minute, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("converged      %d keys on every replica in %s (digest %x)\n",
		keys, time.Since(start).Round(time.Millisecond), stores[0].Digest())

	// Zero-clone reads over the converged keyspace.
	queryStart := time.Now()
	sum := uint64(0)
	for shard := 0; shard < stores[0].NumShards(); shard++ {
		stores[0].Query(shard, func(_ string, st crdtsync.State) bool {
			sum += uint64(st.Elements())
			return true
		})
	}
	fmt.Printf("query          visited %d live objects in %s without cloning\n",
		sum, time.Since(queryStart).Round(time.Microsecond))

	var total crdtsync.Stats
	for _, st := range stores {
		total.Add(st.Stats())
	}
	fmt.Printf("wire           %d frames, %d B, %d elements shipped, %d watch drops\n",
		total.Frames, total.WireBytes, total.Sent.Elements, total.WatchDropped)

	w.Close()
	fmt.Printf("watch          saw %d distinct keys change on %s\n", <-watched, stores[len(stores)-1].ID())
}
