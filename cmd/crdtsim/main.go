// Command crdtsim runs one ad-hoc synchronization simulation and reports
// transmission, memory and convergence statistics. It is the exploratory
// counterpart to syncbench's fixed experiments.
//
// Usage:
//
//	crdtsim -protocol delta-bp+rr -topology mesh -nodes 15 -datatype gset -rounds 100
package main

import (
	"flag"
	"fmt"
	"os"

	"crdtsync/internal/exp"
	"crdtsync/internal/netsim"
	"crdtsync/internal/protocol"
	"crdtsync/internal/topology"
	"crdtsync/internal/workload"
)

func main() {
	proto := flag.String("protocol", "delta-bp+rr", "state-based, delta-classic, delta-bp, delta-rr, delta-bp+rr, scuttlebutt, scuttlebutt-gc, op-based")
	topo := flag.String("topology", "mesh", "mesh, tree, ring, line, full, star")
	nodes := flag.Int("nodes", 15, "cluster size")
	degree := flag.Int("degree", 4, "mesh degree / tree children")
	datatype := flag.String("datatype", "gset", "gset, gcounter, gmap10, gmap30, gmap60, gmap100")
	rounds := flag.Int("rounds", 100, "update rounds (events per replica)")
	keys := flag.Int("keys", 1000, "gmap key-space size")
	seed := flag.Int64("seed", 42, "random seed")
	dup := flag.Float64("duplicate", 0, "message duplication probability")
	reorder := flag.Bool("reorder", false, "shuffle delivery order")
	flag.Parse()

	var factory protocol.Factory
	found := false
	for _, p := range exp.Roster() {
		if p.Name == *proto {
			factory, found = p.Factory, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	var g *topology.Graph
	switch *topo {
	case "mesh":
		g = topology.PartialMesh(*nodes, *degree, *seed)
	case "tree":
		g = topology.Tree(*nodes, *degree/2)
	case "ring":
		g = topology.Ring(*nodes)
	case "line":
		g = topology.Line(*nodes)
	case "full":
		g = topology.Full(*nodes)
	case "star":
		g = topology.Star(*nodes)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}

	var dt workload.Datatype
	var gen workload.Generator
	switch *datatype {
	case "gset":
		dt, gen = workload.GSetType{}, workload.GSetGen{}
	case "gcounter":
		dt, gen = workload.GCounterType{}, workload.GCounterGen{}
	case "gmap10", "gmap30", "gmap60", "gmap100":
		k := map[string]int{"gmap10": 10, "gmap30": 30, "gmap60": 60, "gmap100": 100}[*datatype]
		dt, gen = workload.GMapType{}, workload.GMapGen{K: k, TotalKeys: *keys}
	default:
		fmt.Fprintf(os.Stderr, "unknown datatype %q\n", *datatype)
		os.Exit(2)
	}

	sim := netsim.New(g, factory, dt, netsim.Options{
		Seed:          *seed,
		DuplicateProb: *dup,
		Reorder:       *reorder,
		MeasureCPU:    true,
	})
	sim.Run(*rounds, gen)
	quiet, converged := sim.RunQuiet(10 * *rounds)

	col := sim.Collector()
	sent := col.TotalSent()
	fmt.Printf("protocol      %s\n", *proto)
	fmt.Printf("topology      %s (%d nodes, %d edges, cycles=%t)\n", *topo, g.NumNodes(), g.NumEdges(), !g.IsAcyclic())
	fmt.Printf("datatype      %s, %d update rounds\n", dt.Name(), *rounds)
	fmt.Printf("converged     %t (after %d quiet rounds)\n", converged, quiet)
	fmt.Printf("messages      %d\n", sent.Messages)
	fmt.Printf("elements      %d\n", sent.Elements)
	fmt.Printf("payload       %d B\n", sent.PayloadBytes)
	fmt.Printf("metadata      %d B (%.1f%% of total)\n", sent.MetadataBytes,
		100*float64(sent.MetadataBytes)/float64(max(1, sent.TotalBytes())))
	fmt.Printf("avg mem/node  %.0f B (sync overhead %.0f B)\n", col.AvgMemoryPerNode(), col.AvgSyncMemoryPerNode())
	fmt.Printf("cpu           %s\n", col.TotalCPU())
	st := sim.Engine(sim.Nodes()[0]).State()
	fmt.Printf("final state   %d elements, %d B\n", st.Elements(), st.SizeBytes())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
