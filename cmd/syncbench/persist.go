package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"crdtsync"
)

// The persist experiment measures the crash-restart durability path end
// to end over the public API: a two-node TCP cluster under traffic has
// one replica snapshotted, killed, and restarted over the same snapshot
// directory with varying amounts of post-snapshot divergence. Each row
// reports how much the restart restored from disk, how long restore and
// reconvergence took, and how many repair bytes the healthy replica
// served — the number that must grow with snapshot staleness, not with
// keyspace size.

// persistBenchConfig parameterizes the crash-restart benchmark.
type persistBenchConfig struct {
	Keys      int           // shared keyspace loaded before the crash
	Shards    int           // shards per node (drill-down needs >=256 keys per shard)
	SyncEvery time.Duration // synchronization period
	Out       string        // JSON artifact path ("" = stdout only)
}

// persistRow is one staleness point of the sweep.
type persistRow struct {
	StaleKeys    int     `json:"stale_keys"`    // keys written after the snapshot
	RestoredKeys int     `json:"restored_keys"` // keys the restart loaded from disk
	RestoreMs    float64 `json:"restore_ms"`    // Open with a populated snapshot dir
	ConvergeMs   float64 `json:"converge_ms"`   // restart until digests match
	RepairBytes  int     `json:"repair_bytes"`  // served by the healthy replica
	WireBytes    int     `json:"wire_bytes"`    // healthy replica's total outbound
	SnapshotSize int     `json:"snapshot_size"` // bytes on disk across shard files
}

// persistReport is the BENCH_persist.json schema.
type persistReport struct {
	Keys      int          `json:"keys"`
	Shards    int          `json:"shards"`
	Engine    string       `json:"engine"`
	SyncEvery string       `json:"sync_every"`
	Rows      []persistRow `json:"rows"`
}

func runPersistBench(cfg persistBenchConfig) {
	if cfg.Keys <= 0 {
		cfg.Keys = 20000
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 5 * time.Millisecond
	}
	// Staleness sweep: a lossless restart, then 1%, 5%, and 20% of the
	// keyspace written after the snapshot.
	sweep := []int{0, cfg.Keys / 100, cfg.Keys / 20, cfg.Keys / 5}
	report := persistReport{
		Keys:      cfg.Keys,
		Shards:    cfg.Shards,
		Engine:    "delta",
		SyncEvery: cfg.SyncEvery.String(),
	}
	fmt.Printf("persist: crash-restart durability, %d keys, sync every %s\n",
		cfg.Keys, cfg.SyncEvery)
	fmt.Printf("%10s %14s %12s %12s %14s %14s\n",
		"stale", "restored", "restore", "converge", "repair", "snapshot")
	for _, stale := range sweep {
		row := persistPoint(cfg, stale)
		report.Rows = append(report.Rows, row)
		fmt.Printf("%10d %14d %12.1fms %12.1fms %14s %14s\n",
			row.StaleKeys, row.RestoredKeys, row.RestoreMs, row.ConvergeMs,
			fmtBytes(row.RepairBytes), fmtBytes(row.SnapshotSize))
	}
	if cfg.Out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("persist: marshal: %v", err)
		}
		if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("persist: write %s: %v", cfg.Out, err)
		}
		fmt.Printf("persist: wrote %s\n", cfg.Out)
	}
}

// persistPoint runs one kill-and-restart cycle at the given staleness.
func persistPoint(cfg persistBenchConfig, stale int) persistRow {
	dir, err := os.MkdirTemp("", "syncbench-persist-*")
	if err != nil {
		log.Fatalf("persist: tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	ids := [2]string{"n0", "n1"}
	var addrs [2]string
	var listeners [2]net.Listener
	for i := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("persist: listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	open := func(i int, ln net.Listener) *crdtsync.Store {
		opts := []crdtsync.Option{
			crdtsync.WithID(ids[i]),
			crdtsync.WithListener(ln),
			crdtsync.WithPeers(map[string]string{ids[1-i]: addrs[1-i]}),
			crdtsync.WithNodes(ids[:]),
			crdtsync.WithShards(cfg.Shards),
			// The plain delta engine never retransmits: everything the
			// dead replica misses must come back through the snapshot
			// and digest anti-entropy — the paths under measurement.
			crdtsync.WithEngine(crdtsync.EngineDelta),
			crdtsync.WithSyncEvery(cfg.SyncEvery),
			crdtsync.WithDigestEvery(2),
		}
		if i == 1 {
			opts = append(opts,
				crdtsync.WithSnapshotDir(dir),
				crdtsync.WithSnapshotEvery(time.Hour)) // explicit SnapshotNow below
		}
		st, err := crdtsync.Open(opts...)
		if err != nil {
			log.Fatalf("persist: open %s: %v", ids[i], err)
		}
		return st
	}
	s0, s1 := open(0, listeners[0]), open(1, listeners[1])
	defer s0.Close()

	// Stage the shared keyspace through the live mesh and snapshot it.
	for k := 0; k < cfg.Keys; k++ {
		s0.Set(keyName(k)).Add("v")
	}
	waitPersistConverged(s0, s1, cfg.Keys, "staging")
	if err := s1.SnapshotNow(); err != nil {
		log.Fatalf("persist: snapshot: %v", err)
	}
	snapSize := 0
	if entries, err := os.ReadDir(dir); err == nil {
		for _, ent := range entries {
			if info, err := ent.Info(); err == nil {
				snapSize += int(info.Size())
			}
		}
	}

	// The snapshot goes stale the way it does in production: more keys
	// arrive through the live mesh after the pass, fully delivered and
	// long gone from every peer queue and δ-buffer — then the crash
	// throws the replica's in-memory surplus away. What the restart is
	// missing is exactly the post-snapshot traffic, and the only path
	// that can bring it back is digest anti-entropy repair.
	for k := cfg.Keys; k < cfg.Keys+stale; k++ {
		s0.Set(keyName(k)).Add("v")
	}
	waitPersistConverged(s0, s1, cfg.Keys+stale, "divergence")
	s1.Close()
	base := s0.Stats()
	var ln1 net.Listener
	for i := 0; ; i++ {
		ln1, err = net.Listen("tcp", addrs[1])
		if err == nil {
			break
		}
		if i >= 200 {
			log.Fatalf("persist: re-listen %s: %v", addrs[1], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	restoreStart := time.Now()
	s1 = open(1, ln1)
	restoreMs := float64(time.Since(restoreStart).Microseconds()) / 1000
	defer s1.Close()

	convergeStart := time.Now()
	waitPersistConverged(s0, s1, cfg.Keys+stale, "recovery")
	convergeMs := float64(time.Since(convergeStart).Microseconds()) / 1000
	after := s0.Stats()
	return persistRow{
		StaleKeys:    stale,
		RestoredKeys: s1.Stats().SnapshotRestoredKeys,
		RestoreMs:    restoreMs,
		ConvergeMs:   convergeMs,
		RepairBytes:  after.RepairBytes - base.RepairBytes,
		WireBytes:    after.WireBytes - base.WireBytes,
		SnapshotSize: snapSize,
	}
}

// waitPersistConverged polls until both stores hold want keys with equal
// digests, with a generous deadline — the benchmark measures speed, it
// must not hang on a regression.
func waitPersistConverged(s0, s1 *crdtsync.Store, want int, phase string) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if s0.NumKeys() == want && s1.NumKeys() == want && s0.Digest() == s1.Digest() {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("persist: %s did not converge: %s holds %d, %s holds %d, want %d",
				phase, s0.ID(), s0.NumKeys(), s1.ID(), s1.NumKeys(), want)
		}
		time.Sleep(persistPollInterval)
	}
}

const persistPollInterval = 5 * time.Millisecond
