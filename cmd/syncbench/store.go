package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"crdtsync"
	"crdtsync/internal/transport"
)

// storeBenchConfig parameterizes the sharded multi-object store benchmark
// (the "store" experiment): a full-mesh TCP cluster on loopback where each
// replica owns a disjoint slice of a large keyspace and anti-entropy has
// to spread every object to every replica through batched frames. The
// cluster is driven through the public crdtsync API; only the fault
// injector reaches into internal/transport (it is a measurement harness,
// not a user-facing knob).
type storeBenchConfig struct {
	Keys      int
	Nodes     int
	Shards    int
	SyncEvery time.Duration
	// Engine selects the inner per-object protocol: "acked" (delta BP+RR
	// with acknowledgements — retransmits until acked, so dropped frames
	// are repaired; the production-safe default) or "delta" (plain BP+RR,
	// the paper's optimal engine, which assumes no frame is ever lost).
	Engine string
	// DigestEvery ships per-shard digest vectors every N ticks so peers
	// pull diverged shards in full; 0 disables digest anti-entropy.
	DigestEvery int
	// FaultDrop, when nonzero, wires a shared transport.Fault injector
	// into every store's dialer that drops this fraction of frames on
	// every link, so the benchmark measures the bytes+ticks cost of
	// converging under loss (acked retransmissions and digest repairs).
	FaultDrop float64
	// PeerQueueLen sets each replica's per-peer outbound queue length in
	// frames (0 = transport default).
	PeerQueueLen int
	// PeerQueueBytes sets each replica's per-peer outbound queue byte
	// budget (0 = transport default).
	PeerQueueBytes int
	// NoPiggyback disables digest piggybacking, shipping every digest
	// advertisement as its own frame — the pre-piggybacking wire
	// behavior, kept as a measurement baseline.
	NoPiggyback bool
	// Scan, after convergence, measures the read layer: clone-everything
	// Get baseline vs zero-clone Query vs sorted Scan over the full
	// keyspace, reporting throughput and allocations per visited key.
	Scan bool
	// Seed seeds the fault injector's frame-fate sequence.
	Seed int64
	// SyncWorkers sets each replica's shard-work pool width (0 = the
	// transport default, GOMAXPROCS; 1 = serial ticks).
	SyncWorkers int
}

// runStoreBench drives the benchmark and prints a throughput /
// bytes-on-wire report.
func runStoreBench(cfg storeBenchConfig) {
	if cfg.Nodes < 2 {
		fmt.Fprintln(os.Stderr, "store benchmark needs at least 2 nodes")
		os.Exit(2)
	}
	engine, err := crdtsync.ParseEngine(cfg.Engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engineDesc := map[crdtsync.Engine]string{
		crdtsync.EngineAcked: "delta-based BP+RR with acknowledgements (loss-tolerant)",
		crdtsync.EngineDelta: "delta-based BP+RR (assumes reliable channels)",
	}[engine]
	opts := []crdtsync.Option{
		crdtsync.WithID("store"),
		crdtsync.WithShards(cfg.Shards),
		crdtsync.WithEngine(engine),
		crdtsync.WithSyncEvery(cfg.SyncEvery),
		crdtsync.WithDigestEvery(cfg.DigestEvery),
		crdtsync.WithQueueBudget(cfg.PeerQueueLen, cfg.PeerQueueBytes),
		crdtsync.WithSyncWorkers(cfg.SyncWorkers),
	}
	if cfg.NoPiggyback {
		opts = append(opts, crdtsync.WithoutDigestPiggyback())
	}
	if cfg.FaultDrop > 0 {
		fault := transport.NewFault(cfg.Seed)
		fault.SetDropRate(cfg.FaultDrop)
		opts = append(opts, crdtsync.WithDial(fault.Dialer(nil)))
	}
	stores, err := crdtsync.Cluster(cfg.Nodes, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	fmt.Printf("store: %d nodes (full mesh), %d shards/node, %d keys, sync every %s\n",
		cfg.Nodes, stores[0].NumShards(), cfg.Keys, cfg.SyncEvery)
	fmt.Printf("engine: %s\n", engineDesc)
	if cfg.DigestEvery > 0 {
		mode := "piggybacked on data frames"
		if cfg.NoPiggyback {
			mode = "standalone frames only (piggybacking disabled)"
		}
		fmt.Printf("anti-entropy: per-shard digests every %d ticks, %s\n", cfg.DigestEvery, mode)
	}
	if cfg.FaultDrop > 0 {
		fmt.Printf("fault injection: dropping %.0f%% of frames on every link\n", cfg.FaultDrop*100)
	}

	// Phase 1: load. Each store increments a disjoint slice of the
	// keyspace from several goroutines (updates on different shards never
	// contend).
	loadStart := time.Now()
	var wg sync.WaitGroup
	for i, st := range stores {
		wg.Add(1)
		go func(st *crdtsync.Store, i int) {
			defer wg.Done()
			for k := i; k < cfg.Keys; k += cfg.Nodes {
				st.Counter(keyName(k)).Inc(1)
			}
		}(st, i)
	}
	wg.Wait()
	loadDur := time.Since(loadStart)
	fmt.Printf("load: %d updates in %s (%.0f updates/s)\n",
		cfg.Keys, loadDur.Round(time.Millisecond), float64(cfg.Keys)/loadDur.Seconds())

	// Phase 2: anti-entropy until every replica holds every key in the
	// same state.
	syncStart := time.Now()
	if err := crdtsync.WaitConverged(stores, cfg.Keys, 5*time.Minute, nil); err != nil {
		log.Fatal(err)
	}
	syncDur := time.Since(syncStart)

	var total crdtsync.Stats
	var ticks uint64
	for _, st := range stores {
		total.Add(st.Stats())
		ticks += st.Ticks()
	}
	fmt.Printf("converged: %d keys on every replica in %s (digest %x, %.0f sync ticks/node)\n",
		cfg.Keys, syncDur.Round(time.Millisecond), stores[0].Digest(),
		float64(ticks)/float64(cfg.Nodes))
	fmt.Printf("wire: %d frames, %s on the wire (%s payload, %s sync metadata), %d elements shipped\n",
		total.Frames, fmtBytes(total.WireBytes),
		fmtBytes(total.Sent.PayloadBytes), fmtBytes(total.Sent.MetadataBytes),
		total.Sent.Elements)
	if cfg.DigestEvery > 0 || total.SplitFrames > 0 || total.OversizedDropped > 0 {
		fmt.Printf("anti-entropy: %d standalone digest frames, %d piggybacked digests, %d shards requested, %d shards served in full; %d split frames, %d oversized drops\n",
			total.DigestFrames, total.PiggybackedDigests, total.WantShards, total.RepairShards,
			total.SplitFrames, total.OversizedDropped)
	}
	if total.TreeRounds > 0 || total.DedupedWants > 0 {
		fmt.Printf("repair: %d drill-down rounds, %d key ranges served, %s repair payload, %d wants deduped against in-flight repairs\n",
			total.TreeRounds, total.RepairRanges, fmtBytes(total.RepairBytes), total.DedupedWants)
	}
	if total.DigestShardMismatch > 0 {
		// Nonzero only when a peer advertises digests for a different shard
		// count than ours — a misconfigured cluster, worth shouting about.
		fmt.Printf("digest skew: %d advertisements discarded (peer shard count differs from ours)\n",
			total.DigestShardMismatch)
	}
	if total.DroppedItems > 0 {
		// Nonzero only when a peer's shard count disagrees with ours —
		// a misconfigured cluster, worth shouting about.
		fmt.Printf("shard skew: %d inbound items dropped (sender shard index out of local range)\n",
			total.DroppedItems)
	}
	if total.Frames > 0 {
		fmt.Printf("batching: %.0f keys/frame average, %.1f frames/node\n",
			float64(total.Sent.Elements)/float64(total.Frames),
			float64(total.Frames)/float64(cfg.Nodes))
	}
	var enq, enqBytes, dropped, droppedBytes, coalesced, reconnects int
	for _, ps := range total.Peers {
		enq += ps.Enqueued
		enqBytes += ps.EnqueuedBytes
		dropped += ps.Dropped
		droppedBytes += ps.DroppedBytes
		coalesced += ps.Coalesced
		reconnects += ps.Reconnects
	}
	fmt.Printf("pipeline: %d frames enqueued (%s), %d dropped (%s; queue overflow / failed sends), %d coalesced on drain, %d reconnects\n",
		enq, fmtBytes(enqBytes), dropped, fmtBytes(droppedBytes), coalesced, reconnects)
	if total.SyncWorkers > 1 {
		busy := make([]time.Duration, len(total.SyncWorkerBusyNs))
		for i, ns := range total.SyncWorkerBusyNs {
			busy[i] = time.Duration(ns).Round(time.Millisecond)
		}
		fmt.Printf("pool: %d sync workers/node; cluster-wide shard claims per worker %v, busy %v\n",
			total.SyncWorkers, total.SyncWorkerShards, busy)
	}
	var mem crdtsync.Memory
	for _, st := range stores {
		m := st.Memory()
		mem.CRDTBytes += m.CRDTBytes
		mem.BufferBytes += m.BufferBytes
		mem.MetadataBytes += m.MetadataBytes
	}
	fmt.Printf("memory: %s CRDT state, %s δ-buffers, %s sync metadata across the cluster\n",
		fmtBytes(mem.CRDTBytes), fmtBytes(mem.BufferBytes), fmtBytes(mem.MetadataBytes))

	if cfg.Scan {
		// Let residual retransmission traffic drain so shard locks are
		// quiet and the read measurement isn't paying for deliveries.
		waitQuiescent(stores, cfg.SyncEvery)
		runReadBench(stores[0], cfg.Keys)
	}
}

// waitQuiescent waits until every δ-buffer has drained (acked engines
// keep retransmitting until the last ack lands), so a read benchmark
// measures reads, not leftover write traffic.
func waitQuiescent(stores []*crdtsync.Store, syncEvery time.Duration) {
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		pending := 0
		for _, st := range stores {
			pending += st.Memory().BufferBytes
		}
		if pending == 0 {
			return
		}
		time.Sleep(syncEvery)
	}
}

// runReadBench measures the three read strengths over one converged
// replica's full keyspace: the clone-everything Get baseline, the
// zero-clone per-shard Query, and the globally sorted Scan.
func runReadBench(st *crdtsync.Store, keys int) {
	fmt.Printf("\nread layer (%d keys, 1 replica):\n", keys)
	keyList := st.Keys() // shared by the baseline; excluded from its measurement

	measure := func(name string, visit func() int) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		visited := visit()
		dur := time.Since(start)
		runtime.ReadMemStats(&m1)
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(max(visited, 1))
		bytes := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(max(visited, 1))
		fmt.Printf("  %-24s %9d keys in %10s  (%7.2f Mkeys/s, %5.2f allocs/key, %7.1f B/key)\n",
			name, visited, dur.Round(time.Microsecond),
			float64(visited)/dur.Seconds()/1e6, allocs, bytes)
	}

	measure("get (clone everything)", func() int {
		n := 0
		for _, k := range keyList {
			if st.Get(k) != nil {
				n++
			}
		}
		return n
	})
	measure("query (zero-clone)", func() int {
		n := 0
		for shard := 0; shard < st.NumShards(); shard++ {
			st.Query(shard, func(string, crdtsync.State) bool { n++; return true })
		}
		return n
	})
	measure("scan (sorted, prefix)", func() int {
		n := 0
		st.Scan(crdtsync.CounterPrefix, func(string, crdtsync.State) bool { n++; return true })
		return n
	})
}

func keyName(k int) string { return fmt.Sprintf("obj:%07d", k) }

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
