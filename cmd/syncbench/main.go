// Command syncbench regenerates the tables and figures of the paper's
// evaluation (§V). Each experiment prints the rows/series the paper plots.
//
// Usage:
//
//	syncbench -exp all                 # every experiment at paper scale
//	syncbench -exp fig7 -scale test    # one experiment, reduced scale
//	syncbench -exp store -keys 100000  # sharded multi-object TCP benchmark
//	syncbench -list                    # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crdtsync/internal/exp"
)

func main() {
	expID := flag.String("exp", "all", "experiment id (fig1, fig7, fig8, fig9, fig10, fig11, fig12, tab1, tab2, store, all)")
	scale := flag.String("scale", "paper", "configuration scale: paper or test")
	seed := flag.Int64("seed", 42, "random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	keys := flag.Int("keys", 100000, "store/persist experiments: number of distinct keys")
	nodeCount := flag.Int("nodes", 3, "store experiment: TCP cluster size (full mesh)")
	shards := flag.Int("shards", 64, "store/persist experiments: shards per node (rounded to a power of two)")
	syncEvery := flag.Duration("sync-every", 100*time.Millisecond, "store/persist experiments: synchronization period")
	engine := flag.String("engine", "acked", "store experiment: inner protocol (acked or delta)")
	digestEvery := flag.Int("digest-every", 4, "store experiment: ship per-shard digests every N ticks (0 disables digest anti-entropy)")
	faultDrop := flag.Float64("fault-drop", 0, "store experiment: drop this fraction of frames on every link (0 disables fault injection)")
	peerQueue := flag.Int("peer-queue", 0, "store experiment: per-peer outbound frame queue length (0 = default)")
	peerQueueBytes := flag.Int("peer-queue-bytes", 0, "store experiment: per-peer outbound queue byte budget (0 = default)")
	noPiggyback := flag.Bool("no-piggyback", false, "store experiment: ship every digest advertisement standalone instead of piggybacking on data frames")
	scan := flag.Bool("scan", false, "store experiment: after convergence, benchmark the read layer (Get clone baseline vs zero-clone Query vs sorted Scan)")
	persistOut := flag.String("persist-out", "", "persist experiment: write the BENCH_persist.json artifact to this path")
	syncWorkers := flag.Int("sync-workers", 0, "store/sync experiments: shard-work pool width (store: 0 = GOMAXPROCS; sync: 0 sweeps 1,2,4,8)")
	ticks := flag.Int("ticks", 20, "sync experiment: timed all-dirty ticks per pool width")
	syncOut := flag.String("sync-out", "", "sync experiment: write the BENCH_sync.json artifact to this path")
	flag.Parse()

	if *list {
		fmt.Println("fig1   GSet mesh: elements/round + CPU ratio (classic vs state)")
		fmt.Println("fig7   transmission ratio vs BP+RR (GSet, GCounter; tree, mesh)")
		fmt.Println("fig8   transmission ratio vs BP+RR (GMap 10/30/60/100%)")
		fmt.Println("fig9   metadata bytes per node vs cluster size")
		fmt.Println("fig10  memory ratio vs BP+RR (mesh)")
		fmt.Println("fig11  Retwis transmission + memory vs Zipf coefficient")
		fmt.Println("fig12  Retwis CPU overhead of classic vs BP+RR")
		fmt.Println("tab1   micro-benchmark catalog")
		fmt.Println("tab2   Retwis workload characterization")
		fmt.Println("store  sharded multi-object store over a real TCP cluster")
		fmt.Println("persist crash-restart durability: snapshot restore + staleness-proportional repair")
		fmt.Println("sync   multi-core sync engine: all-dirty tick scaling across pool widths")
		fmt.Println("all    everything above except store, persist, and sync")
		return
	}

	if *expID == "sync" {
		runSyncBench(syncBenchConfig{
			Keys:    *keys,
			Shards:  *shards,
			Ticks:   *ticks,
			Workers: *syncWorkers,
			Out:     *syncOut,
		})
		return
	}

	if *expID == "persist" {
		runPersistBench(persistBenchConfig{
			Keys:      *keys,
			Shards:    *shards,
			SyncEvery: *syncEvery,
			Out:       *persistOut,
		})
		return
	}

	if *expID == "store" {
		runStoreBench(storeBenchConfig{
			Keys:           *keys,
			Nodes:          *nodeCount,
			Shards:         *shards,
			SyncEvery:      *syncEvery,
			Engine:         *engine,
			DigestEvery:    *digestEvery,
			FaultDrop:      *faultDrop,
			PeerQueueLen:   *peerQueue,
			PeerQueueBytes: *peerQueueBytes,
			NoPiggyback:    *noPiggyback,
			Scan:           *scan,
			Seed:           *seed,
			SyncWorkers:    *syncWorkers,
		})
		return
	}

	var cfg exp.Config
	switch *scale {
	case "paper":
		cfg = exp.DefaultConfig()
	case "test":
		cfg = exp.TestConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want paper or test)\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	runOne := func(id string) {
		start := time.Now()
		var t *exp.Table
		switch id {
		case "fig1":
			t = exp.Fig1(cfg)
		case "fig7":
			t = exp.Fig7(cfg)
		case "fig8":
			t = exp.Fig8(cfg)
		case "fig9":
			t = exp.Fig9(cfg)
		case "fig10":
			t = exp.Fig10(cfg)
		case "fig11":
			t = exp.Fig11(cfg)
		case "fig12":
			t = exp.Fig12(cfg)
		case "tab1":
			t = exp.TableI()
		case "tab2":
			t = exp.TableII(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
		fmt.Printf("(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *expID != "all" {
		runOne(*expID)
		return
	}
	for _, id := range []string{"tab1", "tab2", "fig1", "fig7", "fig8", "fig9", "fig10"} {
		runOne(id)
	}
	// fig11 and fig12 share one Retwis sweep.
	start := time.Now()
	points := exp.RetwisSweep(cfg)
	exp.Fig11From(points).Fprint(os.Stdout)
	fmt.Println()
	exp.Fig12From(points).Fprint(os.Stdout)
	fmt.Printf("(fig11+fig12 in %s)\n", time.Since(start).Round(time.Millisecond))
}
