package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"runtime"
	"time"

	"crdtsync"
)

// The sync experiment measures the multi-core sync engine over the
// public API: one store with an all-dirty keyspace ticks against a TCP
// sink at each shard-work pool width, so a row's tick time covers the
// whole outbound path — engine sync, item encoding, digest recompute,
// frame packing, enqueue — and the sweep's ratios are the pool's
// wall-clock scaling on this host. The serial row (workers=1) is the
// pre-pool behavior and the speedup baseline.

// syncBenchConfig parameterizes the pool-scaling benchmark.
type syncBenchConfig struct {
	Keys    int    // distinct keys, touched in full before every tick
	Shards  int    // shards (rounded to a power of two)
	Ticks   int    // timed all-dirty ticks per pool width
	Workers int    // >0 pins the sweep to one width; 0 sweeps 1,2,4,8
	Out     string // JSON artifact path ("" = stdout only)
}

// syncRow is one pool width's measurements.
type syncRow struct {
	Workers      int      `json:"workers"`
	TickMs       float64  `json:"tick_ms"`       // mean all-dirty tick
	TicksPerSec  float64  `json:"ticks_per_sec"` // 1000 / tick_ms
	SpeedupX     float64  `json:"speedup_x"`     // serial tick_ms / this row's
	SnapshotMs   float64  `json:"snapshot_ms"`   // full snapshot encode+write pass
	WorkerShards []uint64 `json:"worker_shards"` // per-worker shard claims (skew)
}

// syncReport is the BENCH_sync.json schema. GoMaxProcs and NumCPU
// record how much hardware parallelism the rows had available — on a
// single-core host every width collapses to serial and the speedups
// sit at ~1.
type syncReport struct {
	Keys       int       `json:"keys"`
	Shards     int       `json:"shards"`
	Engine     string    `json:"engine"`
	Ticks      int       `json:"ticks"`
	GoMaxProcs int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Rows       []syncRow `json:"rows"`
}

func runSyncBench(cfg syncBenchConfig) {
	if cfg.Keys <= 0 {
		cfg.Keys = 50000
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 20
	}
	widths := []int{1, 2, 4, 8}
	if cfg.Workers > 0 {
		widths = []int{1, cfg.Workers}
		if cfg.Workers == 1 {
			widths = []int{1}
		}
	}
	report := syncReport{
		Keys:       cfg.Keys,
		Shards:     cfg.Shards,
		Engine:     "delta",
		Ticks:      cfg.Ticks,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	fmt.Printf("sync: %d keys over %d shards, %d all-dirty ticks per width, GOMAXPROCS=%d\n",
		cfg.Keys, cfg.Shards, cfg.Ticks, report.GoMaxProcs)
	fmt.Printf("%8s %12s %14s %10s %14s\n",
		"workers", "tick", "ticks/sec", "speedup", "snapshot")
	for _, w := range widths {
		row := syncPoint(cfg, w)
		if len(report.Rows) == 0 {
			row.SpeedupX = 1
		} else {
			row.SpeedupX = report.Rows[0].TickMs / row.TickMs
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("%8d %12.2fms %14.1f %9.2fx %12.2fms\n",
			row.Workers, row.TickMs, row.TicksPerSec, row.SpeedupX, row.SnapshotMs)
	}
	if cfg.Out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("sync: marshal: %v", err)
		}
		if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("sync: write %s: %v", cfg.Out, err)
		}
		fmt.Printf("sync: wrote %s\n", cfg.Out)
	}
}

// syncPoint measures one pool width on a fresh store.
func syncPoint(cfg syncBenchConfig, workers int) syncRow {
	sinkAddr, closeSink := discardSink()
	defer closeSink()
	dir, err := os.MkdirTemp("", "syncbench-sync-*")
	if err != nil {
		log.Fatalf("sync: tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	st, err := crdtsync.Open(
		crdtsync.WithID("n0"),
		crdtsync.WithListenAddr("127.0.0.1:0"),
		crdtsync.WithPeers(map[string]string{"sink": sinkAddr}),
		crdtsync.WithNodes([]string{"n0", "sink"}),
		crdtsync.WithShards(cfg.Shards),
		// The plain delta engine clears its δ-buffer after each send, so
		// every timed tick ships exactly one round of fresh deltas.
		crdtsync.WithEngine(crdtsync.EngineDelta),
		crdtsync.WithSyncEvery(time.Hour), // ticks are driven explicitly
		crdtsync.WithDigestEvery(1),       // every tick recomputes the digest vector
		crdtsync.WithSyncWorkers(workers),
		crdtsync.WithSnapshotDir(dir),
		crdtsync.WithSnapshotEvery(time.Hour),
	)
	if err != nil {
		log.Fatalf("sync: open: %v", err)
	}
	defer st.Close()
	for k := 0; k < cfg.Keys; k++ {
		st.Set(keyName(k)).Add("v")
	}
	st.SyncNow() // drain the initial state; timed ticks see steady-state deltas
	var tickTotal time.Duration
	for i := 0; i < cfg.Ticks; i++ {
		elem := fmt.Sprintf("t%d", i)
		for k := 0; k < cfg.Keys; k++ {
			st.Set(keyName(k)).Add(elem)
		}
		start := time.Now()
		st.SyncNow()
		tickTotal += time.Since(start)
	}
	snapStart := time.Now()
	if err := st.SnapshotNow(); err != nil {
		log.Fatalf("sync: snapshot: %v", err)
	}
	snapMs := float64(time.Since(snapStart).Microseconds()) / 1000
	tickMs := float64(tickTotal.Microseconds()) / 1000 / float64(cfg.Ticks)
	stats := st.Stats()
	return syncRow{
		Workers:      workers,
		TickMs:       tickMs,
		TicksPerSec:  1000 / tickMs,
		SnapshotMs:   snapMs,
		WorkerShards: stats.SyncWorkerShards,
	}
}

// discardSink is a TCP listener that accepts and discards everything —
// a real peer socket for the write pipelines without a second store's
// CPU in the measurement.
func discardSink() (addr string, closeFn func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("sync: sink listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(io.Discard, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}
