// Partition demonstrates reconciling two replicas after a network
// partition with the techniques of the paper's §VI (Enes et al.,
// PMLDC@ECOOP 2016): state-driven (2 messages, ships a full state one way)
// and digest-driven (3 messages, ships hashes of join-irreducibles first,
// then only optimal deltas both ways).
//
// With a large shared history and small divergence — the common case after
// a short partition — digest-driven ships orders of magnitude less state.
//
// Run with: go run ./examples/partition
package main

import (
	"fmt"

	"crdtsync/internal/crdt"
	"crdtsync/internal/pairsync"
)

func main() {
	// Two datacenter replicas share a long history of ~100 B events
	// (digests always cost 8 B per irreducible, so their advantage
	// grows with element size)...
	payload := fmt.Sprintf("%080d", 0)
	build := func() (*crdt.GSet, *crdt.GSet) {
		a := crdt.NewGSet()
		for i := 0; i < 10000; i++ {
			a.Add(fmt.Sprintf("user-event-%06d-%s", i, payload))
		}
		b := a.Clone().(*crdt.GSet)
		// ...then a partition: each side takes a few writes alone.
		for i := 0; i < 25; i++ {
			a.Add(fmt.Sprintf("dc-east-%03d", i))
			b.Add(fmt.Sprintf("dc-west-%03d", i))
		}
		return a, b
	}

	a, b := build()
	fmt.Printf("before: |A| = %d, |B| = %d, diverged by 50 elements\n\n", a.Len(), b.Len())

	sd := pairsync.StateDriven(a, b)
	fmt.Println("state-driven reconciliation:")
	fmt.Printf("  messages: %d\n", sd.Messages)
	fmt.Printf("  state bytes shipped:  %8d (A's full state + B's delta)\n", sd.StateBytes)
	fmt.Printf("  converged: %t, |A| = |B| = %d\n\n", a.Equal(b), a.Len())

	a2, b2 := build()
	dd := pairsync.DigestDriven(a2, b2)
	fmt.Println("digest-driven reconciliation:")
	fmt.Printf("  messages: %d\n", dd.Messages)
	fmt.Printf("  state bytes shipped:  %8d (only the 50 divergent elements)\n", dd.StateBytes)
	fmt.Printf("  digest bytes shipped: %8d (8B per irreducible)\n", dd.DigestBytes)
	fmt.Printf("  converged: %t, |A| = |B| = %d\n\n", a2.Equal(b2), a2.Len())

	fmt.Printf("state-driven total:  %d B\n", sd.TotalBytes())
	fmt.Printf("digest-driven total: %d B (%.1f%% of state-driven)\n",
		dd.TotalBytes(), 100*float64(dd.TotalBytes())/float64(sd.TotalBytes()))
	fmt.Println("\nDigests cost a flat 8 B per irreducible instead of the element")
	fmt.Println("itself, so one extra round trip avoids shipping the shared history.")
	fmt.Println("Both techniques build on the same join decompositions as BP+RR.")
}
