// Storecluster runs a sharded multi-object store on a real TCP cluster:
// three replicas, each owning 64 shards of a 100 000-key keyspace of
// per-key GCounters, synchronized with acked delta-based BP+RR per object.
// Updates on different keys never contend (shard-level locking), and each
// sync tick coalesces every dirty object's delta into one batched frame
// per peer — the deployment shape of the paper's Retwis evaluation
// (§V-C), scaled past it.
//
// Run with: go run ./examples/storecluster [-keys 100000] [-nodes 3] [-shards 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

func main() {
	keys := flag.Int("keys", 100000, "distinct keys across the cluster")
	nodes := flag.Int("nodes", 3, "replica count (full mesh)")
	shards := flag.Int("shards", 64, "shards per replica")
	syncEvery := flag.Duration("sync-every", 100*time.Millisecond, "synchronization period")
	flag.Parse()

	stores, err := transport.LoopbackCluster(*nodes, transport.StoreConfig{
		ID:     "replica",
		Shards: *shards,
		// Acked deltas retransmit until acknowledged, so a dropped
		// frame is repaired instead of silently diverging.
		Factory:   protocol.NewDeltaAcked(true, true),
		ObjType:   func(string) workload.Datatype { return workload.GCounterType{} },
		SyncEvery: *syncEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	fmt.Printf("started %d replicas (full mesh), %d shards each, sync every %s\n",
		*nodes, stores[0].NumShards(), *syncEvery)

	// Each replica writes a disjoint slice of the keyspace concurrently.
	start := time.Now()
	var wg sync.WaitGroup
	for i, st := range stores {
		wg.Add(1)
		go func(st *transport.Store, i int) {
			defer wg.Done()
			for k := i; k < *keys; k += *nodes {
				st.Update(workload.Op{Kind: workload.KindInc, Key: fmt.Sprintf("obj:%07d", k), N: 1})
			}
		}(st, i)
	}
	wg.Wait()
	fmt.Printf("applied %d updates in %s; waiting for anti-entropy...\n",
		*keys, time.Since(start).Round(time.Millisecond))

	// Poll per-replica key counts and digests until the keyspace agrees.
	err = transport.WaitConverged(stores, *keys, 5*time.Minute, func(counts []int) {
		fmt.Printf("  key counts: %v\n", counts)
	})
	if err != nil {
		log.Fatal(err)
	}

	var frames, wireBytes, elements int
	for _, st := range stores {
		s := st.Stats()
		frames += s.Frames
		wireBytes += s.WireBytes
		elements += s.Sent.Elements
	}
	fmt.Printf("\nconverged in %s: every replica holds all %d keys (digest %x)\n",
		time.Since(start).Round(time.Millisecond), *keys, stores[0].Digest())
	fmt.Printf("wire: %d batched frames, %.1f MiB total, %.0f keys/frame average\n",
		frames, float64(wireBytes)/(1<<20), float64(elements)/float64(frames))
}
