// Storecluster runs a sharded multi-object store on a real TCP cluster
// through the public crdtsync API: three replicas, each owning 64 shards
// of a 100 000-counter keyspace, synchronized with acked delta-based
// BP+RR per object. Updates on different keys never contend (shard-level
// locking), and each sync tick coalesces every dirty object's delta into
// bounded batched frames per peer — the deployment shape of the paper's
// Retwis evaluation (§V-C), scaled past it.
//
// On top of the delta traffic the replicas run digest anti-entropy:
// every few ticks each ships its per-shard digest vector, and peers pull
// in full only the shards whose digests differ. Once the cluster
// converges, the example demonstrates the steady state — idle ticks cost
// a constant digest heartbeat, not a keyspace scan, because clean shards
// are skipped without even taking their locks.
//
// Run with: go run ./examples/storecluster [-keys 100000] [-nodes 3] [-shards 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"crdtsync"
)

func main() {
	keys := flag.Int("keys", 100000, "distinct counters across the cluster")
	nodes := flag.Int("nodes", 3, "replica count (full mesh)")
	shards := flag.Int("shards", 64, "shards per replica")
	syncEvery := flag.Duration("sync-every", 100*time.Millisecond, "synchronization period")
	digestEvery := flag.Int("digest-every", 4, "digest heartbeat period in ticks (0 disables)")
	peerQueue := flag.Int("peer-queue", 0, "per-peer outbound frame queue length (0 = default)")
	syncWorkers := flag.Int("sync-workers", 0, "shard-work pool width per replica (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	stores, err := crdtsync.Cluster(*nodes,
		crdtsync.WithID("replica"),
		crdtsync.WithShards(*shards),
		// Acked deltas retransmit until acknowledged, so a dropped frame
		// is repaired instead of silently diverging.
		crdtsync.WithEngine(crdtsync.EngineAcked),
		crdtsync.WithSyncEvery(*syncEvery),
		crdtsync.WithDigestEvery(*digestEvery),
		// Each peer gets its own bounded write queue and writer
		// goroutine, so one slow replica can never stall frames to the
		// healthy ones.
		crdtsync.WithQueueBudget(*peerQueue, 0),
		// The CPU-heavy per-shard stages of every tick — engine sync,
		// item encoding, digest recompute — fan out across a bounded
		// worker pool; frame bytes are identical at any width.
		crdtsync.WithSyncWorkers(*syncWorkers),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	fmt.Printf("started %d replicas (full mesh), %d shards each, sync every %s, digests every %d ticks\n",
		*nodes, stores[0].NumShards(), *syncEvery, *digestEvery)

	// Each replica increments a disjoint slice of the keyspace
	// concurrently, through typed counter handles.
	start := time.Now()
	var wg sync.WaitGroup
	for i, st := range stores {
		wg.Add(1)
		go func(st *crdtsync.Store, i int) {
			defer wg.Done()
			for k := i; k < *keys; k += *nodes {
				st.Counter(fmt.Sprintf("obj:%07d", k)).Inc(1)
			}
		}(st, i)
	}
	wg.Wait()
	fmt.Printf("applied %d updates in %s; waiting for anti-entropy...\n",
		*keys, time.Since(start).Round(time.Millisecond))

	// Poll per-replica key counts and digests until the keyspace agrees.
	err = crdtsync.WaitConverged(stores, *keys, 5*time.Minute, func(counts []int) {
		fmt.Printf("  key counts: %v\n", counts)
	})
	if err != nil {
		log.Fatal(err)
	}

	var frames, wireBytes, elements, piggybacked, enqueued, dropped, coalesced, reconnects int
	for _, st := range stores {
		s := st.Stats()
		frames += s.Frames
		wireBytes += s.WireBytes
		elements += s.Sent.Elements
		piggybacked += s.PiggybackedDigests
		for _, ps := range s.Peers {
			enqueued += ps.Enqueued
			dropped += ps.Dropped
			coalesced += ps.Coalesced
			reconnects += ps.Reconnects
		}
	}
	fmt.Printf("\nconverged in %s: every replica holds all %d counters (digest %x)\n",
		time.Since(start).Round(time.Millisecond), *keys, stores[0].Digest())
	fmt.Printf("wire: %d batched frames, %.1f MiB total, %.0f keys/frame average, %d digests piggybacked on data frames\n",
		frames, float64(wireBytes)/(1<<20), float64(elements)/float64(frames), piggybacked)
	fmt.Printf("pipeline: %d frames enqueued, %d dropped, %d coalesced on drain, %d reconnects\n",
		enqueued, dropped, coalesced, reconnects)
	if s := stores[0].Stats(); s.SyncWorkers > 1 {
		var claims crdtsync.Stats
		for _, st := range stores {
			claims.Add(st.Stats())
		}
		busyMs := make([]int64, len(claims.SyncWorkerBusyNs))
		for i, ns := range claims.SyncWorkerBusyNs {
			busyMs[i] = ns / int64(time.Millisecond)
		}
		fmt.Printf("pool: %d sync workers/replica; cluster-wide shard claims per worker %v, busy(ms) %v\n",
			s.SyncWorkers, claims.SyncWorkerShards, busyMs)
	}

	// The zero-clone read layer sums the whole keyspace without copying
	// a single counter state: Query visits each shard's live objects
	// under its lock.
	queryStart := time.Now()
	var total uint64
	for shard := 0; shard < stores[0].NumShards(); shard++ {
		stores[0].Query(shard, func(_ string, st crdtsync.State) bool {
			total += uint64(st.Elements())
			return true
		})
	}
	fmt.Printf("query: zero-clone full-keyspace visit in %s (sum of per-key contributions: %d)\n",
		time.Since(queryStart).Round(time.Microsecond), total)

	// Steady state: with every shard clean, ticks cost only the digest
	// heartbeat (8 bytes per shard per peer, every digest-every ticks).
	// Wait for the δ-buffers to drain first — right after convergence the
	// acked engines are still retransmitting entries whose acks are in
	// flight, which is residual delta traffic, not anti-entropy cost.
	if *digestEvery > 0 {
		for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
			drained := 0
			for _, st := range stores {
				drained += st.Memory().BufferBytes
			}
			if drained == 0 {
				break
			}
			time.Sleep(*syncEvery)
		}
		agg := func() crdtsync.Stats {
			var t crdtsync.Stats
			for _, st := range stores {
				t.Add(st.Stats())
			}
			return t
		}
		// Let in-flight duplicates settle too: a retransmission wave
		// already queued in a socket buffer when the δ-buffers drain
		// still earns one large batched ack reply once the receiver
		// works through it. Wait until a full sync period passes with no
		// new data frames; processing one backlogged frame can itself
		// take a few ticks, so the window must span several before it
		// counts as quiet.
		for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
			prev := agg()
			time.Sleep(10 * *syncEvery)
			cur := agg()
			if cur.Frames-cur.DigestFrames == prev.Frames-prev.DigestFrames {
				break
			}
		}
		before := agg()
		idle := 10 * *syncEvery
		time.Sleep(idle)
		after := agg()
		fmt.Printf("steady state: %d B on the wire over %s idle (%d standalone digest heartbeats — piggybacking needs data frames to ride — %d data frames, %d shard repairs)\n",
			after.WireBytes-before.WireBytes, idle.Round(time.Millisecond),
			after.DigestFrames-before.DigestFrames,
			(after.Frames-after.DigestFrames)-(before.Frames-before.DigestFrames),
			after.RepairShards-before.RepairShards)
	}
}
