// Quickstart: the public crdtsync API in one file — this is the README's
// "Public API" snippet, kept compiling by CI.
//
// Two replicas synchronize a keyspace of typed CRDT objects over real
// TCP on loopback: counters sum, sets union, map registers resolve
// last-writer-wins; a watcher streams change notifications, and the
// zero-clone Scan ranges over a whole namespace without copying a state.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"crdtsync"
)

func main() {
	// Bind both listeners first so each replica can name the other's
	// address at Open time. (Fully meshed loopback clusters can use
	// crdtsync.Cluster instead, which does exactly this.)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	a, err := crdtsync.Open(
		crdtsync.WithID("node-a"),
		crdtsync.WithListener(lnA),
		crdtsync.WithPeers(map[string]string{"node-b": lnB.Addr().String()}),
		crdtsync.WithSyncEvery(20*time.Millisecond),
		crdtsync.WithDigestEvery(4), // digest anti-entropy heartbeat
	)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	b, err := crdtsync.Open(
		crdtsync.WithID("node-b"),
		crdtsync.WithListener(lnB),
		crdtsync.WithPeers(map[string]string{"node-a": lnA.Addr().String()}),
		crdtsync.WithSyncEvery(20*time.Millisecond),
		crdtsync.WithDigestEvery(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()

	// Watch the counter namespace on B before writing anything.
	watch := b.Watch(crdtsync.CounterPrefix)
	defer watch.Close()

	// Typed handles: counters sum across replicas...
	a.Counter("page/hits").Inc(3)
	b.Counter("page/hits").Inc(4)
	// ...sets union...
	a.Set("tags").Add("fast")
	b.Set("tags").Add("replicated")
	// ...and map fields are last-writer-wins registers, each field its
	// own object (writes to different fields never contend).
	a.Map("profile/ana").Put("city", "Porto")
	b.Map("profile/ana").Put("lang", "go")

	// The watcher sees changed counters — local and remote — as
	// coalesced events.
	ev := <-watch.Events()
	fmt.Printf("watch: %s changed (lagged=%t)\n", ev.Key, ev.Lagged)

	// Wait until both replicas hold all 4 objects in agreeing states:
	// one counter, one set, two map fields (each its own object).
	stores := []*crdtsync.Store{a, b}
	if err := crdtsync.WaitConverged(stores, 4, 10*time.Second, nil); err != nil {
		log.Fatal(err)
	}

	for _, st := range stores {
		fmt.Printf("%s: hits=%d tags=%v", st.ID(),
			st.Counter("page/hits").Value(), st.Set("tags").Elems())
		st.Map("profile/ana").Range(func(field, value string) bool {
			fmt.Printf(" ana.%s=%q", field, value)
			return true
		})
		fmt.Println()
	}

	// Zero-clone reads: Scan ranges a namespace in sorted key order
	// without copying a single state.
	fmt.Print("scan c/: ")
	b.Scan(crdtsync.CounterPrefix, func(key string, st crdtsync.State) bool {
		fmt.Printf("%s=%d ", key, st.Elements())
		return true
	})
	fmt.Printf("\nconverged: digests agree (%x)\n", b.Digest())
}
