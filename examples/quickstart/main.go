// Quickstart: the paper's core ideas in one file.
//
//  1. State-based CRDTs are join-semilattices; replicas converge by join.
//  2. δ-mutators return small deltas instead of full states.
//  3. Join decompositions split a state into irreducible atoms.
//  4. Δ(a, b) is the optimal delta: the smallest state that carries
//     everything a knows and b does not.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"crdtsync/internal/core"
	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
)

func main() {
	// Two replicas of a grow-only set diverge...
	replicaA := crdt.NewGSet()
	replicaB := crdt.NewGSet()
	replicaA.Add("apple")
	replicaA.Add("banana")
	replicaB.Add("banana")
	replicaB.Add("cherry")
	fmt.Println("replica A:", replicaA)
	fmt.Println("replica B:", replicaB)

	// ...and converge by joining states in any order.
	merged := replicaA.Join(replicaB)
	fmt.Println("A ⊔ B:    ", merged)

	// δ-mutators return only what changed: adding a present element
	// yields ⊥ (the optimal addδ of Figure 2b).
	fmt.Println("addδ(kiwi): ", replicaA.AddDelta("kiwi"))
	fmt.Println("addδ(apple):", replicaA.AddDelta("apple"), "(already present → bottom)")

	// Join decomposition: the set splits into irreducible singletons.
	fmt.Println("⇓(A ⊔ B):", lattice.Decompose(merged))

	// Optimal delta: exactly what A has that B lacks — the key to the
	// RR optimization (remove redundant state in received δ-groups).
	delta := core.Delta(replicaA, replicaB)
	fmt.Println("Δ(A, B): ", delta)

	// Joining the delta brings B fully up to date with A.
	replicaB.Merge(delta)
	fmt.Println("B ⊔ Δ:   ", replicaB)

	// The same machinery works for any lattice, e.g. a grow-only counter.
	counter := crdt.NewGCounter()
	counter.Inc("server-1", 3)
	counter.Inc("server-2", 5)
	fmt.Println("\ncounter:      ", counter, "value:", counter.Value())
	fmt.Println("⇓counter:     ", lattice.Decompose(counter))
	fmt.Println("incδ(server-1):", counter.IncDelta("server-1", 1))
}
