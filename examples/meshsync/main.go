// Meshsync replays the paper's headline experiment (Figure 1): 15 replicas
// of an always-growing set synchronizing over a partial mesh, comparing
// every synchronization protocol's transmission and memory cost.
//
// Watch for the two results that motivated the paper:
//   - classic delta-based transmits as much as state-based (its δ-groups
//     snowball through the cyclic topology);
//   - the BP+RR optimizations cut transmission by an order of magnitude.
//
// Run with: go run ./examples/meshsync
package main

import (
	"fmt"

	"log"

	"crdtsync/internal/exp"
	"crdtsync/internal/netsim"
	"crdtsync/internal/topology"
)

func main() {
	const nodes, degree, rounds = 15, 4, 100
	mesh := topology.PartialMesh(nodes, degree, 1)
	fmt.Printf("topology: %d-node partial mesh, %d neighbors each, cycles=%t\n\n",
		nodes, degree, !mesh.IsAcyclic())
	fmt.Printf("%-15s %10s %12s %12s %10s %12s\n",
		"protocol", "messages", "elements", "payload B", "meta %", "avg mem B")

	dt, gen, err := exp.WorkloadByName("gset", 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range exp.Roster() {
		sim := netsim.New(mesh, p.Factory, dt, netsim.Options{Seed: 1})
		sim.Run(rounds, gen)
		if _, ok := sim.RunQuiet(100); !ok {
			fmt.Printf("%-15s did not converge!\n", p.Name)
			continue
		}
		col := sim.Collector()
		sent := col.TotalSent()
		metaPct := 100 * float64(sent.MetadataBytes) / float64(sent.TotalBytes())
		fmt.Printf("%-15s %10d %12d %12d %9.1f%% %12.0f\n",
			p.Name, sent.Messages, sent.Elements, sent.PayloadBytes, metaPct, col.AvgMemoryPerNode())
	}

	fmt.Println("\nNote how delta-classic's elements rival state-based (the paper's")
	fmt.Println("Figure 1 anomaly) while delta-bp+rr ships an order of magnitude less.")
}
