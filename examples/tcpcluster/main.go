// Tcpcluster runs five real replicas over TCP on loopback through the
// public crdtsync API, on a ring topology: each replica synchronizes
// with its two ring neighbors only, so every update needs multi-hop
// relaying before the whole cluster sees it. The replicas share one
// grow-only set, mutated and read through the typed Set handle.
//
// Note WithNodes: on a partial topology the full membership is larger
// than any replica's direct neighborhood, and the engines need it to
// track causality cluster-wide.
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"crdtsync"
)

func main() {
	const n = 5
	ids := make([]string, n)
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("node-%d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	// Ring topology: node-i talks to its two ring neighbors only.
	stores := make([]*crdtsync.Store, n)
	for i := 0; i < n; i++ {
		prev, next := (i+n-1)%n, (i+1)%n
		st, err := crdtsync.Open(
			crdtsync.WithID(ids[i]),
			crdtsync.WithListener(listeners[i]),
			crdtsync.WithPeers(map[string]string{ids[prev]: addrs[prev], ids[next]: addrs[next]}),
			crdtsync.WithNodes(ids),
			crdtsync.WithEngine(crdtsync.EngineDelta), // BP+RR, the paper's engine
			crdtsync.WithSyncEvery(50*time.Millisecond),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		stores[i] = st
	}
	fmt.Printf("started %d replicas on a TCP ring (delta-based BP+RR, 50ms sync)\n", n)

	// Every replica contributes a few elements to the shared set.
	for i, st := range stores {
		events := st.Set("events")
		for j := 0; j < 3; j++ {
			events.Add(fmt.Sprintf("%s-item-%d", ids[i], j))
		}
	}
	fmt.Printf("applied %d updates across the cluster; waiting for anti-entropy...\n", n*3)

	// Poll until all replicas agree, reading through the zero-clone
	// handle (Len never copies the set).
	want := n * 3
	deadline := time.Now().Add(10 * time.Second)
	for {
		counts := make([]int, n)
		agree := 0
		for i, st := range stores {
			counts[i] = st.Set("events").Len()
			if counts[i] == want {
				agree++
			}
		}
		fmt.Printf("  element counts: %v\n", counts)
		if agree == n {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster did not converge")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("\nconverged: every replica holds all %d elements\n", stores[0].Set("events").Len())
}
