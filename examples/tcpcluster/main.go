// Tcpcluster runs five real replicas over TCP on loopback — the library's
// deployable path (engines + wire codec + framed transport), as opposed to
// the measurement simulator. Each replica synchronizes a grow-only set
// with delta-based BP+RR every 50 ms over a ring topology, so every update
// needs multi-hop relaying.
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/protocol"
	"crdtsync/internal/transport"
	"crdtsync/internal/workload"
)

func main() {
	const n = 5
	ids := make([]string, n)
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("node-%d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	// Ring topology: node-i talks to its two ring neighbors only.
	nodes := make([]*transport.Node, n)
	for i := 0; i < n; i++ {
		prev, next := (i+n-1)%n, (i+1)%n
		node, err := transport.Start(transport.Config{
			ID:        ids[i],
			Listener:  listeners[i],
			Peers:     map[string]string{ids[prev]: addrs[prev], ids[next]: addrs[next]},
			Nodes:     ids,
			Datatype:  workload.GSetType{},
			Factory:   protocol.NewDeltaBPRR(),
			SyncEvery: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
	}
	fmt.Printf("started %d replicas on a TCP ring (delta-based BP+RR, 50ms sync)\n", n)

	// Every replica contributes a few elements.
	for i, node := range nodes {
		for j := 0; j < 3; j++ {
			node.Update(workload.Op{
				Kind: workload.KindAdd,
				Elem: fmt.Sprintf("%s-item-%d", ids[i], j),
			})
		}
	}
	fmt.Printf("applied %d updates across the cluster; waiting for anti-entropy...\n", n*3)

	// Poll until all replicas agree.
	want := n * 3
	deadline := time.Now().Add(10 * time.Second)
	for {
		counts := make([]int, n)
		agree := 0
		for i, node := range nodes {
			node.Query(func(s lattice.State) {
				counts[i] = s.(*crdt.GSet).Len()
				if counts[i] == want {
					agree++
				}
			})
		}
		fmt.Printf("  element counts: %v\n", counts)
		if agree == n {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster did not converge")
		}
		time.Sleep(100 * time.Millisecond)
	}
	nodes[0].Query(func(s lattice.State) {
		fmt.Printf("\nconverged: every replica holds all %d elements\n", s.(*crdt.GSet).Len())
	})
}
