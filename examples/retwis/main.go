// Retwis runs the paper's macro-benchmark (§V-C) at demo scale: a Twitter
// clone whose users' follower sets, walls and timelines are 3 CRDT objects
// each, replicated across a partial mesh, under a contention knob (the
// Zipf coefficient over users).
//
// At low contention the classic delta-based algorithm is nearly optimal;
// as contention rises, only BP+RR keeps bandwidth and memory bounded.
//
// Run with: go run ./examples/retwis
package main

import (
	"fmt"

	"crdtsync/internal/netsim"
	"crdtsync/internal/protocol"
	"crdtsync/internal/retwis"
	"crdtsync/internal/topology"
)

func main() {
	const (
		nodes       = 20
		users       = 1000
		opsPerRound = 8
		rounds      = 30
	)
	mesh := topology.PartialMesh(nodes, 4, 1)
	fmt.Printf("retwis: %d users on a %d-node mesh, %d user-actions/node/round\n",
		users, nodes, opsPerRound)
	fmt.Printf("%6s %-14s %14s %14s %12s\n", "zipf", "protocol", "tx bytes/node", "mem bytes/node", "converged")

	for _, zipf := range []float64{0.5, 1.0, 1.5} {
		for _, p := range []struct {
			name    string
			factory protocol.Factory
		}{
			{"delta-classic", protocol.NewPerObject(protocol.NewDeltaClassic(), retwis.ObjectDatatype)},
			{"delta-bp+rr", protocol.NewPerObject(protocol.NewDeltaBPRR(), retwis.ObjectDatatype)},
		} {
			gen := retwis.NewGen(users, opsPerRound, zipf, 7)
			sim := netsim.New(mesh, p.factory, retwis.StoreType{}, netsim.Options{Seed: 7})
			sim.Run(rounds, gen)
			_, converged := sim.RunQuiet(100)
			col := sim.Collector()
			tx := float64(col.TotalSent().TotalBytes()) / float64(nodes)
			fmt.Printf("%6.2f %-14s %14.0f %14.0f %12t\n",
				zipf, p.name, tx, col.AvgMemoryPerNode(), converged)
		}
	}
	fmt.Println("\nAs the Zipf coefficient grows (hotter objects, more concurrent")
	fmt.Println("updates between syncs), classic delta-based transmission blows up")
	fmt.Println("while BP+RR stays bounded — the paper's Figure 11.")
}
