module crdtsync

go 1.21
