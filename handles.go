package crdtsync

import (
	"strings"

	"crdtsync/internal/crdt"
	"crdtsync/internal/lattice"
	"crdtsync/internal/workload"
)

// Counter is a typed handle on one grow-only counter object: a named,
// replicated counter whose increments from different replicas always
// sum, never conflict. Handles are cheap values — create them on the
// fly, copy them, share them across goroutines.
type Counter struct {
	st  *Store
	key string
}

// Counter returns the handle for the counter named name. The object is
// created lazily on the first Inc; reading a never-written counter
// yields 0.
func (s *Store) Counter(name string) Counter {
	return Counter{st: s, key: CounterPrefix + name}
}

// Key returns the counter's raw object key ("c/<name>"), as seen by
// Keys, Scan and Watch.
func (c Counter) Key() string { return c.key }

// Inc adds n to the counter. Inc(0) is a no-op: it neither creates the
// object nor dirties its shard.
func (c Counter) Inc(n uint64) {
	if n == 0 {
		return
	}
	c.st.s.Update(workload.Inc(c.key, n))
}

// Value returns the counter's current value: the sum of every replica's
// increments that have reached this store. It reads the live state under
// the shard lock without cloning.
func (c Counter) Value() uint64 {
	var v uint64
	c.st.View(c.key, func(st State) {
		if g, ok := st.(*crdt.GCounter); ok {
			v = g.Value()
		}
	})
	return v
}

// Set is a typed handle on one grow-only set object: replicas may add
// elements concurrently and converge to the union.
type Set struct {
	st  *Store
	key string
}

// Set returns the handle for the set named name. The object is created
// lazily on the first Add; a never-written set is empty.
func (s *Store) Set(name string) Set {
	return Set{st: s, key: SetPrefix + name}
}

// Key returns the set's raw object key ("s/<name>"), as seen by Keys,
// Scan and Watch.
func (s Set) Key() string { return s.key }

// Add inserts elem into the set (idempotent: re-adding a present element
// synchronizes for free).
func (s Set) Add(elem string) { s.st.s.Update(workload.Add(s.key, elem)) }

// Contains reports whether elem is in the set, reading the live state
// without cloning.
func (s Set) Contains(elem string) bool {
	found := false
	s.st.View(s.key, func(st State) {
		if g, ok := st.(*crdt.GSet); ok {
			found = g.Contains(elem)
		}
	})
	return found
}

// Elems returns the elements in sorted order.
func (s Set) Elems() []string {
	var out []string
	s.st.View(s.key, func(st State) {
		if g, ok := st.(*crdt.GSet); ok {
			out = g.Values()
		}
	})
	return out
}

// Len returns the number of elements, reading the live state without
// cloning.
func (s Set) Len() int {
	n := 0
	s.st.View(s.key, func(st State) {
		if g, ok := st.(*crdt.GSet); ok {
			n = g.Len()
		}
	})
	return n
}

// Map is a typed handle on one map of last-writer-wins registers.
// Each field is an independent object at "m/<name>/<field>": concurrent
// Puts to different fields of the same map never contend on a lock, a
// δ-buffer or a register version, and a map with a million fields costs
// a sync tick only what its dirty fields cost. Concurrent Puts to the
// same field resolve last-writer-wins (version, then writer id).
type Map struct {
	st     *Store
	prefix string
}

// Map returns the handle for the map named name. Fields are created
// lazily on their first Put.
func (s *Store) Map(name string) Map {
	return Map{st: s, prefix: MapPrefix + name + "/"}
}

// Prefix returns the map's raw key prefix ("m/<name>/"): its fields'
// object keys as seen by Keys, Scan and Watch.
func (m Map) Prefix() string { return m.prefix }

// Put writes value at field, superseding older writes to the same field
// on any replica (last-writer-wins).
func (m Map) Put(field, value string) {
	m.st.s.Update(workload.Put(m.prefix+field, value))
}

// Get returns the field's current value and whether the field has ever
// been written, reading the live state without cloning.
func (m Map) Get(field string) (string, bool) {
	key := m.prefix + field
	val, ok := "", false
	m.st.View(key, func(st State) {
		val, ok = registerValue(st, key)
	})
	return val, ok
}

// Fields returns the map's field names in sorted order.
func (m Map) Fields() []string {
	var out []string
	m.st.Scan(m.prefix, func(key string, _ State) bool {
		out = append(out, strings.TrimPrefix(key, m.prefix))
		return true
	})
	return out
}

// Range visits every field and its value in sorted field order without
// cloning, stopping early if fn returns false. The Scan contract
// applies: concurrent updates may be observed.
func (m Map) Range(fn func(field, value string) bool) {
	m.st.Scan(m.prefix, func(key string, st State) bool {
		val, ok := registerValue(st, key)
		if !ok {
			return true
		}
		return fn(strings.TrimPrefix(key, m.prefix), val)
	})
}

// Len returns the number of fields ever written.
func (m Map) Len() int {
	n := 0
	m.st.Scan(m.prefix, func(string, State) bool { n++; return true })
	return n
}

// registerValue extracts the LWW register payload a map field's object
// state carries at key, if any.
func registerValue(st State, key string) (string, bool) {
	mp, ok := st.(*lattice.Map)
	if !ok {
		return "", false
	}
	reg, ok := mp.Get(key).(*crdt.LWWRegister)
	if !ok {
		return "", false
	}
	return reg.Value(), true
}
